// Ablation study for the design choices DESIGN.md calls out (not a paper
// table): per circuit, Procedure 2 with
//   * exact vs sampled (paper-style, 200 permutations) identification,
//   * gate merging on vs off (Figure 4),
//   * single-unit (paper) vs multi-unit replacement (Section 6, issue 2),
//   * cone expand-slack 0 (paper's enumeration) vs the default slack.
//
// Flags: --circuits=a,b,c   --verify=sim|sat|both
//        --report=<file>.json   --trace   --jobs=N
#include "bench/common.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

struct Variant {
  const char* label;
  ResynthOptions opt;
};

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("ablation_units", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits = select_circuits(cli, {"cmp8", "alu4", "syn150", "syn300"});

  std::vector<Variant> variants;
  {
    Variant v{"exact (default)", {}};
    v.opt.k = 6;
    variants.push_back(v);
  }
  {
    Variant v{"sampled-200", {}};
    v.opt.k = 6;
    v.opt.identify.exact = false;
    v.opt.identify.sample_tries = 200;
    variants.push_back(v);
  }
  {
    Variant v{"no-merge", {}};
    v.opt.k = 6;
    v.opt.unit.merge_gates = false;
    variants.push_back(v);
  }
  {
    Variant v{"multi-unit<=4", {}};
    v.opt.k = 6;
    v.opt.max_units = 4;
    variants.push_back(v);
  }
  {
    Variant v{"paper-enum (slack 0)", {}};
    v.opt.k = 6;
    v.opt.cone_slack = 0;
    variants.push_back(v);
  }

  std::cout << "Ablation: Procedure 2 variants (gate objective, K=6)\n\n";
  Table t({"circuit", "variant", "gates", "paths", "replacements"});
  for (const std::string& name : circuits) {
    Netlist base = prepare_irredundant(name, verify);
    run.add_circuit("original", base);
    for (Variant& v : variants) {
      Netlist nl = base;
      Rng rng(42);
      if (!v.opt.identify.exact) v.opt.identify.rng = &rng;
      ResynthStats st = resynthesize(nl, v.opt);
      verify_or_die(base, nl, std::string(name) + " " + v.label, verify);
      t.row()
          .add("irs_" + name)
          .add(v.label)
          .add(st.gates_after)
          .add_commas(st.paths_after)
          .add(st.replacements);
    }
  }
  t.print(std::cout);
  run.report().add_table("ablation", t);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("ablation_units", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
