// Shared plumbing for the table harnesses: suite selection, the
// "irredundant starting point" preparation step (the paper's circuits are
// irredundant, hence the irs prefix), and best-of-K resynthesis runs.
#pragma once

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "atpg/redundancy.hpp"
#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "netlist/netlist.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/telemetry.hpp"
#include "sat/cec.hpp"
#include "sat/session.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "paths/paths.hpp"
#include "robust/guard.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace compsyn::bench {

/// Shared observability + robustness wiring for every table harness:
///   --report=<file>     write a machine-readable JSON (or .jsonl) run report
///   --trace             print the span/counter summary after the tables
///   --trace-out=<file>  write a Chrome trace-event profile (chrome://tracing
///                       or https://ui.perfetto.dev; DESIGN.md §12)
///   --events=<file>     stream a compsyn-events-v1 JSONL event log
///   --progress[=SECS]   stderr heartbeat, at most one line per SECS (bare
///                       flag: every second); stdout untouched
///   --jobs=N            worker threads for the parallel regions (default 1)
///   --sat=MODE          SAT backend: session (persistent, default) | oneshot
///   --budget=TICKS      deterministic anytime budget (DESIGN.md §10)
///   --deadline=SECS     wall-clock watchdog (non-deterministic)
///   --inject=SPEC       scripted fault injection for chaos testing
/// Any observability flag also enables runtime recording, so without them
/// the binaries' stdout is byte-identical to an uninstrumented build; the
/// profile-grade flags (--trace-out/--events/--progress) additionally turn
/// on extended telemetry, which adds the histograms/phases/hot_cones report
/// sections -- plain --report output stays byte-identical either way. The
/// exec layer guarantees identical results (and counters) at any --jobs
/// value; only the timings change. A budget trip winds the tables down to
/// their verified best-so-far state and finish() returns exit code 20.
class BenchRun {
 public:
  BenchRun(std::string name, const Cli& cli) : cli_(cli), report_(std::move(name)) {
    if (cli_.has("report") || cli_.has("trace")) obs_set_enabled(true);
    if (cli_.has("trace-out")) {
      telemetry_set_extended(true);
      ChromeTrace::enable();
      ChromeTrace::arm_output(cli_.get("trace-out"));
    }
    if (cli_.has("events")) {
      telemetry_set_extended(true);
      std::string err;
      if (!EventLog::open(cli_.get("events"), report_.name(), &err)) {
        std::cerr << "error: " << err << "\n";
        std::exit(2);
      }
    }
    if (cli_.has("progress")) {
      telemetry_set_extended(true);
      const double interval = cli_.get_double("progress", 1.0);
      telemetry_set_progress(report_.name(), interval > 0 ? interval : 1.0);
    }
    if (cli_.has("jobs")) {
      const int j = cli_.get_int("jobs", 1);
      if (j < 1) {
        std::cerr << "error: --jobs=" << cli_.get("jobs")
                  << " (expected a positive integer)\n";
        std::exit(2);
      }
      set_jobs(static_cast<unsigned>(j));
    }
    const std::string sat_str = cli_.get("sat", "session");
    const auto sat = parse_sat_backend(sat_str);
    if (!sat) {
      std::cerr << "error: --sat=" << sat_str
                << " (expected session or oneshot)\n";
      std::exit(2);
    }
    set_sat_backend(*sat);
    robust_active_ = cli_.has("budget") || cli_.has("deadline") || cli_.has("inject");
    if (cli_.has("inject")) {
      std::string err;
      auto plan = robust::FaultPlan::parse(cli_.get("inject"), &err);
      if (!plan) {
        std::cerr << "error: --inject=" << cli_.get("inject") << ": " << err
                  << "\n";
        std::exit(2);
      }
      plan_ = *plan;
      inject_scope_.emplace(plan_);
    }
    std::uint64_t limit = cli_.get_u64("budget", 0);
    if (plan_.budget_trip != 0) {
      limit = limit == 0 ? plan_.budget_trip
                         : std::min(limit, plan_.budget_trip);
    }
    budget_.emplace(limit);
    if (robust_active_) budget_scope_.emplace(*budget_);
    watchdog_.emplace(cli_.get_double("deadline", 0.0));
    Json flags = Json::object();
    for (const auto& [flag, value] : cli_.flags()) flags.set(flag, value);
    report_.set_meta("flags", std::move(flags));
  }

  RunReport& report() { return report_; }

  /// Records the standard per-circuit stats line under the "circuits" section.
  void add_circuit(const std::string& role, const Netlist& nl) {
    Json rec = Json::object();
    rec.set("role", role);
    rec.set("name", nl.name());
    rec.set("inputs", static_cast<std::uint64_t>(nl.inputs().size()));
    rec.set("outputs", static_cast<std::uint64_t>(nl.outputs().size()));
    rec.set("gates", nl.equivalent_gate_count());
    const std::uint64_t paths = count_paths_clamped(nl).total;
    rec.set("paths", paths >= kPathCountSaturated ? Json(format_path_total(paths))
                                                  : Json(paths));
    rec.set("depth", static_cast<std::uint64_t>(nl.depth()));
    report_.add_record("circuits", std::move(rec));
  }

  /// Flag-gated sinks + unknown-flag warnings; returns a process exit code
  /// (nonzero when a requested report could not be written, kExitDegraded
  /// when the tick budget stopped the tables early).
  int finish() {
    int rc = 0;
    const robust::StopReason reason = robust::stop_reason();
    if (cli_.has("report")) {
      // Status block only under a robust flag, so default-flag reports stay
      // byte-identical across releases.
      if (robust_active_) {
        report_.set_meta("status",
                         robust::to_string(robust::run_status_for(reason)));
        if (reason != robust::StopReason::None) {
          report_.set_meta("stop_reason", robust::to_string(reason));
        }
        report_.set_meta("ticks", robust::ticks_consumed());
      }
      const std::string path = cli_.get("report");
      std::string err;
      if (!report_.write(path, &err)) {
        std::cerr << "error: " << err << "\n";
        rc = 1;
      }
    }
    if (cli_.has("trace")) {
      std::cout << "\n";
      report_.print_summary(std::cout);
    }
    if (cli_.has("trace-out")) {
      // Normal-exit write; disarm so the guard's abnormal-exit flush does
      // not rewrite the file after this (ChromeTrace::write never clears).
      ChromeTrace::arm_output(std::string());
      std::string err;
      if (!ChromeTrace::write(cli_.get("trace-out"), &err)) {
        std::cerr << "error: " << err << "\n";
        rc = rc == 0 ? 1 : rc;
      }
    }
    EventLog::finish(reason == robust::StopReason::None
                         ? "ok"
                         : robust::to_string(robust::run_status_for(reason)));
    cli_.warn_unrecognized(std::cerr);
    if (rc == 0 && (reason == robust::StopReason::Budget ||
                    reason == robust::StopReason::Injected)) {
      rc = robust::kExitDegraded;
    }
    return rc;
  }

 private:
  const Cli& cli_;
  RunReport report_;
  robust::FaultPlan plan_;
  bool robust_active_ = false;
  // Scope order matters: the budget/inject scopes must outlive any engine
  // call the harness makes and unwind before the members they reference.
  std::optional<robust::InjectScope> inject_scope_;
  std::optional<robust::Budget> budget_;
  std::optional<robust::BudgetScope> budget_scope_;
  std::optional<robust::DeadlineWatchdog> watchdog_;
};

/// Suite selection: --circuits=a,b,c overrides; --full includes the largest
/// entries; the default keeps the whole binary in the tens-of-seconds range.
inline std::vector<std::string> select_circuits(const Cli& cli,
                                                std::vector<std::string> defaults) {
  if (cli.has("circuits")) {
    std::vector<std::string> out;
    for (const std::string& s : split(cli.get("circuits"), ',')) {
      if (!s.empty()) out.push_back(s);
    }
    return out;
  }
  if (cli.has("full")) {
    std::vector<std::string> out;
    for (const auto& e : benchmark_suite()) out.push_back(e.name);
    return out;
  }
  return defaults;
}

/// Redundancy-removal options matched to the verify mode: the proof modes
/// (`--verify=sat|both`) also let the SAT fault miter finish what PODEM
/// aborts, so removal reaches a proven-irredundant result. Sim keeps the
/// historical PODEM-only behaviour (and therefore the historical tables).
inline RedundancyRemovalOptions bench_rr_options(VerifyMode mode) {
  RedundancyRemovalOptions opt;
  opt.sat_fallback = mode != VerifyMode::Sim;
  return opt;
}

/// The paper starts from irredundant circuits ("irs" prefix): build the
/// named benchmark and remove redundancies.
inline Netlist prepare_irredundant(const std::string& name,
                                   VerifyMode mode = VerifyMode::Sim) {
  Netlist nl = make_benchmark(name);
  remove_redundancies(nl, bench_rr_options(mode));
  nl.set_name("irs_" + name);
  return nl;
}

struct BestOfK {
  Netlist netlist;
  unsigned k = 0;
  ResynthStats stats;
};

/// Runs the procedure at each K and keeps the best result (Procedure 2:
/// fewest gates, then fewest paths; Procedure 3: fewest paths), mirroring
/// the per-circuit K choice reported in Tables 2 and 5.
inline BestOfK best_of_k(const Netlist& base, ResynthObjective objective,
                         const std::vector<unsigned>& ks) {
  BestOfK best;
  bool first = true;
  for (unsigned k : ks) {
    Netlist nl = base;
    ResynthOptions opt;
    opt.objective = objective;
    opt.k = k;
    opt.allow_gate_increase = objective != ResynthObjective::Gates;
    ResynthStats st = resynthesize(nl, opt);
    const bool better =
        objective == ResynthObjective::Gates
            ? (st.gates_after < best.stats.gates_after ||
               (st.gates_after == best.stats.gates_after &&
                st.paths_after < best.stats.paths_after))
            : (st.paths_after < best.stats.paths_after);
    if (first || better) {
      best.netlist = std::move(nl);
      best.k = k;
      best.stats = st;
      first = false;
    }
  }
  return best;
}

/// Reads --verify=sim|sat|both (default sim, the historical behaviour);
/// exits with code 2 on an unrecognised value.
inline VerifyMode bench_verify_mode(const Cli& cli) {
  const std::string v = cli.get("verify", "sim");
  const auto mode = parse_verify_mode(v);
  if (!mode) {
    std::cerr << "error: --verify=" << v << " (expected sim, sat, or both)\n";
    std::exit(2);
  }
  return *mode;
}

/// Sanity net: every harness verifies the transformation preserved the
/// function before reporting numbers. Sim (the default) keeps the historical
/// random/exhaustive check; Sat/Both additionally require a real proof --
/// anything short of one (including a SAT budget blow-out) is fatal.
inline void verify_or_die(const Netlist& a, const Netlist& b, const std::string& what,
                          VerifyMode mode = VerifyMode::Sim) {
  Rng rng(0xC0FFEE);
  // Under --sat=session all verification proofs share one session: circuits
  // that reappear across checks (the resynthesized "best" is verified against
  // the original AND against its redundancy-removed form) keep their
  // encodings, and an unchanged circuit pair closes structurally for free.
  SatSession* session = nullptr;
  if (mode != VerifyMode::Sim && sat_backend() == SatBackend::Session) {
    static SatSession shared;
    session = &shared;
  }
  const auto res = mode == VerifyMode::Sim
                       ? check_equivalent(a, b, rng, /*random_words=*/64)
                       : check_equivalent_mode(a, b, rng, mode,
                                               /*random_words=*/64,
                                               kDefaultExhaustiveLimit,
                                               {kDefaultCecConflicts, 0},
                                               session);
  if (!res.equivalent) {
    std::cerr << "FATAL: " << what << " changed the circuit function ("
              << res.message << ")\n";
    std::exit(1);
  }
  if (mode != VerifyMode::Sim && !res.proven) {
    std::cerr << "FATAL: " << what << " could not be proven equivalent ("
              << res.message << ")\n";
    std::exit(1);
  }
}

}  // namespace compsyn::bench
