// Shared plumbing for the table harnesses: suite selection, the
// "irredundant starting point" preparation step (the paper's circuits are
// irredundant, hence the irs prefix), and best-of-K resynthesis runs.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "atpg/redundancy.hpp"
#include "core/resynth.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "netlist/netlist.hpp"
#include "paths/paths.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace compsyn::bench {

/// Suite selection: --circuits=a,b,c overrides; --full includes the largest
/// entries; the default keeps the whole binary in the tens-of-seconds range.
inline std::vector<std::string> select_circuits(const Cli& cli,
                                                std::vector<std::string> defaults) {
  if (cli.has("circuits")) {
    std::vector<std::string> out;
    for (const std::string& s : split(cli.get("circuits"), ',')) {
      if (!s.empty()) out.push_back(s);
    }
    return out;
  }
  if (cli.has("full")) {
    std::vector<std::string> out;
    for (const auto& e : benchmark_suite()) out.push_back(e.name);
    return out;
  }
  return defaults;
}

/// The paper starts from irredundant circuits ("irs" prefix): build the
/// named benchmark and remove redundancies.
inline Netlist prepare_irredundant(const std::string& name) {
  Netlist nl = make_benchmark(name);
  remove_redundancies(nl);
  nl.set_name("irs_" + name);
  return nl;
}

struct BestOfK {
  Netlist netlist;
  unsigned k = 0;
  ResynthStats stats;
};

/// Runs the procedure at each K and keeps the best result (Procedure 2:
/// fewest gates, then fewest paths; Procedure 3: fewest paths), mirroring
/// the per-circuit K choice reported in Tables 2 and 5.
inline BestOfK best_of_k(const Netlist& base, ResynthObjective objective,
                         const std::vector<unsigned>& ks) {
  BestOfK best;
  bool first = true;
  for (unsigned k : ks) {
    Netlist nl = base;
    ResynthOptions opt;
    opt.objective = objective;
    opt.k = k;
    opt.allow_gate_increase = objective != ResynthObjective::Gates;
    ResynthStats st = resynthesize(nl, opt);
    const bool better =
        objective == ResynthObjective::Gates
            ? (st.gates_after < best.stats.gates_after ||
               (st.gates_after == best.stats.gates_after &&
                st.paths_after < best.stats.paths_after))
            : (st.paths_after < best.stats.paths_after);
    if (first || better) {
      best.netlist = std::move(nl);
      best.k = k;
      best.stats = st;
      first = false;
    }
  }
  return best;
}

/// Sanity net: every harness verifies the transformation preserved the
/// function before reporting numbers.
inline void verify_or_die(const Netlist& a, const Netlist& b, const std::string& what) {
  Rng rng(0xC0FFEE);
  const auto res = check_equivalent(a, b, rng, /*random_words=*/64);
  if (!res.equivalent) {
    std::cerr << "FATAL: " << what << " changed the circuit function ("
              << res.message << ")\n";
    std::exit(1);
  }
}

}  // namespace compsyn::bench
