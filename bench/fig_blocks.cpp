// Figures 1-6: constructs every comparison block / comparison unit the paper
// draws, prints its gate-level structure, and verifies the implemented
// function exhaustively against the interval definition.
//
// Flags: --report=<file>.json   --trace   --jobs=N
#include <iostream>
#include <numeric>

#include "bench/common.hpp"
#include "bench_io/bench_io.hpp"
#include "core/comparison_unit.hpp"
#include "paths/paths.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

ComparisonSpec spec4(std::uint32_t lower, std::uint32_t upper) {
  ComparisonSpec s;
  s.n = 4;
  s.perm = {0, 1, 2, 3};
  s.lower = lower;
  s.upper = upper;
  return s;
}

void show(BenchRun& run, const char* title, const ComparisonSpec& spec) {
  UnitBuildResult r;
  Netlist unit = build_unit_netlist(spec, {}, &r);
  const TruthTable want = spec.to_truth_table();
  bool ok = true;
  for (std::uint32_t m = 0; m < (1u << spec.n); ++m) {
    std::vector<std::uint64_t> pi(spec.n);
    for (unsigned v = 0; v < spec.n; ++v) {
      pi[v] = ((m >> (spec.n - 1 - v)) & 1u) ? ~0ull : 0;
    }
    ok &= ((unit.simulate(pi)[unit.outputs()[0]] & 1ull) != 0) == want.get(m);
  }
  std::cout << "== " << title << " ==\n";
  std::cout << write_bench_string(unit);
  const auto pc = count_paths_clamped(unit);
  std::cout << "equivalent 2-input gates: " << r.equiv_gates
            << "   paths: " << pc.total << "   depth: " << r.depth
            << "   exhaustive check: " << (ok ? "PASS" : "FAIL") << "\n";
  std::cout << "paths per input:";
  for (unsigned v = 0; v < spec.n; ++v) std::cout << " x" << v + 1 << "=" << r.kp[v];
  std::cout << "\n\n";
  Json rec = Json::object();
  rec.set("figure", title);
  rec.set("lower", static_cast<std::uint64_t>(spec.lower));
  rec.set("upper", static_cast<std::uint64_t>(spec.upper));
  rec.set("gates", static_cast<std::uint64_t>(r.equiv_gates));
  rec.set("paths", pc.total);
  rec.set("depth", static_cast<std::uint64_t>(r.depth));
  rec.set("exhaustive_check", ok);
  run.report().add_record("figures", std::move(rec));
  if (!ok) std::exit(1);
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("fig_blocks", cli);
  std::cout << "Comparison blocks and units from Figures 1-6 "
               "(Pomeranz/Reddy DAC'95)\n\n";
  // Figure 1 / Section 3.1 example: L=5, U=10 over 4 inputs.
  show(run, "Figure 1: comparison unit, L=5, U=10", spec4(5, 10));
  // Figure 3(a): >=3 block (U = 15 makes the <=U block trivial).
  show(run, "Figure 3(a): >=3 block", spec4(3, 15));
  // Figure 3(b): >=12 block; trailing zeros drop x3, x4.
  show(run, "Figure 3(b): >=12 block", spec4(12, 15));
  // Figure 3(c): <=12 block (L = 0 makes the >=L block trivial).
  show(run, "Figure 3(c): <=12 block", spec4(0, 12));
  // Figure 3(d): <=3 block; trailing ones drop x3, x4.
  show(run, "Figure 3(d): <=3 block", spec4(0, 3));
  // Figure 4: >=7 unit with merged same-type chain gates.
  show(run, "Figure 4: >=7 unit (AND3 merge)", spec4(7, 15));
  // Figure 5/6: free-variable unit L=11, U=12 (x1 free, L_F=3, U_F=4).
  show(run, "Figure 6: free-variable unit, L=11, U=12", spec4(11, 12));
  std::cout << "All figures verified.\n";
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("fig_blocks", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
