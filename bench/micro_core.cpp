// google-benchmark microbenchmarks for the core kernels (not a paper table;
// useful for tracking the cost of the building blocks).
#include <benchmark/benchmark.h>

#include "core/comparison.hpp"
#include "core/comparison_unit.hpp"
#include "core/resynth.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

void BM_CountPaths(benchmark::State& state) {
  Netlist nl = make_benchmark("syn600");
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_paths(nl).total);
  }
}
BENCHMARK(BM_CountPaths);

void BM_Simulate64Patterns(benchmark::State& state) {
  Netlist nl = make_benchmark("syn600");
  Rng rng(1);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  std::vector<std::uint64_t> values;
  for (auto _ : state) {
    for (auto& w : pi) w = rng.next();
    nl.simulate_into(pi, values);
    benchmark::DoNotOptimize(values.data());
  }
}
BENCHMARK(BM_Simulate64Patterns);

void BM_IdentifyComparisonExact(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  Rng rng(42);
  std::vector<TruthTable> tables;
  for (int i = 0; i < 64; ++i) {
    tables.push_back(
        TruthTable::from_function(n, [&](std::uint32_t) { return rng.flip(); }));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(identify_comparison(tables[i++ & 63]));
  }
}
BENCHMARK(BM_IdentifyComparisonExact)->Arg(4)->Arg(5)->Arg(6);

void BM_IdentifyComparisonSampled(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  Rng rng(42);
  std::vector<TruthTable> tables;
  for (int i = 0; i < 64; ++i) {
    tables.push_back(
        TruthTable::from_function(n, [&](std::uint32_t) { return rng.flip(); }));
  }
  Rng prng(7);
  IdentifyOptions opt;
  opt.exact = false;
  opt.sample_tries = 200;
  opt.rng = &prng;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(identify_comparison(tables[i++ & 63], opt));
  }
}
BENCHMARK(BM_IdentifyComparisonSampled)->Arg(4)->Arg(5)->Arg(6);

void BM_BuildComparisonUnit(benchmark::State& state) {
  ComparisonSpec spec;
  spec.n = 6;
  spec.perm = {0, 1, 2, 3, 4, 5};
  spec.lower = 11;
  spec.upper = 52;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_unit_netlist(spec));
  }
}
BENCHMARK(BM_BuildComparisonUnit);

void BM_FaultSimBlock(benchmark::State& state) {
  Netlist nl = make_benchmark("syn300");
  FaultSimulator sim(nl, enumerate_faults(nl, true));
  Rng rng(3);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  std::uint64_t base = 0;
  for (auto _ : state) {
    for (auto& w : pi) w = rng.next();
    benchmark::DoNotOptimize(sim.simulate_block(pi, base));
    base += 64;
  }
}
BENCHMARK(BM_FaultSimBlock);

void BM_Procedure2(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Netlist nl = make_benchmark("syn150");
    state.ResumeTiming();
    benchmark::DoNotOptimize(procedure2(nl, 5));
  }
}
BENCHMARK(BM_Procedure2)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace compsyn

BENCHMARK_MAIN();
