// Replay-workload benchmark for the serving mode (DESIGN.md §13, §15):
// drives real resynth_serve daemon subprocesses over their Unix sockets,
// replaying the Table 2 suite N rounds at each configured lane count (a
// fresh daemon per config, client concurrency = lane count). Round 0 runs
// against a cold cache (every job executes); rounds >= 1 are pure cache
// hits. Reports jobs/sec and client-observed p50/p95 latency for both
// regimes at every lane count, plus the daemon's own cache counters
// (summed across configs -- each config's tally is deterministic, so the
// sum is too), in compsyn-bench-v2 form.
//
// Flags: --circuits=a,b,c   --rounds=N (default 3)   --k=K (default 5)
//        --lanes=1,2,4 (daemon lane counts; default 1)
//        --daemon-jobs=N (exec pool per lane)   --report=<file>.json
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

#ifndef RESYNTH_SERVE_PATH
#error "RESYNTH_SERVE_PATH must be defined by the build"
#endif

using namespace compsyn;
using namespace compsyn::serve;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// Linear-interpolation percentile over a sorted copy; q in [0,1].
double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double round3(double x) { return std::round(x * 1000.0) / 1000.0; }

struct RegimeStats {
  std::vector<double> latencies_ms;
  double wall_seconds = 0.0;
  std::size_t jobs = 0;
  unsigned lanes = 1;

  Json to_json(const char* regime) const {
    Json j = Json::object();
    j.set("regime", regime);
    j.set("lanes", std::uint64_t{lanes});
    j.set("jobs", static_cast<std::uint64_t>(jobs));
    j.set("wall_seconds", round3(wall_seconds));
    j.set("jobs_per_second",
          round3(wall_seconds > 0 ? static_cast<double>(jobs) / wall_seconds
                                  : 0.0));
    j.set("latency_p50_ms", round3(percentile(latencies_ms, 0.50)));
    j.set("latency_p95_ms", round3(percentile(latencies_ms, 0.95)));
    return j;
  }
};

struct Daemon {
  std::string socket_path;
  std::string pid_path;
  std::string err_path;

  bool start(unsigned daemon_jobs, unsigned lanes) {
    const std::string dir = "/tmp";
    const std::string tag = "compsyn_bench_serve_" +
                            std::to_string(::getpid()) + "_l" +
                            std::to_string(lanes);
    socket_path = dir + "/" + tag + ".sock";
    pid_path = dir + "/" + tag + ".pid";
    err_path = dir + "/" + tag + ".err";
    std::remove(socket_path.c_str());
    const std::string cmd =
        std::string(RESYNTH_SERVE_PATH) + " --socket=" + socket_path +
        " --lanes=" + std::to_string(lanes) +
        " --jobs=" + std::to_string(daemon_jobs) + " 2>" + err_path +
        " & echo $! > " + pid_path;
    if (std::system(cmd.c_str()) != 0) return false;
    for (int waited = 0; waited < 10000; waited += 20) {
      if (path_exists(socket_path)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    std::cerr << "daemon did not come up; stderr:\n" << slurp(err_path);
    return false;
  }
};

int connect_daemon(const std::string& socket_path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one message and reads one reply; exits the benchmark on failure
/// (a daemon that stops answering invalidates every number after it).
Json round_trip(int fd, const Json& msg) {
  std::string err;
  if (!write_message(fd, msg, &err)) {
    std::cerr << "error: send failed: " << err << "\n";
    std::exit(1);
  }
  std::string payload;
  if (read_frame(fd, &payload, &err) != FrameStatus::Ok) {
    std::cerr << "error: no reply: " << err << "\n";
    std::exit(1);
  }
  const std::optional<Json> reply = Json::parse(payload, &err);
  if (!reply.has_value()) {
    std::cerr << "error: bad reply: " << err << "\n";
    std::exit(1);
  }
  return *reply;
}

/// One lane-count configuration replayed against a fresh daemon. Returns
/// false on any job failure; fills cold/warm stats and the daemon's final
/// stats reply.
bool replay_config(const std::vector<std::string>& circuits, unsigned rounds,
                   unsigned k, unsigned daemon_jobs, unsigned lanes,
                   RegimeStats* cold, RegimeStats* warm, Json* stats) {
  Daemon d;
  if (!d.start(daemon_jobs, lanes)) return false;
  cold->lanes = warm->lanes = lanes;
  // Client concurrency matches the lane count: enough in-flight jobs to
  // keep every lane busy, never more than the jobs available.
  const unsigned workers = std::min<unsigned>(
      std::max(1u, lanes), static_cast<unsigned>(circuits.size()));

  for (unsigned r = 0; r < rounds; ++r) {
    RegimeStats& regime = r == 0 ? *cold : *warm;
    std::vector<double> latencies(circuits.size(), 0.0);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    const double round_start = now_seconds();
    auto worker = [&] {
      const int fd = connect_daemon(d.socket_path);
      if (fd < 0) {
        failed.store(true);
        return;
      }
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= circuits.size() || failed.load()) break;
        JobSpec spec;
        spec.id = circuits[i] + ".r" + std::to_string(r);
        spec.circuit = circuits[i];
        spec.k = k;
        const double t0 = now_seconds();
        const Json reply = round_trip(fd, spec.to_json());
        latencies[i] = (now_seconds() - t0) * 1000.0;
        std::string err;
        const std::optional<JobResult> result =
            JobResult::from_json(reply, &err);
        if (!result.has_value() || result->status != "ok") {
          std::cerr << "error: job " << spec.id << " -> " << reply.dump()
                    << "\n";
          failed.store(true);
          break;
        }
        if (result->cache_hit != (r > 0)) {
          std::cerr << "error: job " << spec.id << " cache "
                    << (result->cache_hit ? "hit" : "miss") << " (expected "
                    << (r > 0 ? "hit" : "miss") << ")\n";
          failed.store(true);
          break;
        }
      }
      ::close(fd);
    };
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
    if (failed.load()) return false;
    regime.wall_seconds += now_seconds() - round_start;
    regime.jobs += circuits.size();
    regime.latencies_ms.insert(regime.latencies_ms.end(), latencies.begin(),
                               latencies.end());
    std::cout << "  lanes=" << lanes << " round " << r
              << (r == 0 ? " (cold): " : " (warm): ") << circuits.size()
              << " jobs in " << round3(now_seconds() - round_start) << "s\n";
  }

  const int fd = connect_daemon(d.socket_path);
  if (fd < 0) {
    std::cerr << "error: cannot reconnect to " << d.socket_path << "\n";
    return false;
  }
  Json stats_msg = Json::object();
  stats_msg.set("type", "stats");
  *stats = round_trip(fd, stats_msg);
  Json bye = Json::object();
  bye.set("type", "shutdown");
  round_trip(fd, bye);
  ::close(fd);
  return true;
}

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned rounds =
      std::max(2u, static_cast<unsigned>(cli.get_int("rounds", 3)));
  const unsigned k = static_cast<unsigned>(cli.get_int("k", 5));
  const unsigned daemon_jobs =
      std::max(1, cli.get_int("daemon-jobs", 1));
  std::vector<std::string> circuits = {"c17", "s27",  "add8", "cmp8",
                                       "dec5", "mux4", "alu4"};
  if (cli.has("circuits")) {
    circuits.clear();
    for (const std::string& s : split(cli.get("circuits"), ',')) {
      if (!s.empty()) circuits.push_back(s);
    }
  }
  std::vector<unsigned> lane_counts = {1};
  if (cli.has("lanes")) {
    lane_counts.clear();
    for (const std::string& s : split(cli.get("lanes"), ',')) {
      if (s.empty()) continue;
      lane_counts.push_back(
          static_cast<unsigned>(std::max(1, std::atoi(s.c_str()))));
    }
    if (lane_counts.empty()) lane_counts.push_back(1);
  }

  std::cout << "serve_replay: " << circuits.size() << " circuit(s) x "
            << rounds << " round(s), k=" << k << ", lane sweep {";
  for (std::size_t i = 0; i < lane_counts.size(); ++i) {
    std::cout << (i ? "," : "") << lane_counts[i];
  }
  std::cout << "}, --jobs=" << daemon_jobs << " per lane\n";

  std::vector<RegimeStats> colds, warms;
  Json counters_sum = Json::object();
  double worst_speedup = 1e9;
  for (unsigned lanes : lane_counts) {
    RegimeStats cold, warm;
    Json stats;
    if (!replay_config(circuits, rounds, k, daemon_jobs, lanes, &cold, &warm,
                       &stats)) {
      return 1;
    }
    const double cold_tput =
        cold.wall_seconds > 0
            ? static_cast<double>(cold.jobs) / cold.wall_seconds
            : 0.0;
    const double warm_tput =
        warm.wall_seconds > 0
            ? static_cast<double>(warm.jobs) / warm.wall_seconds
            : 0.0;
    const double speedup = cold_tput > 0 ? warm_tput / cold_tput : 0.0;
    worst_speedup = std::min(worst_speedup, speedup);
    std::cout << "lanes=" << lanes << " cold: " << round3(cold_tput)
              << " jobs/s (p50 " << round3(percentile(cold.latencies_ms, 0.5))
              << "ms, p95 " << round3(percentile(cold.latencies_ms, 0.95))
              << "ms)\n"
              << "lanes=" << lanes << " warm: " << round3(warm_tput)
              << " jobs/s (p50 " << round3(percentile(warm.latencies_ms, 0.5))
              << "ms, p95 " << round3(percentile(warm.latencies_ms, 0.95))
              << "ms)\n"
              << "lanes=" << lanes << " warm/cold throughput: "
              << round3(speedup) << "x\n";
    // Sum the per-config counters: each daemon's tallies are deterministic
    // for this fixed workload, so the sweep total is too.
    const auto accumulate = [&](const char* name, const char* stats_key) {
      const Json* v = stats.find(stats_key);
      const Json* prev = counters_sum.find(name);
      counters_sum.set(name, (prev != nullptr ? prev->as_u64() : 0) +
                                 (v != nullptr ? v->as_u64() : 0));
    };
    accumulate("serve.jobs.received", "jobs_received");
    accumulate("serve.jobs.served", "jobs_served");
    accumulate("serve.jobs.executed", "jobs_executed");
    accumulate("serve.jobs.shed", "jobs_shed");
    accumulate("serve.cache.hits", "cache_hits");
    accumulate("serve.cache.misses", "cache_misses");
    accumulate("serve.cache.collisions", "cache_collisions");
    accumulate("serve.cache.evictions", "cache_evictions");
    accumulate("serve.wal.replayed", "wal_replayed");
    accumulate("serve.watchdog.fires", "watchdog_fires");
    colds.push_back(std::move(cold));
    warms.push_back(std::move(warm));
  }

  if (cli.has("report")) {
    Json doc = Json::object();
    doc.set("schema", std::string(kBenchSchemaV2));
    doc.set("name", "serve_replay");
    Json meta = Json::object();
    {
      Json names = Json::array();
      for (const std::string& c : circuits) names.push(c);
      meta.set("circuits", std::move(names));
    }
    {
      Json counts = Json::array();
      for (unsigned lanes : lane_counts) counts.push(std::uint64_t{lanes});
      meta.set("lanes", std::move(counts));
    }
    meta.set("rounds", std::uint64_t{rounds});
    meta.set("k", std::uint64_t{k});
    meta.set("daemon_jobs", std::uint64_t{daemon_jobs});
    meta.set("warm_over_cold_throughput", round3(worst_speedup));
    doc.set("meta", std::move(meta));
    doc.set("spans", Json::array());
    // The daemons' own view of the workload: cache effectiveness counters
    // straight from the stats replies, so bench_diff can gate on them.
    doc.set("counters", std::move(counters_sum));
    Json runs = Json::array();
    for (std::size_t i = 0; i < colds.size(); ++i) {
      runs.push(colds[i].to_json("cold"));
      runs.push(warms[i].to_json("warm"));
    }
    doc.set("runs", std::move(runs));

    std::ofstream os(cli.get("report"), std::ios::binary | std::ios::trunc);
    doc.write(os, 2);
    os << "\n";
    if (!os.good()) {
      std::cerr << "error: cannot write " << cli.get("report") << "\n";
      return 1;
    }
    std::cout << "wrote " << cli.get("report") << "\n";
  }
  cli.warn_unrecognized(std::cerr);
  // The cross-job cache is the whole point of serving mode; a warm replay
  // that is not decisively faster than cold means it is broken -- at every
  // lane count.
  if (worst_speedup < 1.5) {
    std::cerr << "FAIL: warm throughput only " << round3(worst_speedup)
              << "x cold (expected >= 1.5x)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return run_main(argc, argv); }
