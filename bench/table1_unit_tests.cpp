// Table 1: the robust two-pattern test set for the Figure 6 comparison unit
// (L=11, U=12). Prints one row per path delay fault in the paper's waveform
// notation (000 / 111 stable, 0x1 rising, 1x0 falling) and validates every
// test against the robust waveform algebra. Also re-checks the Section 3.3
// claim: every path delay fault of the unit is robustly testable.
//
// Flags: --report=<file>.json   --trace   --jobs=N
#include <iostream>
#include <numeric>

#include "bench/common.hpp"
#include "core/unit_testgen.hpp"
#include "delay/robust.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

std::string wave_str(bool v1, bool v2) {
  if (v1 == v2) return v1 ? "111" : "000";
  return v1 ? "1x0" : "0x1";
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table1_unit_tests", cli);
  ComparisonSpec spec;
  spec.n = 4;
  spec.perm = {0, 1, 2, 3};
  spec.lower = 11;  // 1011: x1 free, L_F = 011 = 3
  spec.upper = 12;  // 1100: U_F = 100 = 4
  UnitTestSet set = generate_unit_tests(spec);

  std::cout << "Table 1: robust test set for the comparison unit with "
               "L=11, U=12 (Figure 6)\n\n";
  Table t({"fault (path, transition)", "x1", "x2", "x3", "x4", "robust?"});
  std::size_t validated = 0;
  for (const auto& test : set.tests) {
    std::string desc = "path";
    for (NodeId n : test.path.nodes) {
      const Node& nd = set.unit.node(n);
      desc += nd.type == GateType::Input ? (" " + nd.name) : "";
    }
    desc += test.rising ? " 0x1" : " 1x0";
    const bool ok =
        robustly_tests(set.unit, test.path, test.rising, test.v1, test.v2);
    validated += ok;
    t.row().add(desc);
    for (unsigned i = 0; i < 4; ++i) t.add(wave_str(test.v1[i], test.v2[i]));
    t.add(ok ? std::string("yes") : std::string("NO"));
  }
  t.print(std::cout);
  std::cout << "\npath delay faults: " << set.total_faults
            << "   tests generated: " << set.tests.size()
            << "   validated robust: " << validated
            << "   complete: " << (set.complete ? "yes" : "NO") << "\n";
  run.report().set_meta("total_faults", static_cast<std::uint64_t>(set.total_faults));
  run.report().set_meta("tests", static_cast<std::uint64_t>(set.tests.size()));
  run.report().set_meta("validated", static_cast<std::uint64_t>(validated));
  run.report().set_meta("complete", set.complete);
  run.report().add_table("table1", t);
  const int rc = run.finish();
  const bool ok = set.complete && validated == set.tests.size();
  return ok ? rc : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table1_unit_tests", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
