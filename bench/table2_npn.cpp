// NPN-orbit identification memo ablation on the Table 2 suite: the same
// Procedure 2 runs with the orbit tier off and on, netlists asserted
// byte-identical, and the npn_identify_stats() deltas reported per mode.
// The headline metric is the exact-search reduction factor: exact_searches
// counts full exact-engine searches regardless of the toggle, so
// off/on is exactly "searches the orbit tier removed".
//
// Flags: --npn=off|on|both (default both)   --circuits=a,b,c   --k=5,6
//        --verify=sim|sat|both   --report=<file>.json   --trace   --jobs=N
// The stats tallies are process-global relaxed atomics, deterministic at
// --jobs=1; with --jobs>1 the per-mode deltas (and the derived counters)
// depend on work/thread interleaving and are omitted from the report so
// --report output stays a deterministic function of the flags.
#include <map>

#include "bench/common.hpp"
#include "bench_io/bench_io.hpp"
#include "core/comparison.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

struct ModeTotals {
  NpnIdentifyStats stats;              // per-mode delta of the global tallies
  std::uint64_t gates = 0;             // summed over the suite (post best-of-K)
  std::uint64_t paths = 0;
  std::map<std::string, std::string> benches;  // circuit -> .bench text
};

NpnIdentifyStats stats_delta(const NpnIdentifyStats& a, const NpnIdentifyStats& b) {
  NpnIdentifyStats d;
  d.canonicalizations = b.canonicalizations - a.canonicalizations;
  d.orbit_hits = b.orbit_hits - a.orbit_hits;
  d.negative_reuses = b.negative_reuses - a.negative_reuses;
  d.transform_reuses = b.transform_reuses - a.transform_reuses;
  d.positive_fallbacks = b.positive_fallbacks - a.positive_fallbacks;
  d.confirm_rejects = b.confirm_rejects - a.confirm_rejects;
  d.exact_searches = b.exact_searches - a.exact_searches;
  return d;
}

/// best_of_k with the orbit memo forced to one mode (common.hpp's helper
/// keeps the engine defaults; the ablation needs both arms).
BestOfK best_of_k_npn(const Netlist& base, const std::vector<unsigned>& ks,
                      bool npn_memo) {
  BestOfK best;
  bool first = true;
  for (unsigned k : ks) {
    Netlist nl = base;
    ResynthOptions opt;
    opt.objective = ResynthObjective::Gates;
    opt.k = k;
    opt.identify.npn_memo = npn_memo;
    ResynthStats st = resynthesize(nl, opt);
    const bool better = st.gates_after < best.stats.gates_after ||
                        (st.gates_after == best.stats.gates_after &&
                         st.paths_after < best.stats.paths_after);
    if (first || better) {
      best.netlist = std::move(nl);
      best.k = k;
      best.stats = st;
      first = false;
    }
  }
  return best;
}

ModeTotals run_mode(const std::vector<std::string>& circuits,
                    const std::vector<unsigned>& ks, bool npn_memo,
                    VerifyMode verify) {
  // Fresh memo state so each mode starts from the same cold caches and the
  // tier-1 (exact-table) hit stream is identical between the arms. This
  // clears the calling thread's memos, which is the complete state at
  // --jobs=1; worker-thread memos at --jobs>1 are cold per pool anyway.
  clear_exact_identification_memo();
  const NpnIdentifyStats before = npn_identify_stats();
  ModeTotals out;
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    BestOfK best = best_of_k_npn(orig, ks, npn_memo);
    verify_or_die(orig, best.netlist, name + " Procedure 2", verify);
    out.gates += best.netlist.equivalent_gate_count();
    out.paths += count_paths_clamped(best.netlist).total;
    out.benches[name] = write_bench_string(best.netlist.compacted());
  }
  out.stats = stats_delta(before, npn_identify_stats());
  return out;
}

void add_stats_row(Table& t, const std::string& mode, const ModeTotals& m) {
  t.row()
      .add(mode)
      .add(m.stats.exact_searches)
      .add(m.stats.canonicalizations)
      .add(m.stats.orbit_hits)
      .add(m.stats.negative_reuses)
      .add(m.stats.transform_reuses)
      .add(m.stats.positive_fallbacks)
      .add(m.stats.confirm_rejects);
}

Json stats_json(const ModeTotals& m) {
  Json rec = Json::object();
  rec.set("exact_searches", m.stats.exact_searches);
  rec.set("canonicalizations", m.stats.canonicalizations);
  rec.set("orbit_hits", m.stats.orbit_hits);
  rec.set("negative_reuses", m.stats.negative_reuses);
  rec.set("transform_reuses", m.stats.transform_reuses);
  rec.set("positive_fallbacks", m.stats.positive_fallbacks);
  rec.set("confirm_rejects", m.stats.confirm_rejects);
  rec.set("suite_gates", m.gates);
  rec.set("suite_paths", m.paths);
  return rec;
}

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table2_npn", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const std::string npn_arg = cli.get("npn", "both");
  if (npn_arg != "off" && npn_arg != "on" && npn_arg != "both") {
    std::cerr << "error: --npn=" << npn_arg << " (expected off, on, or both)\n";
    return 2;
  }
  const auto circuits = select_circuits(
      cli, {"c17", "s27", "add8", "cmp8", "dec5", "mux4", "alu4", "syn150",
            "syn300", "syn600", "syn1000"});
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  const bool deterministic_stats = cli.get_int("jobs", 1) == 1;
  run.report().set_meta("k", cli.get("k", "5,6"));
  run.report().set_meta("npn", npn_arg);
  {
    Json names = Json::array();
    for (const std::string& c : circuits) names.push(c);
    run.report().set_meta("circuits", std::move(names));
  }

  std::cout << "Table 2 suite: exact identification with the NPN-orbit memo "
            << (npn_arg == "both" ? "off vs on" : npn_arg) << "\n\n";

  std::map<std::string, ModeTotals> modes;
  if (npn_arg != "on") modes["off"] = run_mode(circuits, ks, false, verify);
  if (npn_arg != "off") modes["on"] = run_mode(circuits, ks, true, verify);

  // The memo must be invisible in results: with both arms present, every
  // per-circuit netlist (and therefore the suite gate/path totals) must be
  // byte-identical between them.
  if (modes.count("off") && modes.count("on")) {
    for (const std::string& name : circuits) {
      if (modes["off"].benches[name] != modes["on"].benches[name]) {
        std::cerr << "FATAL: " << name
                  << ": netlist differs between --npn=off and --npn=on\n";
        return 1;
      }
    }
    std::cout << "netlists byte-identical between modes: yes\n\n";
  }

  if (!deterministic_stats) {
    std::cout << "(--jobs>1: per-mode identification stats depend on thread "
                 "interleaving and are omitted)\n";
    return run.finish();
  }

  Table t({"npn memo", "exact searches", "canonicalize", "orbit hits",
           "neg reuse", "xform reuse", "pos fallback", "confirm rej"});
  for (const auto& [mode, totals] : modes) add_stats_row(t, mode, totals);
  t.print(std::cout);

  if (modes.count("off") && modes.count("on")) {
    const double off = static_cast<double>(modes["off"].stats.exact_searches);
    const double on = static_cast<double>(modes["on"].stats.exact_searches);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.2f", on > 0 ? off / on : 0.0);
    std::cout << "\nexact-search reduction factor (off/on): " << buf << "x\n";
    run.report().set_meta("exact_search_reduction", std::string(buf));
  }

  for (const auto& [mode, totals] : modes) {
    Json rec = stats_json(totals);
    rec.set("mode", mode);
    run.report().add_record("npn_modes", std::move(rec));
    // Mode-tagged registry counters so bench_diff --strict-counters gates
    // the ablation in CI: any drift in how much search the orbit tier
    // removes shows up as a counter mismatch between two runs.
    const std::string prefix = "bench.npn." + mode + ".";
    Counters::incr(prefix + "exact_searches", totals.stats.exact_searches);
    Counters::incr(prefix + "orbit_hits", totals.stats.orbit_hits);
    Counters::incr(prefix + "canonicalizations",
                   totals.stats.canonicalizations);
  }
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table2_npn", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
