// Table 2: Procedure 2 (gate reduction) followed by redundancy removal.
// Columns as in the paper: circuit(K); equivalent 2-input gates for the
// original, modified, and redundancy-removed circuits; paths likewise.
//
// Flags: --circuits=a,b,c   --full   --k=5,6 (Ks to try)
//        --verify=sim|sat|both (equivalence-check backend, default sim)
//        --report=<file>.json   --trace   --jobs=N   (see bench/common.hpp)
#include "bench/common.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table2_proc2", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits = select_circuits(
      cli, {"c17", "s27", "add8", "cmp8", "dec5", "mux4", "alu4", "syn150",
            "syn300", "syn600", "syn1000"});
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("k", cli.get("k", "5,6"));
  {
    Json names = Json::array();
    for (const std::string& c : circuits) names.push(c);
    run.report().set_meta("circuits", std::move(names));
  }

  std::cout << "Table 2: Results of Procedure 2 (reduce gates) + redundancy removal\n\n";
  Table t({"circuit(K)", "2inp orig", "2inp modif", "2inp red.rem", "paths orig",
           "paths modif", "paths red.rem"});
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    run.add_circuit("original", orig);
    const std::uint64_t g0 = orig.equivalent_gate_count();
    const std::uint64_t p0 = count_paths_clamped(orig).total;

    BestOfK best = best_of_k(orig, ResynthObjective::Gates, ks);
    verify_or_die(orig, best.netlist, name + " Procedure 2", verify);
    const std::uint64_t g1 = best.netlist.equivalent_gate_count();
    const std::uint64_t p1 = count_paths_clamped(best.netlist).total;

    // Redundancy removal afterwards, as in Section 5 (only has an effect
    // when the modification created redundant faults).
    Netlist rr = best.netlist;
    const auto rr_stats = remove_redundancies(rr, bench_rr_options(verify));
    verify_or_die(best.netlist, rr, name + " redundancy removal", verify);
    const std::uint64_t g2 = rr.equivalent_gate_count();
    const std::uint64_t p2 = count_paths_clamped(rr).total;

    t.row()
        .add("irs_" + name + " (" + std::to_string(best.k) + ")")
        .add(g0)
        .add(g1)
        .add(rr_stats.removed ? std::to_string(g2) : std::string("-"))
        .add_commas(p0)
        .add_commas(p1)
        .add(rr_stats.removed ? with_commas(p2) : std::string("-"));
  }
  t.print(std::cout);
  std::cout << "\n(\"-\" means no redundant stuck-at faults were found after "
               "Procedure 2, as in the paper's blank entries.)\n";
  run.report().add_table("table2", t);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table2_proc2", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
