// Table 3: comparison with RAMBO_C [1]. For each circuit: original gates and
// paths, the RAR baseline's gates and paths (typically fewer gates but MORE
// paths, as the paper reports for RAMBO_C), and Procedure 2 applied on top
// of the RAR result (recovering paths while trimming a few more gates).
//
// Flags: --circuits=a,b,c  --k=5,6  --adds=N (RAR addition budget)
//        --verify=sim|sat|both (equivalence-check backend, default sim)
//        --report=<file>.json   --trace   --jobs=N
#include "bench/common.hpp"
#include "rar/rar.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table3_rambo", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits =
      select_circuits(cli, {"cmp8", "alu4", "syn150", "syn300", "syn600"});
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("k", cli.get("k", "5,6"));

  std::cout << "Table 3: Comparison with the RAMBO_C-style baseline [1]\n\n";
  Table t({"circuit", "2inp orig", "paths orig", "2inp RAR", "paths RAR", "K",
           "2inp RAR+P2", "paths RAR+P2"});
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    run.add_circuit("original", orig);

    Netlist rar = orig;
    RarOptions ropt;
    ropt.max_adds = static_cast<unsigned>(cli.get_u64("adds", 20));
    ropt.seed = 7;
    rar_optimize(rar, ropt);
    verify_or_die(orig, rar, name + " RAR", verify);

    BestOfK best = best_of_k(rar, ResynthObjective::Gates, ks);
    verify_or_die(rar, best.netlist, name + " RAR+Proc2", verify);

    t.row()
        .add("irs_" + name)
        .add(orig.equivalent_gate_count())
        .add_commas(count_paths_clamped(orig).total)
        .add(rar.equivalent_gate_count())
        .add_commas(count_paths_clamped(rar).total)
        .add(static_cast<std::uint64_t>(best.k))
        .add(best.netlist.equivalent_gate_count())
        .add_commas(count_paths_clamped(best.netlist).total);
  }
  t.print(std::cout);
  run.report().add_table("table3", t);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table3_rambo", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
