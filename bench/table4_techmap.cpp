// Table 4: technology mapping. (a) original circuits vs Procedure 2;
// (b) RAR-baseline circuits vs RAR + Procedure 2. For each version we report
// mapped literals (total cell area) and gates on the longest path.
//
// Flags: --circuits=a,b,c  --k=5,6  --adds=N
//        --verify=sim|sat|both (equivalence-check backend, default sim)
//        --report=<file>.json   --trace   --jobs=N
#include "bench/common.hpp"
#include "rar/rar.hpp"
#include "techmap/techmap.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table4_techmap", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits =
      select_circuits(cli, {"cmp8", "alu4", "syn150", "syn300", "syn600"});
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("k", cli.get("k", "5,6"));

  std::cout << "Table 4(a): technology mapping, original vs Procedure 2\n\n";
  Table ta({"circuit", "lits orig", "longest orig", "lits Proc2", "longest Proc2"});
  std::vector<Netlist> originals;
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    run.add_circuit("original", orig);
    const TechmapResult m0 = technology_map(orig);
    BestOfK p2 = best_of_k(orig, ResynthObjective::Gates, ks);
    verify_or_die(orig, p2.netlist, name + " Procedure 2", verify);
    const TechmapResult m1 = technology_map(p2.netlist);
    ta.row()
        .add("irs_" + name)
        .add(m0.area)
        .add(static_cast<std::uint64_t>(m0.longest_path))
        .add(m1.area)
        .add(static_cast<std::uint64_t>(m1.longest_path));
    originals.push_back(std::move(orig));
  }
  ta.print(std::cout);

  std::cout << "\nTable 4(b): technology mapping, RAR baseline vs RAR + Procedure 2\n\n";
  Table tb({"circuit", "lits RAR", "longest RAR", "lits RAR+P2", "longest RAR+P2"});
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    Netlist rar = originals[i];
    RarOptions ropt;
    ropt.max_adds = static_cast<unsigned>(cli.get_u64("adds", 20));
    ropt.seed = 7;
    rar_optimize(rar, ropt);
    verify_or_die(originals[i], rar, circuits[i] + " RAR", verify);
    const TechmapResult m0 = technology_map(rar);
    BestOfK p2 = best_of_k(rar, ResynthObjective::Gates, ks);
    verify_or_die(rar, p2.netlist, circuits[i] + " RAR+Proc2", verify);
    const TechmapResult m1 = technology_map(p2.netlist);
    tb.row()
        .add("irs_" + circuits[i])
        .add(m0.area)
        .add(static_cast<std::uint64_t>(m0.longest_path))
        .add(m1.area)
        .add(static_cast<std::uint64_t>(m1.longest_path));
  }
  tb.print(std::cout);
  run.report().add_table("table4a", ta);
  run.report().add_table("table4b", tb);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table4_techmap", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
