// Table 5: Procedure 3 (path reduction). Columns as in the paper: circuit(K),
// inputs, outputs, equivalent 2-input gates (orig/modif), paths (orig/modif).
// Gate count may increase -- Procedure 3 has no gate objective.
//
// Flags: --circuits=a,b,c   --full   --k=5,6
//        --verify=sim|sat|both (equivalence-check backend, default sim)
//        --report=<file>.json   --trace   --jobs=N
#include "bench/common.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table5_proc3", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits = select_circuits(
      cli, {"c17", "s27", "add8", "cmp8", "dec5", "mux4", "alu4", "syn150",
            "syn300", "syn600", "syn1000"});
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("k", cli.get("k", "5,6"));

  std::cout << "Table 5: Results of Procedure 3 (reduce paths)\n\n";
  Table t({"circuit(K)", "inp", "out", "2inp orig", "2inp modif", "paths orig",
           "paths modif"});
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    run.add_circuit("original", orig);
    BestOfK best = best_of_k(orig, ResynthObjective::Paths, ks);
    verify_or_die(orig, best.netlist, name + " Procedure 3", verify);
    t.row()
        .add("irs_" + name + " (" + std::to_string(best.k) + ")")
        .add(static_cast<std::uint64_t>(orig.inputs().size()))
        .add(static_cast<std::uint64_t>(orig.outputs().size()))
        .add(orig.equivalent_gate_count())
        .add(best.netlist.equivalent_gate_count())
        .add_commas(count_paths_clamped(orig).total)
        .add_commas(count_paths_clamped(best.netlist).total);
  }
  t.print(std::cout);
  run.report().add_table("table5", t);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table5_proc3", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
