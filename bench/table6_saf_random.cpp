// Table 6: random-pattern testability for stuck-at faults, original vs
// modified (Procedure 2 + redundancy removal). Both circuits receive the
// SAME seeded pattern stream; the paper's observation to reproduce is that
// the number of remaining faults and the last effective pattern do not
// deteriorate after the modification.
//
// Flags: --circuits=a,b,c  --patterns=N (default 2^20; the paper used 3e7)
//        --k=5,6  --seed=S  --verify=sim|sat|both
//        --report=<file>.json  --trace  --jobs=N
#include "bench/common.hpp"
#include "faults/fault_sim.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table6_saf_random", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits = select_circuits(
      cli, {"c17", "s27", "add8", "cmp8", "alu4", "syn150", "syn300", "syn600"});
  const std::uint64_t max_patterns = cli.get_u64("patterns", 1ull << 20);
  const std::uint64_t seed = cli.get_u64("seed", 12345);
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("k", cli.get("k", "5,6"));
  run.report().set_meta("patterns", max_patterns);
  run.report().set_meta("seed", seed);

  std::cout << "Table 6: random-pattern stuck-at testability (" << max_patterns
            << " patterns, seed " << seed << ")\n\n";
  Table t({"circuit", "faults", "remain", "eff.patt", "faults mod", "remain mod",
           "eff.patt mod"});
  for (const std::string& name : circuits) {
    Netlist orig = prepare_irredundant(name, verify);
    run.add_circuit("original", orig);
    BestOfK p2 = best_of_k(orig, ResynthObjective::Gates, ks);
    Netlist modified = p2.netlist;
    remove_redundancies(modified, bench_rr_options(verify));
    verify_or_die(orig, modified, name + " Proc2+red.rem", verify);
    run.add_circuit("modified", modified);

    Rng r1(seed), r2(seed);  // identical pattern streams
    const auto a = random_saf_experiment(orig, r1, max_patterns);
    const auto b = random_saf_experiment(modified, r2, max_patterns);
    t.row()
        .add("irs_" + name)
        .add(static_cast<std::uint64_t>(a.total_faults))
        .add(static_cast<std::uint64_t>(a.remaining))
        .add_commas(a.last_effective_pattern)
        .add(static_cast<std::uint64_t>(b.total_faults))
        .add(static_cast<std::uint64_t>(b.remaining))
        .add_commas(b.last_effective_pattern);
  }
  t.print(std::cout);
  std::cout << "\n(Collapsed fault universes; both columns use the same "
               "pattern stream.)\n";
  run.report().add_table("table6", t);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table6_saf_random", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
