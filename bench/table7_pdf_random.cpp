// Table 7: robust path-delay-fault detection by random vector pairs on four
// versions of one circuit: original, Procedure 2 (+red.rem), the RAR
// baseline, and RAR + Procedure 2. As in the paper, random pairs are applied
// until the coverage has not changed for a window of consecutive pairs; we
// report the last effective pair and detected/total fault counts.
//
// The paper's headline: the modification removes mostly UNTESTABLE path
// delay faults, so "detected" stays (or rises) while "total" drops -- the
// robust coverage ratio increases.
//
// Flags: --circuit=name (default syn300)  --window=N (default 20000)
//        --pairs=N (default 2e6)  --seed=S  --k=5,6  --adds=N
//        --verify=sim|sat|both  --report=<file>.json  --trace  --jobs=N
#include "bench/common.hpp"
#include "delay/nonenum.hpp"
#include "delay/robust.hpp"
#include "rar/rar.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table7_pdf_random", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const std::string name = cli.get("circuit", "syn300");
  const std::uint64_t window = cli.get_u64("window", 20000);
  const std::uint64_t max_pairs = cli.get_u64("pairs", 2000000);
  const std::uint64_t seed = cli.get_u64("seed", 999);
  std::vector<unsigned> ks;
  for (const std::string& s : split(cli.get("k", "5,6"), ',')) {
    if (!s.empty()) ks.push_back(static_cast<unsigned>(std::stoul(s)));
  }
  run.report().set_meta("circuit", name);
  run.report().set_meta("window", window);
  run.report().set_meta("pairs", max_pairs);
  run.report().set_meta("seed", seed);
  run.report().set_meta("k", cli.get("k", "5,6"));

  Netlist orig = prepare_irredundant(name, verify);
  run.add_circuit("original", orig);

  Netlist proc2 = best_of_k(orig, ResynthObjective::Gates, ks).netlist;
  remove_redundancies(proc2, bench_rr_options(verify));
  verify_or_die(orig, proc2, "Proc2", verify);

  Netlist rar = orig;
  RarOptions ropt;
  ropt.max_adds = static_cast<unsigned>(cli.get_u64("adds", 20));
  ropt.seed = 7;
  rar_optimize(rar, ropt);
  verify_or_die(orig, rar, "RAR", verify);

  Netlist rar_p2 = best_of_k(rar, ResynthObjective::Gates, ks).netlist;
  remove_redundancies(rar_p2, bench_rr_options(verify));
  verify_or_die(rar, rar_p2, "RAR+Proc2", verify);
  run.add_circuit("proc2", proc2);
  run.add_circuit("rar", rar);
  run.add_circuit("rar+proc2", rar_p2);

  std::cout << "Table 7: robust path-delay-fault detection by random pairs in irs_"
            << name << " (window " << window << ", seed " << seed << ")\n\n";
  Table t({"version", "eff", "det", "faults", "coverage%"});
  struct Row {
    const char* label;
    const Netlist* nl;
  } rows[] = {
      {"original", &orig},
      {"Proc2", &proc2},
      {"RAMBO-like", &rar},
      {"RAMBO-like+Proc2", &rar_p2},
  };
  for (const Row& row : rows) {
    Rng rng(seed);  // identical pair stream for every version
    const auto res = random_robust_pdf(*row.nl, rng, window, max_pairs);
    t.row()
        .add(row.label)
        .add_commas(res.last_effective_pair)
        .add_commas(res.detected)
        .add_commas(res.total_faults)
        .add(100.0 * static_cast<double>(res.detected) /
                 static_cast<double>(res.total_faults == 0 ? 1 : res.total_faults),
             2);
  }
  t.print(std::cout);

  // The [8]-style non-enumerative bounds (what the paper's tooling uses when
  // the path count forbids per-path bookkeeping), on a shorter pair budget.
  const std::uint64_t est_pairs = cli.get_u64("est-pairs", 20000);
  std::cout << "\nNon-enumerative coverage bounds ([8]-style, " << est_pairs
            << " pairs):\n\n";
  Table e({"version", "lower", "upper", "faults"});
  for (const Row& row : rows) {
    Rng rng(seed);
    const auto res = random_nonenum_pdf(*row.nl, rng, est_pairs);
    e.row()
        .add(row.label)
        .add_commas(res.lower)
        .add_commas(res.upper)
        .add_commas(res.total_faults);
  }
  e.print(std::cout);
  run.report().add_table("table7", t);
  run.report().add_table("nonenum", e);
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table7_pdf_random", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
