// Guided-ATPG strategy comparison on the Table 6 suite: the same random-TPG
// front end feeds each strategy variant's PODEM, and the resulting pattern
// sets go through static compaction. Reported per circuit and variant:
// pattern counts, fault coverage, PODEM calls, and backtracks.
//
//   base  -- legacy backtrace/frontier, index fault order (the seed engine)
//   level -- level-guided backtrace/frontier, fanout-cone fault order
//   scoap -- SCOAP-guided backtrace/frontier, hard-first fault order
//
// Invariants asserted FATAL (DESIGN.md §16):
//   * replaying each compacted pattern set re-detects byte-exactly the
//     faults the uncompacted set detected (every run);
//   * under --backtracks=0 (unlimited budget), all variants produce the
//     identical per-fault Detected/Untestable verdict vector. The default
//     finite budget instead permits Aborted faults, where variants may
//     legitimately differ in which faults they resolve.
// Wall time lives in the report spans and per-run records only -- stdout and
// the bench.atpg.* counters are deterministic and jobs-invariant, so two
// runs gate cleanly under `bench_diff --strict-counters` (CI perf-smoke).
//
//   $ ./table_atpg
//   $ ./table_atpg --circuits=c17,s27,add8 --rtpg=weighted --report=r.json
#include <chrono>
#include <cstdio>
#include <map>

#include "atpg/compact.hpp"
#include "atpg/guided.hpp"
#include "bench/common.hpp"
#include "util/table.hpp"

using namespace compsyn;
using namespace compsyn::bench;

namespace {

struct VariantSpec {
  const char* name;
  AtpgStrategy strategy;
  FaultOrderPolicy order;
};

constexpr VariantSpec kVariants[] = {
    {"base", {BacktracePolicy::Legacy, FrontierPolicy::Legacy},
     FaultOrderPolicy::Index},
    {"level", {BacktracePolicy::Level, FrontierPolicy::Level},
     FaultOrderPolicy::Cone},
    {"scoap", {BacktracePolicy::Scoap, FrontierPolicy::Scoap},
     FaultOrderPolicy::HardFirst},
};

struct VariantTotals {
  std::uint64_t patterns = 0;
  std::uint64_t compacted = 0;
  std::uint64_t podem_calls = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t detected = 0;
  std::uint64_t untestable = 0;
  std::uint64_t aborted = 0;
};

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double coverage_pct(std::size_t detected, std::size_t total) {
  return total == 0 ? 100.0
                    : 100.0 * static_cast<double>(detected) /
                          static_cast<double>(total);
}

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  BenchRun run("table_atpg", cli);
  const VerifyMode verify = bench_verify_mode(cli);
  const auto circuits = select_circuits(
      cli, {"c17", "s27", "add8", "cmp8", "alu4", "syn150", "syn300", "syn600"});

  // Default abort budget: the per-fault limit is where search-order guidance
  // pays off (an exhaustive redundancy proof costs the same tree under any
  // order). --backtracks=0 switches to the unlimited verdict-complete mode,
  // which additionally FATALs if the strategy variants ever disagree on a
  // single per-fault verdict.
  GuidedAtpgOptions base_opt;
  base_opt.backtrack_limit = cli.get_u64("backtracks", 2500);
  base_opt.rtpg.seed = cli.get_u64("seed", base_opt.rtpg.seed);
  base_opt.rtpg.max_patterns = cli.get_u64("rtpg-patterns", 2048);
  const std::string rtpg_str = cli.get("rtpg", "uniform");
  const auto rtpg_variant = parse_rtpg_variant(rtpg_str);
  if (!rtpg_variant) {
    std::cerr << "error: --rtpg=" << rtpg_str
              << " (expected uniform, weighted, or toggle)\n";
    return 2;
  }
  base_opt.rtpg.variant = *rtpg_variant;

  run.report().set_meta("rtpg", rtpg_str);
  run.report().set_meta("rtpg_patterns", base_opt.rtpg.max_patterns);
  run.report().set_meta("backtracks", base_opt.backtrack_limit);
  {
    Json names = Json::array();
    for (const std::string& c : circuits) names.push(c);
    run.report().set_meta("circuits", std::move(names));
  }

  std::cout << "Guided ATPG on the Table 6 suite (rtpg=" << rtpg_str
            << ", backtrack budget="
            << (base_opt.backtrack_limit == 0
                    ? std::string("unlimited")
                    : std::to_string(base_opt.backtrack_limit))
            << ")\n\n";

  Table t({"circuit", "variant", "faults", "cov %", "red", "rtpg pat",
           "podem", "backtracks", "patterns", "compacted"});
  std::map<std::string, VariantTotals> totals;
  bool verdicts_identical = true;

  for (const std::string& name : circuits) {
    Netlist nl = prepare_irredundant(name, verify);
    std::vector<AtpgStatus> reference_status;
    for (const VariantSpec& v : kVariants) {
      GuidedAtpgOptions opt = base_opt;
      opt.strategy = v.strategy;
      opt.order = v.order;
      const std::uint64_t t0 = now_ms();
      const GuidedAtpgResult g = guided_atpg(nl, opt);
      const CompactionResult comp =
          compact_patterns(nl, g.faults, g.patterns, {opt.fill_seed});
      const std::uint64_t wall_ms = now_ms() - t0;

      // Compaction invariant: the kept subset re-detects byte-exactly the
      // faults the full filled set detected.
      if (replay_detect(nl, g.faults, comp.patterns) != comp.detected) {
        std::cerr << "FATAL: " << name << "/" << v.name
                  << ": compacted patterns lost coverage\n";
        return 1;
      }
      // Verdict invariant: at an unlimited backtrack budget the per-fault
      // Detected/Untestable vector is strategy-invariant.
      if (base_opt.backtrack_limit == 0) {
        if (reference_status.empty()) {
          reference_status = g.status;
        } else if (g.status != reference_status) {
          std::cerr << "FATAL: " << name << "/" << v.name
                    << ": verdict set differs from base strategy\n";
          verdicts_identical = false;
          return 1;
        }
      }

      t.row()
          .add(name)
          .add(v.name)
          .add(static_cast<std::uint64_t>(g.faults.size()))
          .add(coverage_pct(g.detected, g.faults.size()), 2)
          .add(static_cast<std::uint64_t>(g.untestable))
          .add(g.rtpg.patterns_kept)
          .add(g.podem_calls)
          .add(g.backtracks)
          .add(static_cast<std::uint64_t>(g.patterns.size()))
          .add(static_cast<std::uint64_t>(comp.patterns.size()));

      VariantTotals& tot = totals[v.name];
      tot.patterns += g.patterns.size();
      tot.compacted += comp.patterns.size();
      tot.podem_calls += g.podem_calls;
      tot.backtracks += g.backtracks;
      tot.detected += g.detected;
      tot.untestable += g.untestable;
      tot.aborted += g.aborted;

      Json rec = Json::object();
      rec.set("circuit", name);
      rec.set("variant", std::string(v.name));
      rec.set("faults", static_cast<std::uint64_t>(g.faults.size()));
      rec.set("detected", static_cast<std::uint64_t>(g.detected));
      rec.set("untestable", static_cast<std::uint64_t>(g.untestable));
      rec.set("aborted", static_cast<std::uint64_t>(g.aborted));
      rec.set("rtpg_patterns", g.rtpg.patterns_kept);
      rec.set("podem_calls", g.podem_calls);
      rec.set("backtracks", g.backtracks);
      rec.set("patterns", static_cast<std::uint64_t>(g.patterns.size()));
      rec.set("compacted", static_cast<std::uint64_t>(comp.patterns.size()));
      rec.set("wall_ms", wall_ms);
      run.report().add_record("runs", std::move(rec));
    }
  }
  t.print(std::cout);

  if (base_opt.backtrack_limit == 0 && verdicts_identical) {
    std::cout << "\nverdict sets identical across variants: yes\n";
  }

  Table s({"variant", "patterns", "compacted", "podem calls", "backtracks",
           "detected", "red", "abort"});
  for (const VariantSpec& v : kVariants) {
    const VariantTotals& tot = totals[v.name];
    s.row()
        .add(v.name)
        .add(tot.patterns)
        .add(tot.compacted)
        .add(tot.podem_calls)
        .add(tot.backtracks)
        .add(tot.detected)
        .add(tot.untestable)
        .add(tot.aborted);
    const std::string prefix = std::string("bench.atpg.") + v.name + ".";
    Counters::incr(prefix + "patterns", tot.patterns);
    Counters::incr(prefix + "compacted", tot.compacted);
    Counters::incr(prefix + "podem_calls", tot.podem_calls);
    Counters::incr(prefix + "backtracks", tot.backtracks);
    Counters::incr(prefix + "detected", tot.detected);
    Counters::incr(prefix + "untestable", tot.untestable);
  }
  std::cout << "\n";
  s.print(std::cout);

  const VariantTotals& base = totals["base"];
  const VariantTotals& scoap = totals["scoap"];
  char buf[64];
  if (scoap.backtracks > 0) {
    std::snprintf(buf, sizeof buf, "%.2f",
                  static_cast<double>(base.backtracks) /
                      static_cast<double>(scoap.backtracks));
    std::cout << "\nbacktrack reduction (base/scoap): " << buf << "x\n";
    run.report().set_meta("backtrack_reduction", std::string(buf));
  } else {
    std::cout << "\nbacktrack reduction (base/scoap): " << base.backtracks
              << " -> 0\n";
    run.report().set_meta("backtrack_reduction",
                          std::string("inf"));
  }
  if (scoap.compacted > 0) {
    std::snprintf(buf, sizeof buf, "%.2f",
                  static_cast<double>(scoap.patterns) /
                      static_cast<double>(scoap.compacted));
    std::cout << "compaction ratio (scoap patterns/compacted): " << buf
              << "x\n";
    run.report().set_meta("compaction_ratio", std::string(buf));
  }
  return run.finish();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("table_atpg", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
