file(REMOVE_RECURSE
  "CMakeFiles/fig_blocks.dir/fig_blocks.cpp.o"
  "CMakeFiles/fig_blocks.dir/fig_blocks.cpp.o.d"
  "fig_blocks"
  "fig_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
