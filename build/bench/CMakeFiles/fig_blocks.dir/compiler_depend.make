# Empty compiler generated dependencies file for fig_blocks.
# This may be replaced when dependencies are built.
