file(REMOVE_RECURSE
  "CMakeFiles/table1_unit_tests.dir/table1_unit_tests.cpp.o"
  "CMakeFiles/table1_unit_tests.dir/table1_unit_tests.cpp.o.d"
  "table1_unit_tests"
  "table1_unit_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_unit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
