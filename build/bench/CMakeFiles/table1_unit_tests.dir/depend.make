# Empty dependencies file for table1_unit_tests.
# This may be replaced when dependencies are built.
