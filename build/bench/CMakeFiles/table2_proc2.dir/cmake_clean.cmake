file(REMOVE_RECURSE
  "CMakeFiles/table2_proc2.dir/table2_proc2.cpp.o"
  "CMakeFiles/table2_proc2.dir/table2_proc2.cpp.o.d"
  "table2_proc2"
  "table2_proc2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_proc2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
