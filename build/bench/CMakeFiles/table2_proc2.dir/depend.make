# Empty dependencies file for table2_proc2.
# This may be replaced when dependencies are built.
