file(REMOVE_RECURSE
  "CMakeFiles/table3_rambo.dir/table3_rambo.cpp.o"
  "CMakeFiles/table3_rambo.dir/table3_rambo.cpp.o.d"
  "table3_rambo"
  "table3_rambo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rambo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
