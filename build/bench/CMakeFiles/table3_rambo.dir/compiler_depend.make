# Empty compiler generated dependencies file for table3_rambo.
# This may be replaced when dependencies are built.
