file(REMOVE_RECURSE
  "CMakeFiles/table4_techmap.dir/table4_techmap.cpp.o"
  "CMakeFiles/table4_techmap.dir/table4_techmap.cpp.o.d"
  "table4_techmap"
  "table4_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
