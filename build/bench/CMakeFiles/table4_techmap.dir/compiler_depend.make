# Empty compiler generated dependencies file for table4_techmap.
# This may be replaced when dependencies are built.
