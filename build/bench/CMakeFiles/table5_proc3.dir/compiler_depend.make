# Empty compiler generated dependencies file for table5_proc3.
# This may be replaced when dependencies are built.
