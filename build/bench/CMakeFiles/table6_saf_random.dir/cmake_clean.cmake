file(REMOVE_RECURSE
  "CMakeFiles/table6_saf_random.dir/table6_saf_random.cpp.o"
  "CMakeFiles/table6_saf_random.dir/table6_saf_random.cpp.o.d"
  "table6_saf_random"
  "table6_saf_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_saf_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
