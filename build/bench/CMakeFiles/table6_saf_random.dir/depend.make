# Empty dependencies file for table6_saf_random.
# This may be replaced when dependencies are built.
