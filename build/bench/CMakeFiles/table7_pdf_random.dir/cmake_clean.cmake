file(REMOVE_RECURSE
  "CMakeFiles/table7_pdf_random.dir/table7_pdf_random.cpp.o"
  "CMakeFiles/table7_pdf_random.dir/table7_pdf_random.cpp.o.d"
  "table7_pdf_random"
  "table7_pdf_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_pdf_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
