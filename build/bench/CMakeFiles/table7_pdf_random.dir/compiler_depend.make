# Empty compiler generated dependencies file for table7_pdf_random.
# This may be replaced when dependencies are built.
