file(REMOVE_RECURSE
  "CMakeFiles/adder_optimizer.dir/adder_optimizer.cpp.o"
  "CMakeFiles/adder_optimizer.dir/adder_optimizer.cpp.o.d"
  "adder_optimizer"
  "adder_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adder_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
