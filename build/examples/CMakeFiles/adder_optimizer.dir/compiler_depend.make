# Empty compiler generated dependencies file for adder_optimizer.
# This may be replaced when dependencies are built.
