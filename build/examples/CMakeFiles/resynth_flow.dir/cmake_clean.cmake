file(REMOVE_RECURSE
  "CMakeFiles/resynth_flow.dir/resynth_flow.cpp.o"
  "CMakeFiles/resynth_flow.dir/resynth_flow.cpp.o.d"
  "resynth_flow"
  "resynth_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resynth_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
