# Empty dependencies file for resynth_flow.
# This may be replaced when dependencies are built.
