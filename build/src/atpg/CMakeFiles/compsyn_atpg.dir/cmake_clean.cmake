file(REMOVE_RECURSE
  "CMakeFiles/compsyn_atpg.dir/podem.cpp.o"
  "CMakeFiles/compsyn_atpg.dir/podem.cpp.o.d"
  "CMakeFiles/compsyn_atpg.dir/redundancy.cpp.o"
  "CMakeFiles/compsyn_atpg.dir/redundancy.cpp.o.d"
  "libcompsyn_atpg.a"
  "libcompsyn_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
