file(REMOVE_RECURSE
  "libcompsyn_atpg.a"
)
