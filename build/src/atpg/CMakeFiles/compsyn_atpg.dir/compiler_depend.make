# Empty compiler generated dependencies file for compsyn_atpg.
# This may be replaced when dependencies are built.
