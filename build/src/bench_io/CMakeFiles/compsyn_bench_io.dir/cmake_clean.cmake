file(REMOVE_RECURSE
  "CMakeFiles/compsyn_bench_io.dir/bench_io.cpp.o"
  "CMakeFiles/compsyn_bench_io.dir/bench_io.cpp.o.d"
  "libcompsyn_bench_io.a"
  "libcompsyn_bench_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_bench_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
