file(REMOVE_RECURSE
  "libcompsyn_bench_io.a"
)
