# Empty dependencies file for compsyn_bench_io.
# This may be replaced when dependencies are built.
