
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comparison.cpp" "src/core/CMakeFiles/compsyn_core.dir/comparison.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/comparison.cpp.o.d"
  "/root/repo/src/core/comparison_unit.cpp" "src/core/CMakeFiles/compsyn_core.dir/comparison_unit.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/comparison_unit.cpp.o.d"
  "/root/repo/src/core/cones.cpp" "src/core/CMakeFiles/compsyn_core.dir/cones.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/cones.cpp.o.d"
  "/root/repo/src/core/multi_unit.cpp" "src/core/CMakeFiles/compsyn_core.dir/multi_unit.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/multi_unit.cpp.o.d"
  "/root/repo/src/core/resynth.cpp" "src/core/CMakeFiles/compsyn_core.dir/resynth.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/resynth.cpp.o.d"
  "/root/repo/src/core/sdc.cpp" "src/core/CMakeFiles/compsyn_core.dir/sdc.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/sdc.cpp.o.d"
  "/root/repo/src/core/truth_table.cpp" "src/core/CMakeFiles/compsyn_core.dir/truth_table.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/truth_table.cpp.o.d"
  "/root/repo/src/core/two_level.cpp" "src/core/CMakeFiles/compsyn_core.dir/two_level.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/two_level.cpp.o.d"
  "/root/repo/src/core/unit_testgen.cpp" "src/core/CMakeFiles/compsyn_core.dir/unit_testgen.cpp.o" "gcc" "src/core/CMakeFiles/compsyn_core.dir/unit_testgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/compsyn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/compsyn_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/delay/CMakeFiles/compsyn_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
