file(REMOVE_RECURSE
  "CMakeFiles/compsyn_core.dir/comparison.cpp.o"
  "CMakeFiles/compsyn_core.dir/comparison.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/comparison_unit.cpp.o"
  "CMakeFiles/compsyn_core.dir/comparison_unit.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/cones.cpp.o"
  "CMakeFiles/compsyn_core.dir/cones.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/multi_unit.cpp.o"
  "CMakeFiles/compsyn_core.dir/multi_unit.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/resynth.cpp.o"
  "CMakeFiles/compsyn_core.dir/resynth.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/sdc.cpp.o"
  "CMakeFiles/compsyn_core.dir/sdc.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/truth_table.cpp.o"
  "CMakeFiles/compsyn_core.dir/truth_table.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/two_level.cpp.o"
  "CMakeFiles/compsyn_core.dir/two_level.cpp.o.d"
  "CMakeFiles/compsyn_core.dir/unit_testgen.cpp.o"
  "CMakeFiles/compsyn_core.dir/unit_testgen.cpp.o.d"
  "libcompsyn_core.a"
  "libcompsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
