file(REMOVE_RECURSE
  "libcompsyn_core.a"
)
