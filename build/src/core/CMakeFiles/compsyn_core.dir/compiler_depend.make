# Empty compiler generated dependencies file for compsyn_core.
# This may be replaced when dependencies are built.
