file(REMOVE_RECURSE
  "CMakeFiles/compsyn_delay.dir/algebra.cpp.o"
  "CMakeFiles/compsyn_delay.dir/algebra.cpp.o.d"
  "CMakeFiles/compsyn_delay.dir/nonenum.cpp.o"
  "CMakeFiles/compsyn_delay.dir/nonenum.cpp.o.d"
  "CMakeFiles/compsyn_delay.dir/robust.cpp.o"
  "CMakeFiles/compsyn_delay.dir/robust.cpp.o.d"
  "libcompsyn_delay.a"
  "libcompsyn_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
