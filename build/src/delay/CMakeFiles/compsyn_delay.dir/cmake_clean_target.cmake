file(REMOVE_RECURSE
  "libcompsyn_delay.a"
)
