# Empty compiler generated dependencies file for compsyn_delay.
# This may be replaced when dependencies are built.
