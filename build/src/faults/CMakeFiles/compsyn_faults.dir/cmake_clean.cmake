file(REMOVE_RECURSE
  "CMakeFiles/compsyn_faults.dir/fault.cpp.o"
  "CMakeFiles/compsyn_faults.dir/fault.cpp.o.d"
  "CMakeFiles/compsyn_faults.dir/fault_sim.cpp.o"
  "CMakeFiles/compsyn_faults.dir/fault_sim.cpp.o.d"
  "libcompsyn_faults.a"
  "libcompsyn_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
