file(REMOVE_RECURSE
  "libcompsyn_faults.a"
)
