# Empty dependencies file for compsyn_faults.
# This may be replaced when dependencies are built.
