file(REMOVE_RECURSE
  "CMakeFiles/compsyn_gen.dir/circuits.cpp.o"
  "CMakeFiles/compsyn_gen.dir/circuits.cpp.o.d"
  "libcompsyn_gen.a"
  "libcompsyn_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
