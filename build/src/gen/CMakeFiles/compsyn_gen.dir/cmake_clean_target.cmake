file(REMOVE_RECURSE
  "libcompsyn_gen.a"
)
