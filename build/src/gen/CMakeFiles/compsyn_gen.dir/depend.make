# Empty dependencies file for compsyn_gen.
# This may be replaced when dependencies are built.
