file(REMOVE_RECURSE
  "CMakeFiles/compsyn_netlist.dir/equivalence.cpp.o"
  "CMakeFiles/compsyn_netlist.dir/equivalence.cpp.o.d"
  "CMakeFiles/compsyn_netlist.dir/netlist.cpp.o"
  "CMakeFiles/compsyn_netlist.dir/netlist.cpp.o.d"
  "libcompsyn_netlist.a"
  "libcompsyn_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
