file(REMOVE_RECURSE
  "libcompsyn_netlist.a"
)
