# Empty dependencies file for compsyn_netlist.
# This may be replaced when dependencies are built.
