file(REMOVE_RECURSE
  "CMakeFiles/compsyn_paths.dir/paths.cpp.o"
  "CMakeFiles/compsyn_paths.dir/paths.cpp.o.d"
  "libcompsyn_paths.a"
  "libcompsyn_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
