file(REMOVE_RECURSE
  "libcompsyn_paths.a"
)
