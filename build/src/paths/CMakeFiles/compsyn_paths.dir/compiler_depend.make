# Empty compiler generated dependencies file for compsyn_paths.
# This may be replaced when dependencies are built.
