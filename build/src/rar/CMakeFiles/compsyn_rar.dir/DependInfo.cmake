
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rar/factor.cpp" "src/rar/CMakeFiles/compsyn_rar.dir/factor.cpp.o" "gcc" "src/rar/CMakeFiles/compsyn_rar.dir/factor.cpp.o.d"
  "/root/repo/src/rar/rar.cpp" "src/rar/CMakeFiles/compsyn_rar.dir/rar.cpp.o" "gcc" "src/rar/CMakeFiles/compsyn_rar.dir/rar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/atpg/CMakeFiles/compsyn_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/compsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/compsyn_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsyn_util.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/compsyn_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/delay/CMakeFiles/compsyn_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/compsyn_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
