file(REMOVE_RECURSE
  "CMakeFiles/compsyn_rar.dir/factor.cpp.o"
  "CMakeFiles/compsyn_rar.dir/factor.cpp.o.d"
  "CMakeFiles/compsyn_rar.dir/rar.cpp.o"
  "CMakeFiles/compsyn_rar.dir/rar.cpp.o.d"
  "libcompsyn_rar.a"
  "libcompsyn_rar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_rar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
