file(REMOVE_RECURSE
  "libcompsyn_rar.a"
)
