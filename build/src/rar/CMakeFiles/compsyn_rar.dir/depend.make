# Empty dependencies file for compsyn_rar.
# This may be replaced when dependencies are built.
