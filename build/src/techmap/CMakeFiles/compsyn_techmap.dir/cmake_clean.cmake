file(REMOVE_RECURSE
  "CMakeFiles/compsyn_techmap.dir/techmap.cpp.o"
  "CMakeFiles/compsyn_techmap.dir/techmap.cpp.o.d"
  "libcompsyn_techmap.a"
  "libcompsyn_techmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_techmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
