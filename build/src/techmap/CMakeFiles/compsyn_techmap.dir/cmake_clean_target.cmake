file(REMOVE_RECURSE
  "libcompsyn_techmap.a"
)
