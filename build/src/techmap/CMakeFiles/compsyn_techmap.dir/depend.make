# Empty dependencies file for compsyn_techmap.
# This may be replaced when dependencies are built.
