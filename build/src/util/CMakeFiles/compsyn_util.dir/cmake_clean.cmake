file(REMOVE_RECURSE
  "CMakeFiles/compsyn_util.dir/cli.cpp.o"
  "CMakeFiles/compsyn_util.dir/cli.cpp.o.d"
  "CMakeFiles/compsyn_util.dir/rng.cpp.o"
  "CMakeFiles/compsyn_util.dir/rng.cpp.o.d"
  "CMakeFiles/compsyn_util.dir/strings.cpp.o"
  "CMakeFiles/compsyn_util.dir/strings.cpp.o.d"
  "CMakeFiles/compsyn_util.dir/table.cpp.o"
  "CMakeFiles/compsyn_util.dir/table.cpp.o.d"
  "libcompsyn_util.a"
  "libcompsyn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compsyn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
