file(REMOVE_RECURSE
  "libcompsyn_util.a"
)
