# Empty compiler generated dependencies file for compsyn_util.
# This may be replaced when dependencies are built.
