file(REMOVE_RECURSE
  "CMakeFiles/comparison_unit_test.dir/comparison_unit_test.cpp.o"
  "CMakeFiles/comparison_unit_test.dir/comparison_unit_test.cpp.o.d"
  "comparison_unit_test"
  "comparison_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparison_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
