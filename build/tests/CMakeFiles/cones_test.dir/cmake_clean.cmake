file(REMOVE_RECURSE
  "CMakeFiles/cones_test.dir/cones_test.cpp.o"
  "CMakeFiles/cones_test.dir/cones_test.cpp.o.d"
  "cones_test"
  "cones_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cones_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
