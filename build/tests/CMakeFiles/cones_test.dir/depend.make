# Empty dependencies file for cones_test.
# This may be replaced when dependencies are built.
