file(REMOVE_RECURSE
  "CMakeFiles/factor_test.dir/factor_test.cpp.o"
  "CMakeFiles/factor_test.dir/factor_test.cpp.o.d"
  "factor_test"
  "factor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
