file(REMOVE_RECURSE
  "CMakeFiles/multi_unit_test.dir/multi_unit_test.cpp.o"
  "CMakeFiles/multi_unit_test.dir/multi_unit_test.cpp.o.d"
  "multi_unit_test"
  "multi_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
