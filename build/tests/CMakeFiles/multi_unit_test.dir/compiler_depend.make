# Empty compiler generated dependencies file for multi_unit_test.
# This may be replaced when dependencies are built.
