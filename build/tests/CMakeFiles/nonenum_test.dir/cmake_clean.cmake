file(REMOVE_RECURSE
  "CMakeFiles/nonenum_test.dir/nonenum_test.cpp.o"
  "CMakeFiles/nonenum_test.dir/nonenum_test.cpp.o.d"
  "nonenum_test"
  "nonenum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonenum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
