# Empty dependencies file for nonenum_test.
# This may be replaced when dependencies are built.
