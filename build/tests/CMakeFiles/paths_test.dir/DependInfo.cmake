
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paths_test.cpp" "tests/CMakeFiles/paths_test.dir/paths_test.cpp.o" "gcc" "tests/CMakeFiles/paths_test.dir/paths_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rar/CMakeFiles/compsyn_rar.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/compsyn_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/compsyn_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/techmap/CMakeFiles/compsyn_techmap.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/compsyn_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_io/CMakeFiles/compsyn_bench_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/compsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/delay/CMakeFiles/compsyn_delay.dir/DependInfo.cmake"
  "/root/repo/build/src/paths/CMakeFiles/compsyn_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/compsyn_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/compsyn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
