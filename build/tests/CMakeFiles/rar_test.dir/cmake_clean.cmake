file(REMOVE_RECURSE
  "CMakeFiles/rar_test.dir/rar_test.cpp.o"
  "CMakeFiles/rar_test.dir/rar_test.cpp.o.d"
  "rar_test"
  "rar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
