# Empty compiler generated dependencies file for rar_test.
# This may be replaced when dependencies are built.
