file(REMOVE_RECURSE
  "CMakeFiles/resynth_test.dir/resynth_test.cpp.o"
  "CMakeFiles/resynth_test.dir/resynth_test.cpp.o.d"
  "resynth_test"
  "resynth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resynth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
