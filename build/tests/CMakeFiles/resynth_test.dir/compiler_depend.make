# Empty compiler generated dependencies file for resynth_test.
# This may be replaced when dependencies are built.
