file(REMOVE_RECURSE
  "CMakeFiles/sdc_test.dir/sdc_test.cpp.o"
  "CMakeFiles/sdc_test.dir/sdc_test.cpp.o.d"
  "sdc_test"
  "sdc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
