# Empty dependencies file for sdc_test.
# This may be replaced when dependencies are built.
