file(REMOVE_RECURSE
  "CMakeFiles/unit_stuckat_test.dir/unit_stuckat_test.cpp.o"
  "CMakeFiles/unit_stuckat_test.dir/unit_stuckat_test.cpp.o.d"
  "unit_stuckat_test"
  "unit_stuckat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_stuckat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
