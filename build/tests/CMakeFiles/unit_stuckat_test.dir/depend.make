# Empty dependencies file for unit_stuckat_test.
# This may be replaced when dependencies are built.
