file(REMOVE_RECURSE
  "CMakeFiles/unit_testgen_test.dir/unit_testgen_test.cpp.o"
  "CMakeFiles/unit_testgen_test.dir/unit_testgen_test.cpp.o.d"
  "unit_testgen_test"
  "unit_testgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unit_testgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
