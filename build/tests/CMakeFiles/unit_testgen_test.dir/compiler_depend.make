# Empty compiler generated dependencies file for unit_testgen_test.
# This may be replaced when dependencies are built.
