// Domain scenario: a datapath block (magnitude comparator + decoder glue,
// the kind of control logic the paper's intro motivates) is cleaned up for
// testability: Procedure 3 trims paths, a test set for every comparison unit
// used in the rewrite is emitted, and the block's delay/area are mapped.
//
//   $ ./adder_optimizer [--bits=8]
#include <iostream>

#include "core/resynth.hpp"
#include "core/unit_testgen.hpp"
#include "delay/robust.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "techmap/techmap.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "robust/guard.hpp"

using namespace compsyn;

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  const unsigned bits = static_cast<unsigned>(cli.get_u64("bits", 8));

  // A comparator-driven select path: cmp(a, b) steering an adder's output
  // through decoder-style gating (built from the library's generators).
  Netlist block = make_comparator(bits);
  std::cout << "datapath block: " << bits << "-bit magnitude comparator\n";
  std::cout << "  gates: " << block.equivalent_gate_count()
            << "  paths: " << format_path_total(count_paths_clamped(block).total)
            << "  depth: " << block.depth() << "\n";

  Netlist before = block.compacted();
  ResynthStats st = procedure3(block, 6);
  std::cout << "Procedure 3: paths " << st.paths_before << " -> "
            << st.paths_after << ", gates " << st.gates_before << " -> "
            << st.gates_after << ", depth now " << block.depth() << "\n";

  Rng rng(2);
  auto eq = check_equivalent(before, block, rng);
  std::cout << "function preserved: " << (eq.equivalent ? "yes" : "NO") << "\n";

  // Technology view (Table 4 style).
  const TechmapResult m0 = technology_map(before);
  const TechmapResult m1 = technology_map(block);
  std::cout << "technology mapping: literals " << m0.area << " -> " << m1.area
            << ", longest path " << m0.longest_path << " -> "
            << m1.longest_path << "\n";

  // Robust PDF coverage before/after under the same random pairs.
  Rng ra(77), rb(77);
  const auto pa = random_robust_pdf(before, ra, 5000, 200000);
  const auto pb = random_robust_pdf(block, rb, 5000, 200000);
  auto pct = [](const PdfExperimentResult& p) {
    return p.total_faults ? 100.0 * static_cast<double>(p.detected) /
                                static_cast<double>(p.total_faults)
                          : 100.0;
  };
  std::cout << "robust PDF coverage: " << pct(pa) << "% (" << pa.detected << "/"
            << pa.total_faults << ") -> " << pct(pb) << "% (" << pb.detected
            << "/" << pb.total_faults << ")\n";

  // Bonus: a ready-made robust test set for a unit the optimizer would plant.
  ComparisonSpec spec;
  spec.n = 4;
  spec.perm = {0, 1, 2, 3};
  spec.lower = 5;
  spec.upper = 10;
  UnitTestSet tests = generate_unit_tests(spec);
  std::cout << "example unit [5,10]: " << tests.tests.size()
            << " robust two-pattern tests cover all " << tests.total_faults
            << " path delay faults (complete: "
            << (tests.complete ? "yes" : "no") << ")\n";
  return eq.equivalent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("adder_optimizer", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
