// Quickstart: build a small circuit with the public API, identify a
// comparison function in it, replace the subcircuit with a comparison unit,
// and verify the result.
//
//   $ ./quickstart
#include <iostream>

#include "bench_io/bench_io.hpp"
#include "core/comparison.hpp"
#include "core/comparison_unit.hpp"
#include "core/resynth.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "robust/guard.hpp"
#include "util/rng.hpp"

using namespace compsyn;

namespace {

int run_main() {
  // 1. Build a circuit: f = the Section 3.1 example function f2, here
  //    implemented wastefully as a two-level SOP.
  Netlist nl("quickstart");
  std::vector<NodeId> y;
  for (int i = 1; i <= 4; ++i) y.push_back(nl.add_input("y" + std::to_string(i)));
  std::vector<NodeId> ny;
  for (NodeId v : y) ny.push_back(nl.add_gate(GateType::Not, {v}));
  // ON minterms {1, 5, 6, 9, 10, 14} of f2(y1..y4).
  std::vector<NodeId> terms;
  for (std::uint32_t m : {1u, 5u, 6u, 9u, 10u, 14u}) {
    std::vector<NodeId> lits;
    for (unsigned v = 0; v < 4; ++v) {
      lits.push_back(((m >> (3 - v)) & 1u) ? y[v] : ny[v]);
    }
    terms.push_back(nl.add_gate(GateType::And, lits));
  }
  NodeId f = nl.add_gate(GateType::Or, terms, "f2");
  nl.mark_output(f);
  std::cout << "original circuit: " << nl.equivalent_gate_count()
            << " equivalent 2-input gates, " << count_paths(nl).total
            << " paths\n";

  // 2. Is f2 a comparison function? (It is: under x1=y4, x2=y3, x3=y2,
  //    x4=y1 its ON-set is the interval [5, 10].)
  TruthTable table = TruthTable::from_function(4, [&](std::uint32_t m) {
    return m == 1 || m == 5 || m == 6 || m == 9 || m == 10 || m == 14;
  });
  auto specs = identify_comparison(table);
  std::cout << "identify_comparison found " << specs.size() << " realisations; "
            << "first: L=" << specs[0].lower << " U=" << specs[0].upper
            << (specs[0].complemented ? " (complemented)" : "") << "\n";

  // 3. Let Procedure 2 rewrite the circuit.
  Netlist before = nl.compacted();
  ResynthOptions opt;
  opt.k = 5;
  opt.cone_slack = 8;      // let cones grow through the wide SOP
  opt.max_cones = 20000;
  ResynthStats stats = resynthesize(nl, opt);
  std::cout << "Procedure 2: " << stats.replacements << " replacement(s), "
            << stats.gates_before << " -> " << stats.gates_after << " gates, "
            << stats.paths_before << " -> " << stats.paths_after << " paths\n";

  // 4. Verify equivalence exhaustively and print the result.
  Rng rng(1);
  auto eq = check_equivalent(before, nl, rng);
  std::cout << "equivalence check: " << (eq.equivalent ? "PASS" : "FAIL")
            << (eq.exhaustive ? " (exhaustive)" : "") << "\n\n";
  std::cout << "resynthesized netlist:\n" << write_bench_string(nl.compacted());
  return eq.equivalent ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("quickstart", argc, argv,
                                     [&] { return run_main(); });
}
