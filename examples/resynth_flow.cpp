// The full paper flow on a benchmark circuit (or a user-supplied .bench
// file): make it irredundant, run Procedure 2 or 3, re-remove redundancies,
// and report gates/paths/testability -- what Section 5 does per circuit.
//
//   $ ./resynth_flow syn300
//   $ ./resynth_flow --proc=3 --k=6 path/to/circuit.bench
//   $ ./resynth_flow --proc=combined --weight-gates=1 --weight-paths=0.25 syn150
//   $ ./resynth_flow --out=result.bench --report=run.json syn150
//   $ ./resynth_flow --verify=sat syn1000   (SAT proof at any input width)
//   $ ./resynth_flow --jobs=8 syn300        (same result, more threads)
#include <fstream>
#include <iostream>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "obs/obs.hpp"
#include "sat/cec.hpp"
#include "obs/report.hpp"
#include "paths/paths.hpp"
#include "util/cli.hpp"

using namespace compsyn;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: resynth_flow [--proc=2|3|combined] [--k=K] "
                 "[--weight-gates=W --weight-paths=W] [--verify=sim|sat|both] "
                 "[--out=file.bench] [--report=file.json] [--trace] "
                 "[--jobs=N] <suite-name | file.bench>\n"
                 "  suite names:";
    for (const auto& e : benchmark_suite()) std::cerr << " " << e.name;
    std::cerr << "\n";
    return 2;
  }
  if (cli.has("report") || cli.has("trace")) obs_set_enabled(true);
  if (cli.has("jobs")) {
    const int j = cli.get_int("jobs", 1);
    if (j < 1) {
      std::cerr << "error: --jobs=" << cli.get("jobs")
                << " (expected a positive integer)\n";
      return 2;
    }
    set_jobs(static_cast<unsigned>(j));
  }
  const std::string verify_str = cli.get("verify", "sim");
  const auto verify = parse_verify_mode(verify_str);
  if (!verify) {
    std::cerr << "error: --verify=" << verify_str
              << " (expected sim, sat, or both)\n";
    return 2;
  }
  RunReport report("resynth_flow");
  // Proof modes also close PODEM's gaps in redundancy removal: aborted
  // faults are re-decided by the SAT fault miter. Sim keeps the historical
  // PODEM-only removal (and its exact output).
  RedundancyRemovalOptions rr_opt;
  rr_opt.sat_fallback = *verify != VerifyMode::Sim;
  const std::string source = cli.positional()[0];
  Netlist nl;
  try {
    nl = source.size() > 6 && source.substr(source.size() - 6) == ".bench"
             ? read_bench_file(source)
             : make_benchmark(source);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "circuit " << nl.name() << ": " << nl.inputs().size()
            << " inputs, " << nl.outputs().size() << " outputs, "
            << nl.equivalent_gate_count() << " equivalent 2-input gates\n";

  auto rr0 = remove_redundancies(nl, rr_opt);
  std::cout << "redundancy removal: " << rr0.removed
            << " substitutions (irredundant start, as in the paper)\n";
  Netlist original = nl.compacted();
  std::cout << "irredundant: " << original.equivalent_gate_count() << " gates, "
            << count_paths(original).total << " paths, depth "
            << original.depth() << "\n";

  const std::string proc = cli.get("proc", "2");
  const unsigned k = static_cast<unsigned>(cli.get_u64("k", 6));
  ResynthStats st;
  if (proc == "combined") {
    // Section 4.3: weighted gate/path objective. Weights default to (1,1);
    // (1,0) recovers Procedure 2's primary criterion, (0,1) Procedure 3's.
    ResynthOptions opt;
    opt.objective = ResynthObjective::Combined;
    opt.k = k;
    opt.weight_gates = cli.get_double("weight-gates", 1.0);
    opt.weight_paths = cli.get_double("weight-paths", 1.0);
    st = resynthesize(nl, opt);
    std::cout << "Combined objective (K=" << k << ", wg=" << opt.weight_gates
              << ", wp=" << opt.weight_paths << "): " << st.replacements
              << " replacements over " << st.passes << " pass(es)\n";
  } else {
    st = proc == "3" ? procedure3(nl, k) : procedure2(nl, k);
    std::cout << "Procedure " << proc << " (K=" << k << "): " << st.replacements
              << " replacements over " << st.passes << " pass(es)\n";
  }
  std::cout << "  gates " << st.gates_before << " -> " << st.gates_after
            << "\n  paths " << st.paths_before << " -> " << st.paths_after
            << "\n";
  for (const ResynthPassRecord& pr : st.history) {
    std::cout << "  pass " << pr.pass << ": " << pr.replacements
              << " replacement(s) -> " << pr.gates << " gates, " << pr.paths
              << " paths\n";
  }

  auto rr1 = remove_redundancies(nl, rr_opt);
  if (rr1.removed) {
    std::cout << "post-resynthesis redundancy removal: " << rr1.removed
              << " substitutions -> " << nl.equivalent_gate_count()
              << " gates, " << count_paths(nl).total << " paths\n";
  } else {
    std::cout << "no redundant stuck-at faults after resynthesis\n";
  }
  std::cout << "depth: " << original.depth() << " -> " << nl.depth() << "\n";

  Rng rng(1);
  auto eq = *verify == VerifyMode::Sim
                ? check_equivalent(original, nl, rng, 128)
                : check_equivalent_mode(original, nl, rng, *verify, 128);
  // Default (sim) wording is unchanged; the SAT modes say what was proved.
  std::string how = eq.exhaustive ? " (proved exhaustively)" : " (random vectors)";
  if (*verify != VerifyMode::Sim && !eq.exhaustive && eq.proven) {
    how = eq.equivalent ? " (proved by SAT)" : " (SAT counterexample)";
  }
  std::cout << "function preserved: " << (eq.equivalent ? "yes" : "NO") << how
            << "\n";

  if (cli.has("out")) {
    std::ofstream os(cli.get("out"));
    write_bench(nl.compacted(), os);
    std::cout << "wrote " << cli.get("out") << "\n";
  }

  int rc = eq.equivalent ? 0 : 1;
  if (cli.has("report")) {
    report.set_meta("circuit", source);
    report.set_meta("proc", proc);
    report.set_meta("k", static_cast<std::uint64_t>(k));
    report.set_meta("gates_before", st.gates_before);
    report.set_meta("gates_after", st.gates_after);
    report.set_meta("paths_before", st.paths_before);
    report.set_meta("paths_after", st.paths_after);
    report.set_meta("function_preserved", eq.equivalent);
    report.set_meta("verify", verify_str);
    report.set_meta("verify_proven", eq.proven);
    for (const ResynthPassRecord& pr : st.history) {
      Json rec = Json::object();
      rec.set("pass", static_cast<std::uint64_t>(pr.pass));
      rec.set("replacements", pr.replacements);
      rec.set("gates", pr.gates);
      rec.set("paths", pr.paths);
      report.add_record("passes", std::move(rec));
    }
    std::string err;
    if (!report.write(cli.get("report"), &err)) {
      std::cerr << "error: " << err << "\n";
      rc = rc ? rc : 1;
    }
  }
  if (cli.has("trace")) {
    std::cout << "\n";
    report.print_summary(std::cout);
  }
  cli.warn_unrecognized(std::cerr);
  return rc;
}
