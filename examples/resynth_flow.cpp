// The full paper flow on a benchmark circuit (or a user-supplied .bench
// file): make it irredundant, run Procedure 2 or 3, re-remove redundancies,
// and report gates/paths/testability -- what Section 5 does per circuit.
//
//   $ ./resynth_flow syn300
//   $ ./resynth_flow --proc=3 --k=6 path/to/circuit.bench
//   $ ./resynth_flow --out=result.bench syn150
#include <fstream>
#include <iostream>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "paths/paths.hpp"
#include "util/cli.hpp"

using namespace compsyn;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: resynth_flow [--proc=2|3] [--k=K] [--out=file.bench] "
                 "<suite-name | file.bench>\n  suite names:";
    for (const auto& e : benchmark_suite()) std::cerr << " " << e.name;
    std::cerr << "\n";
    return 2;
  }
  const std::string source = cli.positional()[0];
  Netlist nl;
  try {
    nl = source.size() > 6 && source.substr(source.size() - 6) == ".bench"
             ? read_bench_file(source)
             : make_benchmark(source);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  std::cout << "circuit " << nl.name() << ": " << nl.inputs().size()
            << " inputs, " << nl.outputs().size() << " outputs, "
            << nl.equivalent_gate_count() << " equivalent 2-input gates\n";

  auto rr0 = remove_redundancies(nl);
  std::cout << "redundancy removal: " << rr0.removed
            << " substitutions (irredundant start, as in the paper)\n";
  Netlist original = nl.compacted();
  std::cout << "irredundant: " << original.equivalent_gate_count() << " gates, "
            << count_paths(original).total << " paths, depth "
            << original.depth() << "\n";

  const int proc = cli.get_int("proc", 2);
  const unsigned k = static_cast<unsigned>(cli.get_u64("k", 6));
  ResynthStats st = proc == 3 ? procedure3(nl, k) : procedure2(nl, k);
  std::cout << "Procedure " << proc << " (K=" << k << "): " << st.replacements
            << " replacements over " << st.passes << " pass(es)\n"
            << "  gates " << st.gates_before << " -> " << st.gates_after
            << "\n  paths " << st.paths_before << " -> " << st.paths_after
            << "\n";

  auto rr1 = remove_redundancies(nl);
  if (rr1.removed) {
    std::cout << "post-resynthesis redundancy removal: " << rr1.removed
              << " substitutions -> " << nl.equivalent_gate_count()
              << " gates, " << count_paths(nl).total << " paths\n";
  } else {
    std::cout << "no redundant stuck-at faults after resynthesis\n";
  }
  std::cout << "depth: " << original.depth() << " -> " << nl.depth() << "\n";

  Rng rng(1);
  auto eq = check_equivalent(original, nl, rng, 128);
  std::cout << "function preserved: " << (eq.equivalent ? "yes" : "NO")
            << (eq.exhaustive ? " (proved exhaustively)" : " (random vectors)")
            << "\n";

  if (cli.has("out")) {
    std::ofstream os(cli.get("out"));
    write_bench(nl.compacted(), os);
    std::cout << "wrote " << cli.get("out") << "\n";
  }
  return eq.equivalent ? 0 : 1;
}
