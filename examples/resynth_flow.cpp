// The full paper flow on a benchmark circuit (or a user-supplied .bench
// file): make it irredundant, run Procedure 2 or 3, re-remove redundancies,
// and report gates/paths/testability -- what Section 5 does per circuit.
//
//   $ ./resynth_flow syn300
//   $ ./resynth_flow --proc=3 --k=6 path/to/circuit.bench
//   $ ./resynth_flow --proc=combined --weight-gates=1 --weight-paths=0.25 syn150
//   $ ./resynth_flow --out=result.bench --report=run.json syn150
//   $ ./resynth_flow --verify=sat syn1000   (SAT proof at any input width)
//   $ ./resynth_flow --jobs=8 syn300        (same result, more threads)
//
// Anytime / robustness controls (DESIGN.md §10):
//   $ ./resynth_flow --budget=50000 syn300      (deterministic tick budget)
//   $ ./resynth_flow --deadline=5 syn1000       (wall-clock watchdog)
//   $ ./resynth_flow --checkpoint=ck.json --budget=50000 syn300
//   $ ./resynth_flow --resume=ck.json --checkpoint=ck.json --budget=50000 syn300
//   $ ./resynth_flow --inject=halt:1 --checkpoint=ck.json syn150   (chaos)
//
// A budget trip degrades the run (best-so-far netlist, every committed
// replacement fully verified, exit 20); SIGINT/SIGTERM/--deadline interrupt
// it (report flushed with "status":"interrupted", exit 130/143/21). A
// checkpointed run killed between passes resumes to a byte-identical final
// netlist and (masked) report.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>

#include "atpg/guided.hpp"
#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/resynth.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "paths/paths.hpp"
#include "robust/checkpoint.hpp"
#include "robust/guard.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"
#include "sat/cec.hpp"
#include "sat/session.hpp"
#include "util/cli.hpp"
#include "util/errors.hpp"

using namespace compsyn;

namespace {

/// Path total for JSON: plain number normally, ">=2^63" once saturated.
Json path_total_json(std::uint64_t total) {
  if (total >= kPathCountSaturated) return Json(format_path_total(total));
  return Json(total);
}

struct FlowConfig {
  std::string source;
  std::string proc;
  unsigned k = 6;
  double weight_gates = 1.0;
  double weight_paths = 1.0;
  std::string verify_str;
  VerifyMode verify = VerifyMode::Sim;
  std::uint64_t budget_limit = 0;     // --budget flag value (0 = none)
  std::string checkpoint_path;        // "" = no checkpoint writing
  std::string resume_path;            // "" = fresh run
  bool robust_active = false;         // any robust flag present
};

ResynthOptions resynth_options(const FlowConfig& cfg) {
  ResynthOptions opt;
  if (cfg.proc == "combined") {
    opt.objective = ResynthObjective::Combined;
    opt.weight_gates = cfg.weight_gates;
    opt.weight_paths = cfg.weight_paths;
  } else if (cfg.proc == "3") {
    opt.objective = ResynthObjective::Paths;
    opt.allow_gate_increase = true;
  } else {
    opt.objective = ResynthObjective::Gates;
  }
  opt.k = cfg.k;
  return opt;
}

/// The slice of ResynthStats a checkpoint carries (the rest is recomputed
/// from the restored netlist when the run finishes).
Json stats_to_json(const ResynthStats& st) {
  Json j = Json::object();
  j.set("gates_before", st.gates_before);
  j.set("paths_before", st.paths_before);
  j.set("passes", static_cast<std::uint64_t>(st.passes));
  j.set("replacements", st.replacements);
  j.set("cones_considered", st.cones_considered);
  j.set("comparison_cones", st.comparison_cones);
  Json hist = Json::array();
  for (const ResynthPassRecord& pr : st.history) {
    Json rec = Json::object();
    rec.set("pass", static_cast<std::uint64_t>(pr.pass));
    rec.set("replacements", pr.replacements);
    rec.set("gates", pr.gates);
    rec.set("paths", pr.paths);
    hist.push(std::move(rec));
  }
  j.set("history", std::move(hist));
  return j;
}

ResynthStats stats_from_json(const Json& j) {
  auto u64 = [&](const char* key) -> std::uint64_t {
    const Json* v = j.find(key);
    if (!v) throw InputError(std::string("checkpoint stats missing '") + key + "'");
    return v->as_u64();
  };
  ResynthStats st;
  st.gates_before = u64("gates_before");
  st.paths_before = u64("paths_before");
  st.passes = static_cast<unsigned>(u64("passes"));
  st.replacements = u64("replacements");
  st.cones_considered = u64("cones_considered");
  st.comparison_cones = u64("comparison_cones");
  const Json* hist = j.find("history");
  if (!hist || !hist->is_array()) {
    throw InputError("checkpoint stats missing 'history'");
  }
  for (std::size_t i = 0; i < hist->size(); ++i) {
    const Json& rec = hist->at(i);
    ResynthPassRecord pr;
    const Json* f = rec.find("pass");
    if (!f) throw InputError("checkpoint pass record missing 'pass'");
    pr.pass = static_cast<unsigned>(f->as_u64());
    f = rec.find("replacements");
    if (!f) throw InputError("checkpoint pass record missing 'replacements'");
    pr.replacements = f->as_u64();
    f = rec.find("gates");
    if (!f) throw InputError("checkpoint pass record missing 'gates'");
    pr.gates = f->as_u64();
    f = rec.find("paths");
    if (!f) throw InputError("checkpoint pass record missing 'paths'");
    pr.paths = f->as_u64();
    st.history.push_back(pr);
  }
  return st;
}

Json counters_to_json() {
  Json j = Json::object();
  for (const CounterStat& c : Counters::counters()) j.set(c.name, c.value);
  return j;
}

/// Re-seeds the obs counters from a checkpoint snapshot so the resumed
/// run's final counter totals equal the uninterrupted run's. (Distribution
/// samples and memo hit/miss rates cannot be replayed; report comparisons
/// mask those.)
void restore_counters(const Json& j) {
  for (const auto& [name, value] : j.items()) {
    Counters::incr(name, value.as_u64());
  }
}

void save_flow_checkpoint(const FlowConfig& cfg, const ResynthStats& st,
                          const std::string& netlist_bench,
                          const std::string& original_bench) {
  robust::FlowCheckpoint cp;
  cp.circuit = cfg.source;
  cp.proc = cfg.proc;
  cp.k = cfg.k;
  cp.weight_gates = cfg.weight_gates;
  cp.weight_paths = cfg.weight_paths;
  cp.verify = cfg.verify_str;
  cp.budget_limit = cfg.budget_limit;
  cp.stage = "resynth";
  cp.passes_done = st.passes;
  cp.ticks = robust::ticks_consumed();
  cp.stopped_degraded = st.status == robust::RunStatus::Degraded;
  cp.netlist_bench = netlist_bench;
  cp.original_bench = original_bench;
  cp.stats = stats_to_json(st);
  cp.counters = counters_to_json();
  std::string err;
  if (!cp.save(cfg.checkpoint_path, &err)) {
    // A lost checkpoint costs resumability, not correctness: warn and run on.
    std::cerr << "warning: checkpoint write failed: " << err << "\n";
  }
}

/// Pass loop used when --checkpoint/--resume is active: one resynthesize()
/// call per pass, a checkpoint cut at every boundary, and the in-memory
/// netlist round-tripped through the same .bench text a resume would load —
/// so the continuation of a checkpointed run and of a resumed run proceed
/// from bit-identical state (DESIGN.md §10). The default flow path keeps
/// the single resynthesize() call and is byte-identical to earlier releases.
ResynthStats run_passes_checkpointed(Netlist& nl, const FlowConfig& cfg,
                                     const std::string& original_bench,
                                     ResynthStats total) {
  ResynthOptions opt = resynth_options(cfg);
  const unsigned max_passes = opt.max_passes;
  opt.max_passes = 1;
  bool fixpoint =
      !total.history.empty() && total.history.back().replacements == 0;
  while (total.passes < max_passes && !fixpoint) {
    if (robust::should_stop()) {
      total.stop_reason = robust::stop_reason();
      total.status = robust::run_status_for(total.stop_reason);
      break;
    }
    const ResynthStats one = resynthesize(nl, opt);
    total.status = one.status;
    total.stop_reason = one.stop_reason;
    if (one.passes == 0) break;  // a stop raced us to the pass boundary
    ++total.passes;
    total.replacements += one.replacements;
    total.cones_considered += one.cones_considered;
    total.comparison_cones += one.comparison_cones;
    ResynthPassRecord rec = one.history.front();
    rec.pass = total.passes;
    total.history.push_back(rec);
    // Interrupted mid-pass: no checkpoint (the pass boundary was never
    // reached); the caller converts the status into a CancelledError.
    if (one.status == robust::RunStatus::Interrupted) break;
    fixpoint = rec.replacements == 0;
    const std::string cur = write_bench_string(nl);
    if (!cfg.checkpoint_path.empty()) {
      save_flow_checkpoint(cfg, total, cur, original_bench);
    }
    nl = read_bench_string(cur, nl.name());
    if (one.status != robust::RunStatus::Complete) break;  // degraded
  }
  total.gates_after = nl.equivalent_gate_count();
  total.paths_after = count_paths_clamped(nl).total;
  return total;
}

int flow_main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: resynth_flow [--proc=2|3|combined] [--k=K] "
                 "[--weight-gates=W --weight-paths=W] [--verify=sim|sat|both] "
                 "[--sat=session|oneshot] "
                 "[--atpg-backtrace=legacy|level|scoap] "
                 "[--atpg-frontier=legacy|level|scoap] "
                 "[--out=file.bench] [--report=file.json] [--trace] "
                 "[--trace-out=trace.json] [--events=log.jsonl] "
                 "[--progress[=SECS]] "
                 "[--jobs=N] [--budget=TICKS] [--deadline=SECONDS] "
                 "[--checkpoint=ck.json] [--resume=ck.json] [--inject=SPEC] "
                 "<suite-name | file.bench>\n"
                 "  suite names:";
    for (const auto& e : benchmark_suite()) std::cerr << " " << e.name;
    std::cerr << "\n";
    return robust::kExitUsage;
  }
  if (cli.has("report") || cli.has("trace")) obs_set_enabled(true);
  // Extended telemetry (DESIGN.md §12): any of these flags turns on the
  // profile-grade samples; with none of them the run is byte-identical to a
  // telemetry-free build.
  if (cli.has("trace-out")) {
    telemetry_set_extended(true);
    ChromeTrace::enable();
    // Armed so a SIGINT/deadline wind-down still flushes the profile.
    ChromeTrace::arm_output(cli.get("trace-out"));
  }
  if (cli.has("events")) {
    telemetry_set_extended(true);
    std::string err;
    if (!EventLog::open(cli.get("events"), "resynth_flow", &err)) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitUsage;
    }
  }
  if (cli.has("progress")) {
    telemetry_set_extended(true);
    const double interval = cli.get_double("progress", 1.0);
    telemetry_set_progress("resynth_flow", interval > 0 ? interval : 1.0);
  }
  if (cli.has("jobs")) {
    const int j = cli.get_int("jobs", 1);
    if (j < 1) {
      std::cerr << "error: --jobs=" << cli.get("jobs")
                << " (expected a positive integer)\n";
      return robust::kExitUsage;
    }
    set_jobs(static_cast<unsigned>(j));
  }
  const std::string verify_str = cli.get("verify", "sim");
  const auto verify = parse_verify_mode(verify_str);
  if (!verify) {
    std::cerr << "error: --verify=" << verify_str
              << " (expected sim, sat, or both)\n";
    return robust::kExitUsage;
  }
  const std::string sat_str = cli.get("sat", "session");
  const auto backend = parse_sat_backend(sat_str);
  if (!backend) {
    std::cerr << "error: --sat=" << sat_str
              << " (expected session or oneshot)\n";
    return robust::kExitUsage;
  }
  set_sat_backend(*backend);

  FlowConfig cfg;
  cfg.source = cli.positional()[0];
  cfg.proc = cli.get("proc", "2");
  cfg.k = static_cast<unsigned>(cli.get_u64("k", 6));
  cfg.weight_gates = cli.get_double("weight-gates", 1.0);
  cfg.weight_paths = cli.get_double("weight-paths", 1.0);
  cfg.verify_str = verify_str;
  cfg.verify = *verify;
  cfg.budget_limit = cli.get_u64("budget", 0);
  cfg.checkpoint_path = cli.get("checkpoint", "");
  cfg.resume_path = cli.get("resume", "");
  const double deadline = cli.get_double("deadline", 0.0);
  cfg.robust_active = cli.has("budget") || cli.has("deadline") ||
                      cli.has("checkpoint") || cli.has("resume") ||
                      cli.has("inject");

  std::optional<robust::FaultPlan> plan;
  if (cli.has("inject")) {
    std::string perr;
    plan = robust::FaultPlan::parse(cli.get("inject"), &perr);
    if (!plan) {
      std::cerr << "error: --inject=" << cli.get("inject") << ": " << perr
                << "\n";
      return robust::kExitUsage;
    }
  }

  // Resume: load and validate before any work, so flag mismatches fail fast.
  robust::FlowCheckpoint ck;
  const bool resumed = !cfg.resume_path.empty();
  if (resumed) {
    std::string err;
    if (!ck.load(cfg.resume_path, &err)) {
      throw InputError("--resume=" + cfg.resume_path + ": " + err);
    }
    if (ck.circuit != cfg.source || ck.proc != cfg.proc || ck.k != cfg.k ||
        ck.weight_gates != cfg.weight_gates ||
        ck.weight_paths != cfg.weight_paths || ck.verify != cfg.verify_str ||
        ck.budget_limit != cfg.budget_limit) {
      throw InputError(
          "--resume=" + cfg.resume_path +
          ": checkpoint was written under different flags (circuit/proc/k/"
          "weights/verify/budget must match for the continuation to be "
          "reproducible)");
    }
  }

  // Budget: the user's --budget, tightened by any scripted budget trip from
  // the fault plan. Installed whenever a robust flag is present so ticks are
  // counted (limit 0 = count only); on resume the consumed ticks carry over.
  std::uint64_t effective_limit = cfg.budget_limit;
  if (plan && plan->budget_trip != 0) {
    effective_limit = effective_limit == 0
                          ? plan->budget_trip
                          : std::min(effective_limit, plan->budget_trip);
  }
  robust::Budget budget(effective_limit, resumed ? ck.ticks : 0);
  std::optional<robust::BudgetScope> budget_scope;
  if (cfg.robust_active) budget_scope.emplace(budget);
  std::optional<robust::InjectScope> inject_scope;
  if (plan) inject_scope.emplace(*plan);
  robust::DeadlineWatchdog watchdog(deadline);

  RunReport report("resynth_flow");
  // Proof modes also close PODEM's gaps in redundancy removal: aborted
  // faults are re-decided by the SAT fault miter. Sim keeps the historical
  // PODEM-only removal (and its exact output).
  RedundancyRemovalOptions rr_opt;
  rr_opt.sat_fallback = cfg.verify != VerifyMode::Sim;
  // Search-order policies for the PODEM behind redundancy removal
  // (DESIGN.md §16). The legacy default keeps stdout and reports
  // byte-identical to earlier releases; non-legacy policies change search
  // order (and which faults exceed the backtrack budget), never the
  // soundness of any committed substitution.
  if (cli.has("atpg-backtrace")) {
    const auto p = parse_backtrace_policy(cli.get("atpg-backtrace"));
    if (!p) {
      std::cerr << "error: --atpg-backtrace=" << cli.get("atpg-backtrace")
                << " (expected legacy, level, or scoap)\n";
      return robust::kExitUsage;
    }
    rr_opt.atpg.strategy.backtrace = *p;
  }
  if (cli.has("atpg-frontier")) {
    const auto p = parse_frontier_policy(cli.get("atpg-frontier"));
    if (!p) {
      std::cerr << "error: --atpg-frontier=" << cli.get("atpg-frontier")
                << " (expected legacy, level, or scoap)\n";
      return robust::kExitUsage;
    }
    rr_opt.atpg.strategy.frontier = *p;
  }
  Netlist nl;
  try {
    nl = cfg.source.size() > 6 &&
                 cfg.source.substr(cfg.source.size() - 6) == ".bench"
             ? read_bench_file(cfg.source)
             : make_benchmark(cfg.source);
  } catch (const InputError&) {
    throw;
  } catch (const std::exception& e) {
    throw InputError(e.what());
  }

  std::cout << "circuit " << nl.name() << ": " << nl.inputs().size()
            << " inputs, " << nl.outputs().size() << " outputs, "
            << nl.equivalent_gate_count() << " equivalent 2-input gates\n";

  // First degraded stage wins the reported stop reason.
  robust::StopReason degraded_reason = robust::StopReason::None;
  auto note_stage = [&](robust::RunStatus s, robust::StopReason r) {
    if (s == robust::RunStatus::Degraded &&
        degraded_reason == robust::StopReason::None) {
      degraded_reason = r;
    }
  };

  const bool ckpt_driver = resumed || !cfg.checkpoint_path.empty();
  Netlist original;
  std::string original_bench;
  ResynthStats st;
  if (resumed) {
    // Skip the already-done stages: restore the netlist, the pre-flow
    // original, the pass stats, and the counter totals from the checkpoint.
    std::cout << "resumed from " << cfg.resume_path << ": " << ck.passes_done
              << " pass(es) done, " << ck.ticks << " ticks consumed\n";
    original_bench = ck.original_bench;
    original = read_bench_string(original_bench, nl.name());
    nl = read_bench_string(ck.netlist_bench, nl.name());
    st = stats_from_json(ck.stats);
    restore_counters(ck.counters);
  } else {
    PhaseScope phase_rr0("redundancy_removal");
    auto rr0 = remove_redundancies(nl, rr_opt);
    if (rr0.status == robust::RunStatus::Interrupted) {
      throw robust::CancelledError(rr0.stop_reason);
    }
    note_stage(rr0.status, rr0.stop_reason);
    std::cout << "redundancy removal: " << rr0.removed
              << " substitutions (irredundant start, as in the paper)\n";
    original = nl.compacted();
    std::cout << "irredundant: " << original.equivalent_gate_count()
              << " gates, "
              << format_path_total(count_paths_clamped(original).total)
              << " paths, depth " << original.depth() << "\n";
    if (ckpt_driver) {
      // Canonicalise through the .bench round-trip a resume performs, and
      // cut the pass-0 boundary checkpoint so a kill during the first pass
      // is resumable without redoing redundancy removal.
      st.gates_before = nl.equivalent_gate_count();
      st.paths_before = count_paths_clamped(nl).total;
      original_bench = write_bench_string(original);
      original = read_bench_string(original_bench, original.name());
      const std::string cur = write_bench_string(nl);
      if (!cfg.checkpoint_path.empty()) {
        save_flow_checkpoint(cfg, st, cur, original_bench);
      }
      nl = read_bench_string(cur, nl.name());
    }
  }

  {
    PhaseScope phase_resynth("resynth");
    if (ckpt_driver) {
      st = run_passes_checkpointed(nl, cfg, original_bench, st);
    } else if (cfg.proc == "combined") {
      // Section 4.3: weighted gate/path objective. Weights default to (1,1);
      // (1,0) recovers Procedure 2's primary criterion, (0,1) Procedure 3's.
      st = resynthesize(nl, resynth_options(cfg));
    } else {
      st = cfg.proc == "3" ? procedure3(nl, cfg.k) : procedure2(nl, cfg.k);
    }
  }
  if (st.status == robust::RunStatus::Interrupted) {
    throw robust::CancelledError(st.stop_reason);
  }
  note_stage(st.status, st.stop_reason);
  if (cfg.proc == "combined") {
    std::cout << "Combined objective (K=" << cfg.k
              << ", wg=" << cfg.weight_gates << ", wp=" << cfg.weight_paths
              << "): " << st.replacements << " replacements over " << st.passes
              << " pass(es)\n";
  } else {
    std::cout << "Procedure " << cfg.proc << " (K=" << cfg.k
              << "): " << st.replacements << " replacements over " << st.passes
              << " pass(es)\n";
  }
  std::cout << "  gates " << st.gates_before << " -> " << st.gates_after
            << "\n  paths " << format_path_total(st.paths_before) << " -> "
            << format_path_total(st.paths_after) << "\n";
  for (const ResynthPassRecord& pr : st.history) {
    std::cout << "  pass " << pr.pass << ": " << pr.replacements
              << " replacement(s) -> " << pr.gates << " gates, "
              << format_path_total(pr.paths) << " paths\n";
  }
  if (st.status == robust::RunStatus::Degraded) {
    std::cout << "resynthesis degraded ("
              << robust::to_string(st.stop_reason) << " after "
              << robust::ticks_consumed()
              << " ticks): best-so-far result, every committed replacement "
                 "verified\n";
  }

  std::optional<PhaseScope> phase_rr1;
  phase_rr1.emplace("redundancy_removal_post");
  auto rr1 = remove_redundancies(nl, rr_opt);
  phase_rr1.reset();
  if (rr1.status == robust::RunStatus::Interrupted) {
    throw robust::CancelledError(rr1.stop_reason);
  }
  note_stage(rr1.status, rr1.stop_reason);
  if (rr1.removed) {
    std::cout << "post-resynthesis redundancy removal: " << rr1.removed
              << " substitutions -> " << nl.equivalent_gate_count()
              << " gates, " << format_path_total(count_paths_clamped(nl).total)
              << " paths\n";
  } else {
    std::cout << "no redundant stuck-at faults after resynthesis\n";
  }
  std::cout << "depth: " << original.depth() << " -> " << nl.depth() << "\n";

  Rng rng(1);
  // Under --sat=session the final proof runs through a local session (the
  // redundancy-removal sessions are scoped to their netlist states).
  std::optional<SatSession> verify_session;
  if (cfg.verify != VerifyMode::Sim && sat_backend() == SatBackend::Session) {
    verify_session.emplace();
  }
  std::optional<PhaseScope> phase_verify;
  phase_verify.emplace("verify");
  auto eq = cfg.verify == VerifyMode::Sim
                ? check_equivalent(original, nl, rng, 128)
                : check_equivalent_mode(original, nl, rng, cfg.verify, 128,
                                        kDefaultExhaustiveLimit,
                                        {kDefaultCecConflicts, 0},
                                        verify_session ? &*verify_session
                                                       : nullptr);
  phase_verify.reset();
  // A cancel that landed during verification leaves eq unreliable (the SAT
  // side may have wound down Unknown); report "interrupted", not a verdict.
  if (robust::cancel_requested()) {
    throw robust::CancelledError(robust::cancel_reason());
  }
  // Default (sim) wording is unchanged; the SAT modes say what was proved.
  std::string how = eq.exhaustive ? " (proved exhaustively)" : " (random vectors)";
  if (cfg.verify != VerifyMode::Sim && !eq.exhaustive && eq.proven) {
    how = eq.equivalent ? " (proved by SAT)" : " (SAT counterexample)";
  }
  std::cout << "function preserved: " << (eq.equivalent ? "yes" : "NO") << how
            << "\n";

  if (cli.has("out")) {
    std::ofstream os(cli.get("out"));
    write_bench(nl.compacted(), os);
    std::cout << "wrote " << cli.get("out") << "\n";
  }

  const bool degraded = degraded_reason != robust::StopReason::None;
  int rc = eq.equivalent ? robust::kExitOk : robust::kExitVerifyFailed;
  if (cli.has("report")) {
    report.set_meta("circuit", cfg.source);
    report.set_meta("proc", cfg.proc);
    report.set_meta("k", static_cast<std::uint64_t>(cfg.k));
    report.set_meta("gates_before", st.gates_before);
    report.set_meta("gates_after", st.gates_after);
    report.set_meta("paths_before", path_total_json(st.paths_before));
    report.set_meta("paths_after", path_total_json(st.paths_after));
    report.set_meta("function_preserved", eq.equivalent);
    report.set_meta("verify", verify_str);
    report.set_meta("verify_proven", eq.proven);
    // Emitted only when a robust flag is in play (or the run actually
    // degraded), so default-flag reports stay byte-identical across releases.
    if (cfg.robust_active || degraded) {
      report.set_meta("status", degraded ? "degraded" : "ok");
      if (degraded) {
        report.set_meta("stop_reason", robust::to_string(degraded_reason));
      }
      report.set_meta("ticks", robust::ticks_consumed());
      if (cfg.budget_limit != 0) report.set_meta("budget", cfg.budget_limit);
    }
    for (const ResynthPassRecord& pr : st.history) {
      Json rec = Json::object();
      rec.set("pass", static_cast<std::uint64_t>(pr.pass));
      rec.set("replacements", pr.replacements);
      rec.set("gates", pr.gates);
      rec.set("paths", path_total_json(pr.paths));
      report.add_record("passes", std::move(rec));
    }
    std::string err;
    if (!report.write(cli.get("report"), &err)) {
      std::cerr << "error: " << err << "\n";
      rc = rc ? rc : robust::kExitVerifyFailed;
    }
  }
  if (cli.has("trace")) {
    std::cout << "\n";
    report.print_summary(std::cout);
  }
  if (cli.has("trace-out")) {
    // Normal completion: disarm the crash-flush path and write the profile.
    ChromeTrace::arm_output(std::string());
    std::string err;
    if (!ChromeTrace::write(cli.get("trace-out"), &err)) {
      std::cerr << "error: " << err << "\n";
      rc = rc ? rc : robust::kExitVerifyFailed;
    }
  }
  EventLog::finish(degraded ? "degraded" : "ok");
  cli.warn_unrecognized(std::cerr);
  if (rc == robust::kExitOk && degraded) rc = robust::kExitDegraded;
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  return robust::guard_main("resynth_flow", argc, argv,
                            [&] { return flow_main(argc, argv); });
}
