// Testability report for a circuit before and after Procedure 2: stuck-at
// ATPG summary (testable / redundant), random-pattern stuck-at coverage, and
// robust path-delay-fault coverage under random vector pairs -- the
// measurements behind Tables 6 and 7, for one circuit, side by side.
//
//   $ ./testability_report syn150
//   $ ./testability_report --patterns=65536 --pairs=100000 cmp8
#include <iostream>

#include "atpg/podem.hpp"
#include "atpg/redundancy.hpp"
#include "core/resynth.hpp"
#include "delay/robust.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "paths/paths.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "robust/guard.hpp"

using namespace compsyn;

namespace {

struct Report {
  std::uint64_t gates, paths;
  AtpgSummary atpg;
  SafExperimentResult saf;
  PdfExperimentResult pdf;
};

Report measure(const Netlist& nl, std::uint64_t patterns, std::uint64_t pairs,
               std::uint64_t seed) {
  Report r;
  r.gates = nl.equivalent_gate_count();
  r.paths = count_paths_clamped(nl).total;
  r.atpg = run_podem_all(nl, enumerate_faults(nl, true));
  Rng r1(seed);
  r.saf = random_saf_experiment(nl, r1, patterns);
  Rng r2(seed);
  r.pdf = random_robust_pdf(nl, r2, /*stop_window=*/pairs / 10 + 1, pairs);
  return r;
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string name =
      cli.positional().empty() ? "syn150" : cli.positional()[0];
  const std::uint64_t patterns = cli.get_u64("patterns", 1 << 16);
  const std::uint64_t pairs = cli.get_u64("pairs", 200000);
  const std::uint64_t seed = cli.get_u64("seed", 31337);

  Netlist nl = make_benchmark(name);
  remove_redundancies(nl);
  Netlist modified = nl;
  procedure2(modified, 6);
  remove_redundancies(modified);

  std::cout << "testability report for irs_" << name << " (original vs Procedure 2)\n\n";
  const Report a = measure(nl, patterns, pairs, seed);
  const Report b = measure(modified, patterns, pairs, seed);

  Table t({"metric", "original", "modified"});
  t.row().add("equivalent 2-input gates").add(a.gates).add(b.gates);
  t.row().add("paths").add_commas(a.paths).add_commas(b.paths);
  t.row().add("collapsed stuck-at faults").add(static_cast<std::uint64_t>(a.atpg.total))
      .add(static_cast<std::uint64_t>(b.atpg.total));
  t.row().add("ATPG-testable").add(static_cast<std::uint64_t>(a.atpg.detected))
      .add(static_cast<std::uint64_t>(b.atpg.detected));
  t.row().add("ATPG-redundant").add(static_cast<std::uint64_t>(a.atpg.untestable))
      .add(static_cast<std::uint64_t>(b.atpg.untestable));
  t.row().add("random-pattern undetected").add(static_cast<std::uint64_t>(a.saf.remaining))
      .add(static_cast<std::uint64_t>(b.saf.remaining));
  t.row().add("last effective pattern").add_commas(a.saf.last_effective_pattern)
      .add_commas(b.saf.last_effective_pattern);
  t.row().add("path delay faults").add_commas(a.pdf.total_faults)
      .add_commas(b.pdf.total_faults);
  t.row().add("robustly detected (random)").add_commas(a.pdf.detected)
      .add_commas(b.pdf.detected);
  const auto pct = [](const PdfExperimentResult& p) {
    return p.total_faults == 0
               ? 100.0
               : 100.0 * static_cast<double>(p.detected) /
                     static_cast<double>(p.total_faults);
  };
  t.row().add("robust PDF coverage %").add(pct(a.pdf), 2).add(pct(b.pdf), 2);
  t.print(std::cout);

  std::cout << "\nThe headline effect (Section 5): modified circuits keep "
               "stuck-at testability\nwhile dropping untestable path delay "
               "faults, so PDF coverage rises.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("testability_report", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
