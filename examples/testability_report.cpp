// Testability report for a circuit before and after Procedure 2: stuck-at
// ATPG summary (testable / redundant), random-pattern stuck-at coverage, and
// robust path-delay-fault coverage under random vector pairs -- the
// measurements behind Tables 6 and 7, for one circuit, side by side.
//
//   $ ./testability_report syn150
//   $ ./testability_report --patterns=65536 --pairs=100000 cmp8
//
// --guided adds a guided-ATPG + static-compaction section (DESIGN.md §16):
//   $ ./testability_report --guided syn150
//   $ ./testability_report --guided --atpg-backtrace=scoap \
//         --atpg-frontier=scoap --atpg-order=hard --rtpg=weighted syn150
#include <iostream>

#include "atpg/compact.hpp"
#include "atpg/guided.hpp"
#include "atpg/podem.hpp"
#include "atpg/redundancy.hpp"
#include "core/resynth.hpp"
#include "delay/robust.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "paths/paths.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "robust/guard.hpp"

using namespace compsyn;

namespace {

struct Report {
  std::uint64_t gates, paths;
  AtpgSummary atpg;
  SafExperimentResult saf;
  PdfExperimentResult pdf;
};

Report measure(const Netlist& nl, std::uint64_t patterns, std::uint64_t pairs,
               std::uint64_t seed) {
  Report r;
  r.gates = nl.equivalent_gate_count();
  r.paths = count_paths_clamped(nl).total;
  r.atpg = run_podem_all(nl, enumerate_faults(nl, true));
  Rng r1(seed);
  r.saf = random_saf_experiment(nl, r1, patterns);
  Rng r2(seed);
  r.pdf = random_robust_pdf(nl, r2, /*stop_window=*/pairs / 10 + 1, pairs);
  return r;
}

}  // namespace

namespace {

int run_main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string name =
      cli.positional().empty() ? "syn150" : cli.positional()[0];
  const std::uint64_t patterns = cli.get_u64("patterns", 1 << 16);
  const std::uint64_t pairs = cli.get_u64("pairs", 200000);
  const std::uint64_t seed = cli.get_u64("seed", 31337);

  Netlist nl = make_benchmark(name);
  remove_redundancies(nl);
  Netlist modified = nl;
  procedure2(modified, 6);
  remove_redundancies(modified);

  std::cout << "testability report for irs_" << name << " (original vs Procedure 2)\n\n";
  const Report a = measure(nl, patterns, pairs, seed);
  const Report b = measure(modified, patterns, pairs, seed);

  Table t({"metric", "original", "modified"});
  t.row().add("equivalent 2-input gates").add(a.gates).add(b.gates);
  t.row().add("paths").add_commas(a.paths).add_commas(b.paths);
  t.row().add("collapsed stuck-at faults").add(static_cast<std::uint64_t>(a.atpg.total))
      .add(static_cast<std::uint64_t>(b.atpg.total));
  t.row().add("ATPG-testable").add(static_cast<std::uint64_t>(a.atpg.detected))
      .add(static_cast<std::uint64_t>(b.atpg.detected));
  t.row().add("ATPG-redundant").add(static_cast<std::uint64_t>(a.atpg.untestable))
      .add(static_cast<std::uint64_t>(b.atpg.untestable));
  t.row().add("random-pattern undetected").add(static_cast<std::uint64_t>(a.saf.remaining))
      .add(static_cast<std::uint64_t>(b.saf.remaining));
  t.row().add("last effective pattern").add_commas(a.saf.last_effective_pattern)
      .add_commas(b.saf.last_effective_pattern);
  t.row().add("path delay faults").add_commas(a.pdf.total_faults)
      .add_commas(b.pdf.total_faults);
  t.row().add("robustly detected (random)").add_commas(a.pdf.detected)
      .add_commas(b.pdf.detected);
  const auto pct = [](const PdfExperimentResult& p) {
    return p.total_faults == 0
               ? 100.0
               : 100.0 * static_cast<double>(p.detected) /
                     static_cast<double>(p.total_faults);
  };
  t.row().add("robust PDF coverage %").add(pct(a.pdf), 2).add(pct(b.pdf), 2);
  t.print(std::cout);

  std::cout << "\nThe headline effect (Section 5): modified circuits keep "
               "stuck-at testability\nwhile dropping untestable path delay "
               "faults, so PDF coverage rises.\n";

  // Opt-in guided-ATPG section; without --guided the output above stays
  // byte-identical to earlier releases.
  if (cli.has("guided")) {
    GuidedAtpgOptions gopt;
    if (cli.has("atpg-backtrace")) {
      const auto p = parse_backtrace_policy(cli.get("atpg-backtrace"));
      if (!p) {
        std::cerr << "error: --atpg-backtrace=" << cli.get("atpg-backtrace")
                  << " (expected legacy, level, or scoap)\n";
        return robust::kExitUsage;
      }
      gopt.strategy.backtrace = *p;
    }
    if (cli.has("atpg-frontier")) {
      const auto p = parse_frontier_policy(cli.get("atpg-frontier"));
      if (!p) {
        std::cerr << "error: --atpg-frontier=" << cli.get("atpg-frontier")
                  << " (expected legacy, level, or scoap)\n";
        return robust::kExitUsage;
      }
      gopt.strategy.frontier = *p;
    }
    if (cli.has("atpg-order")) {
      const auto p = parse_fault_order(cli.get("atpg-order"));
      if (!p) {
        std::cerr << "error: --atpg-order=" << cli.get("atpg-order")
                  << " (expected index, hard, or cone)\n";
        return robust::kExitUsage;
      }
      gopt.order = *p;
    }
    if (cli.has("rtpg")) {
      const auto v = parse_rtpg_variant(cli.get("rtpg"));
      if (!v) {
        std::cerr << "error: --rtpg=" << cli.get("rtpg")
                  << " (expected uniform, weighted, or toggle)\n";
        return robust::kExitUsage;
      }
      gopt.rtpg.variant = *v;
    }
    gopt.rtpg.max_patterns = cli.get_u64("rtpg-patterns", gopt.rtpg.max_patterns);
    gopt.rtpg.seed = cli.get_u64("rtpg-seed", gopt.rtpg.seed);
    gopt.backtrack_limit = cli.get_u64("backtracks", gopt.backtrack_limit);

    const auto guided_row = [&](const Netlist& c) {
      const GuidedAtpgResult g = guided_atpg(c, gopt);
      const CompactionResult comp =
          compact_patterns(c, g.faults, g.patterns, {gopt.fill_seed});
      return std::make_pair(g, comp);
    };
    const auto [ga, ca] = guided_row(nl);
    const auto [gb, cb] = guided_row(modified);

    std::cout << "\nguided ATPG (backtrace=" << to_string(gopt.strategy.backtrace)
              << ", frontier=" << to_string(gopt.strategy.frontier)
              << ", order=" << to_string(gopt.order)
              << ", rtpg=" << to_string(gopt.rtpg.variant) << ")\n\n";
    Table g({"metric", "original", "modified"});
    g.row().add("RTPG patterns kept").add(ga.rtpg.patterns_kept).add(gb.rtpg.patterns_kept);
    g.row().add("RTPG detected").add(static_cast<std::uint64_t>(ga.rtpg.detected))
        .add(static_cast<std::uint64_t>(gb.rtpg.detected));
    g.row().add("PODEM calls").add(ga.podem_calls).add(gb.podem_calls);
    g.row().add("PODEM backtracks").add(ga.backtracks).add(gb.backtracks);
    g.row().add("detected").add(static_cast<std::uint64_t>(ga.detected))
        .add(static_cast<std::uint64_t>(gb.detected));
    g.row().add("untestable").add(static_cast<std::uint64_t>(ga.untestable))
        .add(static_cast<std::uint64_t>(gb.untestable));
    g.row().add("aborted").add(static_cast<std::uint64_t>(ga.aborted))
        .add(static_cast<std::uint64_t>(gb.aborted));
    g.row().add("patterns before compaction")
        .add(static_cast<std::uint64_t>(ga.patterns.size()))
        .add(static_cast<std::uint64_t>(gb.patterns.size()));
    g.row().add("patterns after compaction")
        .add(static_cast<std::uint64_t>(ca.patterns.size()))
        .add(static_cast<std::uint64_t>(cb.patterns.size()));
    g.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("testability_report", argc, argv,
                                     [&] { return run_main(argc, argv); });
}
