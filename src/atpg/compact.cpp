#include "atpg/compact.hpp"

#include <algorithm>

#include "faults/fault_sim.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace compsyn {
namespace {

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Packs patterns[base .. base+np) into PPSFP words: bit k of pi[i] is
/// pattern (base+k)'s value for input i. X packs as 0.
void pack_block(const std::vector<TestPattern>& pats, std::size_t base,
                unsigned np, std::size_t num_inputs,
                std::vector<std::uint64_t>& pi) {
  pi.assign(num_inputs, 0);
  for (unsigned k = 0; k < np; ++k) {
    const TestPattern& p = pats[base + k];
    for (std::size_t i = 0; i < num_inputs; ++i) {
      if (p.bits[i] == kBit1) pi[i] |= 1ull << k;
    }
  }
}

}  // namespace

std::uint8_t xfill_bit(std::uint64_t seed, std::uint64_t pattern_index,
                       std::uint64_t input_index) {
  return static_cast<std::uint8_t>(
      mix64(mix64(seed ^ pattern_index) ^ input_index) & 1u);
}

TestPattern xfill_pattern(const TestPattern& p, std::uint64_t seed,
                          std::uint64_t pattern_index) {
  TestPattern out = p;
  for (std::size_t i = 0; i < out.bits.size(); ++i) {
    if (out.bits[i] == kBitX) out.bits[i] = xfill_bit(seed, pattern_index, i);
  }
  return out;
}

CompactionResult compact_patterns(const Netlist& nl,
                                  const std::vector<StuckFault>& faults,
                                  const std::vector<TestPattern>& patterns,
                                  const CompactionOptions& opt) {
  const auto sp = Trace::span("atpg.compact");
  CompactionResult res;
  res.input_patterns = patterns.size();
  const std::size_t ni = nl.inputs().size();
  const std::size_t n = patterns.size();

  // X bits are keyed by the ORIGINAL pattern index, so the same pattern is
  // filled identically in the forward reference pass, the reverse election
  // pass, and the kept subset.
  std::vector<TestPattern> filled(n);
  for (std::size_t i = 0; i < n; ++i) {
    filled[i] = xfill_pattern(patterns[i], opt.fill_seed, i);
  }

  // Forward replay: the reference detected bitmap of the full filled set.
  {
    FaultSimulator fw(nl, faults);
    std::vector<std::uint64_t> pi;
    for (std::size_t base = 0; base < n; base += 64) {
      const unsigned np = static_cast<unsigned>(std::min<std::size_t>(64, n - base));
      pack_block(filled, base, np, ni, pi);
      fw.simulate_block(pi, base, np);
    }
    res.detected.assign(faults.size(), 0);
    for (std::size_t i = 0; i < faults.size(); ++i) {
      if (fw.is_detected(i)) {
        res.detected[i] = 1;
        ++res.detected_count;
      }
    }
  }

  // Reverse election with fault dropping. Within a block the simulator
  // credits each newly detected fault to its lowest set bit -- the smallest
  // reverse index, i.e. the LATEST original pattern -- which is exactly the
  // pattern sequential reverse replay would have credited. A pattern is
  // kept iff it is some fault's first reverse-order detector; every fault
  // in the reference bitmap has one, so the kept subset re-detects all of
  // them, and (being a subset) nothing more: the bitmaps are byte-equal.
  std::vector<char> keep(n, 0);
  {
    FaultSimulator rv(nl, faults);
    std::vector<std::uint64_t> pi;
    for (std::size_t rbase = 0; rbase < n; rbase += 64) {
      const unsigned np = static_cast<unsigned>(std::min<std::size_t>(64, n - rbase));
      pi.assign(ni, 0);
      for (unsigned k = 0; k < np; ++k) {
        const TestPattern& p = filled[n - 1 - (rbase + k)];
        for (std::size_t i = 0; i < ni; ++i) {
          if (p.bits[i] == kBit1) pi[i] |= 1ull << k;
        }
      }
      for (std::size_t fi : rv.simulate_block(pi, rbase, np)) {
        keep[n - 1 - rv.detecting_pattern(fi)] = 1;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (keep[i]) res.patterns.push_back(filled[i]);
  }

  Counters::incr("compact.calls");
  Counters::incr("compact.in_patterns", res.input_patterns);
  Counters::incr("compact.kept", res.patterns.size());
  Counters::incr("compact.dropped", res.input_patterns - res.patterns.size());
  Counters::incr("compact.faults_detected", res.detected_count);
  return res;
}

std::vector<char> replay_detect(const Netlist& nl,
                                const std::vector<StuckFault>& faults,
                                const std::vector<TestPattern>& patterns) {
  FaultSimulator sim(nl, faults);
  std::vector<std::uint64_t> pi;
  const std::size_t ni = nl.inputs().size();
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const unsigned np =
        static_cast<unsigned>(std::min<std::size_t>(64, patterns.size() - base));
    pack_block(patterns, base, np, ni, pi);
    sim.simulate_block(pi, base, np);
  }
  std::vector<char> detected(faults.size(), 0);
  for (std::size_t i = 0; i < faults.size(); ++i) {
    detected[i] = sim.is_detected(i) ? 1 : 0;
  }
  return detected;
}

}  // namespace compsyn
