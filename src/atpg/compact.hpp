// X-aware test patterns, deterministic X-fill, and static pattern
// compaction by reverse-order fault-simulation replay.
//
// A TestPattern keeps don't-care inputs as X (kBitX). X-fill replaces every
// X with a bit that is a pure function of (seed, pattern index, input
// index), so filled pattern sets are byte-identical across runs, machines,
// and job counts. Compaction replays the filled set in REVERSE order
// through the PPSFP fault simulator with fault dropping and keeps exactly
// the patterns that detect something new in that replay; because every
// fault's last-detecting pattern is elected, replaying the kept subset
// (forward) re-detects exactly the faults the full set detected -- the
// byte-equal detected-bitmap invariant tests/atpg_compact_test.cpp checks.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

inline constexpr std::uint8_t kBit0 = 0, kBit1 = 1, kBitX = 2;

/// One test vector over the primary inputs; bits[i] applies to inputs()[i]
/// and is kBit0, kBit1, or kBitX (don't-care).
struct TestPattern {
  std::vector<std::uint8_t> bits;

  bool fully_specified() const {
    for (std::uint8_t b : bits) {
      if (b == kBitX) return false;
    }
    return true;
  }
  bool operator==(const TestPattern&) const = default;
};

inline constexpr std::uint64_t kDefaultFillSeed = 0xC0FFEE5EEDull;

/// Deterministic fill bit for X at (pattern_index, input_index):
/// a splitmix64-style mix, uniform-ish and reproducible everywhere.
std::uint8_t xfill_bit(std::uint64_t seed, std::uint64_t pattern_index,
                       std::uint64_t input_index);

/// Copy of `p` with every kBitX replaced by xfill_bit(seed, pattern_index, i).
TestPattern xfill_pattern(const TestPattern& p, std::uint64_t seed,
                          std::uint64_t pattern_index);

struct CompactionOptions {
  std::uint64_t fill_seed = kDefaultFillSeed;
};

struct CompactionResult {
  /// Kept patterns, fully specified, in original relative order.
  std::vector<TestPattern> patterns;
  /// Detected bitmap (one char per fault, 0/1) of the FULL filled input
  /// set -- by the election invariant, also the bitmap of `patterns`.
  std::vector<char> detected;
  std::size_t detected_count = 0;
  std::size_t input_patterns = 0;
};

/// Static compaction: X-fills `patterns` (X bits keyed by their original
/// pattern index), replays forward for the reference detected bitmap, then
/// replays in reverse with fault dropping to elect the kept subset.
/// Deterministic and jobs-invariant (the simulator's contract).
CompactionResult compact_patterns(const Netlist& nl,
                                  const std::vector<StuckFault>& faults,
                                  const std::vector<TestPattern>& patterns,
                                  const CompactionOptions& opt = {});

/// Replays fully-specified patterns through a fresh FaultSimulator and
/// returns the detected bitmap (one char per fault). X bits are applied
/// as 0. The verification half of the compaction invariant.
std::vector<char> replay_detect(const Netlist& nl,
                                const std::vector<StuckFault>& faults,
                                const std::vector<TestPattern>& patterns);

}  // namespace compsyn
