#include "atpg/guided.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

constexpr std::uint64_t kEvenBits = 0x5555555555555555ull;
constexpr std::uint64_t kOddBits = 0xAAAAAAAAAAAAAAAAull;

/// One 64-pattern block of PI words under the variant's distribution.
void gen_block(Rng& rng, RtpgVariant v, std::uint64_t block_index,
               std::vector<std::uint64_t>& pi) {
  switch (v) {
    case RtpgVariant::Uniform:
      for (auto& w : pi) w = rng.next();
      break;
    case RtpgVariant::Weighted: {
      // Cycle the 1-density across blocks: AND of two words (~1/4), raw
      // (~1/2), OR (~3/4) -- cheap weighted random in the TPG tradition.
      const unsigned phase = static_cast<unsigned>(block_index % 3);
      for (auto& w : pi) {
        const std::uint64_t a = rng.next();
        const std::uint64_t b = rng.next();
        w = phase == 0 ? (a & b) : phase == 1 ? a : (a | b);
      }
      break;
    }
    case RtpgVariant::Toggle:
      // Patterns come in complementary pairs: bit 2j random, bit 2j+1 its
      // complement, maximizing per-line toggling within a block.
      for (auto& w : pi) {
        const std::uint64_t r = rng.next();
        w = (r & kEvenBits) | (~(r << 1) & kOddBits);
      }
      break;
  }
}

}  // namespace

RandomTpgStats random_tpg(const Netlist& nl, FaultSimulator& sim,
                          const RandomTpgOptions& opt,
                          std::vector<TestPattern>& patterns) {
  const auto sp = Trace::span("atpg.rtpg");
  RandomTpgStats st;
  const std::size_t ni = nl.inputs().size();
  if (ni == 0 || opt.max_patterns == 0) return st;
  Rng rng(opt.seed);
  const std::size_t first = patterns.size();
  std::uint64_t effective = 0;  // patterns up to the last new detection
  unsigned stale = 0;
  std::vector<std::uint64_t> pi(ni);
  std::uint64_t applied = 0;
  while (applied < opt.max_patterns && sim.remaining() > 0) {
    if (opt.stale_blocks != 0 && stale >= opt.stale_blocks) break;
    const unsigned np = static_cast<unsigned>(
        std::min<std::uint64_t>(64, opt.max_patterns - applied));
    gen_block(rng, opt.variant, st.blocks, pi);
    const std::vector<std::size_t> newly = sim.simulate_block(pi, applied, np);
    ++st.blocks;
    st.detected += newly.size();
    for (std::size_t fi : newly) {
      effective = std::max(effective, sim.detecting_pattern(fi) + 1);
    }
    stale = newly.empty() ? stale + 1 : 0;
    for (unsigned k = 0; k < np; ++k) {
      TestPattern p;
      p.bits.resize(ni);
      for (std::size_t i = 0; i < ni; ++i) {
        p.bits[i] = static_cast<std::uint8_t>((pi[i] >> k) & 1u);
      }
      patterns.push_back(std::move(p));
    }
    applied += np;
  }
  st.patterns_applied = applied;
  // The tail past the last new detection was simulated and detected
  // nothing; dropping it cannot change the detected set.
  patterns.resize(first + static_cast<std::size_t>(effective));
  st.patterns_kept = effective;
  return st;
}

std::vector<std::size_t> order_faults(const Netlist& nl,
                                      const AtpgGuidance& guidance,
                                      const std::vector<StuckFault>& faults,
                                      FaultOrderPolicy policy) {
  std::vector<std::size_t> idx(faults.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  if (policy == FaultOrderPolicy::Index) return idx;
  std::vector<std::uint64_t> key(faults.size(), 0);
  if (policy == FaultOrderPolicy::HardFirst) {
    for (std::size_t i = 0; i < faults.size(); ++i) {
      key[i] = scoap_fault_hardness(nl, guidance.scoap, faults[i]);
    }
  } else {  // Cone: size of the fanout cone the fault effect enters.
    std::vector<std::int64_t> memo(nl.size(), -1);
    std::vector<char> vis;
    std::vector<NodeId> stack;
    const auto& fo = nl.fanouts();
    auto cone_size = [&](NodeId n) -> std::uint64_t {
      if (memo[n] >= 0) return static_cast<std::uint64_t>(memo[n]);
      vis.assign(nl.size(), 0);
      stack.assign(1, n);
      vis[n] = 1;
      std::uint64_t cnt = 0;
      while (!stack.empty()) {
        const NodeId m = stack.back();
        stack.pop_back();
        ++cnt;
        for (NodeId y : fo[m]) {
          if (!vis[y]) {
            vis[y] = 1;
            stack.push_back(y);
          }
        }
      }
      memo[n] = static_cast<std::int64_t>(cnt);
      return cnt;
    };
    for (std::size_t i = 0; i < faults.size(); ++i) {
      // f.node is the consuming gate for branch faults -- exactly where
      // the fault effect enters the circuit.
      key[i] = cone_size(faults[i].node);
    }
  }
  // Descending key; stable sort keeps ties in ascending fault index.
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) { return key[a] > key[b]; });
  return idx;
}

GuidedAtpgResult guided_atpg(const Netlist& nl, const GuidedAtpgOptions& opt) {
  const auto sp = Trace::span("atpg.guided");
  GuidedAtpgResult res;
  res.faults = enumerate_faults(nl, opt.collapse);
  const std::size_t nf = res.faults.size();
  res.status.assign(nf, AtpgStatus::Aborted);
  FaultSimulator sim(nl, res.faults);

  if (opt.rtpg_enabled) {
    res.rtpg = random_tpg(nl, sim, opt.rtpg, res.patterns);
  }

  const AtpgGuidance guidance = AtpgGuidance::build(nl);
  AtpgOptions popt;
  popt.backtrack_limit = opt.backtrack_limit;
  popt.strategy = opt.strategy;
  popt.guidance = &guidance;
  popt.record_cube = true;

  const std::vector<std::size_t> order =
      order_faults(nl, guidance, res.faults, opt.order);
  const std::size_t ni = nl.inputs().size();
  std::vector<std::uint64_t> pi(ni);
  for (std::size_t idx : order) {
    if (sim.is_detected(idx)) continue;  // dropped by an earlier pattern
    const AtpgResult r = run_podem(nl, res.faults[idx], popt);
    ++res.podem_calls;
    res.backtracks += r.backtracks;
    res.decisions += r.decisions;
    if (r.status == AtpgStatus::Detected) {
      ++res.podem_detected;
      TestPattern cube;
      cube.bits = r.cube;
      // Fill keyed by the cube's stream index: compact_patterns with the
      // same fill seed reproduces this exact pattern, so the dropping
      // decisions made here match the compactor's replay.
      const std::uint64_t pat_idx = res.patterns.size();
      const TestPattern filled = xfill_pattern(cube, opt.fill_seed, pat_idx);
      for (std::size_t i = 0; i < ni; ++i) {
        pi[i] = filled.bits[i] == kBit1 ? 1u : 0u;
      }
      sim.simulate_block(pi, pat_idx, 1);
      res.patterns.push_back(std::move(cube));
      // A PODEM cube detects its target under every X completion
      // (podem.hpp), so the filled pattern must have dropped it.
      assert(sim.is_detected(idx));
    } else {
      res.status[idx] = r.status;
    }
  }

  for (std::size_t i = 0; i < nf; ++i) {
    if (sim.is_detected(i)) res.status[i] = AtpgStatus::Detected;
    switch (res.status[i]) {
      case AtpgStatus::Detected: ++res.detected; break;
      case AtpgStatus::Untestable: ++res.untestable; break;
      case AtpgStatus::Aborted: ++res.aborted; break;
    }
  }

  Counters::incr("atpg.guided.calls");
  Counters::incr("atpg.guided.faults", nf);
  Counters::incr("atpg.guided.rtpg_patterns", res.rtpg.patterns_kept);
  Counters::incr("atpg.guided.rtpg_detected", res.rtpg.detected);
  Counters::incr("atpg.guided.podem_calls", res.podem_calls);
  Counters::incr("atpg.guided.podem_backtracks", res.backtracks);
  Counters::incr("atpg.guided.detected", res.detected);
  Counters::incr("atpg.guided.untestable", res.untestable);
  Counters::incr("atpg.guided.aborted", res.aborted);
  Counters::incr("atpg.guided.patterns", res.patterns.size());
  return res;
}

std::optional<BacktracePolicy> parse_backtrace_policy(std::string_view s) {
  if (s == "legacy") return BacktracePolicy::Legacy;
  if (s == "level") return BacktracePolicy::Level;
  if (s == "scoap") return BacktracePolicy::Scoap;
  return std::nullopt;
}

std::optional<FrontierPolicy> parse_frontier_policy(std::string_view s) {
  if (s == "legacy") return FrontierPolicy::Legacy;
  if (s == "level") return FrontierPolicy::Level;
  if (s == "scoap") return FrontierPolicy::Scoap;
  return std::nullopt;
}

std::optional<FaultOrderPolicy> parse_fault_order(std::string_view s) {
  if (s == "index") return FaultOrderPolicy::Index;
  if (s == "hard") return FaultOrderPolicy::HardFirst;
  if (s == "cone") return FaultOrderPolicy::Cone;
  return std::nullopt;
}

std::optional<RtpgVariant> parse_rtpg_variant(std::string_view s) {
  if (s == "uniform") return RtpgVariant::Uniform;
  if (s == "weighted") return RtpgVariant::Weighted;
  if (s == "toggle") return RtpgVariant::Toggle;
  return std::nullopt;
}

const char* to_string(BacktracePolicy p) {
  switch (p) {
    case BacktracePolicy::Legacy: return "legacy";
    case BacktracePolicy::Level: return "level";
    case BacktracePolicy::Scoap: return "scoap";
  }
  return "?";
}

const char* to_string(FrontierPolicy p) {
  switch (p) {
    case FrontierPolicy::Legacy: return "legacy";
    case FrontierPolicy::Level: return "level";
    case FrontierPolicy::Scoap: return "scoap";
  }
  return "?";
}

const char* to_string(FaultOrderPolicy p) {
  switch (p) {
    case FaultOrderPolicy::Index: return "index";
    case FaultOrderPolicy::HardFirst: return "hard";
    case FaultOrderPolicy::Cone: return "cone";
  }
  return "?";
}

const char* to_string(RtpgVariant v) {
  switch (v) {
    case RtpgVariant::Uniform: return "uniform";
    case RtpgVariant::Weighted: return "weighted";
    case RtpgVariant::Toggle: return "toggle";
  }
  return "?";
}

}  // namespace compsyn
