// Guided ATPG driver: multi-variant random test-pattern generation (TPG)
// front end, SCOAP-based fault ordering, and strategy-driven PODEM on the
// random-resistant residue, producing X-aware patterns ready for static
// compaction (compact.hpp).
//
// The pipeline reproduces the Test-Pattern-Generation-System shape:
//   1. seeded random TPG blocks with fault dropping until coverage stalls,
//   2. residue faults ordered by a strategy (index | hard-first | cone),
//   3. guided PODEM per residue fault; each detected cube is X-filled and
//      fault-simulated so it drops other faults before they are targeted.
// Every stage is a pure function of its options (seeded RNG, deterministic
// X-fill, jobs-invariant fault simulator), so results are byte-identical
// across runs and --jobs values. Strategies change pattern COUNTS and
// backtrack counts only; Detected/Untestable accounting is
// strategy-invariant at an unlimited backtrack budget (podem.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "atpg/compact.hpp"
#include "atpg/podem.hpp"
#include "atpg/scoap.hpp"
#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// Order in which residue faults are targeted by PODEM.
enum class FaultOrderPolicy : std::uint8_t {
  Index,      // fault-universe enumeration order
  HardFirst,  // descending SCOAP detection hardness (scoap_fault_hardness)
  Cone,       // descending fanout-cone size of the fault site
};

/// Random-TPG pattern distribution. All variants are seeded and byte-
/// reproducible; they differ only in how many patterns reach a coverage
/// level, never in how coverage is accounted.
enum class RtpgVariant : std::uint8_t {
  Uniform,   // i.i.d. uniform bits
  Weighted,  // blocks cycle 1-density ~ 1/4, 1/2, 3/4 (AND / raw / OR words)
  Toggle,    // consecutive patterns are complementary pairs
};

struct RandomTpgOptions {
  RtpgVariant variant = RtpgVariant::Uniform;
  std::uint64_t seed = 0x7007ull;
  std::uint64_t max_patterns = 4096;
  // Stop early after this many consecutive 64-pattern blocks without a new
  // detection (0 = never stall out).
  unsigned stale_blocks = 4;
};

struct RandomTpgStats {
  std::uint64_t patterns_applied = 0;  // simulated (before tail trimming)
  std::uint64_t patterns_kept = 0;     // appended to the pattern list
  std::uint64_t blocks = 0;
  std::size_t detected = 0;  // newly detected by this phase
};

/// Runs random TPG against `sim` (dropping already-detected faults),
/// appending the kept patterns (fully specified) to `patterns`. Trailing
/// patterns past the last new detection are trimmed -- they cannot change
/// the detected set.
RandomTpgStats random_tpg(const Netlist& nl, FaultSimulator& sim,
                          const RandomTpgOptions& opt,
                          std::vector<TestPattern>& patterns);

/// Residue-fault target order under `policy`; indices into `faults`.
/// Deterministic: ties break toward the lower fault index.
std::vector<std::size_t> order_faults(const Netlist& nl,
                                      const AtpgGuidance& guidance,
                                      const std::vector<StuckFault>& faults,
                                      FaultOrderPolicy policy);

struct GuidedAtpgOptions {
  AtpgStrategy strategy{};
  FaultOrderPolicy order = FaultOrderPolicy::Index;
  // PODEM backtrack budget per fault; 0 = unlimited (verdict-complete).
  std::uint64_t backtrack_limit = 0;
  bool rtpg_enabled = true;
  RandomTpgOptions rtpg;
  bool collapse = true;  // fault-universe collapsing (fault.hpp)
  std::uint64_t fill_seed = kDefaultFillSeed;  // X-fill for fault dropping
};

struct GuidedAtpgResult {
  std::vector<StuckFault> faults;
  std::vector<AtpgStatus> status;  // per fault
  // RTPG patterns (fully specified) followed by PODEM cubes (X-bearing),
  // in generation order.
  std::vector<TestPattern> patterns;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
  RandomTpgStats rtpg;
  std::uint64_t podem_calls = 0;
  std::uint64_t podem_detected = 0;
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;
};

/// The full pipeline over the collapsed fault universe of `nl`.
GuidedAtpgResult guided_atpg(const Netlist& nl,
                             const GuidedAtpgOptions& opt = {});

// -- CLI flag parsing (shared by resynth_flow / testability_report /
//    table_atpg); nullopt on an unknown name ---------------------------------
std::optional<BacktracePolicy> parse_backtrace_policy(std::string_view s);
std::optional<FrontierPolicy> parse_frontier_policy(std::string_view s);
std::optional<FaultOrderPolicy> parse_fault_order(std::string_view s);
std::optional<RtpgVariant> parse_rtpg_variant(std::string_view s);
const char* to_string(BacktracePolicy p);
const char* to_string(FrontierPolicy p);
const char* to_string(FaultOrderPolicy p);
const char* to_string(RtpgVariant v);

}  // namespace compsyn
