#include "atpg/podem.hpp"

#include <cassert>
#include <tuple>

#include "atpg/scoap.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "robust/robust.hpp"

namespace compsyn {
namespace {

constexpr std::uint8_t V0 = 0, V1 = 1, VX = 2;

std::uint8_t eval3(GateType t, const std::vector<std::uint8_t>& in) {
  switch (t) {
    case GateType::Const0: return V0;
    case GateType::Const1: return V1;
    case GateType::Buf: return in[0];
    case GateType::Not: return in[0] == VX ? VX : (in[0] ^ 1u);
    case GateType::And:
    case GateType::Nand: {
      bool any_x = false;
      for (std::uint8_t v : in) {
        if (v == V0) return t == GateType::Nand ? V1 : V0;
        any_x |= v == VX;
      }
      if (any_x) return VX;
      return t == GateType::Nand ? V0 : V1;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool any_x = false;
      for (std::uint8_t v : in) {
        if (v == V1) return t == GateType::Nor ? V0 : V1;
        any_x |= v == VX;
      }
      if (any_x) return VX;
      return t == GateType::Nor ? V1 : V0;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint8_t acc = t == GateType::Xnor ? V1 : V0;
      for (std::uint8_t v : in) {
        if (v == VX) return VX;
        acc ^= v;
      }
      return acc;
    }
    case GateType::Input:
      break;
  }
  assert(false);
  return VX;
}

class Podem {
 public:
  Podem(const Netlist& nl, const StuckFault& fault, const AtpgOptions& opt)
      : nl_(nl), fault_(fault), opt_(opt), guide_(opt.guidance) {
    // Non-legacy policies read NodeId-indexed guidance tables; without them
    // the search degrades to the legacy order rather than reading nothing.
    if (guide_ != nullptr) {
      frontier_policy_ = opt.strategy.frontier;
      backtrace_policy_ = opt.strategy.backtrace;
    }
    pi_val_.assign(nl_.size(), VX);
    gv_.assign(nl_.size(), VX);
    fv_.assign(nl_.size(), VX);
    pi_index_.assign(nl_.size(), kNoNode);
    for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
      pi_index_[nl_.inputs()[i]] = static_cast<NodeId>(i);
    }
    // The faulty line's driver, whose good value activates the fault.
    site_ = fault.is_stem() ? fault.node
                            : nl_.node(fault.node).fanins[static_cast<std::size_t>(fault.pin)];
  }

  AtpgResult run() {
    AtpgResult res;
    imply();
    for (;;) {
      if (opt_.backtrack_limit != 0 && res.backtracks > opt_.backtrack_limit) {
        res.status = AtpgStatus::Aborted;
        return res;
      }
      // Cancellation winds the search down as an abort: the caller's
      // normal Aborted handling (SAT fallback, undecided marking) applies.
      if (robust::cancel_requested()) {
        res.status = AtpgStatus::Aborted;
        return res;
      }
      if (detected()) {
        res.status = AtpgStatus::Detected;
        res.test.assign(nl_.inputs().size(), false);
        for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
          res.test[i] = gv_[nl_.inputs()[i]] == V1;
        }
        if (opt_.record_cube) {
          // pi_val_ holds V0/V1/VX, which match kCube0/kCube1/kCubeX.
          res.cube.resize(nl_.inputs().size());
          for (std::size_t i = 0; i < nl_.inputs().size(); ++i) {
            res.cube[i] = pi_val_[nl_.inputs()[i]];
          }
        }
        return res;
      }
      NodeId obj_node = kNoNode;
      std::uint8_t obj_val = VX;
      const ObjectiveStatus st = objective(obj_node, obj_val);
      if (st == ObjectiveStatus::Fail) {
        if (!backtrack(res)) {
          res.status = AtpgStatus::Untestable;
          return res;
        }
        continue;
      }
      NodeId pi = kNoNode;
      std::uint8_t val = V0;
      if (st == ObjectiveStatus::Found) {
        std::tie(pi, val) = backtrace(obj_node, obj_val);
      } else {
        // Rare case: the frontier is alive but no good-machine X side input
        // exists (the X lives only in the faulty machine). Deciding any
        // unassigned input keeps the search complete.
        for (NodeId in : nl_.inputs()) {
          if (pi_val_[in] == VX) {
            pi = in;
            break;
          }
        }
        if (pi == kNoNode) {
          if (!backtrack(res)) {
            res.status = AtpgStatus::Untestable;
            return res;
          }
          continue;
        }
      }
      stack_.push_back({pi, val, false});
      ++res.decisions;
      pi_val_[pi] = val;
      imply();
    }
  }

 private:
  struct Decision {
    NodeId pi;
    std::uint8_t value;
    bool flipped;
  };

  void imply() {
    for (NodeId n : nl_.topo_order()) {
      const Node& nd = nl_.node(n);
      if (nd.type == GateType::Input) {
        gv_[n] = pi_val_[n];
        fv_[n] = pi_val_[n];
      } else {
        ins_g_.clear();
        ins_f_.clear();
        for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
          ins_g_.push_back(gv_[nd.fanins[p]]);
          if (!fault_.is_stem() && n == fault_.node &&
              static_cast<int>(p) == fault_.pin) {
            ins_f_.push_back(fault_.value ? V1 : V0);
          } else {
            ins_f_.push_back(fv_[nd.fanins[p]]);
          }
        }
        gv_[n] = eval3(nd.type, ins_g_);
        fv_[n] = eval3(nd.type, ins_f_);
      }
      if (fault_.is_stem() && n == fault_.node) {
        fv_[n] = fault_.value ? V1 : V0;
      }
    }
  }

  bool has_d(NodeId n) const {
    return gv_[n] != VX && fv_[n] != VX && gv_[n] != fv_[n];
  }

  bool detected() const {
    for (NodeId o : nl_.outputs()) {
      if (has_d(o)) return true;
    }
    return false;
  }

  enum class ObjectiveStatus { Fail, Found, NoSideInput };

  /// Chooses the next objective; Fail means the current assignment cannot
  /// lead to a test (conflict / empty frontier / no X-path).
  ObjectiveStatus objective(NodeId& node, std::uint8_t& value) {
    const std::uint8_t stuck = fault_.value ? V1 : V0;
    if (gv_[site_] == stuck) return ObjectiveStatus::Fail;
    if (gv_[site_] == VX) {
      node = site_;
      value = stuck ^ 1u;
      return ObjectiveStatus::Found;
    }
    // Fault activated; collect the full D-frontier in topological order.
    for (NodeId n : nl_.topo_order()) {
      const Node& nd = nl_.node(n);
      if (nd.type == GateType::Input || nd.type == GateType::Const0 ||
          nd.type == GateType::Const1) {
        continue;
      }
      if (gv_[n] != VX && fv_[n] != VX) continue;  // past or dead
      bool d_in = false;
      for (NodeId f : nd.fanins) d_in |= has_d(f);
      if (!fault_.is_stem() && n == fault_.node) {
        // The faulty pin itself carries a D when the driver is at !stuck.
        d_in |= gv_[site_] != VX && gv_[site_] != stuck;
      }
      if (!d_in) continue;
      frontier_.push_back(n);
    }
    if (frontier_.empty()) {
      return ObjectiveStatus::Fail;
    }
    // X-path check: some frontier gate must reach an output through
    // X-valued nodes.
    if (!x_path_exists()) {
      frontier_.clear();
      return ObjectiveStatus::Fail;
    }
    // Objective: set an undetermined side input of a frontier gate to
    // non-controlling. The policy only ranks the gates the legacy scan
    // iterated (ties keep topological order; Legacy keys by position, so
    // the first eligible gate wins exactly as in the seed engine).
    bool found = false;
    std::uint64_t best_key = 0;
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      const NodeId n = frontier_[i];
      const Node& nd = nl_.node(n);
      const std::uint8_t want =
          has_controlling_value(nd.type)
              ? static_cast<std::uint8_t>(!controlling_value(nd.type))
              : V0;
      const NodeId side = pick_side_input(nd, want);
      if (side == kNoNode) continue;
      std::uint64_t key = i;
      switch (frontier_policy_) {
        case FrontierPolicy::Legacy: break;
        case FrontierPolicy::Level: key = guide_->out_dist[n]; break;
        case FrontierPolicy::Scoap: key = guide_->scoap.co[n]; break;
      }
      if (!found || key < best_key) {
        found = true;
        best_key = key;
        node = side;
        value = want;
      }
      if (frontier_policy_ == FrontierPolicy::Legacy) break;
    }
    frontier_.clear();
    return found ? ObjectiveStatus::Found : ObjectiveStatus::NoSideInput;
  }

  /// The gate's side input to target, among good-machine X fanins: the
  /// first (Legacy), the shallowest (Level), or the cheapest to drive to
  /// `want` (Scoap). kNoNode when no good-machine X fanin exists.
  NodeId pick_side_input(const Node& nd, std::uint8_t want) const {
    NodeId best = kNoNode;
    std::uint64_t best_key = 0;
    for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
      const NodeId f = nd.fanins[p];
      if (gv_[f] != VX) continue;
      if (frontier_policy_ == FrontierPolicy::Legacy) return f;
      const std::uint64_t key = frontier_policy_ == FrontierPolicy::Level
                                    ? guide_->level[f]
                                    : guide_->scoap.cc(f, want == V1);
      if (best == kNoNode || key < best_key) {
        best = f;
        best_key = key;
      }
    }
    return best;
  }

  bool x_path_exists() {
    visited_.assign(nl_.size(), 0);
    std::vector<NodeId> stack = frontier_;
    for (NodeId n : stack) visited_[n] = 1;
    const auto& fanouts = nl_.fanouts();
    while (!stack.empty()) {
      const NodeId n = stack.back();
      stack.pop_back();
      if (nl_.node(n).is_output) return true;
      for (NodeId y : fanouts[n]) {
        if (visited_[y]) continue;
        if (gv_[y] != VX && fv_[y] != VX) continue;
        visited_[y] = 1;
        stack.push_back(y);
      }
    }
    return false;
  }

  std::pair<NodeId, std::uint8_t> backtrace(NodeId node, std::uint8_t value) {
    while (nl_.node(node).type != GateType::Input) {
      const Node& nd = nl_.node(node);
      if (is_inverting(nd.type)) value ^= 1u;
      // `value` is now the value wanted on the chosen fanin. The policies
      // rank the same X fanins the legacy scan iterated -- the admissible
      // set is unchanged, only the descent order differs.
      const NodeId next = pick_backtrace_fanin(nd, value);
      assert(next != kNoNode && "an X output must have an X input");
      node = next;
    }
    return {node, value};
  }

  NodeId pick_backtrace_fanin(const Node& nd, std::uint8_t value) const {
    NodeId best = kNoNode;
    std::uint64_t best_key = 0;
    // Classic SCOAP backtrace: when the wanted fanin value is the gate's
    // controlling value one fanin suffices -- chase the EASIEST; when it is
    // non-controlling every fanin must eventually comply -- chase the
    // HARDEST first so infeasible branches fail early. Gates without a
    // controlling value (XOR family) take the easiest fanin.
    const bool hardest =
        backtrace_policy_ == BacktracePolicy::Scoap &&
        has_controlling_value(nd.type) &&
        static_cast<bool>(value) != controlling_value(nd.type);
    for (NodeId f : nd.fanins) {
      if (gv_[f] != VX) continue;
      if (backtrace_policy_ == BacktracePolicy::Legacy) return f;
      std::uint64_t key = backtrace_policy_ == BacktracePolicy::Level
                              ? guide_->level[f]
                              : guide_->scoap.cc(f, value == V1);
      if (hardest) key = ~key;  // max-cost wins, ties still first-fanin
      if (best == kNoNode || key < best_key) {
        best = f;
        best_key = key;
      }
    }
    return best;
  }

  bool backtrack(AtpgResult& res) {
    while (!stack_.empty()) {
      Decision& d = stack_.back();
      if (!d.flipped) {
        ++res.backtracks;
        d.flipped = true;
        d.value ^= 1u;
        pi_val_[d.pi] = d.value;
        imply();
        return true;
      }
      pi_val_[d.pi] = VX;
      stack_.pop_back();
    }
    imply();
    return false;
  }

  const Netlist& nl_;
  const StuckFault& fault_;
  const AtpgOptions& opt_;
  const AtpgGuidance* guide_ = nullptr;
  FrontierPolicy frontier_policy_ = FrontierPolicy::Legacy;
  BacktracePolicy backtrace_policy_ = BacktracePolicy::Legacy;
  NodeId site_ = kNoNode;
  std::vector<std::uint8_t> pi_val_, gv_, fv_;
  std::vector<NodeId> pi_index_;
  std::vector<Decision> stack_;
  std::vector<NodeId> frontier_;
  std::vector<char> visited_;
  std::vector<std::uint8_t> ins_g_, ins_f_;
};

}  // namespace

AtpgResult run_podem(const Netlist& nl, const StuckFault& fault,
                     const AtpgOptions& opt) {
  const auto sp = Trace::span("atpg.podem");
  Podem engine(nl, fault, opt);
  AtpgResult res = engine.run();
  // One budget tick per call plus one per backtrack — the same unit
  // opt.backtrack_limit bounds per call.
  robust::charge(1 + res.backtracks);
  // Batched per call: one counter update per fault, nothing in the search.
  Counters::incr("atpg.calls");
  Counters::incr("atpg.decisions", res.decisions);
  Counters::incr("atpg.backtracks", res.backtracks);
  switch (res.status) {
    case AtpgStatus::Detected: Counters::incr("atpg.detected"); break;
    case AtpgStatus::Untestable: Counters::incr("atpg.redundancy_proofs"); break;
    case AtpgStatus::Aborted: Counters::incr("atpg.aborts"); break;
  }
  return res;
}

AtpgSummary run_podem_all(const Netlist& nl, const std::vector<StuckFault>& faults,
                          const AtpgOptions& opt) {
  AtpgSummary s;
  s.total = faults.size();
  for (const StuckFault& f : faults) {
    switch (run_podem(nl, f, opt).status) {
      case AtpgStatus::Detected: ++s.detected; break;
      case AtpgStatus::Untestable: ++s.untestable; break;
      case AtpgStatus::Aborted: ++s.aborted; break;
    }
  }
  return s;
}

}  // namespace compsyn
