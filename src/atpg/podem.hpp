// PODEM test generation for single stuck-at faults, with complete search:
// a fault reported Untestable is proven redundant (no backtrack limit by
// default). This is the ATPG engine behind the redundancy-removal substrate
// ([15] in the paper) and the testable/untestable accounting.
//
// Five-valued reasoning is carried as a (good, faulty) pair of three-valued
// signals: D = (1,0), ~D = (0,1). Decisions are made on primary inputs only,
// objectives chosen by fault activation first and D-frontier propagation
// after, with an X-path check pruning dead branches.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

enum class AtpgStatus {
  Detected,    // test found
  Untestable,  // proven redundant (complete search exhausted)
  Aborted,     // backtrack limit hit; nothing proven
};

struct AtpgOptions {
  // Backtrack budget; 0 = unlimited. Untestable is ALWAYS a completed-search
  // proof -- hitting the limit yields Aborted, never a false proof. The
  // default bounds worst-case faults (deep XOR cones are PODEM's pathological
  // case) while leaving typical proofs untouched; set 0 for guaranteed
  // complete redundancy identification on small circuits.
  std::uint64_t backtrack_limit = 5000;
};

struct AtpgResult {
  AtpgStatus status = AtpgStatus::Aborted;
  // PI assignment detecting the fault (unassigned inputs were don't-care and
  // are filled with 0), valid when status == Detected.
  std::vector<bool> test;
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;  // PI assignments tried (excluding flips)
};

AtpgResult run_podem(const Netlist& nl, const StuckFault& fault,
                     const AtpgOptions& opt = {});

/// Convenience fault-universe sweep.
struct AtpgSummary {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
};
AtpgSummary run_podem_all(const Netlist& nl, const std::vector<StuckFault>& faults,
                          const AtpgOptions& opt = {});

}  // namespace compsyn
