// PODEM test generation for single stuck-at faults, with complete search:
// a fault reported Untestable is proven redundant (no backtrack limit by
// default). This is the ATPG engine behind the redundancy-removal substrate
// ([15] in the paper) and the testable/untestable accounting.
//
// Five-valued reasoning is carried as a (good, faulty) pair of three-valued
// signals: D = (1,0), ~D = (0,1). Decisions are made on primary inputs only,
// objectives chosen by fault activation first and D-frontier propagation
// after, with an X-path check pruning dead branches.
//
// Search-order policies (AtpgStrategy) plug into two choice points:
// which D-frontier gate to advance and which fanin to follow during
// backtrace. Every policy ranks the same admissible candidate set the
// legacy code iterates, so the branch-and-backtrack search stays complete:
// with an unlimited backtrack budget the Detected/Untestable verdict is
// invariant across policies -- only decision order, backtrack counts, and
// which faults exceed a finite budget may change (proven by
// tests/atpg_differential_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct AtpgGuidance;  // scoap.hpp

enum class AtpgStatus {
  Detected,    // test found
  Untestable,  // proven redundant (complete search exhausted)
  Aborted,     // backtrack limit hit; nothing proven
};

/// D-frontier gate selection order.
enum class FrontierPolicy : std::uint8_t {
  Legacy,  // first frontier gate in topological order (seed behavior)
  Level,   // gate nearest a primary output (min AtpgGuidance::out_dist)
  Scoap,   // most observable gate (min SCOAP CO)
};

/// Backtrace fanin selection order.
enum class BacktracePolicy : std::uint8_t {
  Legacy,  // first X-valued fanin (seed behavior)
  Level,   // shallowest X-valued fanin (min structural level)
  Scoap,   // classic SCOAP rule: easiest input when one controlling value
           // suffices, hardest when every input must be non-controlling
};

struct AtpgStrategy {
  BacktracePolicy backtrace = BacktracePolicy::Legacy;
  FrontierPolicy frontier = FrontierPolicy::Legacy;

  bool is_legacy() const {
    return backtrace == BacktracePolicy::Legacy &&
           frontier == FrontierPolicy::Legacy;
  }
  bool operator==(const AtpgStrategy&) const = default;
};

struct AtpgOptions {
  // Backtrack budget; 0 = unlimited. Untestable is ALWAYS a completed-search
  // proof -- hitting the limit yields Aborted, never a false proof. The
  // default bounds worst-case faults (deep XOR cones are PODEM's pathological
  // case) while leaving typical proofs untouched; set 0 for guaranteed
  // complete redundancy identification on small circuits.
  std::uint64_t backtrack_limit = 5000;

  // Search-order policy. Non-legacy policies need `guidance` (built once per
  // netlist via AtpgGuidance::build); with guidance == nullptr they silently
  // degrade to the legacy order so a caller can never read stale metrics.
  AtpgStrategy strategy{};
  const AtpgGuidance* guidance = nullptr;

  // When true, a Detected result also carries the raw PODEM cube in
  // AtpgResult::cube (kCubeX for don't-care inputs). The cube detects the
  // fault under EVERY completion of its X bits: PODEM's 3-valued simulation
  // proved a definite good/faulty difference at an output with those inputs
  // still unassigned, and concrete simulation only refines X values.
  bool record_cube = false;
};

inline constexpr std::uint8_t kCube0 = 0, kCube1 = 1, kCubeX = 2;

struct AtpgResult {
  AtpgStatus status = AtpgStatus::Aborted;
  // PI assignment detecting the fault (unassigned inputs were don't-care and
  // are filled with 0), valid when status == Detected.
  std::vector<bool> test;
  // Per-PI cube (kCube0/kCube1/kCubeX); filled when status == Detected and
  // AtpgOptions::record_cube was set, empty otherwise.
  std::vector<std::uint8_t> cube;
  std::uint64_t backtracks = 0;
  std::uint64_t decisions = 0;  // PI assignments tried (excluding flips)
};

AtpgResult run_podem(const Netlist& nl, const StuckFault& fault,
                     const AtpgOptions& opt = {});

/// Convenience fault-universe sweep.
struct AtpgSummary {
  std::size_t total = 0;
  std::size_t detected = 0;
  std::size_t untestable = 0;
  std::size_t aborted = 0;
};
AtpgSummary run_podem_all(const Netlist& nl, const std::vector<StuckFault>& faults,
                          const AtpgOptions& opt = {});

}  // namespace compsyn
