#include "atpg/redundancy.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>

#include "atpg/scoap.hpp"
#include "exec/exec.hpp"
#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "sat/satpg.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Substitutes the constant `value` for the faulty line. Returns false when
/// the site cannot be substituted (primary-input stems that are also
/// outputs; see below).
bool substitute_constant(Netlist& nl, const StuckFault& f) {
  if (!f.is_stem()) {
    // Branch: only this connection is replaced by the constant.
    NodeId k = nl.add_const(f.value);
    const NodeId src = nl.node(f.node).fanins[static_cast<std::size_t>(f.pin)];
    // replace_fanin rewires every connection from src; for a faithful
    // single-branch substitution rewrite the fanin list positionally.
    std::vector<NodeId> fi = nl.node(f.node).fanins;
    fi[static_cast<std::size_t>(f.pin)] = k;
    nl.redefine(f.node, nl.node(f.node).type, std::move(fi));
    (void)src;
    return true;
  }
  const Node& nd = nl.node(f.node);
  if (nd.type == GateType::Input) {
    // A redundant PI stem: rewire its consumers to a constant. If the PI is
    // itself a primary output we would have to re-home the output marker;
    // this does not occur in practice, so we skip it conservatively.
    if (nd.is_output) return false;
    NodeId k = nl.add_const(f.value);
    const auto fanouts = nl.fanouts()[f.node];  // copy: we mutate below
    for (NodeId y : fanouts) nl.replace_fanin(y, f.node, k);
    return true;
  }
  nl.redefine(f.node, f.value ? GateType::Const1 : GateType::Const0, {});
  return true;
}

}  // namespace

namespace {

/// A fault enumerated before earlier substitutions may reference logic that
/// has since changed; skip sites that no longer exist in the live netlist.
bool fault_site_stale(const Netlist& nl, const StuckFault& f) {
  if (nl.is_dead(f.node)) return true;
  const Node& nd = nl.node(f.node);
  if (f.is_stem()) {
    return nd.type == GateType::Const0 || nd.type == GateType::Const1;
  }
  if (static_cast<std::size_t>(f.pin) >= nd.fanins.size()) return true;
  const GateType src = nl.node(nd.fanins[static_cast<std::size_t>(f.pin)]).type;
  return src == GateType::Const0 || src == GateType::Const1;
}

}  // namespace

namespace {

/// Maximum speculation window: how many faults are decided against one
/// netlist snapshot before the verdicts are committed in fault order. Larger
/// windows expose more parallelism; every substitution discards the
/// not-yet-committed remainder of its window (those faults are re-decided),
/// so the window adapts: it resets to 1 after a substitution (a
/// redundancy-rich stretch proceeds serially, wasting nothing) and doubles
/// after every window that commits cleanly, up to this cap. The evolution
/// depends only on the committed verdicts, never on the job count.
constexpr std::size_t kMaxCommitWindow = 32;

/// Everything the serial sweep would have learned about one fault at its
/// turn, computed against a snapshot so several faults can be decided at
/// once. PODEM and the SAT fallback build all their state per call, so
/// concurrent evaluations share only the read-only netlist.
struct FaultVerdict {
  bool stale = false;
  AtpgStatus podem = AtpgStatus::Aborted;
  bool sat_ran = false;
  SatFaultStatus sat = SatFaultStatus::Unknown;
};

/// Worker-side fault evaluation. With the Session backend the SAT step is
/// NOT taken here: a session is single-threaded, so aborted faults are
/// deferred to the serial commit loop (deferred_session_sat), which re-
/// decides them in fault order -- the same order the one-shot path commits
/// them in, keeping verdicts jobs-invariant.
FaultVerdict evaluate_fault(const Netlist& nl, const StuckFault& f,
                            const RedundancyRemovalOptions& opt,
                            const AtpgOptions& atpg) {
  FaultVerdict v;
  if (fault_site_stale(nl, f)) {
    v.stale = true;
    return v;
  }
  // Per-fault decision time (PODEM plus any inline SAT fallback) for the
  // extended-telemetry histogram; free when extended telemetry is off.
  std::uint64_t t0 = 0;
  const bool telem = telemetry_extended();
  if (telem) {
    t0 = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  const AtpgResult r = run_podem(nl, f, atpg);
  v.podem = r.status;
  if (r.status == AtpgStatus::Aborted && opt.sat_fallback &&
      opt.backend == SatBackend::Oneshot) {
    v.sat_ran = true;
    v.sat = prove_fault(nl, f, opt.sat_budget).status;
  }
  if (telem) {
    const std::uint64_t t1 = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    Histogram::observe_ns("atpg.fault.ns", t1 - t0);
  }
  return v;
}

/// Commit-time SAT completion for the Session backend: one persistent
/// session per netlist state (the caller resets `cid` after any mutation),
/// encoding the circuit once and sharing learned clauses across the state's
/// aborted faults.
SatFaultStatus deferred_session_sat(SatSession& session,
                                    std::optional<SatSession::CircuitId>& cid,
                                    const Netlist& nl, const StuckFault& f,
                                    const RedundancyRemovalOptions& opt) {
  if (!cid) cid = session.add_circuit(nl);
  return session.prove_fault(*cid, f, opt.sat_budget).status;
}

/// Flushes the fallback tallies into the obs counters (no-ops while
/// recording is off); batched once per remove_redundancies call.
void publish_stats(const RedundancyRemovalStats& stats) {
  Counters::incr("redundancy.faults_checked", stats.faults_checked);
  Counters::incr("redundancy.removed", stats.removed);
  Counters::incr("redundancy.aborted", stats.aborted);
  Counters::incr("redundancy.aborted_unresolved", stats.aborted_unresolved);
  Counters::incr("redundancy.sat_fallback.calls", stats.sat_fallback_calls);
  Counters::incr("redundancy.sat_fallback.proofs", stats.sat_proved_untestable);
  Counters::incr("redundancy.sat_fallback.tests", stats.sat_found_tests);
  Counters::incr("redundancy.sat_fallback.unknown", stats.sat_unknown);
}

}  // namespace

RedundancyRemovalStats remove_redundancies(Netlist& nl,
                                           const RedundancyRemovalOptions& opt) {
  RedundancyRemovalStats stats;
  // Multiple substitutions are applied within one sweep, but each
  // untestability proof runs against the netlist as already modified, which
  // keeps every individual substitution sound. (Batching proofs against a
  // single snapshot would not be: removing one redundancy can make another
  // previously redundant fault testable.) A final clean sweep certifies the
  // fixpoint.
  std::uint64_t round_unresolved = 0;
  bool fixpoint = false;
  bool stopped = false;
  // Session backend: one persistent SAT session per netlist state. Any
  // mutation (simplify, substitution) resets it -- proofs must run against
  // the netlist as already modified, exactly like the one-shot path.
  const bool session_sat =
      opt.sat_fallback && opt.backend == SatBackend::Session;
  std::optional<SatSession> session;
  std::optional<SatSession::CircuitId> session_cid;
  // Non-legacy search strategies read NodeId-indexed SCOAP/level tables;
  // these go stale at exactly the points the SAT session does (any netlist
  // mutation), so both are invalidated together and the guidance is
  // rebuilt lazily before the next speculation window.
  AtpgOptions atpg_opt = opt.atpg;
  const bool guided_search = !atpg_opt.strategy.is_legacy();
  std::optional<AtpgGuidance> guidance;
  const auto reset_session = [&] {
    guidance.reset();
    if (!session_sat) return;
    session.emplace();
    session_cid.reset();
  };
  reset_session();
  for (unsigned round = 0; round < opt.max_rounds && !stopped; ++round) {
    // Round boundary: a budget trip (or pending cancel) stops before any
    // new fault is examined; undecided faults stay in the circuit.
    if (robust::should_stop()) {
      stopped = true;
      break;
    }
    nl.simplify();
    reset_session();
    bool removed_this_round = false;
    round_unresolved = 0;
    const auto all_faults = enumerate_faults(nl, /*collapse=*/true);
    // Random-pattern filter: anything detected is testable, no proof needed.
    std::vector<StuckFault> faults;
    try {
      if (opt.random_filter_blocks > 0 && !nl.inputs().empty()) {
        FaultSimulator sim(nl, all_faults);
        Rng rng(opt.random_filter_seed);
        std::vector<std::uint64_t> pi(nl.inputs().size());
        for (unsigned b = 0; b < opt.random_filter_blocks && sim.remaining(); ++b) {
          for (auto& w : pi) w = rng.next();
          sim.simulate_block(pi, 64ull * b);
        }
        for (std::size_t i = 0; i < all_faults.size(); ++i) {
          if (!sim.is_detected(i)) faults.push_back(all_faults[i]);
        }
      } else {
        faults = all_faults;
      }
    } catch (const robust::CancelledError&) {
      stopped = true;
      break;
    }
    // Speculative windowed commit (exec/exec.hpp): up to `window` faults are
    // decided in parallel against the current netlist, then the verdicts are
    // committed serially in fault order. The first substitution mutates the
    // netlist, which invalidates the verdicts behind it -- those faults are
    // re-decided in the next window. Every committed verdict was therefore
    // computed against exactly the netlist state the serial sweep would have
    // used, so verdicts and stats match the serial order at any job count.
    // The same windowed path runs at --jobs=1 so the exec.* counters are
    // jobs-invariant too.
    std::size_t idx = 0;
    std::size_t window = 1;
    while (idx < faults.size()) {
      // Window boundary: the serial commit point. Ticks charged by PODEM
      // and the SAT fallback land here in a jobs-invariant total (the set
      // of faults decided per window never depends on the job count), so a
      // budget stop falls between the same two windows on every run.
      if (robust::should_stop()) {
        stopped = true;
        break;
      }
      const std::size_t end = std::min(idx + window, faults.size());
      nl.topo_order();
      nl.fanouts();  // warm the lazy caches before the parallel region
      if (guided_search && !guidance) {
        guidance.emplace(AtpgGuidance::build(nl));
      }
      atpg_opt.guidance = guidance ? &*guidance : nullptr;
      std::vector<FaultVerdict> verdicts;
      try {
        verdicts = parallel_map<FaultVerdict>(
            end - idx, /*grain=*/1,
            [&](std::size_t k) {
              return evaluate_fault(nl, faults[idx + k], opt, atpg_opt);
            });
      } catch (const robust::CancelledError&) {
        stopped = true;
        break;
      }
      bool mutated = false;
      for (std::size_t k = 0; k < verdicts.size() && !mutated; ++k) {
        const StuckFault& f = faults[idx];
        const FaultVerdict& v = verdicts[k];
        ++idx;
        // Serial commit point: idx's evolution is jobs-invariant, so the
        // progress record stream is too.
        telemetry_progress("redundancy.faults", idx, faults.size());
        if (v.stale) continue;
        ++stats.faults_checked;
        bool untestable = v.podem == AtpgStatus::Untestable;
        if (v.podem == AtpgStatus::Aborted) {
          ++stats.aborted;
          bool sat_ran = v.sat_ran;
          SatFaultStatus sat_status = v.sat;
          if (session_sat) {
            // Deferred completion: the worker left the fault undecided; the
            // session re-decides it here, serially and in fault order, so
            // the verdict stream is identical at any job count.
            try {
              sat_status = deferred_session_sat(*session, session_cid, nl, f, opt);
              sat_ran = true;
            } catch (const robust::CancelledError&) {
              stopped = true;
              break;
            }
          }
          if (sat_ran) {
            ++stats.sat_fallback_calls;
            switch (sat_status) {
              case SatFaultStatus::Untestable:
                ++stats.sat_proved_untestable;
                untestable = true;
                break;
              case SatFaultStatus::Testable:
                ++stats.sat_found_tests;
                break;
              case SatFaultStatus::Unknown:
                ++stats.sat_unknown;
                ++round_unresolved;
                break;
            }
          } else {
            ++round_unresolved;
          }
        }
        if (!untestable) continue;
        if (substitute_constant(nl, f)) {
          ++stats.removed;
          removed_this_round = true;
          nl.simplify();
          reset_session();
          mutated = true;  // verdicts past this fault are stale: re-decide
        }
      }
      if (stopped) break;
      window = mutated ? 1 : std::min(window * 2, kMaxCommitWindow);
    }
    if (stopped) break;
    if (!removed_this_round) {
      fixpoint = true;
      break;
    }
  }
  nl.simplify();
  // Only the final round's unresolved faults matter: earlier rounds were
  // re-examined after the netlist changed.
  stats.aborted_unresolved = round_unresolved;
  stats.irredundant = !stopped && fixpoint && round_unresolved == 0;
  if (stopped) {
    stats.stop_reason = robust::stop_reason();
    stats.status = robust::run_status_for(stats.stop_reason);
  }
  publish_stats(stats);
  if (stats.aborted_unresolved > 0) {
    std::cerr << "warning: redundancy removal finished with "
              << stats.aborted_unresolved
              << " aborted fault(s) left unresolved (neither proven "
                 "untestable nor given a test)\n";
  }
  return stats;
}

bool is_irredundant(const Netlist& nl, const AtpgOptions& opt) {
  // The netlist is const here, so one session encoding serves every
  // SAT-completed fault (the one-shot backend keeps the per-fault miters),
  // and one guidance build serves every strategy-driven PODEM call.
  AtpgOptions eff = opt;
  std::optional<AtpgGuidance> guidance;
  if (!eff.strategy.is_legacy() && eff.guidance == nullptr) {
    guidance.emplace(AtpgGuidance::build(nl));
    eff.guidance = &*guidance;
  }
  std::optional<SatSession> session;
  std::optional<SatSession::CircuitId> cid;
  if (sat_backend() == SatBackend::Session) session.emplace();
  for (const StuckFault& f : enumerate_faults(nl, /*collapse=*/true)) {
    const AtpgResult r = run_podem(nl, f, eff);
    if (r.status == AtpgStatus::Detected) continue;
    if (r.status == AtpgStatus::Aborted) {
      // Same completion step as remove_redundancies: let SAT decide.
      SatFaultStatus st;
      if (session) {
        if (!cid) cid = session->add_circuit(nl);
        st = session->prove_fault(*cid, f).status;
      } else {
        st = prove_fault(nl, f).status;
      }
      if (st == SatFaultStatus::Testable) continue;
    }
    return false;
  }
  return true;
}

}  // namespace compsyn
