#include "atpg/redundancy.hpp"

#include "faults/fault.hpp"
#include "faults/fault_sim.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Substitutes the constant `value` for the faulty line. Returns false when
/// the site cannot be substituted (primary-input stems that are also
/// outputs; see below).
bool substitute_constant(Netlist& nl, const StuckFault& f) {
  if (!f.is_stem()) {
    // Branch: only this connection is replaced by the constant.
    NodeId k = nl.add_const(f.value);
    const NodeId src = nl.node(f.node).fanins[static_cast<std::size_t>(f.pin)];
    // replace_fanin rewires every connection from src; for a faithful
    // single-branch substitution rewrite the fanin list positionally.
    std::vector<NodeId> fi = nl.node(f.node).fanins;
    fi[static_cast<std::size_t>(f.pin)] = k;
    nl.redefine(f.node, nl.node(f.node).type, std::move(fi));
    (void)src;
    return true;
  }
  const Node& nd = nl.node(f.node);
  if (nd.type == GateType::Input) {
    // A redundant PI stem: rewire its consumers to a constant. If the PI is
    // itself a primary output we would have to re-home the output marker;
    // this does not occur in practice, so we skip it conservatively.
    if (nd.is_output) return false;
    NodeId k = nl.add_const(f.value);
    const auto fanouts = nl.fanouts()[f.node];  // copy: we mutate below
    for (NodeId y : fanouts) nl.replace_fanin(y, f.node, k);
    return true;
  }
  nl.redefine(f.node, f.value ? GateType::Const1 : GateType::Const0, {});
  return true;
}

}  // namespace

namespace {

/// A fault enumerated before earlier substitutions may reference logic that
/// has since changed; skip sites that no longer exist in the live netlist.
bool fault_site_stale(const Netlist& nl, const StuckFault& f) {
  if (nl.is_dead(f.node)) return true;
  const Node& nd = nl.node(f.node);
  if (f.is_stem()) {
    return nd.type == GateType::Const0 || nd.type == GateType::Const1;
  }
  if (static_cast<std::size_t>(f.pin) >= nd.fanins.size()) return true;
  const GateType src = nl.node(nd.fanins[static_cast<std::size_t>(f.pin)]).type;
  return src == GateType::Const0 || src == GateType::Const1;
}

}  // namespace

RedundancyRemovalStats remove_redundancies(Netlist& nl,
                                           const RedundancyRemovalOptions& opt) {
  RedundancyRemovalStats stats;
  // Multiple substitutions are applied within one sweep, but each
  // untestability proof runs against the netlist as already modified, which
  // keeps every individual substitution sound. (Batching proofs against a
  // single snapshot would not be: removing one redundancy can make another
  // previously redundant fault testable.) A final clean sweep certifies the
  // fixpoint.
  for (unsigned round = 0; round < opt.max_rounds; ++round) {
    nl.simplify();
    bool removed_this_round = false;
    const auto all_faults = enumerate_faults(nl, /*collapse=*/true);
    // Random-pattern filter: anything detected is testable, no proof needed.
    std::vector<StuckFault> faults;
    if (opt.random_filter_blocks > 0 && !nl.inputs().empty()) {
      FaultSimulator sim(nl, all_faults);
      Rng rng(opt.random_filter_seed);
      std::vector<std::uint64_t> pi(nl.inputs().size());
      for (unsigned b = 0; b < opt.random_filter_blocks && sim.remaining(); ++b) {
        for (auto& w : pi) w = rng.next();
        sim.simulate_block(pi, 64ull * b);
      }
      for (std::size_t i = 0; i < all_faults.size(); ++i) {
        if (!sim.is_detected(i)) faults.push_back(all_faults[i]);
      }
    } else {
      faults = all_faults;
    }
    for (const StuckFault& f : faults) {
      if (fault_site_stale(nl, f)) continue;
      ++stats.faults_checked;
      const AtpgResult r = run_podem(nl, f, opt.atpg);
      if (r.status == AtpgStatus::Aborted) {
        ++stats.aborted;
        continue;
      }
      if (r.status != AtpgStatus::Untestable) continue;
      if (substitute_constant(nl, f)) {
        ++stats.removed;
        removed_this_round = true;
        nl.simplify();
      }
    }
    if (!removed_this_round) {
      stats.irredundant = stats.aborted == 0;
      nl.simplify();
      return stats;
    }
  }
  nl.simplify();
  return stats;
}

bool is_irredundant(const Netlist& nl, const AtpgOptions& opt) {
  for (const StuckFault& f : enumerate_faults(nl, /*collapse=*/true)) {
    if (run_podem(nl, f, opt).status != AtpgStatus::Detected) return false;
  }
  return true;
}

}  // namespace compsyn
