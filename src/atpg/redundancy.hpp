// Redundancy removal (the [15] Kajihara/Shiba/Kinoshita substrate used in
// Section 5): any line whose stuck-at-v fault is proven untestable can be
// replaced by the constant v without changing the circuit function; constant
// propagation then shrinks the circuit, which can expose further
// redundancies, so the process iterates to a fixpoint.
//
// Removal is one-fault-at-a-time: after each substitution the fault list is
// rebuilt, because removing one redundancy can make other previously
// redundant faults testable (removing several together is unsound).
//
// Completion: PODEM's backtrack budget can leave faults Aborted (nothing
// proven). With `sat_fallback` enabled, every aborted fault is re-decided by
// the SAT fault miter (sat/satpg.hpp) -- a genuine proof or a test in almost
// all cases -- so aborted faults no longer silently escape the untestability
// sweep. Off by default: the extra proofs trigger extra substitutions, and
// the historical (PODEM-only) results stay reproducible bit-for-bit; the
// bench/example drivers switch it on together with `--verify=sat|both`.
#pragma once

#include <cstdint>

#include "atpg/podem.hpp"
#include "netlist/netlist.hpp"
#include "robust/robust.hpp"
#include "sat/session.hpp"
#include "sat/solver.hpp"

namespace compsyn {

struct RedundancyRemovalOptions {
  AtpgOptions atpg;            // bounded by default (see AtpgOptions)
  unsigned max_rounds = 1000;  // substitutions before giving up
  // Random-pattern pre-filter: faults a few random blocks already detect are
  // certainly testable and skip ATPG entirely. 0 disables the filter.
  unsigned random_filter_blocks = 128;
  std::uint64_t random_filter_seed = 0xF117ull;
  // Re-decide PODEM-aborted faults with the SAT fault miter. Proofs found
  // this way trigger the same constant substitution as PODEM proofs (which
  // changes the resulting circuit, hence opt-in; see the header comment).
  bool sat_fallback = false;
  SolverBudget sat_budget{/*max_conflicts=*/200000, /*max_propagations=*/0};
  // Session: aborted faults are re-decided through one persistent SatSession
  // (shared encoding + learned clauses per netlist state), serially at the
  // commit point so the verdict stream stays jobs-invariant. Oneshot keeps
  // the per-fault fresh-miter path, solved inside the evaluation workers.
  // Defaults to the process-wide --sat flag.
  SatBackend backend = sat_backend();
};

struct RedundancyRemovalStats {
  unsigned removed = 0;            // substitutions applied
  std::uint64_t faults_checked = 0;
  std::uint64_t aborted = 0;       // PODEM hit its backtrack limit
  // SAT fallback outcomes over the aborted faults:
  std::uint64_t sat_fallback_calls = 0;
  std::uint64_t sat_proved_untestable = 0;  // redundancy proofs PODEM missed
  std::uint64_t sat_found_tests = 0;        // testable after all
  std::uint64_t sat_unknown = 0;            // SAT budget also exhausted
  // Faults of the final round with no verdict from either engine; nonzero
  // means `irredundant` cannot be claimed.
  std::uint64_t aborted_unresolved = 0;
  bool irredundant = false;        // true when the final circuit is proven
                                   // free of redundant faults
  // Anytime outcome: Degraded/Interrupted when the sweep wound down early
  // (budget / cancellation). Faults not yet decided are simply left in the
  // circuit — never substituted — so the result is function-equivalent and
  // `irredundant` stays false.
  robust::RunStatus status = robust::RunStatus::Complete;
  robust::StopReason stop_reason = robust::StopReason::None;
};

/// Removes redundancies in place. The circuit function is preserved exactly.
RedundancyRemovalStats remove_redundancies(Netlist& nl,
                                           const RedundancyRemovalOptions& opt = {});

/// True if every (collapsed) stuck-at fault is provably testable. PODEM
/// aborts are re-decided by SAT; an unresolved fault counts as failure.
bool is_irredundant(const Netlist& nl, const AtpgOptions& opt = {});

}  // namespace compsyn
