// Redundancy removal (the [15] Kajihara/Shiba/Kinoshita substrate used in
// Section 5): any line whose stuck-at-v fault is proven untestable can be
// replaced by the constant v without changing the circuit function; constant
// propagation then shrinks the circuit, which can expose further
// redundancies, so the process iterates to a fixpoint.
//
// Removal is one-fault-at-a-time: after each substitution the fault list is
// rebuilt, because removing one redundancy can make other previously
// redundant faults testable (removing several together is unsound).
#pragma once

#include <cstdint>

#include "atpg/podem.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct RedundancyRemovalOptions {
  AtpgOptions atpg;            // bounded by default (see AtpgOptions)
  unsigned max_rounds = 1000;  // substitutions before giving up
  // Random-pattern pre-filter: faults a few random blocks already detect are
  // certainly testable and skip ATPG entirely. 0 disables the filter.
  unsigned random_filter_blocks = 128;
  std::uint64_t random_filter_seed = 0xF117ull;
};

struct RedundancyRemovalStats {
  unsigned removed = 0;            // substitutions applied
  std::uint64_t faults_checked = 0;
  std::uint64_t aborted = 0;       // only nonzero with a backtrack limit
  bool irredundant = false;        // true when the final circuit is proven
                                   // free of redundant faults
};

/// Removes redundancies in place. The circuit function is preserved exactly.
RedundancyRemovalStats remove_redundancies(Netlist& nl,
                                           const RedundancyRemovalOptions& opt = {});

/// True if every (collapsed) stuck-at fault is testable. Complete search.
bool is_irredundant(const Netlist& nl, const AtpgOptions& opt = {});

}  // namespace compsyn
