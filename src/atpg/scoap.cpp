#include "atpg/scoap.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace compsyn {
namespace {

std::uint32_t min_cc(const ScoapMetrics& m, NodeId n) {
  return std::min(m.cc0[n], m.cc1[n]);
}

}  // namespace

ScoapMetrics compute_scoap(const Netlist& nl) {
  const auto sp = Trace::span("atpg.scoap");
  ScoapMetrics m;
  m.cc0.assign(nl.size(), kScoapInf);
  m.cc1.assign(nl.size(), kScoapInf);
  m.co.assign(nl.size(), kScoapInf);

  // Forward pass: controllability, fanins before fanouts.
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    switch (nd.type) {
      case GateType::Input:
        m.cc0[n] = 1;
        m.cc1[n] = 1;
        break;
      case GateType::Const0:
        m.cc0[n] = 0;  // already there; the other side is impossible
        break;
      case GateType::Const1:
        m.cc1[n] = 0;
        break;
      case GateType::Buf:
        m.cc0[n] = scoap_add(m.cc0[nd.fanins[0]], 1);
        m.cc1[n] = scoap_add(m.cc1[nd.fanins[0]], 1);
        break;
      case GateType::Not:
        m.cc0[n] = scoap_add(m.cc1[nd.fanins[0]], 1);
        m.cc1[n] = scoap_add(m.cc0[nd.fanins[0]], 1);
        break;
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor: {
        // Output forced by one controlling input (min) or by all inputs
        // non-controlling (sum).
        const bool c = controlling_value(nd.type);
        std::uint32_t one = kScoapInf, all = 0;
        for (NodeId f : nd.fanins) {
          one = std::min(one, m.cc(f, c));
          all = scoap_add(all, m.cc(f, !c));
        }
        const bool out_c = controlled_output(nd.type);
        (out_c ? m.cc1[n] : m.cc0[n]) = scoap_add(one, 1);
        (out_c ? m.cc0[n] : m.cc1[n]) = scoap_add(all, 1);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Parity DP: cost[p] = cheapest way to make the inputs xor to p.
        std::uint32_t cost0 = 0, cost1 = kScoapInf;
        for (NodeId f : nd.fanins) {
          const std::uint32_t n0 = std::min(scoap_add(cost0, m.cc0[f]),
                                            scoap_add(cost1, m.cc1[f]));
          const std::uint32_t n1 = std::min(scoap_add(cost0, m.cc1[f]),
                                            scoap_add(cost1, m.cc0[f]));
          cost0 = n0;
          cost1 = n1;
        }
        const bool inv = nd.type == GateType::Xnor;
        m.cc1[n] = scoap_add(inv ? cost0 : cost1, 1);
        m.cc0[n] = scoap_add(inv ? cost1 : cost0, 1);
        break;
      }
    }
  }

  // Reverse pass: observability, fanouts before fanins. When node y is
  // reached, every consumer of y has already folded its branch cost into
  // co[y], so co[y] is final and can be pushed down to y's own fanins.
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    const Node& nd = nl.node(n);
    if (nd.is_output) m.co[n] = 0;
    for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
      const NodeId f = nd.fanins[p];
      m.co[f] = std::min(m.co[f], scoap_branch_co(nl, m, n, p));
    }
  }
  return m;
}

std::uint32_t scoap_branch_co(const Netlist& nl, const ScoapMetrics& m,
                              NodeId gate, std::size_t pin) {
  const Node& nd = nl.node(gate);
  if (nd.fanins.empty() || pin >= nd.fanins.size()) return kScoapInf;
  std::uint32_t side = 0;
  switch (nd.type) {
    case GateType::Buf:
    case GateType::Not:
      break;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      // Every other fanin must hold its non-controlling value.
      const bool nc = !controlling_value(nd.type);
      for (std::size_t q = 0; q < nd.fanins.size(); ++q) {
        if (q != pin) side = scoap_add(side, m.cc(nd.fanins[q], nc));
      }
      break;
    }
    case GateType::Xor:
    case GateType::Xnor:
      // Any fixed assignment of the other fanins propagates; take the
      // cheapest side per input.
      for (std::size_t q = 0; q < nd.fanins.size(); ++q) {
        if (q != pin) side = scoap_add(side, min_cc(m, nd.fanins[q]));
      }
      break;
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1:
      return kScoapInf;
  }
  return scoap_add(scoap_add(m.co[gate], side), 1);
}

std::uint32_t scoap_fault_hardness(const Netlist& nl, const ScoapMetrics& m,
                                   const StuckFault& f) {
  NodeId site;
  std::uint32_t obs;
  if (f.is_stem()) {
    site = f.node;
    obs = m.co[f.node];
  } else {
    const std::size_t pin = static_cast<std::size_t>(f.pin);
    site = nl.node(f.node).fanins[pin];
    obs = scoap_branch_co(nl, m, f.node, pin);
  }
  // Detecting s-a-v needs the line at !v, observed at a PO.
  return scoap_add(m.cc(site, !f.value), obs);
}

AtpgGuidance AtpgGuidance::build(const Netlist& nl) {
  AtpgGuidance g;
  g.scoap = compute_scoap(nl);
  g.level = nl.levels();
  g.out_dist.assign(nl.size(), kScoapInf);
  const auto& topo = nl.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const NodeId n = *it;
    const Node& nd = nl.node(n);
    if (nd.is_output) g.out_dist[n] = 0;
    for (NodeId f : nd.fanins) {
      g.out_dist[f] = std::min(g.out_dist[f], scoap_add(g.out_dist[n], 1));
    }
  }
  return g;
}

}  // namespace compsyn
