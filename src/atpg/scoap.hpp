// SCOAP testability measures (Goldstein 1979) over the combinational
// netlist, plus the AtpgGuidance bundle consumed by the strategy-driven
// PODEM (podem.hpp) and the guided ATPG driver (guided.hpp).
//
// Combinational controllability CC0/CC1: the number of line assignments
// needed to force a node to 0/1 (inputs cost 1, every gate adds 1).
// Combinational observability CO: the number of assignments needed to
// propagate a node's value to a primary output (outputs cost 0, every
// gate adds 1 plus the cost of holding its side inputs non-controlling).
// Fanout stems take the minimum over their branch observabilities.
//
// All arithmetic saturates at kScoapInf, which doubles as the score of
// structurally dead or unreachable lines (and of the impossible side of a
// constant). The metrics are pure functions of the netlist: computed once,
// reused across every fault targeted on it, and invalidated by mutation.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// Saturation bound for SCOAP scores; also the score of an impossible or
/// unobservable line. Small enough that sums of a few kScoapInf never wrap
/// a uint32.
inline constexpr std::uint32_t kScoapInf = 0x3fffffffu;

/// Saturating add on SCOAP scores.
inline std::uint32_t scoap_add(std::uint32_t a, std::uint32_t b) {
  const std::uint32_t s = a + b;
  return s >= kScoapInf ? kScoapInf : s;
}

struct ScoapMetrics {
  std::vector<std::uint32_t> cc0;  // per NodeId; kScoapInf when impossible
  std::vector<std::uint32_t> cc1;
  std::vector<std::uint32_t> co;   // stem observability (min over branches)

  /// Cost of setting node n to value v.
  std::uint32_t cc(NodeId n, bool v) const { return v ? cc1[n] : cc0[n]; }
};

/// Computes CC0/CC1 (forward topological pass) and CO (reverse pass) for
/// every live node. Dead nodes score kScoapInf on all three measures.
ScoapMetrics compute_scoap(const Netlist& nl);

/// Observability of the fanout branch feeding pin `pin` of `gate`:
/// CO(gate) + cost of holding the other fanins non-controlling + 1.
std::uint32_t scoap_branch_co(const Netlist& nl, const ScoapMetrics& m,
                              NodeId gate, std::size_t pin);

/// SCOAP detection-hardness of a stuck-at fault: the cost of driving the
/// faulty line to the opposite value plus the observability of that line
/// (branch observability for branch faults). Saturates at kScoapInf --
/// structurally redundant faults score as hard as it gets.
std::uint32_t scoap_fault_hardness(const Netlist& nl, const ScoapMetrics& m,
                                   const StuckFault& f);

/// Everything the strategy policies need, computed once per netlist.
/// Invariant under fault choice; must be rebuilt after any netlist
/// mutation (NodeId-indexed vectors go stale the moment sizes change).
struct AtpgGuidance {
  ScoapMetrics scoap;
  std::vector<std::uint32_t> level;     // structural level (inputs at 0)
  std::vector<std::uint32_t> out_dist;  // gate-distance to the nearest PO
                                        // (0 for POs, kScoapInf when dead)

  static AtpgGuidance build(const Netlist& nl);
};

}  // namespace compsyn
