#include "bench_io/bench_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace compsyn {
namespace {

struct RawGate {
  std::string name;
  std::string func;
  std::vector<std::string> args;
  int line_no = 0;
};

[[noreturn]] void fail(int line_no, const std::string& what) {
  std::ostringstream ss;
  ss << "bench parse error at line " << line_no << ": " << what;
  throw std::runtime_error(ss.str());
}

GateType gate_type_from_name(const std::string& f, int line_no) {
  if (iequals(f, "AND")) return GateType::And;
  if (iequals(f, "NAND")) return GateType::Nand;
  if (iequals(f, "OR")) return GateType::Or;
  if (iequals(f, "NOR")) return GateType::Nor;
  if (iequals(f, "NOT") || iequals(f, "INV")) return GateType::Not;
  if (iequals(f, "BUF") || iequals(f, "BUFF")) return GateType::Buf;
  if (iequals(f, "XOR")) return GateType::Xor;
  if (iequals(f, "XNOR")) return GateType::Xnor;
  if (iequals(f, "CONST0")) return GateType::Const0;
  if (iequals(f, "CONST1")) return GateType::Const1;
  fail(line_no, "unknown gate function '" + f + "'");
}

}  // namespace

Netlist read_bench(std::istream& is, std::string circuit_name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<RawGate> gates;
  std::map<std::string, std::size_t> gate_by_name;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string_view s = trim(line);
    if (s.empty()) continue;

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = s.find('(');
      const std::size_t close = s.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
        fail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment");
      }
      const std::string kind{trim(s.substr(0, open))};
      const std::string arg{trim(s.substr(open + 1, close - open - 1))};
      if (arg.empty()) fail(line_no, "empty signal name");
      if (iequals(kind, "INPUT")) input_names.push_back(arg);
      else if (iequals(kind, "OUTPUT")) output_names.push_back(arg);
      else fail(line_no, "unknown directive '" + kind + "'");
      continue;
    }

    RawGate g;
    g.line_no = line_no;
    g.name = std::string(trim(s.substr(0, eq)));
    std::string_view rhs = trim(s.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      fail(line_no, "expected function(args)");
    }
    g.func = std::string(trim(rhs.substr(0, open)));
    const std::string_view args = trim(rhs.substr(open + 1, close - open - 1));
    if (!args.empty()) g.args = split(args, ',');
    if (g.name.empty()) fail(line_no, "empty gate name");
    if (gate_by_name.count(g.name)) fail(line_no, "duplicate definition of '" + g.name + "'");
    gate_by_name[g.name] = gates.size();
    gates.push_back(std::move(g));
  }

  Netlist nl(std::move(circuit_name));
  std::map<std::string, NodeId> node_by_name;

  for (const std::string& in : input_names) {
    if (node_by_name.count(in)) fail(0, "duplicate INPUT '" + in + "'");
    node_by_name[in] = nl.add_input(in);
  }
  // Scan conversion: every DFF output is a pseudo primary input.
  for (const RawGate& g : gates) {
    if (iequals(g.func, "DFF")) {
      if (g.args.size() != 1) fail(g.line_no, "DFF must have one argument");
      if (node_by_name.count(g.name)) fail(g.line_no, "DFF output redefines '" + g.name + "'");
      node_by_name[g.name] = nl.add_input(g.name);
    }
  }

  // Create combinational gates in dependency order (bench files may use
  // forward references).
  std::vector<int> state(gates.size(), 0);  // 0 unvisited, 1 on stack, 2 done
  auto resolve = [&](const std::string& name, int line_no_ref,
                     auto&& self) -> NodeId {
    auto it = node_by_name.find(name);
    if (it != node_by_name.end()) return it->second;
    auto git = gate_by_name.find(name);
    if (git == gate_by_name.end()) fail(line_no_ref, "undefined signal '" + name + "'");
    const std::size_t gi = git->second;
    const RawGate& g = gates[gi];
    if (state[gi] == 1) fail(g.line_no, "combinational cycle through '" + name + "'");
    state[gi] = 1;
    const GateType t = gate_type_from_name(g.func, g.line_no);
    NodeId id;
    if (t == GateType::Const0 || t == GateType::Const1) {
      if (!g.args.empty()) fail(g.line_no, "CONST takes no arguments");
      id = nl.add_const(t == GateType::Const1, g.name);
    } else {
      std::vector<NodeId> fi;
      fi.reserve(g.args.size());
      for (const std::string& a : g.args) fi.push_back(self(a, g.line_no, self));
      if ((t == GateType::Buf || t == GateType::Not) && fi.size() != 1) {
        fail(g.line_no, "NOT/BUFF must have one argument");
      }
      if (fi.empty()) fail(g.line_no, "gate with no arguments");
      if (fi.size() == 1 && t != GateType::Buf && t != GateType::Not) {
        // Tolerate 1-input AND/OR/...: treat as BUF (or NOT for the
        // inverting types); seen in some distributed bench files.
        id = nl.add_gate(is_inverting(t) ? GateType::Not : GateType::Buf,
                         std::move(fi), g.name);
      } else {
        id = nl.add_gate(t, std::move(fi), g.name);
      }
    }
    state[gi] = 2;
    node_by_name[g.name] = id;
    return id;
  };

  for (const RawGate& g : gates) {
    if (iequals(g.func, "DFF")) continue;
    resolve(g.name, g.line_no, resolve);
  }
  // DFF data inputs become pseudo primary outputs.
  for (const RawGate& g : gates) {
    if (!iequals(g.func, "DFF")) continue;
    nl.mark_output(resolve(g.args[0], g.line_no, resolve));
  }
  for (const std::string& out : output_names) {
    auto it = node_by_name.find(out);
    if (it == node_by_name.end()) fail(0, "OUTPUT of undefined signal '" + out + "'");
    nl.mark_output(it->second);
  }
  return nl;
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream is(text);
  return read_bench(is, std::move(circuit_name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open bench file: " + path);
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return read_bench(is, std::move(name));
}

void write_bench(const Netlist& nl, std::ostream& os) {
  os << "# " << (nl.name().empty() ? std::string("circuit") : nl.name()) << '\n';
  std::vector<std::string> names(nl.size());
  for (NodeId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    names[id] = n.name.empty() ? ("n" + std::to_string(id)) : n.name;
  }
  for (NodeId pi : nl.inputs()) os << "INPUT(" << names[pi] << ")\n";
  for (NodeId po : nl.outputs()) os << "OUTPUT(" << names[po] << ")\n";
  os << '\n';
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    switch (n.type) {
      case GateType::Input:
        continue;
      case GateType::Const0:
        os << names[id] << " = CONST0()\n";
        continue;
      case GateType::Const1:
        os << names[id] << " = CONST1()\n";
        continue;
      default:
        break;
    }
    const char* f = "?";
    switch (n.type) {
      case GateType::Buf: f = "BUFF"; break;
      case GateType::Not: f = "NOT"; break;
      case GateType::And: f = "AND"; break;
      case GateType::Nand: f = "NAND"; break;
      case GateType::Or: f = "OR"; break;
      case GateType::Nor: f = "NOR"; break;
      case GateType::Xor: f = "XOR"; break;
      case GateType::Xnor: f = "XNOR"; break;
      default: break;
    }
    os << names[id] << " = " << f << '(';
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) os << ", ";
      os << names[n.fanins[i]];
    }
    os << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace compsyn
