#include "bench_io/bench_io.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/strings.hpp"

namespace compsyn {

BenchParseError::BenchParseError(int line_, int column_,
                                 const std::string& what)
    : InputError("bench parse error at line " + std::to_string(line_) +
                 ", column " + std::to_string(column_) + ": " + what),
      line(line_),
      column(column_) {}

namespace {

struct RawGate {
  std::string name;
  std::string func;
  std::vector<std::string> args;
  int line_no = 0;
  int name_col = 1;
  int func_col = 1;
  std::vector<int> arg_cols;
};

/// A declared INPUT/OUTPUT with its source position (for duplicate /
/// undefined-signal diagnostics).
struct RawPort {
  std::string name;
  int line_no = 0;
  int col = 1;
};

[[noreturn]] void fail(int line_no, int col, const std::string& what) {
  throw BenchParseError(line_no, col, what);
}

GateType gate_type_from_name(const std::string& f, int line_no, int col) {
  if (iequals(f, "AND")) return GateType::And;
  if (iequals(f, "NAND")) return GateType::Nand;
  if (iequals(f, "OR")) return GateType::Or;
  if (iequals(f, "NOR")) return GateType::Nor;
  if (iequals(f, "NOT") || iequals(f, "INV")) return GateType::Not;
  if (iequals(f, "BUF") || iequals(f, "BUFF")) return GateType::Buf;
  if (iequals(f, "XOR")) return GateType::Xor;
  if (iequals(f, "XNOR")) return GateType::Xnor;
  if (iequals(f, "CONST0")) return GateType::Const0;
  if (iequals(f, "CONST1")) return GateType::Const1;
  fail(line_no, col, "unknown gate function '" + f + "'");
}

}  // namespace

Netlist read_bench(std::istream& is, std::string circuit_name) {
  std::vector<RawPort> input_names;
  std::vector<RawPort> output_names;
  std::vector<RawGate> gates;
  std::map<std::string, std::size_t> gate_by_name;

  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::string_view s = trim(line);
    if (s.empty()) continue;

    // 1-based column of a subview of `line` (trim/substr never copy, so
    // every view's data pointer stays inside the original line buffer).
    const auto col_of = [&line](std::string_view sv) -> int {
      return static_cast<int>(sv.data() - line.data()) + 1;
    };

    const std::size_t eq = s.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) or OUTPUT(x)
      const std::size_t open = s.find('(');
      const std::size_t close = s.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
        fail(line_no, col_of(s), "expected INPUT(...)/OUTPUT(...) or assignment");
      }
      if (!trim(s.substr(close + 1)).empty()) {
        fail(line_no, col_of(s.substr(close + 1)),
             "unexpected text after ')'");
      }
      const std::string_view kind = trim(s.substr(0, open));
      const std::string_view arg = trim(s.substr(open + 1, close - open - 1));
      if (arg.empty()) fail(line_no, col_of(s.substr(open)), "empty signal name");
      RawPort port{std::string(arg), line_no, col_of(arg)};
      if (iequals(kind, "INPUT")) input_names.push_back(std::move(port));
      else if (iequals(kind, "OUTPUT")) output_names.push_back(std::move(port));
      else fail(line_no, col_of(s), "unknown directive '" + std::string(kind) + "'");
      continue;
    }

    RawGate g;
    g.line_no = line_no;
    const std::string_view name = trim(s.substr(0, eq));
    g.name = std::string(name);
    g.name_col = name.empty() ? col_of(s) : col_of(name);
    std::string_view rhs = trim(s.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
      fail(line_no, col_of(rhs), "expected function(args)");
    }
    if (!trim(rhs.substr(close + 1)).empty()) {
      fail(line_no, col_of(rhs.substr(close + 1)), "unexpected text after ')'");
    }
    const std::string_view func = trim(rhs.substr(0, open));
    g.func = std::string(func);
    g.func_col = func.empty() ? col_of(rhs) : col_of(func);
    const std::string_view args = trim(rhs.substr(open + 1, close - open - 1));
    // Split manually so every argument keeps its column.
    if (!args.empty()) {
      std::size_t start = 0;
      for (;;) {
        const std::size_t comma = args.find(',', start);
        const std::string_view raw =
            args.substr(start, comma == std::string_view::npos
                                   ? std::string_view::npos
                                   : comma - start);
        const std::string_view a = trim(raw);
        if (a.empty()) {
          fail(line_no, col_of(raw.empty() ? args.substr(start) : raw),
               "empty argument in '" + g.name + "'");
        }
        g.args.emplace_back(a);
        g.arg_cols.push_back(col_of(a));
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    }
    if (g.name.empty()) fail(line_no, g.name_col, "empty gate name");
    if (gate_by_name.count(g.name)) {
      fail(line_no, g.name_col,
           "duplicate definition of '" + g.name + "' (first defined at line " +
               std::to_string(gates[gate_by_name[g.name]].line_no) + ")");
    }
    gate_by_name[g.name] = gates.size();
    gates.push_back(std::move(g));
  }

  Netlist nl(std::move(circuit_name));
  std::map<std::string, NodeId> node_by_name;

  for (const RawPort& in : input_names) {
    if (node_by_name.count(in.name)) {
      fail(in.line_no, in.col, "duplicate INPUT '" + in.name + "'");
    }
    node_by_name[in.name] = nl.add_input(in.name);
  }
  // Scan conversion: every DFF output is a pseudo primary input.
  for (const RawGate& g : gates) {
    if (iequals(g.func, "DFF")) {
      if (g.args.size() != 1) fail(g.line_no, g.func_col, "DFF must have one argument");
      if (node_by_name.count(g.name)) {
        fail(g.line_no, g.name_col, "DFF output redefines '" + g.name + "'");
      }
      node_by_name[g.name] = nl.add_input(g.name);
    }
  }
  // A combinational gate whose name matches an INPUT (or a DFF output)
  // would silently lose to the input during resolution; reject it instead.
  for (const RawGate& g : gates) {
    if (iequals(g.func, "DFF")) continue;
    if (node_by_name.count(g.name)) {
      fail(g.line_no, g.name_col,
           "gate '" + g.name + "' redefines an INPUT of the same name");
    }
  }

  // Create combinational gates in dependency order (bench files may use
  // forward references). The dependency walk keeps an explicit stack: deep
  // gate chains must not overflow the call stack, and a back edge is
  // reported as a combinational cycle naming the gate it runs through.
  std::vector<int> state(gates.size(), 0);  // 0 unvisited, 1 on stack, 2 done
  struct Frame {
    std::size_t gi;
    std::size_t next = 0;       // args resolved so far
    std::vector<NodeId> fi;
  };
  std::vector<Frame> stack;
  const auto push_gate = [&](std::size_t gi) {
    const RawGate& g = gates[gi];
    if (state[gi] == 1) {
      fail(g.line_no, g.name_col,
           "combinational cycle through '" + g.name + "'");
    }
    state[gi] = 1;
    stack.push_back(Frame{gi, 0, {}});
  };
  const auto resolve = [&](const std::string& root, int ref_line,
                           int ref_col) -> NodeId {
    if (auto it = node_by_name.find(root); it != node_by_name.end()) {
      return it->second;
    }
    auto git = gate_by_name.find(root);
    if (git == gate_by_name.end()) {
      fail(ref_line, ref_col, "undefined signal '" + root + "'");
    }
    push_gate(git->second);
    NodeId result = kNoNode;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const RawGate& g = gates[f.gi];
      if (iequals(g.func, "DFF")) {
        // A DFF reached through a combinational argument: its output is a
        // pseudo input, which node_by_name lookup already covers; landing
        // here means the lookup failed, i.e. an internal inconsistency.
        fail(g.line_no, g.name_col, "DFF '" + g.name + "' in combinational path");
      }
      if (f.next < g.args.size()) {
        const std::string& a = g.args[f.next];
        const int a_col = f.next < g.arg_cols.size() ? g.arg_cols[f.next] : 1;
        if (auto it = node_by_name.find(a); it != node_by_name.end()) {
          f.fi.push_back(it->second);
          ++f.next;
          continue;
        }
        auto agit = gate_by_name.find(a);
        if (agit == gate_by_name.end()) {
          fail(g.line_no, a_col, "undefined signal '" + a + "'");
        }
        push_gate(agit->second);
        continue;
      }
      const GateType t = gate_type_from_name(g.func, g.line_no, g.func_col);
      NodeId id;
      if (t == GateType::Const0 || t == GateType::Const1) {
        if (!g.args.empty()) fail(g.line_no, g.func_col, "CONST takes no arguments");
        id = nl.add_const(t == GateType::Const1, g.name);
      } else {
        std::vector<NodeId> fi = std::move(f.fi);
        if ((t == GateType::Buf || t == GateType::Not) && fi.size() != 1) {
          fail(g.line_no, g.func_col, "NOT/BUFF must have one argument");
        }
        if (fi.empty()) fail(g.line_no, g.func_col, "gate with no arguments");
        if (fi.size() == 1 && t != GateType::Buf && t != GateType::Not) {
          // Tolerate 1-input AND/OR/...: treat as BUF (or NOT for the
          // inverting types); seen in some distributed bench files.
          id = nl.add_gate(is_inverting(t) ? GateType::Not : GateType::Buf,
                           std::move(fi), g.name);
        } else {
          id = nl.add_gate(t, std::move(fi), g.name);
        }
      }
      state[f.gi] = 2;
      node_by_name[g.name] = id;
      stack.pop_back();
      if (stack.empty()) {
        result = id;
      } else {
        stack.back().fi.push_back(id);
        ++stack.back().next;
      }
    }
    return result;
  };

  for (const RawGate& g : gates) {
    if (iequals(g.func, "DFF")) continue;
    resolve(g.name, g.line_no, g.name_col);
  }
  // DFF data inputs become pseudo primary outputs.
  for (const RawGate& g : gates) {
    if (!iequals(g.func, "DFF")) continue;
    nl.mark_output(resolve(g.args[0], g.line_no,
                           g.arg_cols.empty() ? g.func_col : g.arg_cols[0]));
  }
  for (const RawPort& out : output_names) {
    auto it = node_by_name.find(out.name);
    if (it == node_by_name.end()) {
      fail(out.line_no, out.col, "OUTPUT of undefined signal '" + out.name + "'");
    }
    nl.mark_output(it->second);
  }
  return nl;
}

Netlist read_bench_string(const std::string& text, std::string circuit_name) {
  std::istringstream is(text);
  return read_bench(is, std::move(circuit_name));
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open bench file: " + path);
  return read_bench(is, bench_name_from_path(path));
}

std::string bench_name_from_path(const std::string& path) {
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name = name.substr(0, dot);
  return name;
}

void write_bench(const Netlist& nl, std::ostream& os) {
  os << "# " << (nl.name().empty() ? std::string("circuit") : nl.name()) << '\n';
  // Synthetic names for unnamed nodes can collide with given names (e.g. an
  // unnamed node at id 289 next to a node named "n289"), so every emitted
  // name is uniquified deterministically over the live nodes in topo order.
  std::vector<std::string> names(nl.size());
  std::unordered_set<std::string> used;
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    std::string name = n.name.empty() ? ("n" + std::to_string(id)) : n.name;
    while (!used.insert(name).second) name += '_';
    names[id] = std::move(name);
  }
  for (NodeId pi : nl.inputs()) os << "INPUT(" << names[pi] << ")\n";
  for (NodeId po : nl.outputs()) os << "OUTPUT(" << names[po] << ")\n";
  os << '\n';
  for (NodeId id : nl.topo_order()) {
    const Node& n = nl.node(id);
    switch (n.type) {
      case GateType::Input:
        continue;
      case GateType::Const0:
        os << names[id] << " = CONST0()\n";
        continue;
      case GateType::Const1:
        os << names[id] << " = CONST1()\n";
        continue;
      default:
        break;
    }
    const char* f = "?";
    switch (n.type) {
      case GateType::Buf: f = "BUFF"; break;
      case GateType::Not: f = "NOT"; break;
      case GateType::And: f = "AND"; break;
      case GateType::Nand: f = "NAND"; break;
      case GateType::Or: f = "OR"; break;
      case GateType::Nor: f = "NOR"; break;
      case GateType::Xor: f = "XOR"; break;
      case GateType::Xnor: f = "XNOR"; break;
      default: break;
    }
    os << names[id] << " = " << f << '(';
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) os << ", ";
      os << names[n.fanins[i]];
    }
    os << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace compsyn
