// Reader/writer for the ISCAS `.bench` netlist format, plus full-scan
// conversion (each DFF output becomes a pseudo primary input and each DFF
// data input a pseudo primary output), which is how the paper treats the
// fully-scanned ISCAS89 circuits as combinational logic.
//
// Extensions beyond stock .bench, used for round-tripping our own circuits:
// `name = CONST0()` / `name = CONST1()` lines.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"
#include "util/errors.hpp"

namespace compsyn {

/// Every malformed-input failure of the .bench reader: carries the
/// 1-based line and column of the offending token. Derives from InputError
/// (and thus std::runtime_error), so the top-level guard maps it to exit
/// code 3.
struct BenchParseError : InputError {
  BenchParseError(int line_, int column_, const std::string& what);
  int line;
  int column;
};

/// Parses a .bench description. DFFs are scan-converted as described above.
/// Throws BenchParseError with a line/column-numbered message on malformed
/// input (duplicate definitions and combinational cycles included).
Netlist read_bench(std::istream& is, std::string circuit_name = {});
Netlist read_bench_string(const std::string& text, std::string circuit_name = {});
Netlist read_bench_file(const std::string& path);

/// The circuit name read_bench_file derives from a path: the basename with
/// its extension stripped ("dir/c432.bench" -> "c432"). Exposed so other
/// loaders (the serve daemon takes .bench text plus the original path
/// string) name their netlists identically to a file read.
std::string bench_name_from_path(const std::string& path);

/// Writes the live part of the netlist in .bench form. Unnamed nodes get
/// synthetic names (n123). Buf nodes are emitted as BUFF.
void write_bench(const Netlist& nl, std::ostream& os);
std::string write_bench_string(const Netlist& nl);

}  // namespace compsyn
