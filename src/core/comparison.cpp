#include "core/comparison.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "core/signature.hpp"
#include "exec/exec.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"

namespace compsyn {

TruthTable ComparisonSpec::to_truth_table() const {
  // inverse_perm[var] = position of var.
  std::vector<unsigned> pos(n);
  for (unsigned j = 0; j < n; ++j) pos[perm[j]] = j;
  return TruthTable::from_function(n, [&](std::uint32_t m) {
    std::uint32_t value = 0;
    for (unsigned v = 0; v < n; ++v) {
      const std::uint32_t bit = (m >> (n - 1 - v)) & 1u;
      value |= bit << (n - 1 - pos[v]);
    }
    const bool in = value >= lower && value <= upper;
    return in != complemented;
  });
}

bool spec_matches(const ComparisonSpec& spec, const TruthTable& f) {
  if (spec.n != f.num_vars()) return false;
  return spec.to_truth_table() == f;
}

namespace {

/// Derives L and U for a known-valid ordering and verifies contiguity.
/// Returns false if the ON-set values under `perm` are not contiguous.
bool bounds_for_order(const TruthTable& f, const std::vector<unsigned>& perm,
                      std::uint32_t& lower, std::uint32_t& upper) {
  const unsigned n = f.num_vars();
  std::vector<unsigned> pos(n);
  for (unsigned j = 0; j < n; ++j) pos[perm[j]] = j;
  std::uint32_t lo = ~0u, hi = 0, count = 0;
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    if (!f.get(m)) continue;
    std::uint32_t value = 0;
    for (unsigned v = 0; v < n; ++v) {
      const std::uint32_t bit = (m >> (n - 1 - v)) & 1u;
      value |= bit << (n - 1 - pos[v]);
    }
    lo = std::min(lo, value);
    hi = std::max(hi, value);
    ++count;
  }
  if (count == 0) return false;
  if (hi - lo + 1 != count) return false;
  lower = lo;
  upper = hi;
  return true;
}

/// Exact search. Maintains the chosen prefix of the order (original variable
/// indices, MSB first) and a constraint on the rest.
class ExactSearch {
 public:
  ExactSearch(const TruthTable& f, unsigned max_results)
      : original_(f), max_results_(max_results) {}

  std::vector<std::vector<unsigned>> run() {
    std::vector<unsigned> vars(original_.num_vars());
    std::iota(vars.begin(), vars.end(), 0u);
    prefix_.clear();
    results_.clear();
    interval(original_, vars);
    return std::move(results_);
  }

 private:
  bool full() const { return results_.size() >= max_results_; }

  void emit(const std::vector<unsigned>& rest) {
    if (full()) return;
    std::vector<unsigned> order = prefix_;
    order.insert(order.end(), rest.begin(), rest.end());
    results_.push_back(std::move(order));
  }

  static std::vector<unsigned> without(const std::vector<unsigned>& vars, unsigned i) {
    std::vector<unsigned> r;
    r.reserve(vars.size() - 1);
    for (unsigned j = 0; j < vars.size(); ++j) {
      if (j != i) r.push_back(vars[j]);
    }
    return r;
  }

  // ON(f) must be an interval under some completion. Precondition: f != 0.
  void interval(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    assert(!vars.empty());
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f1.is_const_zero()) {
        interval(f0, rest);
      } else if (f0.is_const_zero()) {
        interval(f1, rest);
      } else {
        suffix_prefix(f0, f1, rest);
      }
      prefix_.pop_back();
    }
  }

  // ON(f) must be [l, max] (nonempty) under some completion.
  void suffix(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full() || f.is_const_zero()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f0.is_const_zero()) suffix(f1, rest);        // l >= 2^(m-1)
      else if (f1.is_const_one()) suffix(f0, rest);    // l <  2^(m-1)
      prefix_.pop_back();
    }
  }

  // ON(f) must be [0, u] (nonempty) under some completion.
  void prefix_interval(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full() || f.is_const_zero()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f1.is_const_zero()) prefix_interval(f0, rest);      // u <  2^(m-1)
      else if (f0.is_const_one()) prefix_interval(f1, rest);  // u >= 2^(m-1)
      prefix_.pop_back();
    }
  }

  // ON(g) = [l, max] and ON(h) = [0, u] must hold under one COMMON order.
  void suffix_prefix(const TruthTable& g, const TruthTable& h,
                     const std::vector<unsigned>& vars) {
    if (full() || g.is_const_zero() || h.is_const_zero()) return;
    if (g.is_const_one() && h.is_const_one()) {
      emit(vars);
      return;
    }
    if (g.is_const_one()) {
      prefix_interval(h, vars);
      return;
    }
    if (h.is_const_one()) {
      suffix(g, vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable g0 = g.cofactor(i, false);
      const TruthTable g1 = g.cofactor(i, true);
      const TruthTable h0 = h.cofactor(i, false);
      const TruthTable h1 = h.cofactor(i, true);
      // Possible continuations for the suffix side.
      const TruthTable* gnexts[2];
      int gn = 0;
      if (g0.is_const_zero()) gnexts[gn++] = &g1;
      if (g1.is_const_one()) gnexts[gn++] = &g0;
      // ... and for the prefix side.
      const TruthTable* hnexts[2];
      int hn = 0;
      if (h1.is_const_zero()) hnexts[hn++] = &h0;
      if (h0.is_const_one()) hnexts[hn++] = &h1;
      if (gn != 0 && hn != 0) {
        prefix_.push_back(vars[i]);
        const auto rest = without(vars, i);
        for (int a = 0; a < gn && !full(); ++a) {
          for (int b = 0; b < hn && !full(); ++b) {
            suffix_prefix(*gnexts[a], *hnexts[b], rest);
          }
        }
        prefix_.pop_back();
      }
    }
  }

  const TruthTable& original_;
  unsigned max_results_;
  std::vector<unsigned> prefix_;
  std::vector<std::vector<unsigned>> results_;
};

void collect_specs(const TruthTable& f, bool complemented, const IdentifyOptions& opt,
                   std::vector<ComparisonSpec>& out) {
  const unsigned n = f.num_vars();
  if (f.is_const_zero()) return;  // handled by the caller via the complement

  std::vector<std::vector<unsigned>> orders;
  if (opt.exact) {
    orders = ExactSearch(f, opt.max_results).run();
  } else {
    assert(opt.rng != nullptr && "sampled identification needs an Rng");
    // Identity and reversal first, then random permutations, as in Sec. 5.
    std::vector<unsigned> id(n);
    std::iota(id.begin(), id.end(), 0u);
    std::vector<unsigned> rev(id.rbegin(), id.rend());
    std::vector<std::vector<unsigned>> tries{id, rev};
    for (unsigned t = 2; t < opt.sample_tries; ++t) {
      auto p32 = opt.rng->permutation(n);
      tries.emplace_back(p32.begin(), p32.end());
    }
    for (auto& p : tries) {
      std::uint32_t lo, hi;
      if (bounds_for_order(f, p, lo, hi)) {
        orders.push_back(p);
        if (orders.size() >= opt.max_results) break;
      }
    }
  }

  for (const auto& order : orders) {
    ComparisonSpec spec;
    spec.n = n;
    spec.perm = order;
    spec.complemented = complemented;
    const bool ok = bounds_for_order(f, order, spec.lower, spec.upper);
    assert(ok && "exact search must produce valid orders");
    if (!ok) continue;
    out.push_back(std::move(spec));
  }
}

}  // namespace

namespace {

/// Memo for the exact engine. identify_comparison with opt.exact is a pure
/// function of (f, max_results, try_complement), and resynthesis sweeps ask
/// about the same reduced cone functions over and over; caching the answer is
/// behaviour-preserving (identical spec vectors) and removes the dominant
/// repeated work. Thread-local (the procedures are single-threaded per
/// netlist) and bounded: the map is dropped wholesale past kMemoCap entries.
///
/// Keys are 64-bit functional signatures (core/signature.hpp) of the table
/// plus the query flags; every bucket hit is confirmed by an exact table and
/// flag compare, so a signature collision costs one extra compare but can
/// never return a wrong cached answer -- hit/miss behaviour is identical to
/// the full-string-key cache this replaces, at a fraction of the key cost.
struct ExactMemoEntry {
  TruthTable table;
  bool try_complement = false;
  unsigned max_results = 0;
  std::vector<ComparisonSpec> specs;
};

struct ExactMemo {
  std::unordered_map<std::uint64_t, std::vector<ExactMemoEntry>> buckets;
  std::size_t entries = 0;
  // Per-thread query/hit tallies feeding the profile's memo hit-rate
  // counter track (timing-only data, never part of the report).
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
};

/// Samples the memo hit rate onto the Chrome trace counter track every 256
/// queries (cheap enough to leave unconditional: one add and a mask check,
/// then a relaxed load inside counter() when tracing is off).
void note_memo_query(ExactMemo& memo, bool hit) {
  ++memo.queries;
  if (hit) ++memo.hits;
  if ((memo.queries & 0xffu) == 0) {
    ChromeTrace::counter("identify.memo.hit_rate",
                         static_cast<double>(memo.hits) /
                             static_cast<double>(memo.queries));
  }
}

constexpr std::size_t kMemoCap = 1u << 16;

ExactMemo& exact_memo() {
  thread_local ExactMemo memo;
  return memo;
}

std::uint64_t memo_signature(const TruthTable& f, const IdentifyOptions& opt) {
  std::uint64_t sig = table_signature(f);
  const std::uint64_t flags =
      (static_cast<std::uint64_t>(opt.max_results) << 1) |
      (opt.try_complement ? 1u : 0u);
  return signature_mix(sig, flags);
}

bool memo_entry_matches(const ExactMemoEntry& e, const TruthTable& f,
                        const IdentifyOptions& opt) {
  return e.try_complement == opt.try_complement &&
         e.max_results == opt.max_results && e.table == f;
}

}  // namespace

std::vector<ComparisonSpec> identify_comparison(const TruthTable& f,
                                                const IdentifyOptions& opt) {
  std::vector<ComparisonSpec> out;
  const unsigned n = f.num_vars();
  if (n == 0) {
    // Constant function of zero variables: the empty-product interval.
    ComparisonSpec spec;
    spec.n = 0;
    spec.lower = 0;
    spec.upper = 0;
    spec.complemented = !f.get(0);
    out.push_back(spec);
    return out;
  }
  if (f.is_const_one() || f.is_const_zero()) {
    ComparisonSpec spec;
    spec.n = n;
    spec.perm.resize(n);
    std::iota(spec.perm.begin(), spec.perm.end(), 0u);
    spec.lower = 0;
    spec.upper = f.num_minterms() - 1;
    spec.complemented = f.is_const_zero();
    out.push_back(spec);
    return out;
  }
  if (opt.exact) {
    Counters::incr("identify.exact.attempts");
    ExactMemo& memo = exact_memo();
    // The memo is per thread, so inside an exec region the hit/miss split
    // depends on which worker ran which query -- a jobs-variant quantity.
    // Reports must be identical at any --jobs value, so the memo tallies
    // are only kept for queries made outside parallel regions (the inline
    // --jobs=1 path counts as a region too, keeping the counts invariant).
    const bool tally = !in_parallel_region();
    const std::uint64_t sig = memo_signature(f, opt);
    auto it = memo.buckets.find(sig);
    if (it != memo.buckets.end()) {
      for (const ExactMemoEntry& e : it->second) {
        if (memo_entry_matches(e, f, opt)) {
          if (tally) Counters::incr("identify.memo.hits");
          note_memo_query(memo, /*hit=*/true);
          if (!e.specs.empty()) Counters::incr("identify.exact.hits");
          return e.specs;
        }
      }
      // Same signature, different query: a genuine 64-bit collision. The
      // exact confirm above keeps it harmless; count it so reports surface
      // how (in)frequent collisions are in practice.
      if (tally) Counters::incr("identify.memo.collisions");
    }
    if (tally) Counters::incr("identify.memo.misses");
    note_memo_query(memo, /*hit=*/false);
    collect_specs(f, /*complemented=*/false, opt, out);
    if (opt.try_complement) {
      collect_specs(f.complemented(), /*complemented=*/true, opt, out);
    }
    if (memo.entries >= kMemoCap) {
      memo.buckets.clear();
      memo.entries = 0;
    }
    memo.buckets[sig].push_back(
        ExactMemoEntry{f, opt.try_complement, opt.max_results, out});
    ++memo.entries;
    if (!out.empty()) Counters::incr("identify.exact.hits");
    return out;
  }

  Counters::incr("identify.sampled.attempts");
  collect_specs(f, /*complemented=*/false, opt, out);
  if (opt.try_complement) {
    collect_specs(f.complemented(), /*complemented=*/true, opt, out);
  }
  if (!out.empty()) Counters::incr("identify.sampled.hits");
  return out;
}

void clear_exact_identification_memo() {
  ExactMemo& memo = exact_memo();
  memo.buckets.clear();
  memo.entries = 0;
  memo.queries = 0;
  memo.hits = 0;
}

bool is_comparison_function(const TruthTable& f) {
  IdentifyOptions opt;
  opt.max_results = 1;
  opt.try_complement = false;
  if (f.num_vars() == 0 || f.is_const_zero() || f.is_const_one()) return true;
  return !identify_comparison(f, opt).empty();
}

}  // namespace compsyn
