#include "core/comparison.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <numeric>
#include <unordered_map>

#include "core/signature.hpp"
#include "exec/exec.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"

namespace compsyn {

TruthTable ComparisonSpec::to_truth_table() const {
  // inverse_perm[var] = position of var.
  std::vector<unsigned> pos(n);
  for (unsigned j = 0; j < n; ++j) pos[perm[j]] = j;
  return TruthTable::from_function(n, [&](std::uint32_t m) {
    std::uint32_t value = 0;
    for (unsigned v = 0; v < n; ++v) {
      const std::uint32_t bit = (m >> (n - 1 - v)) & 1u;
      value |= bit << (n - 1 - pos[v]);
    }
    const bool in = value >= lower && value <= upper;
    return in != complemented;
  });
}

bool spec_matches(const ComparisonSpec& spec, const TruthTable& f) {
  if (spec.n != f.num_vars()) return false;
  return spec.to_truth_table() == f;
}

namespace {

/// Derives L and U for a known-valid ordering and verifies contiguity.
/// Returns false if the ON-set values under `perm` are not contiguous.
///
/// The decimal value of a minterm under `perm` is exactly its index in the
/// permuted table, so this is the word-level interval kernel applied to
/// f.permuted(perm) -- no per-minterm gather loop.
bool bounds_for_order(const TruthTable& f, const std::vector<unsigned>& perm,
                      std::uint32_t& lower, std::uint32_t& upper) {
  return f.permuted(perm).interval_bounds(&lower, &upper);
}

/// Exact search. Maintains the chosen prefix of the order (original variable
/// indices, MSB first) and a constraint on the rest.
class ExactSearch {
 public:
  ExactSearch(const TruthTable& f, unsigned max_results)
      : original_(f), max_results_(max_results) {}

  std::vector<std::vector<unsigned>> run() {
    std::vector<unsigned> vars(original_.num_vars());
    std::iota(vars.begin(), vars.end(), 0u);
    prefix_.clear();
    results_.clear();
    prefix_lens_.clear();
    interval(original_, vars);
    truncated_ = results_.size() >= max_results_;
    return std::move(results_);
  }

  /// Per emitted order: how many leading entries the DFS chose explicitly.
  /// The tail past that boundary is a don't-care completion, emitted in
  /// ascending variable order -- the orbit memo's permutation mapping
  /// (derive_orbit_specs) needs the boundary to re-sort the tail for a
  /// relabeled query. Parallel to run()'s result; read after run().
  const std::vector<unsigned>& prefix_lens() const { return prefix_lens_; }

  /// True when the search stopped at the result cap, i.e. the emitted set
  /// may be a strict lex-prefix of all valid orders. Valid after run().
  bool truncated() const { return truncated_; }

 private:
  bool full() const { return results_.size() >= max_results_; }

  void emit(const std::vector<unsigned>& rest) {
    if (full()) return;
    std::vector<unsigned> order = prefix_;
    order.insert(order.end(), rest.begin(), rest.end());
    prefix_lens_.push_back(static_cast<unsigned>(prefix_.size()));
    results_.push_back(std::move(order));
  }

  static std::vector<unsigned> without(const std::vector<unsigned>& vars, unsigned i) {
    std::vector<unsigned> r;
    r.reserve(vars.size() - 1);
    for (unsigned j = 0; j < vars.size(); ++j) {
      if (j != i) r.push_back(vars[j]);
    }
    return r;
  }

  // ON(f) must be an interval under some completion. Precondition: f != 0.
  void interval(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    assert(!vars.empty());
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f1.is_const_zero()) {
        interval(f0, rest);
      } else if (f0.is_const_zero()) {
        interval(f1, rest);
      } else {
        suffix_prefix(f0, f1, rest);
      }
      prefix_.pop_back();
    }
  }

  // ON(f) must be [l, max] (nonempty) under some completion.
  void suffix(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full() || f.is_const_zero()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f0.is_const_zero()) suffix(f1, rest);        // l >= 2^(m-1)
      else if (f1.is_const_one()) suffix(f0, rest);    // l <  2^(m-1)
      prefix_.pop_back();
    }
  }

  // ON(f) must be [0, u] (nonempty) under some completion.
  void prefix_interval(const TruthTable& f, const std::vector<unsigned>& vars) {
    if (full() || f.is_const_zero()) return;
    if (f.is_const_one()) {
      emit(vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable f0 = f.cofactor(i, false);
      const TruthTable f1 = f.cofactor(i, true);
      prefix_.push_back(vars[i]);
      const auto rest = without(vars, i);
      if (f1.is_const_zero()) prefix_interval(f0, rest);      // u <  2^(m-1)
      else if (f0.is_const_one()) prefix_interval(f1, rest);  // u >= 2^(m-1)
      prefix_.pop_back();
    }
  }

  // ON(g) = [l, max] and ON(h) = [0, u] must hold under one COMMON order.
  void suffix_prefix(const TruthTable& g, const TruthTable& h,
                     const std::vector<unsigned>& vars) {
    if (full() || g.is_const_zero() || h.is_const_zero()) return;
    if (g.is_const_one() && h.is_const_one()) {
      emit(vars);
      return;
    }
    if (g.is_const_one()) {
      prefix_interval(h, vars);
      return;
    }
    if (h.is_const_one()) {
      suffix(g, vars);
      return;
    }
    for (unsigned i = 0; i < vars.size() && !full(); ++i) {
      const TruthTable g0 = g.cofactor(i, false);
      const TruthTable g1 = g.cofactor(i, true);
      const TruthTable h0 = h.cofactor(i, false);
      const TruthTable h1 = h.cofactor(i, true);
      // Possible continuations for the suffix side.
      const TruthTable* gnexts[2];
      int gn = 0;
      if (g0.is_const_zero()) gnexts[gn++] = &g1;
      if (g1.is_const_one()) gnexts[gn++] = &g0;
      // ... and for the prefix side.
      const TruthTable* hnexts[2];
      int hn = 0;
      if (h1.is_const_zero()) hnexts[hn++] = &h0;
      if (h0.is_const_one()) hnexts[hn++] = &h1;
      if (gn != 0 && hn != 0) {
        prefix_.push_back(vars[i]);
        const auto rest = without(vars, i);
        for (int a = 0; a < gn && !full(); ++a) {
          for (int b = 0; b < hn && !full(); ++b) {
            suffix_prefix(*gnexts[a], *hnexts[b], rest);
          }
        }
        prefix_.pop_back();
      }
    }
  }

  const TruthTable& original_;
  unsigned max_results_;
  std::vector<unsigned> prefix_;
  std::vector<std::vector<unsigned>> results_;
  std::vector<unsigned> prefix_lens_;
  bool truncated_ = false;
};

/// prefix_lens / truncated are optional side channels for the orbit memo
/// (exact engine only): the DFS boundary of each emitted order and whether
/// the result cap cut the emission short.
void collect_specs(const TruthTable& f, bool complemented, const IdentifyOptions& opt,
                   std::vector<ComparisonSpec>& out,
                   std::vector<unsigned>* prefix_lens = nullptr,
                   bool* truncated = nullptr) {
  const unsigned n = f.num_vars();
  if (f.is_const_zero()) return;  // handled by the caller via the complement

  std::vector<std::vector<unsigned>> orders;
  if (opt.exact) {
    ExactSearch search(f, opt.max_results);
    orders = search.run();
    if (prefix_lens) {
      prefix_lens->insert(prefix_lens->end(), search.prefix_lens().begin(),
                          search.prefix_lens().end());
    }
    if (truncated) *truncated = search.truncated();
  } else {
    assert(opt.rng != nullptr && "sampled identification needs an Rng");
    // Identity and reversal first, then random permutations, as in Sec. 5.
    std::vector<unsigned> id(n);
    std::iota(id.begin(), id.end(), 0u);
    std::vector<unsigned> rev(id.rbegin(), id.rend());
    std::vector<std::vector<unsigned>> tries{id, rev};
    for (unsigned t = 2; t < opt.sample_tries; ++t) {
      auto p32 = opt.rng->permutation(n);
      tries.emplace_back(p32.begin(), p32.end());
    }
    for (auto& p : tries) {
      std::uint32_t lo, hi;
      if (bounds_for_order(f, p, lo, hi)) {
        orders.push_back(p);
        if (orders.size() >= opt.max_results) break;
      }
    }
  }

  for (const auto& order : orders) {
    ComparisonSpec spec;
    spec.n = n;
    spec.perm = order;
    spec.complemented = complemented;
    const bool ok = bounds_for_order(f, order, spec.lower, spec.upper);
    assert(ok && "exact search must produce valid orders");
    if (!ok) continue;
    out.push_back(std::move(spec));
  }
}

}  // namespace

namespace {

/// Memo for the exact engine. identify_comparison with opt.exact is a pure
/// function of (f, max_results, try_complement), and resynthesis sweeps ask
/// about the same reduced cone functions over and over; caching the answer is
/// behaviour-preserving (identical spec vectors) and removes the dominant
/// repeated work. Thread-local (the procedures are single-threaded per
/// netlist) and bounded: the map is dropped wholesale past kMemoCap entries.
///
/// Keys are 64-bit functional signatures (core/signature.hpp) of the table
/// plus the query flags; every bucket hit is confirmed by an exact table and
/// flag compare, so a signature collision costs one extra compare but can
/// never return a wrong cached answer -- hit/miss behaviour is identical to
/// the full-string-key cache this replaces, at a fraction of the key cost.
struct ExactMemoEntry {
  TruthTable table;
  bool try_complement = false;
  unsigned max_results = 0;
  std::vector<ComparisonSpec> specs;
};

struct ExactMemo {
  std::unordered_map<std::uint64_t, std::vector<ExactMemoEntry>> buckets;
  std::size_t entries = 0;
  // Per-thread query/hit tallies feeding the profile's memo hit-rate
  // counter track (timing-only data, never part of the report).
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
};

/// Samples the memo hit rate onto the Chrome trace counter track every 256
/// queries (cheap enough to leave unconditional: one add and a mask check,
/// then a relaxed load inside counter() when tracing is off).
void note_memo_query(ExactMemo& memo, bool hit) {
  ++memo.queries;
  if (hit) ++memo.hits;
  if ((memo.queries & 0xffu) == 0) {
    ChromeTrace::counter("identify.memo.hit_rate",
                         static_cast<double>(memo.hits) /
                             static_cast<double>(memo.queries));
  }
}

constexpr std::size_t kMemoCap = 1u << 16;

ExactMemo& exact_memo() {
  thread_local ExactMemo memo;
  return memo;
}

std::uint64_t memo_signature(const TruthTable& f, const IdentifyOptions& opt) {
  std::uint64_t sig = table_signature(f);
  const std::uint64_t flags =
      (static_cast<std::uint64_t>(opt.max_results) << 1) |
      (opt.try_complement ? 1u : 0u);
  return signature_mix(sig, flags);
}

bool memo_entry_matches(const ExactMemoEntry& e, const TruthTable& f,
                        const IdentifyOptions& opt) {
  return e.try_complement == opt.try_complement &&
         e.max_results == opt.max_results && e.table == f;
}

// --- NPN-orbit memo tier ----------------------------------------------------
//
// Tier 1 above memoises per exact table; this tier collapses whole orbits
// under input permutations x output polarity x whole-input reflection onto
// one entry, keyed by the signature of the orbit's canonical table
// (core/signature.hpp, NpnGroup::kPermOutputReflect). Reuse only happens
// where the returned spec vector is provably byte-identical to a fresh
// search:
//
//  * Negative results (f's orbit is not a comparison orbit) are shared
//    across the whole orbit. Sound because the comparison-function class is
//    closed under input permutations, output complement, and negating ALL
//    inputs at once (the reflection v -> 2^n-1-v maps intervals to
//    intervals) -- but NOT under arbitrary input negations, which is why
//    the orbit group is kPermOutputReflect and not full NPN (3-variable
//    counterexample in DESIGN.md sect. 14).
//  * Positive results are derived through the group element relating the
//    query to the stored representative (derive_orbit_specs below). Output
//    complement swaps the two polarity halves of the search verbatim;
//    the reflection preserves the emitted order sequence (the DFS mirrors
//    suffix <-> prefix_interval node for node); an input permutation maps
//    the DFS tree isomorphically, so the fresh emission set is the mapped
//    set re-sorted lexicographically (emissions are always in lex order) --
//    but only when the stored search was NOT truncated by the result cap,
//    since truncation keeps a lex-prefix whose image need not be the
//    mapped query's lex-prefix. Non-derivable cases fall back to a fresh
//    search (counted as positive_fallbacks).
//
// Every hit is confirmed by an exact canonical-table compare, the relating
// transform is verified by applying it to the representative, and every
// derived spec's bounds are recomputed against the query, so a collision or
// a derivation gap costs one fresh search but can never return a wrong or
// differently-ordered cached answer.
struct NpnOrbitEntry {
  TruthTable canonical;       // exact-confirm key for the orbit
  TruthTable representative;  // first member queried (tier-1-missed)
  NpnTransform to_canonical;  // representative -> canonical
  unsigned max_results = 0;   // flags rep_specs were computed under
  bool has_specs = false;     // orbit-level: is this a comparison orbit?
  bool plain_truncated = false;  // ExactSearch(rep) hit the result cap
  bool comp_truncated = false;   // ExactSearch(~rep) hit the result cap
  std::vector<ComparisonSpec> rep_specs;
  std::vector<unsigned> prefix_lens;  // parallel to rep_specs (DFS boundary)
};

struct NpnMemo {
  std::unordered_map<std::uint64_t, std::vector<NpnOrbitEntry>> buckets;
  std::size_t entries = 0;
};

NpnMemo& npn_memo() {
  thread_local NpnMemo memo;
  return memo;
}

/// Largest cone arity the orbit tier canonicalizes: 2*n! sift steps per
/// tier-1 miss stays well under one exact search at n <= 7 (K <= 8 cones).
constexpr unsigned kNpnMemoMaxVars = 7;
constexpr std::size_t kNpnMemoCap = 1u << 14;

/// Process-global relaxed tallies (comparison.hpp: npn_identify_stats).
struct NpnStatsAtomics {
  std::atomic<std::uint64_t> canonicalizations{0};
  std::atomic<std::uint64_t> orbit_hits{0};
  std::atomic<std::uint64_t> negative_reuses{0};
  std::atomic<std::uint64_t> transform_reuses{0};
  std::atomic<std::uint64_t> positive_fallbacks{0};
  std::atomic<std::uint64_t> confirm_rejects{0};
  std::atomic<std::uint64_t> exact_searches{0};
};

NpnStatsAtomics& npn_atomics() {
  static NpnStatsAtomics stats;
  return stats;
}

void npn_count(std::atomic<std::uint64_t>& counter, const char* name,
               bool tally) {
  counter.fetch_add(1, std::memory_order_relaxed);
  // Registry counters land in reports, so they follow the PR 3 contract:
  // only tallied outside exec regions, keeping reports jobs-invariant.
  if (tally) Counters::incr(name);
}

/// One polarity half of a stored search, in emission order.
struct SpecHalf {
  std::vector<const ComparisonSpec*> specs;
  std::vector<unsigned> lens;  // parallel DFS boundaries
  bool truncated = false;
};

/// Reconstructs the query f's fresh-search spec vector from the stored
/// representative search, given the group element relating them:
///   f == (relate applied to rep)  with  relate = f_to_canonical^-1 o
///   e.to_canonical  (verified by the caller).
/// Returns false (leaving *out unspecified) when the derivation is not
/// provably byte-exact: a non-identity permutation over a truncated half,
/// or a recomputed bound that fails to confirm.
///
/// Why each group generator is byte-exact (DESIGN.md sect. 14):
///  * output complement swaps the polarity halves verbatim (ExactSearch(~g)
///    IS the DFS the complement half of g's query ran);
///  * whole-input reflection leaves the emitted order sequence unchanged
///    (cofactor branches swap 0<->1, turning every suffix node into the
///    mirror prefix_interval node and vice versa, over the same variable
///    choice loop -- same prefixes, same emission points);
///  * an input relabeling maps the DFS tree isomorphically: the fresh
///    emission set is { mapped prefix + ascending mapped tail } and the
///    fresh emission sequence is that set in lex order (children are
///    visited in ascending-label order, so emission order is always lex).
///    Needs the stored half complete -- a truncated half is a lex-prefix
///    whose image need not be the lex-prefix of the mapped set.
bool derive_orbit_specs(const NpnOrbitEntry& e, const TruthTable& f,
                        const NpnTransform& f_to_canonical,
                        std::vector<ComparisonSpec>* out) {
  const unsigned n = f.num_vars();
  // Relating element, rep -> f: compose e.to_canonical with the inverse of
  // f's transform. Both are kPermOutputReflect elements, so the composition
  // is (perm, whole-input reflection, output complement) -- the reflection
  // commutes with permutations and the output bit with everything.
  const bool rel_out = f_to_canonical.output_neg != e.to_canonical.output_neg;
  const bool rel_reflect =
      (f_to_canonical.input_neg != 0) != (e.to_canonical.input_neg != 0);
  // Variable map, rep labels -> f labels: canonical position j holds rep
  // var e.to_canonical.perm[j] and f var f_to_canonical.perm[j], so
  // matching positions gives the label bijection.
  std::vector<unsigned> map(n);
  for (unsigned j = 0; j < n; ++j) {
    map[e.to_canonical.perm[j]] = f_to_canonical.perm[j];
  }
  bool identity = true;
  for (unsigned v = 0; v < n; ++v) identity = identity && map[v] == v;

  // Confirm the composed relation really maps the representative onto the
  // query before trusting any of it (a handful of kernel calls; collisions
  // or composition gaps then cost a fresh search, never a wrong answer).
  {
    NpnTransform relate;
    relate.perm.resize(n);
    for (unsigned v = 0; v < n; ++v) relate.perm[map[v]] = v;
    relate.input_neg = rel_reflect && n != 0 ? ((1u << n) - 1u) : 0u;
    relate.output_neg = rel_out;
    if (!(relate.apply(e.representative) == f)) return false;
  }

  // Split the stored vector into its polarity halves (emission order kept),
  // then pick which stored half feeds which half of the derived query:
  // rel_out swaps them.
  SpecHalf halves[2];  // [0] plain, [1] complemented
  halves[0].truncated = e.plain_truncated;
  halves[1].truncated = e.comp_truncated;
  for (std::size_t i = 0; i < e.rep_specs.size(); ++i) {
    SpecHalf& h = halves[e.rep_specs[i].complemented ? 1 : 0];
    h.specs.push_back(&e.rep_specs[i]);
    h.lens.push_back(e.prefix_lens[i]);
  }

  out->clear();
  for (int target = 0; target < 2; ++target) {
    const SpecHalf& src = halves[rel_out ? 1 - target : target];
    if (src.specs.empty()) continue;
    if (!identity && src.truncated) return false;
    const TruthTable target_table = target ? f.complemented() : f;
    std::vector<std::vector<unsigned>> orders;
    orders.reserve(src.specs.size());
    for (std::size_t i = 0; i < src.specs.size(); ++i) {
      const std::vector<unsigned>& o = src.specs[i]->perm;
      std::vector<unsigned> m(n);
      for (unsigned k = 0; k < n; ++k) m[k] = map[o[k]];
      // The DFS tail is a don't-care completion emitted in ascending
      // order; re-sort the mapped tail the way the fresh search would.
      std::sort(m.begin() + src.lens[i], m.end());
      orders.push_back(std::move(m));
    }
    // Fresh emissions arrive in lex order of the full order vectors.
    if (!identity) std::sort(orders.begin(), orders.end());
    for (auto& order : orders) {
      ComparisonSpec spec;
      spec.n = n;
      spec.complemented = target != 0;
      spec.perm = std::move(order);
      // Recompute (confirming) the interval bounds against the query; a
      // failure here means the derivation reasoning did not hold for this
      // member, so reject the whole reuse and let the caller search.
      if (!bounds_for_order(target_table, spec.perm, spec.lower, spec.upper)) {
        return false;
      }
      out->push_back(std::move(spec));
    }
  }
  return true;
}

}  // namespace

std::vector<ComparisonSpec> identify_comparison(const TruthTable& f,
                                                const IdentifyOptions& opt) {
  std::vector<ComparisonSpec> out;
  const unsigned n = f.num_vars();
  if (n == 0) {
    // Constant function of zero variables: the empty-product interval.
    ComparisonSpec spec;
    spec.n = 0;
    spec.lower = 0;
    spec.upper = 0;
    spec.complemented = !f.get(0);
    out.push_back(spec);
    return out;
  }
  if (f.is_const_one() || f.is_const_zero()) {
    ComparisonSpec spec;
    spec.n = n;
    spec.perm.resize(n);
    std::iota(spec.perm.begin(), spec.perm.end(), 0u);
    spec.lower = 0;
    spec.upper = f.num_minterms() - 1;
    spec.complemented = f.is_const_zero();
    out.push_back(spec);
    return out;
  }
  if (opt.exact) {
    Counters::incr("identify.exact.attempts");
    ExactMemo& memo = exact_memo();
    // The memo is per thread, so inside an exec region the hit/miss split
    // depends on which worker ran which query -- a jobs-variant quantity.
    // Reports must be identical at any --jobs value, so the memo tallies
    // are only kept for queries made outside parallel regions (the inline
    // --jobs=1 path counts as a region too, keeping the counts invariant).
    const bool tally = !in_parallel_region();
    const std::uint64_t sig = memo_signature(f, opt);
    auto it = memo.buckets.find(sig);
    if (it != memo.buckets.end()) {
      for (const ExactMemoEntry& e : it->second) {
        if (memo_entry_matches(e, f, opt)) {
          if (tally) Counters::incr("identify.memo.hits");
          note_memo_query(memo, /*hit=*/true);
          if (!e.specs.empty()) Counters::incr("identify.exact.hits");
          return e.specs;
        }
      }
      // Same signature, different query: a genuine 64-bit collision. The
      // exact confirm above keeps it harmless; count it so reports surface
      // how (in)frequent collisions are in practice.
      if (tally) Counters::incr("identify.memo.collisions");
    }
    if (tally) Counters::incr("identify.memo.misses");
    note_memo_query(memo, /*hit=*/false);

    // Tier 2: the NPN-orbit memo. Only for the flag shape the resynthesis
    // hot path uses (try_complement, bounded results) and small arities;
    // everything else takes the plain search below.
    const bool use_npn = opt.npn_memo && opt.try_complement &&
                         opt.max_results > 0 && n <= kNpnMemoMaxVars;
    NpnMemo& nmemo = npn_memo();
    NpnStatsAtomics& stats = npn_atomics();
    std::uint64_t nsig = 0;
    NpnCanonical canon;
    NpnOrbitEntry* orbit = nullptr;
    bool reused = false;
    if (use_npn) {
      canon = npn_canonicalize(f, NpnGroup::kPermOutputReflect);
      npn_count(stats.canonicalizations, "identify.npn.canonicalizations", tally);
      nsig = signature_mix(table_signature(canon.table), opt.max_results);
      auto nit = nmemo.buckets.find(nsig);
      if (nit != nmemo.buckets.end()) {
        for (NpnOrbitEntry& e : nit->second) {
          if (e.max_results == opt.max_results && e.canonical == canon.table) {
            orbit = &e;
            break;
          }
        }
        if (!orbit) {
          npn_count(stats.confirm_rejects, "identify.npn.confirm_rejects", tally);
        }
      }
      if (orbit) {
        npn_count(stats.orbit_hits, "identify.npn.orbit_hits", tally);
        if (!orbit->has_specs) {
          // The orbit has no comparison member under any permutation,
          // output polarity, or reflection: empty result, no search.
          npn_count(stats.negative_reuses, "identify.npn.negative_reuses", tally);
          reused = true;
        } else if (derive_orbit_specs(*orbit, f, canon.transform, &out)) {
          npn_count(stats.transform_reuses, "identify.npn.transform_reuses", tally);
          reused = true;
        } else {
          // Not derivable byte-exactly (truncated stored search under a
          // real relabeling, or a confirm failed): fresh search below.
          out.clear();
          npn_count(stats.positive_fallbacks, "identify.npn.positive_fallbacks", tally);
        }
      }
    }
    if (!reused) {
      npn_count(stats.exact_searches, "identify.npn.exact_searches", tally);
      std::vector<unsigned> lens;
      bool plain_trunc = false;
      bool comp_trunc = false;
      collect_specs(f, /*complemented=*/false, opt, out,
                    use_npn ? &lens : nullptr, use_npn ? &plain_trunc : nullptr);
      if (opt.try_complement) {
        collect_specs(f.complemented(), /*complemented=*/true, opt, out,
                      use_npn ? &lens : nullptr, use_npn ? &comp_trunc : nullptr);
      }
      if (use_npn && !orbit) {
        if (nmemo.entries >= kNpnMemoCap) {
          nmemo.buckets.clear();
          nmemo.entries = 0;
        }
        nmemo.buckets[nsig].push_back(NpnOrbitEntry{
            std::move(canon.table), f, std::move(canon.transform),
            opt.max_results, !out.empty(), plain_trunc, comp_trunc, out,
            std::move(lens)});
        ++nmemo.entries;
      }
    }
    if (memo.entries >= kMemoCap) {
      memo.buckets.clear();
      memo.entries = 0;
    }
    memo.buckets[sig].push_back(
        ExactMemoEntry{f, opt.try_complement, opt.max_results, out});
    ++memo.entries;
    if (!out.empty()) Counters::incr("identify.exact.hits");
    return out;
  }

  Counters::incr("identify.sampled.attempts");
  collect_specs(f, /*complemented=*/false, opt, out);
  if (opt.try_complement) {
    collect_specs(f.complemented(), /*complemented=*/true, opt, out);
  }
  if (!out.empty()) Counters::incr("identify.sampled.hits");
  return out;
}

void clear_exact_identification_memo() {
  ExactMemo& memo = exact_memo();
  memo.buckets.clear();
  memo.entries = 0;
  memo.queries = 0;
  memo.hits = 0;
  NpnMemo& nmemo = npn_memo();
  nmemo.buckets.clear();
  nmemo.entries = 0;
}

NpnIdentifyStats npn_identify_stats() {
  const NpnStatsAtomics& a = npn_atomics();
  NpnIdentifyStats s;
  s.canonicalizations = a.canonicalizations.load(std::memory_order_relaxed);
  s.orbit_hits = a.orbit_hits.load(std::memory_order_relaxed);
  s.negative_reuses = a.negative_reuses.load(std::memory_order_relaxed);
  s.transform_reuses = a.transform_reuses.load(std::memory_order_relaxed);
  s.positive_fallbacks = a.positive_fallbacks.load(std::memory_order_relaxed);
  s.confirm_rejects = a.confirm_rejects.load(std::memory_order_relaxed);
  s.exact_searches = a.exact_searches.load(std::memory_order_relaxed);
  return s;
}

bool is_comparison_function(const TruthTable& f) {
  IdentifyOptions opt;
  opt.max_results = 1;
  opt.try_complement = false;
  if (f.num_vars() == 0 || f.is_const_zero() || f.is_const_one()) return true;
  return !identify_comparison(f, opt).empty();
}

}  // namespace compsyn
