// Comparison functions (Section 3 of the paper).
//
// A function f(y1..yn) is a comparison function if there is a permutation
// (x1..xn) of its inputs and bounds L <= U such that, reading x1 as the most
// significant bit, the ON-set of f is exactly the decimal interval [L, U].
//
// Identification offers two engines:
//  * exact: a recursive interval test over variable orders. Under an order
//    with MSB v, ON(f) is an interval iff one cofactor is empty and the other
//    an interval, or ON(f|v=0) is a suffix interval and ON(f|v=1) a prefix
//    interval under a COMMON order of the remaining variables; the
//    suffix/prefix predicates recurse the same way. This is complete and fast
//    for the cone sizes the procedures use (K <= 8).
//  * sampled: the paper's heuristic — try up to `sample_tries` permutations
//    and test contiguity of the ON-set values directly (Section 3.4 and the
//    experimental setup in Section 5 use up to 200 permutations).
//
// Both engines also try the complement (Section 5: if the OFF-set minterms
// are consecutive, the unit is built for ~f and its output inverted).
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"
#include "util/rng.hpp"

namespace compsyn {

struct ComparisonSpec {
  unsigned n = 0;                // number of function inputs
  std::vector<unsigned> perm;    // position j (0 = MSB) holds variable perm[j]
  std::uint32_t lower = 0;       // L
  std::uint32_t upper = 0;       // U
  bool complemented = false;     // true: the interval describes ~f

  /// The function the spec denotes (interval membership, complemented if
  /// requested) as a truth table over the original variable order.
  TruthTable to_truth_table() const;
};

struct IdentifyOptions {
  bool exact = true;            // exact recursive search vs permutation sampling
  unsigned sample_tries = 200;  // permutations to try when !exact
  bool try_complement = true;
  unsigned max_results = 16;    // specs to collect per polarity
  Rng* rng = nullptr;           // required when !exact
  // Second memo tier for the exact engine: canonicalize the query under
  // input permutations x output polarity x whole-input reflection
  // (core/signature.hpp, kPermOutputReflect) and share one identification
  // result per orbit. Behaviour-preserving -- reuse only happens where the
  // returned spec vector is provably byte-identical to a fresh search (see
  // DESIGN.md sect. 14) -- so the toggle exists for baselines and
  // differential tests, not correctness.
  bool npn_memo = true;
};

/// All discovered specs (up to 2*max_results), non-complemented first.
/// Constant functions yield the trivial full/empty interval specs.
/// Empty result means f is not a comparison function (for the exact engine,
/// this is a proof; for the sampled engine, only "not found").
std::vector<ComparisonSpec> identify_comparison(const TruthTable& f,
                                                const IdentifyOptions& opt = {});

/// Convenience: true if the exact engine finds a spec.
bool is_comparison_function(const TruthTable& f);

/// Drops the calling thread's exact-identification memo (both the per-table
/// tier and the NPN-orbit tier, buckets and hit/miss tallies). The serve
/// daemon calls this between jobs so every job's identify.memo.* /
/// identify.npn.* counter stream matches a fresh process run; results never
/// depend on memo state (every hit is exact-confirmed), only the hit/miss
/// split does.
void clear_exact_identification_memo();

/// Process-global tallies of the NPN-orbit memo tier, accumulated with
/// relaxed atomics across all threads since process start (never reset, not
/// part of any report). exact_searches counts full exact-engine searches
/// regardless of the npn_memo toggle, so an off-vs-on delta of two
/// snapshots measures exactly the searches the orbit tier removed.
/// Deterministic at --jobs=1; bench binaries snapshot it there.
struct NpnIdentifyStats {
  std::uint64_t canonicalizations = 0;  // orbit keys computed (tier-1 misses)
  std::uint64_t orbit_hits = 0;         // confirmed canonical-table matches
  std::uint64_t negative_reuses = 0;    // "not a comparison orbit" reused
  std::uint64_t transform_reuses = 0;   // positive specs mapped through the
                                        // stored polarity transform
  std::uint64_t positive_fallbacks = 0; // orbit hit, but only a fresh search
                                        // is byte-exact (perm-related member)
  std::uint64_t confirm_rejects = 0;    // signature or derivation confirm
                                        // failures (collisions; counted, safe)
  std::uint64_t exact_searches = 0;     // full searches actually executed
};
NpnIdentifyStats npn_identify_stats();

/// Checks that a (perm, L, U) triple really describes f (used by tests and
/// by the sampled engine).
bool spec_matches(const ComparisonSpec& spec, const TruthTable& f);

}  // namespace compsyn
