#include "core/comparison_unit.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace compsyn {
namespace {

/// Incremental chain builder that merges same-type neighbours (Figure 4).
class ChainBuilder {
 public:
  ChainBuilder(Netlist& nl, std::vector<NodeId>& new_nodes, bool merge)
      : nl_(nl), new_nodes_(new_nodes), merge_(merge) {}

  /// Starts the chain at its least-significant end with an existing node.
  void start(NodeId seed) {
    cur_ = seed;
    pending_inputs_.clear();
  }

  /// Adds one stage: cur = type(input, cur).
  void add_stage(GateType type, NodeId input) {
    if (merge_ && !pending_inputs_.empty() && pending_type_ == type) {
      pending_inputs_.insert(pending_inputs_.begin(), input);
      return;
    }
    flush();
    pending_type_ = type;
    pending_inputs_ = {input, cur_};
  }

  /// Completes the chain and returns its output node.
  NodeId finish() {
    flush();
    return cur_;
  }

 private:
  void flush() {
    if (pending_inputs_.empty()) return;
    cur_ = nl_.add_gate(pending_type_, pending_inputs_);
    new_nodes_.push_back(cur_);
    pending_inputs_.clear();
  }

  Netlist& nl_;
  std::vector<NodeId>& new_nodes_;
  bool merge_;
  NodeId cur_ = kNoNode;
  GateType pending_type_ = GateType::And;
  std::vector<NodeId> pending_inputs_;
};

}  // namespace

UnitBuildResult build_comparison_unit(Netlist& nl, const ComparisonSpec& spec,
                                      const std::vector<NodeId>& leaves,
                                      const UnitOptions& opt) {
  assert(leaves.size() == spec.n);
  assert(spec.perm.size() == spec.n);
  assert(spec.lower <= spec.upper);
  const unsigned n = spec.n;

  UnitBuildResult res;
  res.kp.assign(n, 0);

  auto bit_l = [&](unsigned j) { return (spec.lower >> (n - 1 - j)) & 1u; };
  auto bit_u = [&](unsigned j) { return (spec.upper >> (n - 1 - j)) & 1u; };
  auto pos_leaf = [&](unsigned j) { return leaves[spec.perm[j]]; };

  std::map<NodeId, NodeId> inverters;  // leaf -> NOT(leaf), shared in the unit
  auto inverted = [&](NodeId leaf) {
    auto it = inverters.find(leaf);
    if (it == inverters.end()) {
      NodeId inv = nl.add_gate(GateType::Not, {leaf});
      res.new_nodes.push_back(inv);
      it = inverters.emplace(leaf, inv).first;
    }
    return it->second;
  };

  // Free variables: leading positions where L and U agree (Definition 2).
  unsigned free_count = 0;
  while (free_count < n && bit_l(free_count) == bit_u(free_count)) ++free_count;

  std::vector<NodeId> top_inputs;
  for (unsigned j = 0; j < free_count; ++j) {
    top_inputs.push_back(bit_l(j) ? pos_leaf(j) : inverted(pos_leaf(j)));
  }

  if (free_count < n) {
    // Non-trivial >=L_F block (omitted when L_F = 0, Section 3.2.2).
    bool lf_zero = true;
    for (unsigned j = free_count; j < n; ++j) lf_zero &= bit_l(j) == 0;
    if (!lf_zero) {
      unsigned jl = n - 1;
      while (bit_l(jl) == 0) --jl;  // strip trailing zeros (Figure 3(b))
      ChainBuilder chain(nl, res.new_nodes, opt.merge_gates);
      chain.start(pos_leaf(jl));  // G at the last 1-bit is a direct connection
      for (unsigned j = jl; j-- > free_count;) {
        chain.add_stage(bit_l(j) ? GateType::And : GateType::Or, pos_leaf(j));
      }
      top_inputs.push_back(chain.finish());
    }
    // Non-trivial <=U_F block (omitted when U_F = 11..1).
    bool uf_ones = true;
    for (unsigned j = free_count; j < n; ++j) uf_ones &= bit_u(j) == 1;
    if (!uf_ones) {
      unsigned ju = n - 1;
      while (bit_u(ju) == 1) --ju;  // strip trailing ones (Figure 3(d))
      ChainBuilder chain(nl, res.new_nodes, opt.merge_gates);
      chain.start(inverted(pos_leaf(ju)));  // inverter stage (Section 3.1)
      for (unsigned j = ju; j-- > free_count;) {
        chain.add_stage(bit_u(j) ? GateType::Or : GateType::And,
                        inverted(pos_leaf(j)));
      }
      top_inputs.push_back(chain.finish());
    }
  }

  NodeId out;
  if (top_inputs.empty()) {
    // No constraints at all: the function is constant 1.
    out = nl.add_const(true);
    res.new_nodes.push_back(out);
  } else if (top_inputs.size() == 1) {
    out = top_inputs[0];
  } else {
    out = nl.add_gate(GateType::And, top_inputs);
    res.new_nodes.push_back(out);
  }
  if (spec.complemented) {
    out = nl.add_gate(GateType::Not, {out});
    res.new_nodes.push_back(out);
  }
  res.output = out;

  // Metrics over the freshly created subgraph.
  std::map<NodeId, std::uint32_t> contrib;  // paths from node to res.output
  std::map<NodeId, std::uint32_t> level;    // logic level within the unit
  contrib[res.output] = 1;
  for (auto it = res.new_nodes.rbegin(); it != res.new_nodes.rend(); ++it) {
    const NodeId y = *it;
    const auto cy = contrib.find(y);
    if (cy == contrib.end()) continue;  // not on a path to the output
    for (NodeId f : nl.node(y).fanins) contrib[f] += cy->second;
  }
  for (unsigned v = 0; v < n; ++v) {
    const auto it = contrib.find(leaves[v]);
    res.kp[v] = it == contrib.end() ? 0 : it->second;
  }
  for (NodeId y : res.new_nodes) {
    const Node& nd = nl.node(y);
    std::uint32_t lv = 0;
    for (NodeId f : nd.fanins) {
      const auto lf = level.find(f);
      lv = std::max(lv, lf == level.end() ? 0u : lf->second);
    }
    level[y] = lv + 1;
    switch (nd.type) {
      case GateType::And:
      case GateType::Or:
      case GateType::Nand:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor:
        res.equiv_gates += nd.fanins.size() - 1;
        break;
      default:
        break;
    }
  }
  const auto lo = level.find(res.output);
  res.depth = lo == level.end() ? 0 : lo->second;
  return res;
}

Netlist build_unit_netlist(const ComparisonSpec& spec, const UnitOptions& opt,
                           UnitBuildResult* result) {
  Netlist nl("comparison_unit");
  std::vector<NodeId> leaves;
  leaves.reserve(spec.n);
  for (unsigned v = 0; v < spec.n; ++v) {
    leaves.push_back(nl.add_input("x" + std::to_string(v + 1)));
  }
  UnitBuildResult res = build_comparison_unit(nl, spec, leaves, opt);
  nl.mark_output(res.output);
  if (result) *result = std::move(res);
  return nl;
}

UnitCost unit_cost(const ComparisonSpec& spec, const UnitOptions& opt) {
  UnitBuildResult res;
  (void)build_unit_netlist(spec, opt, &res);
  UnitCost cost;
  cost.equiv_gates = res.equiv_gates;
  cost.kp = std::move(res.kp);
  cost.depth = res.depth;
  return cost;
}

}  // namespace compsyn
