// Comparison units (Sections 3.1-3.2): the circuit structure implementing a
// comparison function given a ComparisonSpec.
//
// Structure (Figure 5 generalises Figure 1):
//   * free variables (positions where the bits of L and U agree) feed the
//     output AND gate directly, inverted when their common bit is 0;
//   * a >=L_F chain block:  A_i = x_i AND A_(i+1) when l_i = 1,
//                           A_i = x_i OR  A_(i+1) when l_i = 0,
//     with trailing-zero stages omitted (Figure 3(b));
//   * a <=U_F chain block:  B_i = ~x_i OR  B_(i+1) when u_i = 1,
//                           B_i = ~x_i AND B_(i+1) when u_i = 0,
//     with trailing-one stages omitted (Figure 3(d));
//   * trivial bounds (L_F = 0 / U_F = all ones) omit the whole block
//     (Section 3.2.2); if both are trivial the unit is a single AND of the
//     free literals;
//   * consecutive same-type chain gates are merged into one multi-input gate
//     (Figure 4) unless disabled;
//   * a complemented spec gets an output inverter (Section 5).
#pragma once

#include <cstdint>
#include <vector>

#include "core/comparison.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct UnitOptions {
  bool merge_gates = true;  // merge same-type chain neighbours (Figure 4)
};

struct UnitBuildResult {
  NodeId output = kNoNode;           // node computing the function
  std::vector<NodeId> new_nodes;     // every node created, in creation order
  std::uint64_t equiv_gates = 0;     // equivalent 2-input gates added
  std::vector<std::uint32_t> kp;     // paths from variable v to the output
  std::uint32_t depth = 0;           // logic levels through the unit
};

/// Builds the unit inside `nl`. leaves[v] is the node feeding variable v of
/// the spec (v indexes the ORIGINAL variable order, before spec.perm).
/// No nodes are rewired: the caller connects `output` where it is needed.
UnitBuildResult build_comparison_unit(Netlist& nl, const ComparisonSpec& spec,
                                      const std::vector<NodeId>& leaves,
                                      const UnitOptions& opt = {});

/// Standalone unit: a fresh netlist with spec.n inputs (x1..xn in original
/// variable order) and the unit output as the only primary output.
Netlist build_unit_netlist(const ComparisonSpec& spec, const UnitOptions& opt = {},
                           UnitBuildResult* result = nullptr);

/// Cost of a unit without mutating any real circuit (uses a scratch netlist).
struct UnitCost {
  std::uint64_t equiv_gates = 0;
  std::vector<std::uint32_t> kp;  // per original variable
  std::uint32_t depth = 0;
};
UnitCost unit_cost(const ComparisonSpec& spec, const UnitOptions& opt = {});

}  // namespace compsyn
