#include "core/cones.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>

#include "netlist/equivalence.hpp"

namespace compsyn {
namespace {

bool is_gate(const Netlist& nl, NodeId n) {
  const GateType t = nl.node(n).type;
  return t != GateType::Input && t != GateType::Const0 && t != GateType::Const1;
}

bool is_const(const Netlist& nl, NodeId n) {
  const GateType t = nl.node(n).type;
  return t == GateType::Const0 || t == GateType::Const1;
}

/// Canonical state for deduplication: the sorted interior set.
struct ConeKey {
  std::vector<NodeId> interior;
  bool operator<(const ConeKey& o) const { return interior < o.interior; }
};

}  // namespace

std::vector<Cone> enumerate_cones(const Netlist& nl, NodeId root,
                                  const ConeOptions& opt) {
  assert(is_gate(nl, root) && !nl.is_dead(root));
  std::vector<Cone> out;
  std::set<ConeKey> seen;

  // Builds the leaf set for a given interior set; constants never count as
  // leaves (their values are folded into the cone function).
  auto make_cone = [&](std::vector<NodeId> interior) {
    std::sort(interior.begin(), interior.end());
    Cone c;
    c.root = root;
    c.interior = std::move(interior);
    std::set<NodeId> leaves;
    for (NodeId g : c.interior) {
      for (NodeId f : nl.node(g).fanins) {
        if (!std::binary_search(c.interior.begin(), c.interior.end(), f) &&
            !is_const(nl, f)) {
          leaves.insert(f);
        }
      }
    }
    c.leaves.assign(leaves.begin(), leaves.end());
    return c;
  };

  const unsigned expand_limit = opt.max_leaves + opt.expand_slack;
  std::size_t visited = 0;

  Cone seed = make_cone({root});
  if (seed.leaves.size() > expand_limit) return out;
  seen.insert(ConeKey{seed.interior});
  if (seed.leaves.size() <= opt.max_leaves) out.push_back(seed);
  std::vector<Cone> frontier{std::move(seed)};
  ++visited;

  while (!frontier.empty() && visited < opt.max_cones) {
    std::vector<Cone> next;
    for (const Cone& c : frontier) {
      for (NodeId leaf : c.leaves) {
        if (!is_gate(nl, leaf)) continue;  // primary inputs stay leaves
        std::vector<NodeId> interior = c.interior;
        interior.push_back(leaf);
        ConeKey key{interior};
        std::sort(key.interior.begin(), key.interior.end());
        if (seen.count(key)) continue;
        Cone grown = make_cone(key.interior);
        if (grown.leaves.size() > expand_limit) continue;
        seen.insert(std::move(key));
        ++visited;
        if (grown.leaves.size() <= opt.max_leaves) out.push_back(grown);
        next.push_back(std::move(grown));
        if (visited >= opt.max_cones) break;
      }
      if (visited >= opt.max_cones) break;
    }
    frontier = std::move(next);
  }
  return out;
}

TruthTable cone_function(const Netlist& nl, const Cone& cone) {
  const unsigned k = static_cast<unsigned>(cone.leaves.size());
  if (k > 16) throw std::invalid_argument("cone too wide for a truth table");

  // Local topological order of the interior (the netlist's global order
  // restricted to the cone).
  std::vector<NodeId> order;
  for (NodeId n : nl.topo_order()) {
    if (std::binary_search(cone.interior.begin(), cone.interior.end(), n)) {
      order.push_back(n);
    }
  }
  assert(order.size() == cone.interior.size());

  TruthTable t(k);
  const std::uint32_t minterms = 1u << k;
  std::vector<std::uint64_t> value(nl.size(), 0);
  std::vector<std::uint64_t> ins;
  for (std::uint32_t base = 0; base < minterms; base += 64) {
    // Pack up to 64 consecutive minterm indices into one word per leaf.
    // Word bit b corresponds to minterm (base+b); leaf i is variable i,
    // i.e. bit (k-1-i) of the minterm value.
    for (unsigned i = 0; i < k; ++i) {
      const unsigned shift = k - 1 - i;
      std::uint64_t w;
      if (shift < 6) {
        w = exhaustive_mask(shift);
      } else {
        w = ((base >> shift) & 1u) ? ~0ull : 0ull;
      }
      value[cone.leaves[i]] = w;
    }
    for (NodeId g : cone.interior) {
      for (NodeId f : nl.node(g).fanins) {
        if (nl.node(f).type == GateType::Const1) value[f] = ~0ull;
        else if (nl.node(f).type == GateType::Const0) value[f] = 0;
      }
    }
    for (NodeId g : order) {
      ins.clear();
      for (NodeId f : nl.node(g).fanins) ins.push_back(value[f]);
      value[g] = eval_gate(nl.node(g).type, ins);
    }
    const std::uint64_t w = value[cone.root];
    const std::uint32_t limit = std::min<std::uint32_t>(64, minterms - base);
    for (std::uint32_t b = 0; b < limit; ++b) {
      t.set(base + b, (w >> b) & 1ull);
    }
  }
  return t;
}

std::uint64_t removable_gate_count(const Netlist& nl, const Cone& cone,
                                   std::vector<NodeId>* removable_out) {
  const auto& fanouts = nl.fanouts();
  std::set<NodeId> removable{cone.root};
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId g : cone.interior) {
      if (removable.count(g)) continue;
      // Primary-output gates must stay (their function is observable).
      if (nl.node(g).is_output) continue;
      bool all_removable = true;
      for (NodeId y : fanouts[g]) all_removable &= removable.count(y) != 0;
      // A gate with no fanout at all is dead logic; treat as removable.
      if (all_removable) {
        removable.insert(g);
        changed = true;
      }
    }
  }
  std::uint64_t total = 0;
  for (NodeId g : removable) {
    const Node& nd = nl.node(g);
    switch (nd.type) {
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor:
        total += nd.fanins.size() - 1;
        break;
      default:
        break;
    }
  }
  if (removable_out) removable_out->assign(removable.begin(), removable.end());
  return total;
}

}  // namespace compsyn
