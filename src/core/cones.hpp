// Candidate-subcircuit (cone) enumeration per Section 4.1: starting from the
// single gate driving line g, repeatedly absorb a leaf's driver gate into the
// subcircuit, keeping at most K inputs. Constants are absorbed for free (they
// are not real inputs). The process is exhaustive up to `max_cones` distinct
// subcircuits per root.
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct Cone {
  NodeId root = kNoNode;
  std::vector<NodeId> leaves;    // external inputs I', sorted ascending
  std::vector<NodeId> interior;  // gates inside the cone, incl. root, sorted
};

struct ConeOptions {
  unsigned max_leaves = 6;      // the paper's K (5 or 6 in the experiments)
  std::size_t max_cones = 2000; // safety cap on the enumeration per root
  // Extension beyond the paper: cones with up to max_leaves + expand_slack
  // inputs keep expanding (they can shrink back under K when reconvergent
  // fanout is absorbed) but only cones within max_leaves are emitted as
  // candidates. expand_slack = 0 reproduces the paper's enumeration exactly.
  unsigned expand_slack = 3;
};

/// All distinct cones rooted at `root` (root must be a live gate node).
std::vector<Cone> enumerate_cones(const Netlist& nl, NodeId root,
                                  const ConeOptions& opt = {});

/// The function the cone computes at its root in terms of its leaves, with
/// leaf i = variable i (MSB-first per the TruthTable convention).
TruthTable cone_function(const Netlist& nl, const Cone& cone);

/// Equivalent-2-input gate count of the interior gates that would become
/// removable if the cone were replaced: root's gate plus every interior gate
/// whose fanout goes, transitively, only to removable cone gates. Interior
/// gates with external fanout (shared logic) are excluded, as in Section 4.1.
std::uint64_t removable_gate_count(const Netlist& nl, const Cone& cone,
                                   std::vector<NodeId>* removable = nullptr);

}  // namespace compsyn
