#include "core/multi_unit.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/rng.hpp"

namespace compsyn {

TruthTable MultiUnitSpec::to_truth_table() const {
  assert(!parts.empty());
  TruthTable acc(parts[0].n);
  for (const ComparisonSpec& p : parts) {
    const TruthTable t = p.to_truth_table();
    for (std::uint32_t m = 0; m < acc.num_minterms(); ++m) {
      if (t.get(m)) acc.set(m, true);
    }
  }
  return complemented ? acc.complemented() : acc;
}

namespace {

/// Maximal runs of consecutive ON values of f under `perm`; empty when the
/// run count exceeds `cap`.
std::vector<std::pair<std::uint32_t, std::uint32_t>> runs_under_order(
    const TruthTable& f, const std::vector<unsigned>& perm, unsigned cap) {
  const TruthTable p = f.permuted(perm);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;
  bool in_run = false;
  for (std::uint32_t m = 0; m < p.num_minterms(); ++m) {
    if (p.get(m)) {
      if (!in_run) {
        runs.push_back({m, m});
        in_run = true;
        if (runs.size() > cap) return {};
      } else {
        runs.back().second = m;
      }
    } else {
      in_run = false;
    }
  }
  return runs;
}

}  // namespace

std::optional<MultiUnitSpec> identify_multi_comparison(
    const TruthTable& f, const MultiIdentifyOptions& opt) {
  const unsigned n = f.num_vars();
  std::vector<unsigned> identity(n);
  std::iota(identity.begin(), identity.end(), 0u);

  if (f.is_const_one() || f.is_const_zero() || n == 0) {
    MultiUnitSpec spec;
    ComparisonSpec part;
    part.n = n;
    part.perm = identity;
    part.lower = 0;
    part.upper = n == 0 ? 0 : f.num_minterms() - 1;
    spec.parts.push_back(std::move(part));
    spec.complemented = f.is_const_zero();
    return spec;
  }

  Rng rng(opt.seed);
  std::vector<std::vector<unsigned>> orders{identity,
                                            {identity.rbegin(), identity.rend()}};
  for (unsigned t = 0; t < opt.order_tries; ++t) {
    auto p32 = rng.permutation(n);
    orders.emplace_back(p32.begin(), p32.end());
  }

  std::optional<MultiUnitSpec> best;
  std::size_t best_units = opt.max_units + 1;
  for (const auto& order : orders) {
    for (bool comp : {false, true}) {
      if (comp && !opt.try_complement) continue;
      const TruthTable& target = comp ? f.complemented() : f;
      // Note: complementing then permuting == permuting then complementing.
      const auto runs =
          runs_under_order(target, order, static_cast<unsigned>(best_units) - 1);
      if (runs.empty() || runs.size() >= best_units) continue;
      MultiUnitSpec spec;
      spec.complemented = comp;
      for (const auto& [lo, hi] : runs) {
        ComparisonSpec part;
        part.n = n;
        part.perm = order;
        part.lower = lo;
        part.upper = hi;
        spec.parts.push_back(std::move(part));
      }
      best_units = runs.size();
      best = std::move(spec);
      if (best_units == 1) return best;  // cannot do better
    }
  }
  return best;
}

UnitBuildResult build_multi_unit(Netlist& nl, const MultiUnitSpec& spec,
                                 const std::vector<NodeId>& leaves,
                                 const UnitOptions& opt) {
  assert(!spec.parts.empty());
  const unsigned n = spec.n();
  if (spec.parts.size() == 1) {
    ComparisonSpec single = spec.parts[0];
    single.complemented = spec.complemented;
    return build_comparison_unit(nl, single, leaves, opt);
  }
  UnitBuildResult res;
  res.kp.assign(n, 0);
  std::vector<NodeId> outs;
  for (const ComparisonSpec& part : spec.parts) {
    UnitBuildResult r = build_comparison_unit(nl, part, leaves, opt);
    outs.push_back(r.output);
    res.new_nodes.insert(res.new_nodes.end(), r.new_nodes.begin(), r.new_nodes.end());
    res.equiv_gates += r.equiv_gates;
    for (unsigned v = 0; v < n; ++v) res.kp[v] += r.kp[v];
    res.depth = std::max(res.depth, r.depth);
  }
  NodeId out = nl.add_gate(spec.complemented ? GateType::Nor : GateType::Or, outs);
  res.new_nodes.push_back(out);
  res.equiv_gates += outs.size() - 1;
  res.depth += 1;
  res.output = out;
  return res;
}

UnitCost multi_unit_cost(const MultiUnitSpec& spec, const UnitOptions& opt) {
  Netlist nl("scratch");
  std::vector<NodeId> leaves;
  for (unsigned v = 0; v < spec.n(); ++v) leaves.push_back(nl.add_input());
  UnitBuildResult r = build_multi_unit(nl, spec, leaves, opt);
  UnitCost cost;
  cost.equiv_gates = r.equiv_gates;
  cost.kp = std::move(r.kp);
  cost.depth = r.depth;
  return cost;
}

}  // namespace compsyn
