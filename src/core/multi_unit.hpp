// Section 6, open issue (2): synthesis with MULTIPLE comparison units.
//
// Any function can be written as f = f1 + f2 + ... + fk where each fi is a
// comparison function (Section 3.1): under a fixed input order the ON-set
// decimal values split into maximal runs of consecutive values, and each run
// is one interval. The function is then an OR of comparison units (or the
// complemented OR, when the OFF-set splits into fewer runs).
//
// The run count depends on the variable order; we search heuristically
// (identity, reversal, and a deterministic sample of random orders) for an
// order with at most `max_units` runs. max_units = 1 degenerates to plain
// single-unit identification.
#pragma once

#include <cstdint>
#include <optional>

#include "core/comparison.hpp"
#include "core/comparison_unit.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct MultiUnitSpec {
  // All parts share n and perm; each carries its own [L, U] run and has
  // complemented == false. The OR of the parts equals f (or ~f).
  std::vector<ComparisonSpec> parts;
  bool complemented = false;  // true: parts describe the OFF-set

  unsigned n() const { return parts.empty() ? 0 : parts[0].n; }
  TruthTable to_truth_table() const;
};

struct MultiIdentifyOptions {
  unsigned max_units = 4;
  unsigned order_tries = 64;      // random orders sampled beyond id/reverse
  std::uint64_t seed = 0x5eedull; // deterministic order sampling
  bool try_complement = true;
};

/// Finds a multi-unit decomposition with the fewest runs found (at most
/// max_units); nullopt if every tried order needs more units. Constant
/// functions yield a single trivial part.
std::optional<MultiUnitSpec> identify_multi_comparison(
    const TruthTable& f, const MultiIdentifyOptions& opt = {});

/// Builds the OR-of-units structure; same contract as build_comparison_unit.
UnitBuildResult build_multi_unit(Netlist& nl, const MultiUnitSpec& spec,
                                 const std::vector<NodeId>& leaves,
                                 const UnitOptions& opt = {});

/// Cost without touching a real circuit.
UnitCost multi_unit_cost(const MultiUnitSpec& spec, const UnitOptions& opt = {});

}  // namespace compsyn
