#include "core/resynth.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>

#include "core/multi_unit.hpp"
#include "core/sdc.hpp"
#include "exec/exec.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "paths/paths.hpp"

namespace compsyn {
namespace {

bool is_gate(const Netlist& nl, NodeId n) {
  const GateType t = nl.node(n).type;
  return t != GateType::Input && t != GateType::Const0 && t != GateType::Const1;
}

struct Candidate {
  bool valid = false;
  Cone cone;
  ComparisonSpec spec;
  std::optional<MultiUnitSpec> multi;  // set for Section 6 multi-unit rewrites
  std::vector<unsigned> kept;      // cone-leaf indices the function depends on
  std::vector<NodeId> removable;   // interiors freed by the replacement
  bool is_constant = false;        // cone computes a constant
  bool constant_value = false;
  std::int64_t delta_gates = 0;    // equivalent 2-input gates saved
  std::int64_t delta_paths = 0;    // paths on g saved
};

/// Lexicographic comparison under the configured objective; true if a is
/// strictly better than b.
bool better(const Candidate& a, const Candidate& b, const ResynthOptions& opt) {
  if (!b.valid) return a.valid;
  if (!a.valid) return false;
  switch (opt.objective) {
    case ResynthObjective::Gates:
      if (a.delta_gates != b.delta_gates) return a.delta_gates > b.delta_gates;
      return a.delta_paths > b.delta_paths;
    case ResynthObjective::Paths:
      if (a.delta_paths != b.delta_paths) return a.delta_paths > b.delta_paths;
      // Deterministic tie-break only; Procedure 3 has no gate objective.
      return a.delta_gates > b.delta_gates;
    case ResynthObjective::Combined: {
      const double sa = opt.weight_gates * static_cast<double>(a.delta_gates) +
                        opt.weight_paths * static_cast<double>(a.delta_paths);
      const double sb = opt.weight_gates * static_cast<double>(b.delta_gates) +
                        opt.weight_paths * static_cast<double>(b.delta_paths);
      if (sa != sb) return sa > sb;
      return a.delta_gates > b.delta_gates;
    }
  }
  return false;
}

/// True if applying the candidate is a strict improvement (avoids churn and
/// guarantees termination).
bool improves(const Candidate& c, const ResynthOptions& opt) {
  if (!c.valid) return false;
  switch (opt.objective) {
    case ResynthObjective::Gates:
      return c.delta_gates > 0 || (c.delta_gates == 0 && c.delta_paths > 0);
    case ResynthObjective::Paths:
      return c.delta_paths > 0;
    case ResynthObjective::Combined:
      return opt.weight_gates * static_cast<double>(c.delta_gates) +
                 opt.weight_paths * static_cast<double>(c.delta_paths) >
             0.0;
  }
  return false;
}

/// Per-cone evaluation result: the pieces best_candidate merges in cone
/// order. `base` holds the constant candidate or the best base-spec
/// candidate (plus the don't-care specs when the oracle is concurrent);
/// `multi` the Section 6 multi-unit candidate. When the oracle cannot be
/// queried from workers, the don't-care step is deferred: `needs_dc` is set
/// and `reduced`/`proto`/`n_old` carry the context the merge loop needs to
/// run it serially, in cone order, exactly as the serial sweep would.
struct ConeEval {
  Candidate base;
  Candidate multi;
  bool comparison_cone = false;
  bool needs_dc = false;
  TruthTable reduced;
  Candidate proto;  // cone/kept/removable filled, deltas not
  std::int64_t n_old = 0;
};

/// Builds a candidate for one spec (or multi-unit spec) of a cone; returns
/// an invalid candidate when the spec would increase gates and that is not
/// allowed.
Candidate make_candidate(const Candidate& proto, const TruthTable& reduced,
                         std::int64_t n_old, std::uint64_t np_g,
                         const std::vector<std::uint64_t>& np,
                         const ComparisonSpec* spec, const MultiUnitSpec* multi,
                         const ResynthOptions& opt) {
  const UnitCost cost =
      multi ? multi_unit_cost(*multi, opt.unit) : unit_cost(*spec, opt.unit);
  std::uint64_t paths_new = 0;
  for (unsigned v = 0; v < reduced.num_vars(); ++v) {
    paths_new += np[proto.cone.leaves[proto.kept[v]]] * cost.kp[v];
  }
  Candidate c = proto;
  c.valid = true;
  if (multi) c.multi = *multi;
  else c.spec = *spec;
  c.delta_gates = n_old - static_cast<std::int64_t>(cost.equiv_gates);
  c.delta_paths = static_cast<std::int64_t>(np_g) -
                  static_cast<std::int64_t>(paths_new);
  if (!opt.allow_gate_increase && c.delta_gates < 0) c.valid = false;
  return c;
}

/// The don't-care identification step for one cone (Section 6 (1)): folds
/// every qualifying DC spec into `best`. Callers control WHERE this runs:
/// inline in a worker for concurrent oracles, serially in cone order
/// otherwise, so oracle queries are issued in the same order as the serial
/// sweep and budgeted answers cannot drift with the job count.
void consider_dc_specs(const ConeEval& ev, const ReachabilityOracle& reach,
                       std::uint64_t np_g, const std::vector<std::uint64_t>& np,
                       const ResynthOptions& opt, Candidate& best) {
  // Chaos hook (oracle:N): a timed-out oracle query degrades to the safe
  // over-approximation "every combination reachable" — no don't-cares, so
  // the base candidates stand unmodified.
  if (robust::inject_oracle_timeout()) return;
  std::vector<NodeId> kept_nodes;
  for (unsigned v : ev.proto.kept) kept_nodes.push_back(ev.proto.cone.leaves[v]);
  const TruthTable care = reach.reachable_combos(kept_nodes);
  if (care.is_const_one()) return;
  for (const ComparisonSpec& spec :
       identify_comparison_dc(ev.reduced, care, opt.identify)) {
    const Candidate c = make_candidate(ev.proto, ev.reduced, ev.n_old, np_g, np,
                                       &spec, nullptr, opt);
    if (c.valid && better(c, best, opt)) best = c;
  }
}

/// Everything about one cone that does not require ordered oracle access:
/// cone function, support reduction, base-spec identification, the
/// multi-unit rewrite, and (for concurrent oracles) the DC step.
ConeEval evaluate_cone(const Netlist& nl, const Cone& cone,
                       const std::vector<std::uint64_t>& np, std::uint64_t np_g,
                       const ReachabilityOracle* reach,
                       const ResynthOptions& opt) {
  ConeEval ev;
  const TruthTable f = cone_function(nl, cone);
  std::vector<unsigned> kept;
  const TruthTable reduced = f.support_reduced(&kept);

  Candidate cand;
  cand.cone = cone;
  cand.kept = kept;
  const std::int64_t n_old =
      static_cast<std::int64_t>(removable_gate_count(nl, cone, &cand.removable));

  if (reduced.num_vars() == 0) {
    // The cone computes a constant: everything removable goes away.
    ev.comparison_cone = true;
    cand.valid = true;
    cand.is_constant = true;
    cand.constant_value = reduced.get(0);
    cand.delta_gates = n_old;
    cand.delta_paths = static_cast<std::int64_t>(np_g);
    ev.base = cand;
    return ev;
  }

  ev.proto = cand;
  ev.reduced = reduced;
  ev.n_old = n_old;

  const auto specs = identify_comparison(reduced, opt.identify);
  ev.comparison_cone = !specs.empty();
  for (const ComparisonSpec& spec : specs) {
    const Candidate c =
        make_candidate(cand, reduced, n_old, np_g, np, &spec, nullptr, opt);
    if (c.valid && better(c, ev.base, opt)) ev.base = c;
  }
  if (reach != nullptr) {
    if (reach->concurrent()) {
      consider_dc_specs(ev, *reach, np_g, np, opt, ev.base);
    } else {
      ev.needs_dc = true;
    }
  }
  if (specs.empty() && opt.max_units > 1) {
    MultiIdentifyOptions mopt;
    mopt.max_units = opt.max_units;
    if (const auto multi = identify_multi_comparison(reduced, mopt)) {
      ev.multi = make_candidate(cand, reduced, n_old, np_g, np, nullptr,
                                &*multi, opt);
    }
  }
  return ev;
}

/// Cones per chunk for the candidate-evaluation fan-out. Fixed (never
/// derived from the job count) so the chunk partition -- and with it every
/// exec.* counter -- is identical for --jobs=1 and --jobs=N.
constexpr std::size_t kConeGrain = 8;

std::uint64_t cone_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// evaluate_cone plus extended telemetry: a `resynth.cone.ns` histogram
/// sample and an X slice on the calling thread's trace track (workers
/// included -- this is what makes per-worker activity visible in a
/// --trace-out profile). Free when extended telemetry is off.
ConeEval evaluate_cone_timed(const Netlist& nl, const Cone& cone,
                             const std::vector<std::uint64_t>& np,
                             std::uint64_t np_g,
                             const ReachabilityOracle* reach,
                             const ResynthOptions& opt) {
  if (!telemetry_extended()) {
    return evaluate_cone(nl, cone, np, np_g, reach, opt);
  }
  const std::uint64_t t0 = cone_clock_ns();
  ConeEval ev = evaluate_cone(nl, cone, np, np_g, reach, opt);
  const std::uint64_t dur = cone_clock_ns() - t0;
  Histogram::observe_ns("resynth.cone.ns", dur);
  if (ChromeTrace::enabled()) {
    const std::uint64_t end = ChromeTrace::now_ns();
    ChromeTrace::complete("resynth.cone", end >= dur ? end - dur : 0, end);
  }
  return ev;
}

/// Evaluates every cone at root g and returns the best candidate.
/// `reach` is non-null when SDC-aware identification is enabled.
///
/// Cones of one root are scored concurrently against the read-only netlist
/// (parallel_map, merged in cone-enumeration order), so the selected
/// candidate -- including every tie-break -- is byte-identical at any job
/// count. Sampled identification (opt.identify.exact == false) consumes a
/// caller-owned Rng whose stream depends on evaluation order interleaving,
/// so it keeps the historical fully-serial sweep.
Candidate best_candidate(const Netlist& nl, NodeId g,
                         const std::vector<std::uint64_t>& np,
                         const ReachabilityOracle* reach,
                         const ResynthOptions& opt, ResynthStats& stats) {
  Candidate best;
  ConeOptions cone_opt;
  cone_opt.max_leaves = opt.k;
  cone_opt.max_cones = opt.max_cones;
  cone_opt.expand_slack = opt.cone_slack;
  const std::uint64_t np_g = np[g];

  if (!opt.identify.exact) {
    // Historical serial sweep: base specs, then DC specs, then multi-unit,
    // cone by cone, sharing one Rng stream.
    robust::charge(1);
    for (const Cone& cone : enumerate_cones(nl, g, cone_opt)) {
      ++stats.cones_considered;
      robust::charge(1);
      ConeEval ev = evaluate_cone_timed(nl, cone, np, np_g, nullptr, opt);
      if (ev.comparison_cone) ++stats.comparison_cones;
      if (ev.base.valid && better(ev.base, best, opt)) best = ev.base;
      if (reach != nullptr && !ev.base.is_constant) {
        consider_dc_specs(ev, *reach, np_g, np, opt, best);
      }
      if (ev.multi.valid && better(ev.multi, best, opt)) best = ev.multi;
    }
    return best;
  }

  const std::vector<Cone> cones = enumerate_cones(nl, g, cone_opt);
  stats.cones_considered += cones.size();
  // One tick per root plus one per cone evaluated, charged serially before
  // the fan-out: the tick stream is a pure function of the netlist state,
  // so budget decisions taken between roots are jobs-invariant.
  robust::charge(1 + cones.size());
  // Warm the netlist's lazy caches (topo order, fanouts) before the
  // fan-out: workers only ever read them.
  nl.topo_order();
  nl.fanouts();
  std::vector<ConeEval> evals =
      parallel_map<ConeEval>(cones.size(), kConeGrain, [&](std::size_t i) {
        return evaluate_cone_timed(nl, cones[i], np, np_g, reach, opt);
      });

  // Merge in cone-enumeration order. Every fold replaces only on "strictly
  // better", so the earliest candidate wins ties exactly as in the serial
  // sweep; per-cone order is base specs, DC specs, multi-unit.
  for (ConeEval& ev : evals) {
    if (ev.comparison_cone) ++stats.comparison_cones;
    if (ev.base.valid && better(ev.base, best, opt)) best = ev.base;
    if (ev.needs_dc) consider_dc_specs(ev, *reach, np_g, np, opt, best);
    if (ev.multi.valid && better(ev.multi, best, opt)) best = ev.multi;
  }
  return best;
}

/// One full sweep; returns the number of replacements applied. Sets
/// *stopped when the sweep wound down early (budget or cancellation); the
/// netlist is then valid and function-equivalent — it holds exactly the
/// replacements committed before the stop, each applied atomically between
/// two root visits.
std::uint64_t run_pass(Netlist& nl, const ResynthOptions& opt,
                       ResynthStats& stats, bool* stopped) {
  const std::vector<NodeId> order = nl.topo_order();  // snapshot
  const PathCounts pc = count_paths_clamped(nl);
  std::vector<char> marked(nl.size(), 0);
  std::vector<char> skip(nl.size(), 0);
  for (NodeId o : nl.outputs()) marked[o] = 1;

  // Node functions never change during a pass (replacements are
  // function-preserving), so one reachability oracle serves the whole pass;
  // nodes created mid-pass simply fall back to "everything reachable".
  // Small circuits sweep the whole input space exactly; wider ones decide
  // each combination by incremental SAT.
  std::unique_ptr<ReachabilityOracle> reach;
  if (opt.use_sdc) {
    if (nl.inputs().size() <= opt.sdc_max_inputs) {
      reach = std::make_unique<ReachabilityTable>(nl, opt.sdc_max_inputs);
    } else if (opt.sdc_sat) {
      reach = std::make_unique<SatReachability>(nl);
    }
  }

  std::uint64_t replacements = 0;
  std::uint64_t roots_done = 0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId g = *it;
    if (nl.is_dead(g) || !is_gate(nl, g)) continue;
    if (!marked[g] || skip[g]) continue;

    // Serial decision point: the tick total here is jobs-invariant, so a
    // budget trip stops every run at the same root. Cancellation observed
    // here (or thrown from the fan-out below) abandons only the current
    // root — nothing of it has been committed yet.
    if (robust::should_stop()) {
      *stopped = true;
      break;
    }
    const bool telem = telemetry_extended();
    const std::uint64_t root_t0 = telem ? cone_clock_ns() : 0;
    const std::uint64_t cones_before = stats.cones_considered;
    Candidate cand;
    try {
      cand = best_candidate(nl, g, pc.np, reach.get(), opt, stats);
    } catch (const robust::CancelledError&) {
      *stopped = true;
      break;
    }
    if (telem) {
      // Hot-cone attribution: whole-root candidate search time, keyed by
      // the root gate's name (synthesized gates without one fall back to
      // their node id). Sampled at this serial commit point, so the
      // per-root totals are jobs-invariant up to timing jitter.
      const std::string& gname = nl.node(g).name;
      telemetry_note_cone(
          gname.empty() ? "n" + std::to_string(g) : gname,
          cone_clock_ns() - root_t0, stats.cones_considered - cones_before);
    }
    // Progress over visited roots; `total` is the topo-order upper bound
    // (the sweep skips dead/unmarked nodes, so done stays below it).
    telemetry_progress("resynth.roots", ++roots_done, order.size());

    if (cand.valid && improves(cand, opt)) {
      if (cand.is_constant) {
        nl.redefine(g, cand.constant_value ? GateType::Const1 : GateType::Const0, {});
      } else {
        std::vector<NodeId> leaves;
        leaves.reserve(cand.kept.size());
        for (unsigned v : cand.kept) leaves.push_back(cand.cone.leaves[v]);
        const UnitBuildResult built =
            cand.multi ? build_multi_unit(nl, *cand.multi, leaves, opt.unit)
                       : build_comparison_unit(nl, cand.spec, leaves, opt.unit);
        nl.redefine(g, GateType::Buf, {built.output});
      }
      ++replacements;
      // Gates freed by the replacement become dead immediately so that later
      // shared-gate analyses see accurate fanouts.
      nl.sweep();
      for (NodeId r : cand.removable) {
        if (r != g) skip[r] = 1;
      }
      for (NodeId leaf : cand.cone.leaves) {
        if (is_gate(nl, leaf) && !nl.is_dead(leaf)) marked[leaf] = 1;
      }
    } else {
      // Keep the existing gate; continue the sweep through its fanins.
      for (NodeId f : nl.node(g).fanins) {
        if (is_gate(nl, f)) marked[f] = 1;
      }
    }
  }
  return replacements;
}

}  // namespace

ResynthStats resynthesize(Netlist& nl, const ResynthOptions& opt) {
  const auto whole = Trace::span("resynth");
  ResynthStats stats;
  stats.gates_before = nl.equivalent_gate_count();
  stats.paths_before = count_paths_clamped(nl).total;
  for (unsigned pass = 0; pass < opt.max_passes; ++pass) {
    // Pass-boundary decision point: a budget that tripped during an
    // earlier stage (or the previous pass) stops here before any work.
    if (robust::should_stop()) {
      stats.stop_reason = robust::stop_reason();
      stats.status = robust::run_status_for(stats.stop_reason);
      break;
    }
    ++stats.passes;
    std::uint64_t replaced = 0;
    bool stopped = false;
    {
      const auto sp = Trace::span("resynth.pass");
      replaced = run_pass(nl, opt, stats, &stopped);
      stats.replacements += replaced;
      nl.simplify();
    }
    ResynthPassRecord rec;
    rec.pass = stats.passes;
    rec.replacements = replaced;
    rec.gates = nl.equivalent_gate_count();
    rec.paths = count_paths_clamped(nl).total;
    stats.history.push_back(rec);
    if (stopped) {
      stats.stop_reason = robust::stop_reason();
      stats.status = robust::run_status_for(stats.stop_reason);
      break;
    }
    if (replaced == 0) break;
  }
  stats.gates_after = nl.equivalent_gate_count();
  stats.paths_after = count_paths_clamped(nl).total;
  // Counters mirror the struct so cross-run aggregates line up with the
  // per-run stats; batched here to keep the sweep itself untouched.
  Counters::incr("resynth.runs");
  Counters::incr("resynth.passes", stats.passes);
  Counters::incr("resynth.replacements", stats.replacements);
  Counters::incr("resynth.cones_considered", stats.cones_considered);
  Counters::incr("resynth.comparison_cones", stats.comparison_cones);
  if (stats.gates_before >= stats.gates_after) {
    Counters::incr("resynth.gates_saved", stats.gates_before - stats.gates_after);
  }
  if (stats.paths_before >= stats.paths_after) {
    Counters::incr("resynth.paths_saved", stats.paths_before - stats.paths_after);
  }
  return stats;
}

ResynthStats procedure2(Netlist& nl, unsigned k) {
  ResynthOptions opt;
  opt.objective = ResynthObjective::Gates;
  opt.k = k;
  return resynthesize(nl, opt);
}

ResynthStats procedure3(Netlist& nl, unsigned k) {
  ResynthOptions opt;
  opt.objective = ResynthObjective::Paths;
  opt.k = k;
  opt.allow_gate_increase = true;
  return resynthesize(nl, opt);
}

}  // namespace compsyn
