// Circuit optimisation by comparison-unit replacement (Section 4).
//
// Procedure 2 (reduce gates): reverse-topological sweep from the outputs;
// at every marked gate output g, enumerate candidate cones with at most K
// inputs, keep those whose function is a comparison function, and replace
// the cone giving the largest reduction in equivalent 2-input gates
// (tie-break: fewest paths on g). Inputs of the selected cone are marked for
// later consideration; gates internal to a selected unit are skipped.
// Passes repeat until no further reduction (Section 4.1).
//
// Procedure 3 (reduce paths): same sweep, selecting the cone that minimises
// the number of paths on g, with no gate-count objective (Section 4.2).
//
// Combined objective (Section 4.3): weighted sum of the gate reduction and
// the path reduction. The paper describes this trade-off but does not
// evaluate it; we implement it as the natural generalisation (weights (1,0)
// give Procedure 2's primary criterion, (0,1) Procedure 3's).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/comparison.hpp"
#include "core/cones.hpp"
#include "core/comparison_unit.hpp"
#include "netlist/netlist.hpp"
#include "robust/robust.hpp"

namespace compsyn {

enum class ResynthObjective {
  Gates,     // Procedure 2
  Paths,     // Procedure 3
  Combined,  // Section 4.3 extension
};

struct ResynthOptions {
  ResynthObjective objective = ResynthObjective::Gates;
  unsigned k = 6;                  // max cone inputs (paper: K = 5, 6)
  std::size_t max_cones = 2000;    // enumeration cap per root
  unsigned cone_slack = 3;         // see ConeOptions::expand_slack
  unsigned max_passes = 16;        // fixpoint guard
  IdentifyOptions identify;        // exact by default
  UnitOptions unit;
  // Section 6 extension (2): replace cones whose function is NOT a single
  // comparison function by an OR of up to max_units comparison units.
  // 1 (default) reproduces the paper's procedures exactly.
  unsigned max_units = 1;
  // Section 6 extension (1): exploit unreachable cone-input combinations
  // (satisfiability don't-cares) during identification. Off by default
  // (paper behaviour). Circuits with at most sdc_max_inputs primary inputs
  // use the exact full-sweep ReachabilityTable; wider circuits fall back to
  // the SAT oracle (per-combination incremental queries) when sdc_sat is
  // set, and otherwise run without don't-cares as before.
  bool use_sdc = false;
  unsigned sdc_max_inputs = 14;
  bool sdc_sat = true;
  // Combined-objective weights: score = wg * (gates saved) + wp * (paths
  // saved on g); only used when objective == Combined.
  double weight_gates = 1.0;
  double weight_paths = 1.0;
  // Never allow a replacement that increases the gate count (Procedure 2
  // guarantees this by construction; Procedure 3 allows gate increases, as
  // seen in Table 5).
  bool allow_gate_increase = false;
};

/// Snapshot taken after one full pass (post-simplify), so fixpoint
/// convergence is visible: gates/paths are the circuit totals at that point.
struct ResynthPassRecord {
  unsigned pass = 0;               // 1-based
  std::uint64_t replacements = 0;  // replacements applied during this pass
  std::uint64_t gates = 0;         // equivalent 2-input gates after the pass
  std::uint64_t paths = 0;         // total paths after the pass
};

struct ResynthStats {
  unsigned passes = 0;
  std::uint64_t replacements = 0;
  std::uint64_t cones_considered = 0;
  std::uint64_t comparison_cones = 0;  // cones whose function qualified
  std::uint64_t gates_before = 0;
  std::uint64_t gates_after = 0;
  std::uint64_t paths_before = 0;
  std::uint64_t paths_after = 0;
  std::vector<ResynthPassRecord> history;  // one record per pass, in order
  // Anytime outcome: Complete at a natural fixpoint (or max_passes);
  // Degraded when the tick budget stopped the sweep (best-so-far netlist,
  // every committed replacement fully verified); Interrupted on
  // signal/deadline cancellation. The netlist is function-equivalent to
  // the input in all three cases.
  robust::RunStatus status = robust::RunStatus::Complete;
  robust::StopReason stop_reason = robust::StopReason::None;
};

/// Runs the selected procedure in place until a fixpoint (or max_passes).
/// The circuit function is preserved exactly; the result is swept and
/// simplified. Returns the statistics of the whole run.
ResynthStats resynthesize(Netlist& nl, const ResynthOptions& opt = {});

/// Convenience wrappers matching the paper's procedure names.
ResynthStats procedure2(Netlist& nl, unsigned k = 6);
ResynthStats procedure3(Netlist& nl, unsigned k = 6);

}  // namespace compsyn
