#include "core/sdc.hpp"

#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/signature.hpp"
#include "netlist/equivalence.hpp"
#include "obs/counters.hpp"
#include "util/rng.hpp"

namespace compsyn {

ReachabilityTable::ReachabilityTable(const Netlist& nl, unsigned max_inputs) {
  const unsigned n = static_cast<unsigned>(nl.inputs().size());
  if (n > max_inputs) {
    throw std::invalid_argument("ReachabilityTable: too many inputs for an exact sweep");
  }
  const std::uint64_t patterns = 1ull << n;
  words_ = static_cast<std::size_t>(std::max<std::uint64_t>(1, patterns / 64));
  bits_.assign(nl.size(), std::vector<std::uint64_t>(words_, 0));

  std::vector<std::uint64_t> pi(n);
  std::vector<std::uint64_t> values;
  for (std::uint64_t base = 0; base < patterns; base += 64) {
    const std::size_t w = static_cast<std::size_t>(base / 64);
    for (unsigned i = 0; i < n; ++i) {
      pi[i] = i < 6 ? exhaustive_mask(i)
                    : (((base >> i) & 1ull) ? ~0ull : 0ull);
    }
    nl.simulate_into(pi, values);
    for (NodeId node = 0; node < nl.size(); ++node) bits_[node][w] = values[node];
  }
}

TruthTable ReachabilityTable::reachable_combos(const std::vector<NodeId>& nodes) const {
  const unsigned k = static_cast<unsigned>(nodes.size());
  TruthTable reach(k);
  for (NodeId n : nodes) {
    if (n >= bits_.size()) {
      // Unknown node: be conservative, declare everything reachable.
      return reach.complemented();  // all-ones
    }
  }
  const std::uint64_t patterns = words_ * 64;
  for (std::uint64_t p = 0; p < patterns; ++p) {
    std::uint32_t combo = 0;
    for (unsigned i = 0; i < k; ++i) {
      const std::uint64_t bit = (bits_[nodes[i]][p >> 6] >> (p & 63)) & 1ull;
      combo |= static_cast<std::uint32_t>(bit) << (k - 1 - i);
    }
    reach.set(combo, true);
  }
  return reach;
}

SatReachability::SatReachability(const Netlist& nl, const SolverBudget& per_query,
                                 bool signature_cache)
    : per_query_(per_query), signature_cache_(signature_cache) {
  enc_ = encode_circuit(nl, solver_);
  if (signature_cache_) sigs_ = node_signatures(nl);
}

bool SatReachability::nodes_equal(NodeId a, NodeId b) const {
  if (a == b) return true;
  if (a > b) std::swap(a, b);
  if (a < sigs_.size() && b < sigs_.size() && sigs_[a] != sigs_[b]) return false;
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  if (auto it = eq_memo_.find(key); it != eq_memo_.end()) return it->second;
  // a != b is Sat iff (a & !b) or (!a & b) is: two assumption-only queries,
  // no clauses added. Equality holds only when both directions are Unsat.
  const bool equal =
      solver_.solve({enc_.lit(a, false), enc_.lit(b, true)}, per_query_) ==
          SolveStatus::Unsat &&
      solver_.solve({enc_.lit(a, true), enc_.lit(b, false)}, per_query_) ==
          SolveStatus::Unsat;
  if (eq_memo_.size() >= 4096) eq_memo_.clear();
  eq_memo_.emplace(key, equal);
  return equal;
}

TruthTable SatReachability::solve_combos(const std::vector<NodeId>& nodes) const {
  const unsigned k = static_cast<unsigned>(nodes.size());
  TruthTable reach(k);
  std::vector<SatLit> assumptions(k);
  for (std::uint32_t combo = 0; combo < reach.num_minterms(); ++combo) {
    for (unsigned i = 0; i < k; ++i) {
      const bool bit = ((combo >> (k - 1 - i)) & 1u) != 0;
      assumptions[i] = enc_.lit(nodes[i], /*negated=*/!bit);
    }
    // Sat: some input pattern produces the combination. Unknown: give up on
    // this combination only; assuming reachable is always sound.
    if (solver_.solve(assumptions, per_query_) != SolveStatus::Unsat) {
      reach.set(combo, true);
    }
  }
  return reach;
}

TruthTable SatReachability::reachable_combos(const std::vector<NodeId>& nodes) const {
  const unsigned k = static_cast<unsigned>(nodes.size());
  for (NodeId n : nodes) {
    if (!enc_.has(n)) {
      // Unknown node: be conservative, declare everything reachable.
      return TruthTable(k).complemented();  // all-ones
    }
  }
  if (!signature_cache_) return solve_combos(nodes);

  // Exact repeat of an earlier query: the memoized table is the answer.
  for (const auto& [prev, table] : memo_) {
    if (prev == nodes) {
      Counters::incr("sat.sdc.cache_hits");
      return table;
    }
  }
  // Signature-aligned reuse: a cached node set whose per-position signatures
  // match is a candidate; reuse its table only once SAT proves every paired
  // node functionally equal (equal functions of the primary inputs have the
  // same joint value distribution, hence the same reachable set).
  for (const auto& [prev, table] : memo_) {
    if (prev.size() != nodes.size()) continue;
    bool aligned = true;
    for (unsigned i = 0; aligned && i < k; ++i) {
      aligned = nodes[i] < sigs_.size() && prev[i] < sigs_.size() &&
                sigs_[nodes[i]] == sigs_[prev[i]];
    }
    if (!aligned) continue;
    bool proven = true;
    for (unsigned i = 0; proven && i < k; ++i) {
      proven = nodes_equal(nodes[i], prev[i]);
    }
    if (!proven) continue;
    Counters::incr("sat.sdc.sig_hits");
    TruthTable copy = table;  // copy before emplace_back may reallocate memo_
    memo_.emplace_back(nodes, copy);
    return copy;
  }

  TruthTable reach = solve_combos(nodes);
  if (memo_.size() >= 1024) memo_.clear();
  memo_.emplace_back(nodes, reach);
  return reach;
}

namespace {

struct DcWindow {
  std::uint32_t lower = 0;
  std::uint32_t upper = 0;
  bool extend_lo = false;  // every value below lower is a don't-care
  bool extend_hi = false;  // every value above upper is a don't-care
};

/// Window check under a permutation: valid iff the care ON values are
/// nonempty and no care OFF value falls inside [min_on, max_on]. Also
/// reports whether the window may be extended to 0 / to the maximum through
/// don't-cares (extensions often buy trivial bounds, Section 3.2.2).
bool window_for_order(const TruthTable& f, const TruthTable& care,
                      const std::vector<unsigned>& perm, DcWindow& win) {
  const unsigned n = f.num_vars();
  std::vector<unsigned> pos(n);
  for (unsigned j = 0; j < n; ++j) pos[perm[j]] = j;
  std::uint32_t lo = ~0u, hi = 0;
  bool any_on = false;
  // First pass: bounds of the care ON-set.
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    if (!care.get(m) || !f.get(m)) continue;
    std::uint32_t value = 0;
    for (unsigned v = 0; v < n; ++v) {
      value |= ((m >> (n - 1 - v)) & 1u) << (n - 1 - pos[v]);
    }
    lo = std::min(lo, value);
    hi = std::max(hi, value);
    any_on = true;
  }
  if (!any_on) return false;
  // Second pass: no care OFF value inside the window; track whether any
  // care OFF value exists outside it on either side.
  bool off_below = false, off_above = false;
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    if (!care.get(m) || f.get(m)) continue;
    std::uint32_t value = 0;
    for (unsigned v = 0; v < n; ++v) {
      value |= ((m >> (n - 1 - v)) & 1u) << (n - 1 - pos[v]);
    }
    if (value >= lo && value <= hi) return false;
    off_below |= value < lo;
    off_above |= value > hi;
  }
  win.lower = lo;
  win.upper = hi;
  win.extend_lo = !off_below && lo > 0;
  win.extend_hi = !off_above && hi < f.num_minterms() - 1;
  return true;
}

}  // namespace

std::vector<ComparisonSpec> identify_comparison_dc(const TruthTable& f,
                                                   const TruthTable& care,
                                                   const IdentifyOptions& opt) {
  std::vector<ComparisonSpec> out;
  const unsigned n = f.num_vars();
  if (n == 0 || care.num_vars() != n) return out;

  std::vector<unsigned> identity(n);
  std::iota(identity.begin(), identity.end(), 0u);
  Rng fallback_rng(0x15Full);
  Rng* rng = opt.rng ? opt.rng : &fallback_rng;

  std::vector<std::vector<unsigned>> orders{identity,
                                            {identity.rbegin(), identity.rend()}};
  for (unsigned t = 2; t < std::max(2u, opt.sample_tries); ++t) {
    auto p32 = rng->permutation(n);
    orders.emplace_back(p32.begin(), p32.end());
  }

  const TruthTable fc = f.complemented();
  for (const auto& order : orders) {
    for (bool comp : {false, true}) {
      if (comp && !opt.try_complement) continue;
      DcWindow win;
      if (!window_for_order(comp ? fc : f, care, order, win)) continue;
      auto emit = [&](std::uint32_t lo, std::uint32_t hi) {
        ComparisonSpec spec;
        spec.n = n;
        spec.perm = order;
        spec.complemented = comp;
        spec.lower = lo;
        spec.upper = hi;
        out.push_back(std::move(spec));
      };
      emit(win.lower, win.upper);
      // Extending a bound through don't-cares makes it trivial (the whole
      // block disappears, Section 3.2.2) -- often the cheaper realisation.
      if (win.extend_lo) emit(0, win.upper);
      if (win.extend_hi) emit(win.lower, f.num_minterms() - 1);
      if (win.extend_lo && win.extend_hi) emit(0, f.num_minterms() - 1);
      if (out.size() >= 4 * opt.max_results) return out;
    }
  }
  return out;
}

}  // namespace compsyn
