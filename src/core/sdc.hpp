// Satisfiability don't-cares for cone inputs (Section 6, open issue (1):
// "combinations of values that cannot be obtained due to logic dependencies
// in the circuit can be used during the selection of comparison units").
//
// ReachabilityTable performs an exact full-input-space sweep (so it is
// limited to circuits with few primary inputs) and can then report, for any
// set of nodes, which joint value combinations ever occur. A cone whose
// leaves are logically dependent gets an incompletely specified function;
// identify_comparison_dc searches for an interval that matches the ON-set on
// all REACHABLE minterms, letting unreachable ones fall wherever convenient.
// Replacements based on such specs alter the cone function only on
// unreachable leaf combinations, so the circuit function is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "core/comparison.hpp"
#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

class ReachabilityTable {
 public:
  /// Sweeps all 2^|inputs| patterns; throws std::invalid_argument when the
  /// circuit has more than max_inputs inputs (memory: 2^inputs bits/node).
  explicit ReachabilityTable(const Netlist& nl, unsigned max_inputs = 16);

  /// Truth table over `nodes` (nodes[0] = MSB) whose ON-set is exactly the
  /// joint value combinations that occur for some input pattern. Nodes
  /// created after construction are rejected (returns an all-ones table:
  /// everything assumed reachable, which is always safe).
  TruthTable reachable_combos(const std::vector<NodeId>& nodes) const;

  std::size_t tracked_nodes() const { return bits_.size(); }

 private:
  std::size_t words_ = 0;
  std::vector<std::vector<std::uint64_t>> bits_;  // per node, 2^n pattern bits
};

/// Comparison-function identification with don't-cares: finds (perm, L, U)
/// such that every CARE minterm m satisfies (value(m) in [L,U]) == f(m).
/// Sampled permutation search (identity, reversal, then random orders);
/// complement handled as usual. `care` must have the same width as f.
std::vector<ComparisonSpec> identify_comparison_dc(const TruthTable& f,
                                                   const TruthTable& care,
                                                   const IdentifyOptions& opt = {});

}  // namespace compsyn
