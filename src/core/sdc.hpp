// Satisfiability don't-cares for cone inputs (Section 6, open issue (1):
// "combinations of values that cannot be obtained due to logic dependencies
// in the circuit can be used during the selection of comparison units").
//
// Two interchangeable oracles answer "which joint value combinations of
// these nodes ever occur":
//
//  * ReachabilityTable performs an exact full-input-space sweep (so it is
//    limited to circuits with few primary inputs);
//  * SatReachability decides each combination with an incremental SAT query
//    over the Tseitin encoding of the circuit (sat/), so it works at any
//    input width; a per-query budget keeps it total, with Unknown treated
//    as reachable (always safe).
//
// A cone whose leaves are logically dependent gets an incompletely
// specified function; identify_comparison_dc searches for an interval that
// matches the ON-set on all REACHABLE minterms, letting unreachable ones
// fall wherever convenient. Replacements based on such specs alter the cone
// function only on unreachable leaf combinations, so the circuit function
// is preserved.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/comparison.hpp"
#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"
#include "sat/session.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"

namespace compsyn {

/// Common interface of the reachability backends. Implementations must be
/// conservative: marking an unreachable combination reachable is always
/// sound (it only forgoes a don't-care), the reverse never is.
class ReachabilityOracle {
 public:
  virtual ~ReachabilityOracle() = default;
  /// Truth table over `nodes` (nodes[0] = MSB) whose ON-set contains every
  /// joint value combination that occurs for some input pattern.
  virtual TruthTable reachable_combos(const std::vector<NodeId>& nodes) const = 0;

  /// True when reachable_combos may be called from several threads at once
  /// AND its answers are independent of the query order. The parallel
  /// resynthesis path queries non-concurrent oracles serially, in cone
  /// order, so the --jobs=N result stays byte-identical to --jobs=1.
  virtual bool concurrent() const { return false; }
};

class ReachabilityTable : public ReachabilityOracle {
 public:
  /// Sweeps all 2^|inputs| patterns; throws std::invalid_argument when the
  /// circuit has more than max_inputs inputs (memory: 2^inputs bits/node).
  explicit ReachabilityTable(const Netlist& nl, unsigned max_inputs = 16);

  /// Truth table over `nodes` (nodes[0] = MSB) whose ON-set is exactly the
  /// joint value combinations that occur for some input pattern. Nodes
  /// created after construction are rejected (returns an all-ones table:
  /// everything assumed reachable, which is always safe).
  TruthTable reachable_combos(const std::vector<NodeId>& nodes) const override;

  /// Pure reads over the precomputed pattern bits: order-independent.
  bool concurrent() const override { return true; }

  std::size_t tracked_nodes() const { return bits_.size(); }

 private:
  std::size_t words_ = 0;
  std::vector<std::vector<std::uint64_t>> bits_;  // per node, 2^n pattern bits
};

/// SAT-backed oracle for circuits whose input count forbids the exact sweep.
/// Encodes the circuit once; each reachable_combos(nodes) call decides all
/// 2^|nodes| combinations by incremental solving under assumptions. Unsat
/// means the combination is unreachable (an exact don't-care); Sat or a
/// blown budget means it is treated as reachable.
class SatReachability : public ReachabilityOracle {
 public:
  /// `signature_cache` layers a functional-signature cache over the SAT
  /// queries (defaults on under the session SAT backend, see --sat): repeat
  /// node sets return their memoized table outright, and a node set whose
  /// per-node simulation signatures (core/signature.hpp) align with an
  /// already-answered set reuses that answer after SAT proves the paired
  /// nodes functionally equal (diff assumptions Unsat) -- collisions are
  /// never trusted without a proof. Queries stay serial and the memo is
  /// consulted in insertion order, so answers remain deterministic.
  explicit SatReachability(const Netlist& nl,
                           const SolverBudget& per_query = {/*max_conflicts=*/20000,
                                                            /*max_propagations=*/0},
                           bool signature_cache = sat_backend() == SatBackend::Session);

  /// Nodes created after construction (or dead at construction) make the
  /// result fall back to all-ones: everything assumed reachable.
  TruthTable reachable_combos(const std::vector<NodeId>& nodes) const override;

  /// Incremental solving mutates solver_ and learned clauses make budgeted
  /// answers depend on the query order; inherits concurrent() == false.

 private:
  /// SAT-confirmed functional equality of two encoded nodes (memoized).
  /// True only on proof (both diff directions Unsat); Sat or a blown
  /// budget yields false, which merely forgoes a cache reuse.
  bool nodes_equal(NodeId a, NodeId b) const;

  TruthTable solve_combos(const std::vector<NodeId>& nodes) const;

  mutable Solver solver_;
  CircuitEncoding enc_;
  SolverBudget per_query_;
  bool signature_cache_ = false;
  std::vector<std::uint64_t> sigs_;  // per-node 64-pattern signatures
  mutable std::vector<std::pair<std::vector<NodeId>, TruthTable>> memo_;
  mutable std::unordered_map<std::uint64_t, bool> eq_memo_;  // packed id pair
};

/// Comparison-function identification with don't-cares: finds (perm, L, U)
/// such that every CARE minterm m satisfies (value(m) in [L,U]) == f(m).
/// Sampled permutation search (identity, reversal, then random orders);
/// complement handled as usual. `care` must have the same width as f.
std::vector<ComparisonSpec> identify_comparison_dc(const TruthTable& f,
                                                   const TruthTable& care,
                                                   const IdentifyOptions& opt = {});

}  // namespace compsyn
