#include "core/signature.hpp"

#include "util/rng.hpp"

namespace compsyn {

std::uint64_t signature_mix(std::uint64_t h, std::uint64_t value) {
  // splitmix64 finalisation over the running hash xor the new value.
  std::uint64_t z = (h ^ value) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t table_signature(const TruthTable& f) {
  // hash() already folds every table word; mixing in num_vars separates the
  // (say) 1-variable "01" table from the 2-variable "0101" one.
  return signature_mix(f.hash(), f.num_vars());
}

std::vector<std::uint64_t> node_signatures(const Netlist& nl, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (auto& w : pi) w = rng.next();
  std::vector<std::uint64_t> sig;
  nl.simulate_into(pi, sig);
  return sig;
}

}  // namespace compsyn
