#include "core/signature.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <numeric>

#include "util/rng.hpp"

namespace compsyn {

std::uint64_t signature_mix(std::uint64_t h, std::uint64_t value) {
  // splitmix64 finalisation over the running hash xor the new value.
  std::uint64_t z = (h ^ value) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t table_signature(const TruthTable& f) {
  // hash() already folds every table word; mixing in num_vars separates the
  // (say) 1-variable "01" table from the 2-variable "0101" one.
  return signature_mix(f.hash(), f.num_vars());
}

std::vector<std::uint64_t> node_signatures(const Netlist& nl, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  for (auto& w : pi) w = rng.next();
  std::vector<std::uint64_t> sig;
  nl.simulate_into(pi, sig);
  return sig;
}

namespace {

std::uint64_t factorial(unsigned n) {
  std::uint64_t f = 1;
  for (unsigned i = 2; i <= n; ++i) f *= i;
  return f;
}

/// Plain-changes generator: weaves element n-1 through every permutation of
/// the first n-1 elements, alternating sweep direction, with one sub-swap
/// between sweeps (offset by 1 while the woven element sits at the front).
std::vector<unsigned> gen_plain_changes(unsigned n) {
  if (n < 2) return {};
  const std::vector<unsigned> sub = gen_plain_changes(n - 1);
  const std::uint64_t blocks = factorial(n - 1);
  std::vector<unsigned> out;
  out.reserve(static_cast<std::size_t>(factorial(n)) - 1);
  bool down = true;
  std::size_t si = 0;
  for (std::uint64_t block = 0; block < blocks; ++block) {
    if (down) {
      for (unsigned p = n - 1; p-- > 0;) out.push_back(p);
    } else {
      for (unsigned p = 0; p < n - 1; ++p) out.push_back(p);
    }
    if (block + 1 < blocks) {
      out.push_back(down ? sub[si] + 1 : sub[si]);
      ++si;
      down = !down;
    }
  }
  return out;
}

}  // namespace

const std::vector<unsigned>& plain_changes_schedule(unsigned n) {
  // 8! - 1 = 40319 swaps is the largest schedule we materialise; the memo
  // canonicalizes n <= 7 cones and the property tests n <= 5.
  assert(n <= 8 && "n! adjacent swaps: keep the schedule small");
  static const std::array<std::vector<unsigned>, 9> schedules = [] {
    std::array<std::vector<unsigned>, 9> s;
    for (unsigned i = 0; i <= 8; ++i) s[i] = gen_plain_changes(i);
    return s;
  }();
  return schedules[n];
}

TruthTable NpnTransform::apply(const TruthTable& f) const {
  TruthTable h = output_neg ? f.complemented() : f;
  for (unsigned v = 0; v < f.num_vars(); ++v) {
    if ((input_neg >> v) & 1u) h.flip_input_inplace(v);
  }
  return h.permuted(perm);
}

NpnCanonical npn_canonicalize(const TruthTable& f, NpnGroup group) {
  const unsigned n = f.num_vars();
  const auto& swaps = plain_changes_schedule(n);
  NpnCanonical best;
  bool have = false;
  std::vector<unsigned> perm(n);

  const auto consider = [&](const TruthTable& t, std::uint32_t mask, bool out) {
    if (have && t.compare_words(best.table) >= 0) return;
    best.table = t;
    best.transform.perm = perm;
    best.transform.input_neg = mask;
    best.transform.output_neg = out;
    have = true;
  };

  const std::uint32_t all = n == 0 ? 0u : ((1u << n) - 1u);
  const std::uint32_t nmasks = group == NpnGroup::kFull ? (1u << n)
                               : group == NpnGroup::kPermOutputReflect ? 2u
                                                                       : 1u;
  for (int o = 0; o < 2; ++o) {
    // Base for this output polarity; polarity masks walk so each step flips
    // inputs incrementally (Gray order for kFull: one kernel call per step;
    // the reflection group steps 0 -> all-ones, n calls once).
    TruthTable mb = o ? f.complemented() : f;
    std::uint32_t mask = 0;
    for (std::uint32_t g = 0; g < nmasks; ++g) {
      const std::uint32_t next =
          group == NpnGroup::kFull ? (g ^ (g >> 1)) : (g == 0 ? 0u : all);
      for (std::uint32_t diff = mask ^ next; diff != 0; diff &= diff - 1) {
        mb.flip_input_inplace(static_cast<unsigned>(std::countr_zero(diff)));
      }
      mask = next;
      TruthTable t = mb;
      std::iota(perm.begin(), perm.end(), 0u);
      consider(t, mask, o != 0);
      for (unsigned p : swaps) {
        t.swap_adjacent_inplace(p);
        std::swap(perm[p], perm[p + 1]);
        consider(t, mask, o != 0);
      }
    }
  }
  assert(have);
  assert(best.transform.apply(f) == best.table);
  return best;
}

}  // namespace compsyn
