// Functional signatures: cheap 64-bit keys that stand in for full functional
// comparison, with an exact (or SAT) confirmation behind every match.
//
//  * table_signature hashes a complete truth table (plus query flags) into
//    the key of the comparison-identification memo (core/comparison.cpp):
//    equal signatures select a bucket, and an exact table compare inside the
//    bucket confirms the hit, so the cache is collision-safe and its
//    hit/miss behaviour is identical to a full-key cache.
//  * node_signatures runs ONE seeded 64-pattern parallel simulation of a
//    netlist and returns a per-node signature word. Two nodes with different
//    signatures compute provably different functions of the primary inputs;
//    equal signatures mean "possibly equal" and need a proof (the SAT
//    reachability oracle in core/sdc.hpp confirms candidate pairs with an
//    incremental equality query before reusing cached answers).
//
// Both are deterministic: fixed seeds, no time or address dependence.
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// Seed of the node-signature simulation patterns (any fixed constant works;
/// changing it changes which node pairs collide, never correctness).
inline constexpr std::uint64_t kNodeSignatureSeed = 0x51C7A7u;

/// Mixes `value` into `h` (splitmix64 finalisation): used to fold query
/// flags into a table signature so different option sets never share a
/// bucket by construction.
std::uint64_t signature_mix(std::uint64_t h, std::uint64_t value);

/// 64-bit signature of a complete truth table. Distinct tables map to
/// distinct signatures with overwhelming probability; callers must still
/// confirm matches exactly (operator== on the tables).
std::uint64_t table_signature(const TruthTable& f);

/// One 64-pattern random simulation of `nl` (seeded, deterministic):
/// sig[n] holds node n's output word, i.e. its value on each of the 64
/// patterns. Dead nodes get 0. Unequal signatures prove unequal functions;
/// equal signatures are only a candidate for equality.
std::vector<std::uint64_t> node_signatures(const Netlist& nl,
                                           std::uint64_t seed = kNodeSignatureSeed);

// --- NPN canonicalization ---------------------------------------------------
//
// Two functions are NPN-equivalent when one becomes the other under some
// input permutation, input polarity flips, and/or an output polarity flip.
// npn_canonicalize picks one fixed representative per orbit (the minimum
// table under TruthTable::compare_words) by sifting the table through the
// whole group with the word-level swap/flip/complement kernels: a
// plain-changes (Steinhaus-Johnson-Trotter) schedule of adjacent-variable
// swaps crossed with a Gray-code walk over polarity masks, so every orbit
// member is visited one O(words) kernel step from the previous one.
//
// The group is selectable because different consumers need different orbits:
// the comparison-identification memo (core/comparison.cpp) shares results
// across kPermOutputReflect -- the comparison-function class is provably NOT
// closed under single input negations (see DESIGN.md sect. 14 for the
// 3-variable counterexample), so collapsing full NPN orbits there would
// corrupt results; but negating ALL inputs at once reflects the value order
// (v -> 2^n-1-v), which maps intervals to intervals, so membership IS
// closed under the reflection. kFull is exact canonical NPN for consumers
// whose property is fully orbit-invariant (and for the property tests).

enum class NpnGroup {
  kPermOutput,         // input permutations x output polarity
  kPermOutputReflect,  // ... plus negating ALL inputs at once (value reversal)
  kFull,               // ... plus arbitrary input polarities (full NPN)
};

/// A transform from a function f to a member of its orbit. Application
/// order: complement the output (if output_neg), flip the polarity of every
/// input whose bit is set in input_neg (bit v = original variable v), then
/// permute (result position j holds original variable perm[j]).
struct NpnTransform {
  std::vector<unsigned> perm;
  std::uint32_t input_neg = 0;
  bool output_neg = false;

  TruthTable apply(const TruthTable& f) const;
};

struct NpnCanonical {
  TruthTable table;        // the orbit's canonical representative
  NpnTransform transform;  // transform.apply(f) == table, exactly
};

/// Canonical representative of f's orbit under `group`, plus a transform
/// that maps f onto it. Deterministic; same table for every orbit member.
/// Cost is O(group size) kernel steps: 2*n! for kPermOutput, 4*n! for
/// kPermOutputReflect, 2^(n+1)*n! for kFull -- intended for the small cone
/// arities (n <= 7) the procedures use.
NpnCanonical npn_canonicalize(const TruthTable& f,
                              NpnGroup group = NpnGroup::kFull);

/// The adjacent-transposition schedule that visits all n! permutations
/// (plain changes): applying swap (p, p+1) for each p in the returned list
/// steps through every permutation exactly once. Exposed for tests and for
/// callers that sift tables themselves. Materialised once per n, n <= 8.
const std::vector<unsigned>& plain_changes_schedule(unsigned n);

}  // namespace compsyn
