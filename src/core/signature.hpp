// Functional signatures: cheap 64-bit keys that stand in for full functional
// comparison, with an exact (or SAT) confirmation behind every match.
//
//  * table_signature hashes a complete truth table (plus query flags) into
//    the key of the comparison-identification memo (core/comparison.cpp):
//    equal signatures select a bucket, and an exact table compare inside the
//    bucket confirms the hit, so the cache is collision-safe and its
//    hit/miss behaviour is identical to a full-key cache.
//  * node_signatures runs ONE seeded 64-pattern parallel simulation of a
//    netlist and returns a per-node signature word. Two nodes with different
//    signatures compute provably different functions of the primary inputs;
//    equal signatures mean "possibly equal" and need a proof (the SAT
//    reachability oracle in core/sdc.hpp confirms candidate pairs with an
//    incremental equality query before reusing cached answers).
//
// Both are deterministic: fixed seeds, no time or address dependence.
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// Seed of the node-signature simulation patterns (any fixed constant works;
/// changing it changes which node pairs collide, never correctness).
inline constexpr std::uint64_t kNodeSignatureSeed = 0x51C7A7u;

/// Mixes `value` into `h` (splitmix64 finalisation): used to fold query
/// flags into a table signature so different option sets never share a
/// bucket by construction.
std::uint64_t signature_mix(std::uint64_t h, std::uint64_t value);

/// 64-bit signature of a complete truth table. Distinct tables map to
/// distinct signatures with overwhelming probability; callers must still
/// confirm matches exactly (operator== on the tables).
std::uint64_t table_signature(const TruthTable& f);

/// One 64-pattern random simulation of `nl` (seeded, deterministic):
/// sig[n] holds node n's output word, i.e. its value on each of the 64
/// patterns. Dead nodes get 0. Unequal signatures prove unequal functions;
/// equal signatures are only a candidate for equality.
std::vector<std::uint64_t> node_signatures(const Netlist& nl,
                                           std::uint64_t seed = kNodeSignatureSeed);

}  // namespace compsyn
