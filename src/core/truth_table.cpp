#include "core/truth_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace compsyn {

namespace {

// kVarMask[s]: the bits of a 64-bit word whose bit index has bit s SET --
// the half of every 2^(s+1)-aligned block where in-word minterm bit s is 1.
// These are the classic masks behind delta-swap variable exchanges.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// Delta-swap of in-word minterm bits b and b+1 (b <= 4): exchanges the
/// (bit_b=1, bit_{b+1}=0) sub-blocks with their (0,1) partners 2^b above.
inline std::uint64_t word_swap_adjacent_bits(std::uint64_t w, unsigned b) {
  const std::uint64_t mask = kVarMask[b] & ~kVarMask[b + 1];
  const unsigned d = 1u << b;
  const std::uint64_t t = (w ^ (w >> d)) & mask;
  return w ^ t ^ (t << d);
}

}  // namespace

TruthTable::TruthTable(unsigned n) : n_(n) {
  if (n > 16) throw std::invalid_argument("TruthTable supports at most 16 variables");
  words_.assign(std::max<std::size_t>(1, (std::size_t{1} << n) / 64), 0);
}

TruthTable TruthTable::from_function(unsigned n,
                                     const std::function<bool(std::uint32_t)>& f) {
  TruthTable t(n);
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) t.set(m, f(m));
  return t;
}

TruthTable TruthTable::from_bits(const std::string& bits) {
  unsigned n = 0;
  while ((std::size_t{1} << n) < bits.size()) ++n;
  if ((std::size_t{1} << n) != bits.size()) {
    throw std::invalid_argument("bit string length must be a power of two");
  }
  TruthTable t(n);
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    const char c = bits[m];
    if (c != '0' && c != '1') throw std::invalid_argument("bit string must be 0/1");
    t.set(m, c == '1');
  }
  return t;
}

bool TruthTable::get(std::uint32_t m) const {
  assert(m < num_minterms());
  return (words_[m >> 6] >> (m & 63)) & 1ull;
}

void TruthTable::set(std::uint32_t m, bool value) {
  assert(m < num_minterms());
  const std::uint64_t bit = 1ull << (m & 63);
  if (value) words_[m >> 6] |= bit;
  else words_[m >> 6] &= ~bit;
}

std::uint32_t TruthTable::count_ones() const {
  // Invariant: bits beyond num_minterms() are always zero.
  std::uint32_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::uint32_t>(std::popcount(w));
  return total;
}

bool TruthTable::is_const_zero() const { return count_ones() == 0; }
bool TruthTable::is_const_one() const { return count_ones() == num_minterms(); }

TruthTable TruthTable::complemented() const {
  TruthTable t = *this;
  t.complement_inplace();
  return t;
}

void TruthTable::complement_inplace() {
  const std::uint64_t last_mask =
      n_ >= 6 ? ~0ull : ((1ull << num_minterms()) - 1ull);
  for (auto& w : words_) w = ~w;
  words_.back() &= last_mask;
}

void TruthTable::swap_adjacent_inplace(unsigned pos) {
  assert(pos + 1 < n_);
  const unsigned a = n_ - 1 - pos;  // minterm bit of the variable at `pos`
  const unsigned b = a - 1;         // ... and at `pos + 1`
  if (a < 6) {
    // Both bits live inside each word: one delta swap per word.
    for (auto& w : words_) w = word_swap_adjacent_bits(w, b);
  } else if (b >= 6) {
    // Both bits select the word index: swap word pairs.
    const std::size_t db = std::size_t{1} << (b - 6);
    const std::size_t da = std::size_t{1} << (a - 6);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if ((w & db) && !(w & da)) std::swap(words_[w], words_[w + db]);
    }
  } else {
    // a == 6, b == 5: the straddle case -- exchange the high half of each
    // even word with the low half of its odd neighbour.
    for (std::size_t w = 0; w + 1 < words_.size(); w += 2) {
      const std::uint64_t hi0 = words_[w] >> 32;
      const std::uint64_t lo1 = words_[w + 1] & 0xffffffffull;
      words_[w] = (words_[w] & 0xffffffffull) | (lo1 << 32);
      words_[w + 1] = (words_[w + 1] & ~0xffffffffull) | hi0;
    }
  }
}

TruthTable TruthTable::swap_adjacent(unsigned pos) const {
  TruthTable t = *this;
  t.swap_adjacent_inplace(pos);
  return t;
}

void TruthTable::flip_input_inplace(unsigned var) {
  assert(var < n_);
  const unsigned s = n_ - 1 - var;  // minterm bit of `var`
  if (s < 6) {
    const std::uint64_t m = kVarMask[s];
    const unsigned d = 1u << s;
    for (auto& w : words_) w = ((w & m) >> d) | ((w & ~m) << d);
  } else {
    const std::size_t ds = std::size_t{1} << (s - 6);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (!(w & ds)) std::swap(words_[w], words_[w | ds]);
    }
  }
}

TruthTable TruthTable::flip_input(unsigned var) const {
  TruthTable t = *this;
  t.flip_input_inplace(var);
  return t;
}

TruthTable TruthTable::permuted(const std::vector<unsigned>& perm) const {
  assert(perm.size() == n_);
  // Selection sort by adjacent transpositions: bring perm[j]'s variable to
  // position j with swap kernels. O(n^2) swaps of O(words) each -- far below
  // the 2^n per-bit gathers this replaces.
  TruthTable t = *this;
  std::vector<unsigned> cur(n_);  // cur[j] = original variable at position j
  std::iota(cur.begin(), cur.end(), 0u);
  for (unsigned j = 0; j < n_; ++j) {
    unsigned k = j;
    while (k < n_ && cur[k] != perm[j]) ++k;
    assert(k < n_ && "perm must be a permutation of 0..n-1");
    for (; k > j; --k) {
      t.swap_adjacent_inplace(k - 1);
      std::swap(cur[k - 1], cur[k]);
    }
  }
  return t;
}

TruthTable TruthTable::cofactor(unsigned var, bool value) const {
  assert(var < n_);
  TruthTable t(n_ - 1);
  if (n_ <= 6) {
    // Single word: bubble `var` to the MSB position with in-word delta
    // swaps, then the cofactor is one half of the word.
    std::uint64_t w = words_[0];
    for (unsigned p = var; p > 0; --p) {
      const unsigned a = n_ - 1 - (p - 1);  // a <= 5 here
      w = word_swap_adjacent_bits(w, a - 1);
    }
    const std::uint32_t half = 1u << (n_ - 1);
    if (value) w >>= half;
    if (half < 64) w &= (1ull << half) - 1ull;
    t.words_[0] = w;
  } else {
    TruthTable tmp = *this;
    for (unsigned p = var; p > 0; --p) tmp.swap_adjacent_inplace(p - 1);
    // `var` is now the minterm MSB: the cofactor is one half of the words.
    const std::size_t off = value ? t.words_.size() : 0;
    std::copy(tmp.words_.begin() + static_cast<std::ptrdiff_t>(off),
              tmp.words_.begin() + static_cast<std::ptrdiff_t>(off + t.words_.size()),
              t.words_.begin());
  }
  return t;
}

bool TruthTable::is_vacuous(unsigned var) const {
  // f is independent of `var` iff flipping the variable's polarity leaves
  // the table unchanged (the two cofactor halves are equal).
  TruthTable t = *this;
  t.flip_input_inplace(var);
  return t == *this;
}

std::vector<unsigned> TruthTable::support() const {
  std::vector<unsigned> s;
  for (unsigned v = 0; v < n_; ++v) {
    if (!is_vacuous(v)) s.push_back(v);
  }
  return s;
}

TruthTable TruthTable::support_reduced(std::vector<unsigned>* kept) const {
  const std::vector<unsigned> s = support();
  // Cofactor out the vacuous variables highest-index first, so each
  // remaining variable's position equals its original index when removed.
  TruthTable t = *this;
  unsigned si = static_cast<unsigned>(s.size());
  for (unsigned v = n_; v-- > 0;) {
    if (si > 0 && s[si - 1] == v) {
      --si;
      continue;
    }
    t = t.cofactor(v, false);
  }
  if (kept) *kept = s;
  return t;
}

bool TruthTable::interval_bounds(std::uint32_t* lo, std::uint32_t* hi) const {
  std::size_t first = words_.size();
  std::size_t last = 0;
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (!words_[i]) continue;
    if (first == words_.size()) first = i;
    last = i;
    total += static_cast<std::uint32_t>(std::popcount(words_[i]));
  }
  if (total == 0) return false;
  const std::uint32_t l =
      static_cast<std::uint32_t>(64 * first) +
      static_cast<std::uint32_t>(std::countr_zero(words_[first]));
  const std::uint32_t h =
      static_cast<std::uint32_t>(64 * last + 63) -
      static_cast<std::uint32_t>(std::countl_zero(words_[last]));
  // ON(f) is inside [l, h] by construction; it fills the interval exactly
  // when the popcount matches the span.
  if (h - l + 1 != total) return false;
  *lo = l;
  *hi = h;
  return true;
}

int TruthTable::compare_words(const TruthTable& o) const {
  assert(n_ == o.n_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i] ? -1 : 1;
  }
  return 0;
}

std::vector<std::uint32_t> TruthTable::on_set() const {
  std::vector<std::uint32_t> on;
  for (std::uint32_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) on.push_back(m);
  }
  return on;
}

std::string TruthTable::to_bits() const {
  std::string s(num_minterms(), '0');
  for (std::uint32_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) s[m] = '1';
  }
  return s;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull ^ n_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace compsyn
