#include "core/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace compsyn {

TruthTable::TruthTable(unsigned n) : n_(n) {
  if (n > 16) throw std::invalid_argument("TruthTable supports at most 16 variables");
  words_.assign(std::max<std::size_t>(1, (std::size_t{1} << n) / 64), 0);
}

TruthTable TruthTable::from_function(unsigned n,
                                     const std::function<bool(std::uint32_t)>& f) {
  TruthTable t(n);
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) t.set(m, f(m));
  return t;
}

TruthTable TruthTable::from_bits(const std::string& bits) {
  unsigned n = 0;
  while ((std::size_t{1} << n) < bits.size()) ++n;
  if ((std::size_t{1} << n) != bits.size()) {
    throw std::invalid_argument("bit string length must be a power of two");
  }
  TruthTable t(n);
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    const char c = bits[m];
    if (c != '0' && c != '1') throw std::invalid_argument("bit string must be 0/1");
    t.set(m, c == '1');
  }
  return t;
}

bool TruthTable::get(std::uint32_t m) const {
  assert(m < num_minterms());
  return (words_[m >> 6] >> (m & 63)) & 1ull;
}

void TruthTable::set(std::uint32_t m, bool value) {
  assert(m < num_minterms());
  const std::uint64_t bit = 1ull << (m & 63);
  if (value) words_[m >> 6] |= bit;
  else words_[m >> 6] &= ~bit;
}

std::uint32_t TruthTable::count_ones() const {
  // Invariant: bits beyond num_minterms() are always zero.
  std::uint32_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::uint32_t>(std::popcount(w));
  return total;
}

bool TruthTable::is_const_zero() const { return count_ones() == 0; }
bool TruthTable::is_const_one() const { return count_ones() == num_minterms(); }

TruthTable TruthTable::complemented() const {
  TruthTable t(n_);
  const std::uint64_t last_mask =
      n_ >= 6 ? ~0ull : ((1ull << num_minterms()) - 1ull);
  for (std::size_t i = 0; i < words_.size(); ++i) t.words_[i] = ~words_[i];
  t.words_.back() &= last_mask;
  return t;
}

TruthTable TruthTable::permuted(const std::vector<unsigned>& perm) const {
  assert(perm.size() == n_);
  TruthTable t(n_);
  for (std::uint32_t m = 0; m < num_minterms(); ++m) {
    // Build the original minterm: new position j supplies original variable
    // perm[j]. Positions are MSB-first.
    std::uint32_t orig = 0;
    for (unsigned j = 0; j < n_; ++j) {
      const std::uint32_t bit = (m >> (n_ - 1 - j)) & 1u;
      orig |= bit << (n_ - 1 - perm[j]);
    }
    t.set(m, get(orig));
  }
  return t;
}

TruthTable TruthTable::cofactor(unsigned var, bool value) const {
  assert(var < n_);
  TruthTable t(n_ - 1);
  const unsigned shift = n_ - 1 - var;  // bit position of `var` in minterms
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    const std::uint32_t low = m & ((1u << shift) - 1u);
    const std::uint32_t high = (m >> shift) << (shift + 1);
    const std::uint32_t full = high | (static_cast<std::uint32_t>(value) << shift) | low;
    t.set(m, get(full));
  }
  return t;
}

bool TruthTable::is_vacuous(unsigned var) const {
  return cofactor(var, false) == cofactor(var, true);
}

std::vector<unsigned> TruthTable::support() const {
  std::vector<unsigned> s;
  for (unsigned v = 0; v < n_; ++v) {
    if (!is_vacuous(v)) s.push_back(v);
  }
  return s;
}

TruthTable TruthTable::support_reduced(std::vector<unsigned>* kept) const {
  const std::vector<unsigned> s = support();
  TruthTable t(static_cast<unsigned>(s.size()));
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    std::uint32_t full = 0;
    for (unsigned j = 0; j < s.size(); ++j) {
      const std::uint32_t bit = (m >> (s.size() - 1 - j)) & 1u;
      full |= bit << (n_ - 1 - s[j]);
    }
    t.set(m, get(full));
  }
  if (kept) *kept = s;
  return t;
}

std::vector<std::uint32_t> TruthTable::on_set() const {
  std::vector<std::uint32_t> on;
  for (std::uint32_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) on.push_back(m);
  }
  return on;
}

std::string TruthTable::to_bits() const {
  std::string s(num_minterms(), '0');
  for (std::uint32_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) s[m] = '1';
  }
  return s;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull ^ n_;
  for (std::uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace compsyn
