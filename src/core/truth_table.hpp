// Dense truth tables for the small single-output functions handled by the
// comparison-function machinery (cone functions of up to 16 variables;
// Procedures 2/3 use K = 5..7).
//
// Variable-order convention (matches the paper): variable 0 is x1, the MOST
// significant bit of a minterm's decimal value; variable n-1 is x_n, the
// least significant. So get(m) is f at the input combination whose decimal
// value is m when read x1 x2 ... xn.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace compsyn {

class TruthTable {
 public:
  /// All-zero function of n variables (0 <= n <= 16).
  explicit TruthTable(unsigned n = 0);

  static TruthTable from_function(unsigned n,
                                  const std::function<bool(std::uint32_t)>& f);
  /// Parses a bit string, minterm 0 first ("0110" = f(00)=0, f(01)=1, ...).
  static TruthTable from_bits(const std::string& bits);

  unsigned num_vars() const { return n_; }
  std::uint32_t num_minterms() const { return 1u << n_; }

  bool get(std::uint32_t minterm) const;
  void set(std::uint32_t minterm, bool value);

  std::uint32_t count_ones() const;
  bool is_const_zero() const;
  bool is_const_one() const;

  TruthTable complemented() const;
  void complement_inplace();

  /// Exchanges the variables at positions pos and pos+1 (0 = MSB) in place:
  /// one adjacent transposition, the primitive the NPN canonicalizer sifts
  /// with. Word-level via the classic delta-swap masks, O(words).
  void swap_adjacent_inplace(unsigned pos);
  TruthTable swap_adjacent(unsigned pos) const;

  /// Complements the polarity of variable `var` in place:
  /// f'(.., x_var, ..) = f(.., ~x_var, ..). Word-level half-swap, O(words).
  void flip_input_inplace(unsigned var);
  TruthTable flip_input(unsigned var) const;

  /// If the ON-set is one contiguous decimal interval [lo, hi], stores the
  /// bounds and returns true; false for the constant-zero table and for any
  /// non-contiguous ON-set. Word-level (count/first/last bit), no per-bit
  /// loop: contiguity holds iff popcount equals the first..last bit span.
  bool interval_bounds(std::uint32_t* lo, std::uint32_t* hi) const;

  /// Word-wise total order used for canonical-form selection (an arbitrary
  /// but fixed order, not the numeric order of function values). Returns
  /// <0 / 0 / >0 like memcmp. Both tables must have the same arity.
  int compare_words(const TruthTable& o) const;

  std::size_t num_words() const { return words_.size(); }
  std::uint64_t word(std::size_t i) const { return words_[i]; }

  /// Table of f with variables re-ordered: result position j holds original
  /// variable perm[j] (so perm maps new position -> old variable).
  TruthTable permuted(const std::vector<unsigned>& perm) const;

  /// Cofactor with variable `var` fixed to `value`; result has n-1 variables
  /// (the remaining ones keep their relative order).
  TruthTable cofactor(unsigned var, bool value) const;

  /// True if f does not depend on `var`.
  bool is_vacuous(unsigned var) const;

  /// Indices of variables f actually depends on, ascending.
  std::vector<unsigned> support() const;

  /// Table over only the support variables (relative order kept).
  TruthTable support_reduced(std::vector<unsigned>* kept = nullptr) const;

  /// ON-set minterm decimal values, ascending.
  std::vector<std::uint32_t> on_set() const;

  bool operator==(const TruthTable& o) const = default;

  /// Bit string, minterm 0 first (inverse of from_bits).
  std::string to_bits() const;

  /// FNV-style hash for memoisation keys.
  std::uint64_t hash() const;

 private:
  unsigned n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace compsyn
