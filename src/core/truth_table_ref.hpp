// Scalar reference implementations of the TruthTable primitives.
//
// The production kernels in truth_table.cpp are bit-parallel (delta-swap
// masks, word copies, popcount spans). These are the straightforward per-bit
// loops they replaced, retained verbatim as an executable specification:
// tests/truth_table_test.cpp byte-compares every kernel against its
// reference over random tables at n = 1..16, so a mask or shift bug in the
// fast path cannot land silently. Header-only, no dependencies beyond the
// TruthTable accessors; never used on a hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"

namespace compsyn::ref {

/// Per-bit complement.
inline TruthTable complemented(const TruthTable& f) {
  TruthTable t(f.num_vars());
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) t.set(m, !f.get(m));
  return t;
}

/// Per-bit permutation: result position j holds original variable perm[j].
inline TruthTable permuted(const TruthTable& f, const std::vector<unsigned>& perm) {
  const unsigned n = f.num_vars();
  TruthTable t(n);
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    std::uint32_t orig = 0;
    for (unsigned j = 0; j < n; ++j) {
      const std::uint32_t bit = (m >> (n - 1 - j)) & 1u;
      orig |= bit << (n - 1 - perm[j]);
    }
    t.set(m, f.get(orig));
  }
  return t;
}

/// Per-bit cofactor with `var` fixed to `value` (remaining variables keep
/// their relative order).
inline TruthTable cofactor(const TruthTable& f, unsigned var, bool value) {
  const unsigned n = f.num_vars();
  TruthTable t(n - 1);
  const unsigned shift = n - 1 - var;  // bit position of `var` in minterms
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    const std::uint32_t low = m & ((1u << shift) - 1u);
    const std::uint32_t high = (m >> shift) << (shift + 1);
    const std::uint32_t full =
        high | (static_cast<std::uint32_t>(value) << shift) | low;
    t.set(m, f.get(full));
  }
  return t;
}

/// Per-bit adjacent-variable exchange of positions pos and pos+1.
inline TruthTable swap_adjacent(const TruthTable& f, unsigned pos) {
  const unsigned n = f.num_vars();
  const unsigned a = n - 1 - pos;  // minterm bit of position pos
  const unsigned b = a - 1;        // ... and of position pos + 1
  TruthTable t(n);
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    const std::uint32_t ba = (m >> a) & 1u;
    const std::uint32_t bb = (m >> b) & 1u;
    const std::uint32_t swapped =
        (m & ~((1u << a) | (1u << b))) | (bb << a) | (ba << b);
    t.set(m, f.get(swapped));
  }
  return t;
}

/// Per-bit input-polarity flip of `var`.
inline TruthTable flip_input(const TruthTable& f, unsigned var) {
  const unsigned n = f.num_vars();
  const unsigned s = n - 1 - var;  // minterm bit of `var`
  TruthTable t(n);
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    t.set(m, f.get(m ^ (1u << s)));
  }
  return t;
}

/// Per-bit interval test via the enumerated ON-set.
inline bool interval_bounds(const TruthTable& f, std::uint32_t* lo,
                            std::uint32_t* hi) {
  const auto on = f.on_set();
  if (on.empty()) return false;
  if (on.back() - on.front() + 1 != on.size()) return false;
  *lo = on.front();
  *hi = on.back();
  return true;
}

/// Per-bit support reduction (gather over the support variables).
inline TruthTable support_reduced(const TruthTable& f,
                                  std::vector<unsigned>* kept = nullptr) {
  const unsigned n = f.num_vars();
  const std::vector<unsigned> s = f.support();
  TruthTable t(static_cast<unsigned>(s.size()));
  for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
    std::uint32_t full = 0;
    for (unsigned j = 0; j < s.size(); ++j) {
      const std::uint32_t bit = (m >> (s.size() - 1 - j)) & 1u;
      full |= bit << (n - 1 - s[j]);
    }
    t.set(m, f.get(full));
  }
  if (kept) *kept = s;
  return t;
}

}  // namespace compsyn::ref
