#include "core/two_level.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace compsyn {

std::vector<Cube> prime_implicants(const TruthTable& f) {
  const unsigned n = f.num_vars();
  const std::uint32_t full_care = n == 0 ? 0 : ((1u << n) - 1);
  // Level 0: ON minterms as full-care cubes.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;  // (care, value)
  for (std::uint32_t m : f.on_set()) current.insert({full_care, m});
  if (f.num_vars() == 0) {
    return f.get(0) ? std::vector<Cube>{{0, 0}} : std::vector<Cube>{};
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::map<std::pair<std::uint32_t, std::uint32_t>, bool> combined;
    for (const auto& c : current) combined[c] = false;
    // Try merging cube pairs differing in exactly one cared bit.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> list(current.begin(),
                                                              current.end());
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        if (list[i].first != list[j].first) continue;  // same care set only
        const std::uint32_t care = list[i].first;
        const std::uint32_t diff = (list[i].second ^ list[j].second) & care;
        if (__builtin_popcount(diff) != 1) continue;
        combined[list[i]] = true;
        combined[list[j]] = true;
        next.insert({care & ~diff, list[i].second & ~diff & care});
      }
    }
    for (const auto& [cube, was_combined] : combined) {
      if (!was_combined) primes.push_back({cube.first, cube.second & cube.first});
    }
    current = std::move(next);
  }
  // Normalise and dedupe.
  for (Cube& c : primes) c.value &= c.care;
  std::sort(primes.begin(), primes.end(), [](const Cube& a, const Cube& b) {
    return std::tie(a.care, a.value) < std::tie(b.care, b.value);
  });
  primes.erase(std::unique(primes.begin(), primes.end()), primes.end());
  return primes;
}

bool cover_equals(const std::vector<Cube>& cover, const TruthTable& f) {
  for (std::uint32_t m = 0; m < f.num_minterms(); ++m) {
    bool covered = false;
    for (const Cube& c : cover) covered |= c.covers(m);
    if (covered != f.get(m)) return false;
  }
  return true;
}

std::vector<Cube> irredundant_cover(const TruthTable& f) {
  const auto primes = prime_implicants(f);
  const auto on = f.on_set();
  if (on.empty()) return {};

  // Which primes cover each ON minterm.
  std::vector<std::vector<std::size_t>> coverers(on.size());
  for (std::size_t mi = 0; mi < on.size(); ++mi) {
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (primes[pi].covers(on[mi])) coverers[mi].push_back(pi);
    }
  }
  std::vector<char> chosen(primes.size(), 0);
  std::vector<char> covered(on.size(), 0);
  // Essential primes.
  for (std::size_t mi = 0; mi < on.size(); ++mi) {
    if (coverers[mi].size() == 1) chosen[coverers[mi][0]] = 1;
  }
  auto update_covered = [&] {
    for (std::size_t mi = 0; mi < on.size(); ++mi) {
      covered[mi] = 0;
      for (std::size_t pi : coverers[mi]) {
        if (chosen[pi]) {
          covered[mi] = 1;
          break;
        }
      }
    }
  };
  update_covered();
  // Greedy: repeatedly take the prime covering the most uncovered minterms.
  for (;;) {
    std::size_t best = primes.size();
    std::size_t best_gain = 0;
    for (std::size_t pi = 0; pi < primes.size(); ++pi) {
      if (chosen[pi]) continue;
      std::size_t gain = 0;
      for (std::size_t mi = 0; mi < on.size(); ++mi) {
        gain += !covered[mi] && primes[pi].covers(on[mi]);
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = pi;
      }
    }
    if (best == primes.size()) break;
    chosen[best] = 1;
    update_covered();
  }
  // Irredundancy: drop any chosen prime whose minterms are all covered by
  // the other chosen primes (iterate smallest-first for determinism).
  for (std::size_t pi = 0; pi < primes.size(); ++pi) {
    if (!chosen[pi]) continue;
    chosen[pi] = 0;
    update_covered();
    bool still_ok = true;
    for (std::size_t mi = 0; mi < on.size(); ++mi) still_ok &= covered[mi] != 0;
    if (!still_ok) {
      chosen[pi] = 1;
      update_covered();
    }
  }
  std::vector<Cube> cover;
  for (std::size_t pi = 0; pi < primes.size(); ++pi) {
    if (chosen[pi]) cover.push_back(primes[pi]);
  }
  return cover;
}

NodeId build_sop(Netlist& nl, const std::vector<NodeId>& vars,
                 const std::vector<Cube>& cover, unsigned n_vars) {
  if (cover.empty()) return nl.add_const(false);
  std::vector<NodeId> inv(n_vars, kNoNode);
  auto literal = [&](unsigned v, bool positive) {
    if (positive) return vars[v];
    if (inv[v] == kNoNode) inv[v] = nl.add_gate(GateType::Not, {vars[v]});
    return inv[v];
  };
  std::vector<NodeId> terms;
  for (const Cube& c : cover) {
    std::vector<NodeId> lits;
    for (unsigned v = 0; v < n_vars; ++v) {
      const std::uint32_t bit = 1u << (n_vars - 1 - v);
      if (c.care & bit) lits.push_back(literal(v, (c.value & bit) != 0));
    }
    if (lits.empty()) return nl.add_const(true);  // tautology cube
    terms.push_back(lits.size() == 1 ? lits[0] : nl.add_gate(GateType::And, lits));
  }
  return terms.size() == 1 ? terms[0] : nl.add_gate(GateType::Or, terms);
}

}  // namespace compsyn
