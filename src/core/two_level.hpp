// Two-level (SOP) machinery for small functions: Quine-McCluskey prime
// generation and an irredundant cover, plus a netlist builder.
//
// Used by the benchmark generator: a prime irredundant single-output SOP is
// fully testable for stuck-at faults (no redundant literals/terms), which is
// what the paper's irredundant starting circuits look like locally -- while
// still carrying more gates and far more paths than a comparison unit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/truth_table.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// A product term over n variables: for variable v (MSB-first position v),
/// care bit set means the literal is present with polarity given by value.
struct Cube {
  std::uint32_t care = 0;   // bit (n-1-v) set: variable v appears
  std::uint32_t value = 0;  // polarity of present literals

  bool covers(std::uint32_t minterm) const {
    return (minterm & care) == (value & care);
  }
  unsigned literal_count() const { return static_cast<unsigned>(__builtin_popcount(care)); }
  bool operator==(const Cube& o) const = default;
};

/// All prime implicants of f (Quine-McCluskey; n <= 16, intended for n <= 8).
std::vector<Cube> prime_implicants(const TruthTable& f);

/// A prime and irredundant cover of f: essential primes first, then greedy
/// selection, then redundant-term elimination. Every returned cube is a
/// prime implicant and no cube can be dropped.
std::vector<Cube> irredundant_cover(const TruthTable& f);

/// True if `cover` equals f exactly.
bool cover_equals(const std::vector<Cube>& cover, const TruthTable& f);

/// Builds the 2-level AND-OR (with input inverters) netlist for the cover.
/// vars[v] supplies variable v. Returns the SOP output node.
NodeId build_sop(Netlist& nl, const std::vector<NodeId>& vars,
                 const std::vector<Cube>& cover, unsigned n_vars);

}  // namespace compsyn
