#include "core/unit_testgen.hpp"

#include <cassert>

#include "delay/robust.hpp"

namespace compsyn {
namespace {

/// Positional value -> PI vector (input i is variable i; variable perm[j]
/// sits at position j, i.e. bit n-1-j of the positional value).
std::vector<bool> positional_to_pi(const ComparisonSpec& spec, std::uint32_t value) {
  const unsigned n = spec.n;
  std::vector<bool> v(n);
  for (unsigned j = 0; j < n; ++j) {
    v[spec.perm[j]] = (value >> (n - 1 - j)) & 1u;
  }
  return v;
}

}  // namespace

UnitTestSet generate_unit_tests(const ComparisonSpec& spec, const UnitOptions& opt) {
  UnitTestSet set;
  set.unit = build_unit_netlist(spec, opt);
  const Netlist& unit = set.unit;
  const unsigned n = spec.n;

  // Position of each variable (inverse of perm).
  std::vector<unsigned> pos(n);
  for (unsigned j = 0; j < n; ++j) pos[spec.perm[j]] = j;

  const auto paths = enumerate_paths(unit);
  set.total_faults = 2 * paths.size();
  set.complete = true;

  for (const Path& path : paths) {
    // Which variable does this path start at?
    unsigned origin_var = n;
    for (unsigned i = 0; i < n; ++i) {
      if (unit.inputs()[i] == path.nodes.front()) origin_var = i;
    }
    assert(origin_var < n);
    const unsigned j = pos[origin_var];

    // Constructive static candidates (positional values; the bit at
    // position j is overridden by the transition).
    std::vector<std::uint32_t> candidates{spec.lower, spec.upper};
    const unsigned suffix_len = n - 1 - j;
    if (suffix_len > 0 && suffix_len < 32) {
      const std::uint32_t suffix_mask = (1u << suffix_len) - 1u;
      const std::uint32_t l_suffix = spec.lower & suffix_mask;
      const std::uint32_t u_suffix = spec.upper & suffix_mask;
      candidates.push_back(spec.lower & ~suffix_mask);              // suffix 0..0
      candidates.push_back(spec.upper | suffix_mask);               // suffix 1..1
      if (l_suffix > 0) {
        candidates.push_back((spec.lower & ~suffix_mask) | (l_suffix - 1));
      }
      if (u_suffix < suffix_mask) {
        candidates.push_back((spec.upper & ~suffix_mask) | (u_suffix + 1));
      }
    }

    for (bool rising : {true, false}) {
      UnitTest test;
      test.path = path;
      test.rising = rising;
      bool found = false;
      const std::uint32_t origin_bit = 1u << (n - 1 - j);
      for (std::uint32_t base : candidates) {
        const std::uint32_t with1 = base | origin_bit;
        const std::uint32_t with0 = base & ~origin_bit;
        const std::vector<bool> v1 = positional_to_pi(spec, rising ? with0 : with1);
        const std::vector<bool> v2 = positional_to_pi(spec, rising ? with1 : with0);
        if (robustly_tests(unit, path, rising, v1, v2)) {
          test.v1 = v1;
          test.v2 = v2;
          test.constructive = true;
          found = true;
          break;
        }
      }
      if (!found) {
        // Fallback: exhaustive search (complete for these small units).
        if (auto pair = find_robust_test(unit, path, rising, /*limit=*/16)) {
          test.v1 = std::move(pair->first);
          test.v2 = std::move(pair->second);
          found = true;
        }
      }
      if (found) {
        set.tests.push_back(std::move(test));
      } else {
        set.complete = false;
      }
    }
  }
  return set;
}

}  // namespace compsyn
