// Robust two-pattern test generation for comparison units (Section 3.3,
// Table 1).
//
// The generator follows the paper's constructive recipe: the static part of
// each test is derived from the bounds (all positions at their L bits, at
// their U bits, or with the suffix below the transitioning position forced
// just outside/inside the bound), and the path input receives the rising or
// falling transition. Every candidate is validated against the robust
// waveform algebra; if none of the constructive candidates applies (which
// does not happen for units built by build_comparison_unit, but the fallback
// keeps the API total) an exhaustive search over vector pairs is used.
#pragma once

#include <vector>

#include "core/comparison.hpp"
#include "core/comparison_unit.hpp"
#include "netlist/netlist.hpp"
#include "paths/paths.hpp"

namespace compsyn {

struct UnitTest {
  Path path;               // structural path in the unit netlist
  bool rising = false;     // transition direction at the path input
  std::vector<bool> v1;    // first vector (x1..xn, original variable order)
  std::vector<bool> v2;    // second vector
  bool constructive = false;  // produced by the paper's recipe (vs search)
};

struct UnitTestSet {
  Netlist unit;                 // standalone unit (inputs x1..xn)
  std::vector<UnitTest> tests;  // one per testable path delay fault
  std::uint64_t total_faults = 0;
  bool complete = false;  // every path delay fault received a robust test
};

/// Generates a complete robust test set for the unit implementing `spec`.
UnitTestSet generate_unit_tests(const ComparisonSpec& spec,
                                const UnitOptions& opt = {});

}  // namespace compsyn
