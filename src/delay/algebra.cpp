#include "delay/algebra.hpp"

#include <cassert>

namespace compsyn {
namespace {

Wave eval_and_like(bool cv, bool invert, const std::vector<Wave>& in) {
  // cv = controlling value (0 for AND, 1 for OR).
  Wave out;
  bool a1 = true, a2 = true;  // accumulated "all non-controlling"
  bool any_clean_controlling = false;
  bool all_clean = true;
  for (const Wave& w : in) {
    a1 &= w.v1 != cv;
    a2 &= w.v2 != cv;
    any_clean_controlling |= w.clean && w.stable(cv);
    all_clean &= w.clean;
  }
  // Output value: the controlling outcome unless all inputs non-controlling.
  out.v1 = a1 ? !cv : cv;
  out.v2 = a2 ? !cv : cv;
  if (any_clean_controlling) {
    out.clean = true;
  } else if (out.v1 == cv && out.v2 == cv) {
    // Statically controlled without a clean stable controlling input:
    // crossing transitions (or hazardous stable inputs) can glitch.
    out.clean = false;
  } else {
    // Transitioning, or stable at the identity value (which forces every
    // input stable non-controlling): clean iff all inputs are clean.
    out.clean = all_clean;
  }
  if (invert) {
    out.v1 = !out.v1;
    out.v2 = !out.v2;
  }
  return out;
}

}  // namespace

Wave eval_wave(GateType t, const std::vector<Wave>& in) {
  switch (t) {
    case GateType::Input:
      assert(false && "inputs are not evaluated");
      return {};
    case GateType::Const0:
      return {false, false, true};
    case GateType::Const1:
      return {true, true, true};
    case GateType::Buf:
      return in[0];
    case GateType::Not:
      return {!in[0].v1, !in[0].v2, in[0].clean};
    case GateType::And:
      return eval_and_like(false, false, in);
    case GateType::Nand:
      return eval_and_like(false, true, in);
    case GateType::Or:
      return eval_and_like(true, false, in);
    case GateType::Nor:
      return eval_and_like(true, true, in);
    case GateType::Xor:
    case GateType::Xnor: {
      Wave out{false, false, true};
      unsigned transitions = 0;
      for (const Wave& w : in) {
        out.v1 ^= w.v1;
        out.v2 ^= w.v2;
        out.clean &= w.clean;
        transitions += w.transitions();
      }
      if (transitions > 1) out.clean = false;
      if (t == GateType::Xnor) {
        out.v1 = !out.v1;
        out.v2 = !out.v2;
      }
      return out;
    }
  }
  return {};
}

std::vector<Wave> simulate_two_pattern(const Netlist& nl,
                                       const std::vector<bool>& v1,
                                       const std::vector<bool>& v2) {
  assert(v1.size() == nl.inputs().size());
  assert(v2.size() == nl.inputs().size());
  std::vector<Wave> waves(nl.size());
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    waves[nl.inputs()[i]] = {v1[i], v2[i], true};
  }
  std::vector<Wave> ins;
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    if (nd.type == GateType::Input) continue;
    ins.clear();
    for (NodeId f : nd.fanins) ins.push_back(waves[f]);
    waves[n] = eval_wave(nd.type, ins);
  }
  return waves;
}

bool robust_edge(const Netlist& nl, const std::vector<Wave>& waves, NodeId g,
                 std::size_t pin) {
  const Node& nd = nl.node(g);
  assert(pin < nd.fanins.size());
  const Wave& on = waves[nd.fanins[pin]];
  if (!on.transitions() || !on.clean) return false;
  switch (nd.type) {
    case GateType::Buf:
    case GateType::Not:
      return true;
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor: {
      const bool cv = controlling_value(nd.type);
      const bool to_controlling = on.v2 == cv;
      for (std::size_t i = 0; i < nd.fanins.size(); ++i) {
        if (i == pin) continue;
        const Wave& side = waves[nd.fanins[i]];
        if (to_controlling) {
          // Side inputs must hold a steady, hazard-free non-controlling value.
          if (!(side.clean && side.stable(!cv))) return false;
        } else {
          // Side inputs only need a non-controlling final value.
          if (side.v2 == cv) return false;
        }
      }
      return true;
    }
    case GateType::Xor:
    case GateType::Xnor:
      for (std::size_t i = 0; i < nd.fanins.size(); ++i) {
        if (i == pin) continue;
        const Wave& side = waves[nd.fanins[i]];
        if (!side.clean || side.transitions()) return false;
      }
      return true;
    default:
      return false;
  }
}

}  // namespace compsyn
