// Two-pattern waveform algebra for robust path-delay-fault analysis.
//
// For a vector pair (V1, V2) every line carries a Wave: its value under V1,
// its value under V2, and a conservative hazard-free flag ("clean": the line
// provably makes at most one monotone transition regardless of gate delays).
// PIs are clean by definition; the gate rules below propagate cleanliness
// conservatively (never claiming clean when a glitch is possible):
//
//   AND (OR dual):
//     * some input clean stable at the controlling value -> output clean
//       stable at the controlled value;
//     * otherwise output is clean iff every input is clean and the output
//       values under V1/V2 are not both equal to the controlled value
//       (a static-0 output of an AND produced by crossing transitions can
//       glitch; a static-1 output requires all inputs stable 1 anyway).
//   NOT/BUF: cleanliness passes through.
//   XOR/XNOR: clean iff all inputs clean and at most one input transitions.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace compsyn {

struct Wave {
  bool v1 = false;
  bool v2 = false;
  bool clean = true;

  bool transitions() const { return v1 != v2; }
  bool stable(bool v) const { return v1 == v && v2 == v; }
};

inline bool operator==(const Wave& a, const Wave& b) {
  return a.v1 == b.v1 && a.v2 == b.v2 && a.clean == b.clean;
}

/// Evaluates one gate over input waves.
Wave eval_wave(GateType t, const std::vector<Wave>& in);

/// Waves for every node given PI values under both vectors.
std::vector<Wave> simulate_two_pattern(const Netlist& nl,
                                       const std::vector<bool>& v1,
                                       const std::vector<bool>& v2);

/// Robust sensitization of the on-path input `pin` of gate `g` (Section 3.3
/// conditions): the on-path input must make a clean transition; if the
/// transition ends at the controlling value every side input must be clean
/// stable non-controlling; if it ends at the non-controlling value every side
/// input must have a non-controlling final value. XOR-type gates require
/// clean stable side inputs. NOT/BUF propagate unconditionally.
bool robust_edge(const Netlist& nl, const std::vector<Wave>& waves, NodeId g,
                 std::size_t pin);

}  // namespace compsyn
