#include "delay/nonenum.hpp"

#include <cassert>

namespace compsyn {
namespace {

constexpr std::uint64_t kSat = 1ull << 62;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s >= kSat || s < a ? kSat : s;
}

std::uint64_t sat_mul_small(std::uint64_t a, std::uint64_t k) {
  if (a >= kSat / (k == 0 ? 1 : k + 1)) return kSat;
  return a * k;
}

}  // namespace

NonEnumerativePdfEstimator::NonEnumerativePdfEstimator(const Netlist& nl) : nl_(nl) {
  edge_base_.assign(nl.size() + 1, 0);
  for (NodeId n = 0; n < nl.size(); ++n) {
    edge_base_[n + 1] = edge_base_[n] + (nl.is_dead(n) ? 0 : nl.node(n).fanins.size());
  }
  edge_count_ = edge_base_[nl.size()];
  union_edges_.assign(edge_count_, 0);
  union_dirs_.assign(nl.size(), 0);
  pair_edges_.assign(edge_count_, 0);
  pair_dirs_.assign(nl.size(), 0);

  // Saturating path count for the fault universe.
  std::vector<std::uint64_t> np(nl.size(), 0);
  for (NodeId pi : nl.inputs()) {
    if (!nl.is_dead(pi)) np[pi] = 1;
  }
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    if (nd.type == GateType::Input || nd.type == GateType::Const0 ||
        nd.type == GateType::Const1) {
      continue;
    }
    std::uint64_t sum = 0;
    for (NodeId f : nd.fanins) sum = sat_add(sum, np[f]);
    np[n] = sum;
  }
  std::uint64_t total = 0;
  for (NodeId o : nl.outputs()) total = sat_add(total, np[o]);
  total_faults_ = sat_mul_small(total, 2);
}

void NonEnumerativePdfEstimator::apply(const std::vector<bool>& v1,
                                       const std::vector<bool>& v2) {
  ++pairs_;
  const auto waves = simulate_two_pattern(nl_, v1, v2);
  std::fill(pair_edges_.begin(), pair_edges_.end(), 0);
  std::fill(pair_dirs_.begin(), pair_dirs_.end(), 0);
  for (NodeId n = 0; n < nl_.size(); ++n) {
    if (nl_.is_dead(n)) continue;
    const Node& nd = nl_.node(n);
    for (std::size_t pin = 0; pin < nd.fanins.size(); ++pin) {
      if (waves[nd.fanins[pin]].transitions() && robust_edge(nl_, waves, n, pin)) {
        pair_edges_[edge_base_[n] + pin] = 1;
        union_edges_[edge_base_[n] + pin] = 1;
      }
    }
  }
  for (NodeId pi : nl_.inputs()) {
    if (nl_.is_dead(pi) || !waves[pi].transitions()) continue;
    const std::uint8_t bit = waves[pi].v2 ? 1 : 2;  // rising : falling
    pair_dirs_[pi] |= bit;
    union_dirs_[pi] |= bit;
  }
  const std::uint64_t this_pair = count_marked(pair_edges_, pair_dirs_);
  lower_ = std::max(lower_, this_pair);
}

std::uint64_t NonEnumerativePdfEstimator::upper_bound() const {
  return count_marked(union_edges_, union_dirs_);
}

std::uint64_t NonEnumerativePdfEstimator::count_marked(
    const std::vector<char>& edge_marked,
    const std::vector<std::uint8_t>& dir_weight) const {
  // B[n] = paths from n to a primary output through marked edges.
  count_.assign(nl_.size(), 0);
  const auto& order = nl_.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId n = *it;
    std::uint64_t b = nl_.node(n).is_output ? 1 : 0;
    b = sat_add(b, count_[n]);  // contributions pushed by consumers
    count_[n] = b;
    const Node& nd = nl_.node(n);
    for (std::size_t pin = 0; pin < nd.fanins.size(); ++pin) {
      if (edge_marked[edge_base_[n] + pin]) {
        count_[nd.fanins[pin]] = sat_add(count_[nd.fanins[pin]], b);
      }
    }
  }
  std::uint64_t total = 0;
  for (NodeId pi : nl_.inputs()) {
    const unsigned dirs = static_cast<unsigned>(__builtin_popcount(dir_weight[pi]));
    if (dirs) total = sat_add(total, sat_mul_small(count_[pi], dirs));
  }
  return total;
}

NonEnumPdfResult random_nonenum_pdf(const Netlist& nl, Rng& rng, std::uint64_t pairs) {
  NonEnumerativePdfEstimator est(nl);
  const std::size_t n = nl.inputs().size();
  std::vector<bool> v1(n), v2(n);
  for (std::uint64_t p = 0; p < pairs; ++p) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = rng.next();
      v1[i] = r & 1ull;
      v2[i] = (r >> 1) & 1ull;
    }
    est.apply(v1, v2);
  }
  NonEnumPdfResult res;
  res.total_faults = est.total_faults();
  res.lower = est.lower_bound();
  res.upper = est.upper_bound();
  res.pairs_applied = est.pairs_applied();
  return res;
}

}  // namespace compsyn
