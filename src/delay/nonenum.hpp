// Non-enumerative estimation of robust path-delay-fault coverage, in the
// spirit of reference [8] (Pomeranz/Reddy, ICCAD'92): for circuits whose
// path count makes per-path bookkeeping impossible, coverage is bounded
// without enumerating paths.
//
//  * lower bound: the best single-pair detection count seen so far. For one
//    vector pair the set of robustly detected faults is exactly the set of
//    paths through robust-sensitized edges starting at a transitioning
//    input, countable by an O(V) Procedure-1-style DP.
//  * upper bound: a path fault can only ever have been detected if every
//    edge of its path was robust-sensitized by SOME applied pair and its
//    origin showed the corresponding transition in SOME pair; counting paths
//    through the UNION of sensitized edges (weighted by the origin
//    directions seen) is therefore an upper bound on the union of detected
//    sets.
//
// Both bounds use O(E) memory independent of the path count.
#pragma once

#include <cstdint>
#include <vector>

#include "delay/algebra.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {

class NonEnumerativePdfEstimator {
 public:
  explicit NonEnumerativePdfEstimator(const Netlist& nl);

  /// Total fault universe = 2 * paths (saturating at 2^63; the estimator
  /// itself never needs the exact value).
  std::uint64_t total_faults() const { return total_faults_; }

  /// Accounts one vector pair. O(V + E).
  void apply(const std::vector<bool>& v1, const std::vector<bool>& v2);

  /// Bounds on the number of distinct robustly detected path delay faults
  /// over all pairs applied so far.
  std::uint64_t lower_bound() const { return lower_; }
  std::uint64_t upper_bound() const;

  std::uint64_t pairs_applied() const { return pairs_; }

 private:
  /// Counts faults whose every edge is marked; `edge_marked` is indexed by
  /// edge_base_[node] + pin; per-PI direction weights in dir_weight.
  std::uint64_t count_marked(const std::vector<char>& edge_marked,
                             const std::vector<std::uint8_t>& dir_weight) const;

  const Netlist& nl_;
  std::vector<std::size_t> edge_base_;  // first edge index per node
  std::size_t edge_count_ = 0;
  std::uint64_t total_faults_ = 0;

  std::vector<char> union_edges_;          // edges sensitized by any pair
  std::vector<std::uint8_t> union_dirs_;   // per-PI: bit0 rising, bit1 falling
  std::uint64_t lower_ = 0;
  std::uint64_t pairs_ = 0;

  // scratch
  mutable std::vector<std::uint64_t> count_;
  std::vector<char> pair_edges_;
  std::vector<std::uint8_t> pair_dirs_;
};

/// Experiment driver mirroring random_robust_pdf but non-enumerative.
struct NonEnumPdfResult {
  std::uint64_t total_faults = 0;
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
  std::uint64_t pairs_applied = 0;
};
NonEnumPdfResult random_nonenum_pdf(const Netlist& nl, Rng& rng,
                                    std::uint64_t pairs);

}  // namespace compsyn
