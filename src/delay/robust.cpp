#include "delay/robust.hpp"

#include <cassert>

#include "exec/exec.hpp"

namespace compsyn {

bool robustly_tests(const Netlist& nl, const Path& path, bool rising,
                    const std::vector<bool>& v1, const std::vector<bool>& v2) {
  assert(!path.nodes.empty());
  const auto waves = simulate_two_pattern(nl, v1, v2);
  const Wave& origin = waves[path.nodes.front()];
  if (!origin.transitions() || origin.v2 != rising) return false;
  for (std::size_t j = 1; j < path.nodes.size(); ++j) {
    const Node& nd = nl.node(path.nodes[j]);
    bool ok = false;
    for (std::size_t pin = 0; pin < nd.fanins.size() && !ok; ++pin) {
      if (nd.fanins[pin] == path.nodes[j - 1]) {
        ok = robust_edge(nl, waves, path.nodes[j], pin);
      }
    }
    if (!ok) return false;
  }
  return true;
}

std::optional<std::pair<std::vector<bool>, std::vector<bool>>> find_robust_test(
    const Netlist& nl, const Path& path, bool rising, unsigned exhaustive_limit) {
  const std::size_t n = nl.inputs().size();
  // Locate the origin among the primary inputs.
  std::size_t origin = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (nl.inputs()[i] == path.nodes.front()) origin = i;
  }
  assert(origin < n);

  auto unpack = [&](std::uint64_t bits, std::size_t skip) {
    std::vector<bool> v(n, false);
    std::size_t b = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == skip) continue;
      v[i] = (bits >> b++) & 1ull;
    }
    return v;
  };

  // Phase 1: single-input-change pairs (the comparison-unit tests of
  // Table 1 all have this shape).
  if (n - 1 <= exhaustive_limit) {
    const std::uint64_t limit = 1ull << (n - 1);
    for (std::uint64_t bits = 0; bits < limit; ++bits) {
      std::vector<bool> v2 = unpack(bits, origin);
      std::vector<bool> v1 = v2;
      v2[origin] = rising;
      v1[origin] = !rising;
      if (robustly_tests(nl, path, rising, v1, v2)) return std::make_pair(v1, v2);
    }
  }
  // Phase 2: all vector pairs with the origin transition fixed.
  if (2 * (n - 1) <= exhaustive_limit) {
    const std::uint64_t limit = 1ull << (n - 1);
    for (std::uint64_t b1 = 0; b1 < limit; ++b1) {
      std::vector<bool> v1 = unpack(b1, origin);
      v1[origin] = !rising;
      for (std::uint64_t b2 = 0; b2 < limit; ++b2) {
        std::vector<bool> v2 = unpack(b2, origin);
        v2[origin] = rising;
        if (robustly_tests(nl, path, rising, v1, v2)) return std::make_pair(v1, v2);
      }
    }
  }
  return std::nullopt;
}

RobustPdfSimulator::RobustPdfSimulator(const Netlist& nl)
    : nl_(nl), pc_(count_paths(nl)) {
  bits_.assign(static_cast<std::size_t>((total_faults() + 63) / 64), 0);
}

bool RobustPdfSimulator::is_detected(std::uint64_t fault_id) const {
  return (bits_[fault_id >> 6] >> (fault_id & 63)) & 1ull;
}

void RobustPdfSimulator::mark(std::uint64_t fault_id) {
  std::uint64_t& w = bits_[fault_id >> 6];
  const std::uint64_t bit = 1ull << (fault_id & 63);
  if (!(w & bit)) {
    w |= bit;
    ++detected_count_;
  }
}

void RobustPdfSimulator::walk(NodeId n, std::uint64_t id_base,
                              const std::vector<Wave>& waves,
                              std::uint64_t& budget, std::uint64_t& newly) {
  if (budget == 0) return;
  --budget;
  const Node& nd = nl_.node(n);
  if (nd.type == GateType::Input) {
    // Fault id: rising origin transition -> even, falling -> odd.
    const std::uint64_t id = 2 * id_base + (waves[n].v1 ? 1 : 0);
    const std::uint64_t before = detected_count_;
    mark(id);
    newly += detected_count_ - before;
    return;
  }
  std::uint64_t off = 0;
  for (std::size_t pin = 0; pin < nd.fanins.size(); ++pin) {
    const NodeId f = nd.fanins[pin];
    if (waves[f].transitions() && robust_edge(nl_, waves, n, pin)) {
      walk(f, id_base + off, waves, budget, newly);
      if (budget == 0) return;
    }
    off += pc_.np[f];
  }
}

std::uint64_t RobustPdfSimulator::apply(const std::vector<bool>& v1,
                                        const std::vector<bool>& v2,
                                        std::uint64_t work_cap) {
  const auto waves = simulate_two_pattern(nl_, v1, v2);
  std::uint64_t newly = 0;
  std::uint64_t budget = work_cap;
  for (std::size_t k = 0; k < nl_.outputs().size(); ++k) {
    const NodeId po = nl_.outputs()[k];
    if (!waves[po].transitions()) continue;
    walk(po, pc_.output_offsets[k], waves, budget, newly);
    if (budget == 0) break;
  }
  return newly;
}

PdfExperimentResult random_robust_pdf(const Netlist& nl, Rng& rng,
                                      std::uint64_t stop_window,
                                      std::uint64_t max_pairs) {
  RobustPdfSimulator sim(nl);
  PdfExperimentResult res;
  res.total_faults = sim.total_faults();
  const std::size_t n = nl.inputs().size();
  std::vector<bool> v1(n), v2(n);
  std::uint64_t since_last = 0;
  for (std::uint64_t pair = 1; pair <= max_pairs; ++pair) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = rng.next();
      v1[i] = r & 1ull;
      v2[i] = (r >> 1) & 1ull;
    }
    const std::uint64_t newly = sim.apply(v1, v2);
    res.pairs_applied = pair;
    if (newly > 0) {
      res.last_effective_pair = pair;
      since_last = 0;
    } else if (++since_last >= stop_window) {
      break;
    }
    if (sim.detected_count() == sim.total_faults()) break;
  }
  res.detected = sim.detected_count();
  return res;
}

PdfTestability count_robustly_testable(const Netlist& nl,
                                       unsigned exhaustive_limit,
                                       std::size_t path_cap) {
  PdfTestability out;
  const auto paths = enumerate_paths(nl, path_cap);
  out.total_faults = 2 * paths.size();
  // Each path-delay fault (path, transition) is tested independently against
  // the read-only netlist; fan the fault list out over the exec layer and
  // sum the testable counts (a commutative fold: jobs-invariant). Item 2i is
  // path i rising, 2i+1 falling, matching the serial enumeration order.
  nl.topo_order();
  nl.fanouts();  // warm the lazy caches before the parallel region
  out.testable = parallel_reduce<std::size_t>(
      2 * paths.size(), kDefaultGrain, 0,
      [&](std::size_t i) -> std::size_t {
        const Path& p = paths[i / 2];
        const bool rising = (i % 2) == 0;
        return find_robust_test(nl, p, rising, exhaustive_limit) ? 1 : 0;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return out;
}

}  // namespace compsyn
