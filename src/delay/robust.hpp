// Robust path-delay-fault simulation and test generation.
//
// Fault model: every structural path has two delay faults (slow-to-rise and
// slow-to-fall at the path input), so the fault universe has 2 * N_p members,
// numbered fault_id = 2 * path_id + (0 rising / 1 falling). A vector pair
// robustly detects a fault iff the path input makes the corresponding clean
// transition and every on-path edge satisfies the robust sensitization
// conditions of delay/algebra.hpp.
//
// The simulator marks all faults a pair detects by walking the
// robust-sensitized subgraph from each transitioning output; the global path
// numbering of paths/paths.hpp turns each walk into fault ids.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "delay/algebra.hpp"
#include "netlist/netlist.hpp"
#include "paths/paths.hpp"
#include "util/rng.hpp"

namespace compsyn {

/// True if (v1, v2) robustly tests the path with the given origin transition.
bool robustly_tests(const Netlist& nl, const Path& path, bool rising,
                    const std::vector<bool>& v1, const std::vector<bool>& v2);

/// Searches for a robust two-pattern test for one path fault. Tries all
/// single-input-change pairs first, then (for circuits with at most
/// `exhaustive_limit` inputs) all vector pairs. Returns the pair or nullopt.
std::optional<std::pair<std::vector<bool>, std::vector<bool>>> find_robust_test(
    const Netlist& nl, const Path& path, bool rising,
    unsigned exhaustive_limit = 12);

class RobustPdfSimulator {
 public:
  explicit RobustPdfSimulator(const Netlist& nl);

  /// Total fault universe = 2 * number of paths.
  std::uint64_t total_faults() const { return 2 * pc_.total; }
  const PathCounts& path_counts() const { return pc_; }

  /// Simulates one vector pair and marks newly detected faults. Returns the
  /// number of NEW detections. `work_cap` bounds the per-pair walk (a pair
  /// sensitizing astronomically many paths stops early; detection marking is
  /// then incomplete for that pair, which only makes coverage conservative).
  std::uint64_t apply(const std::vector<bool>& v1, const std::vector<bool>& v2,
                      std::uint64_t work_cap = 1u << 22);

  std::uint64_t detected_count() const { return detected_count_; }
  bool is_detected(std::uint64_t fault_id) const;

 private:
  void mark(std::uint64_t fault_id);
  /// Recursive walk down robust edges; id_base is the path-id offset
  /// accumulated so far, `rising` the transition direction at the current
  /// frontier (towards the inputs).
  void walk(NodeId n, std::uint64_t id_base, const std::vector<Wave>& waves,
            std::uint64_t& budget, std::uint64_t& newly);

  const Netlist& nl_;
  PathCounts pc_;
  std::vector<std::uint64_t> bits_;
  std::uint64_t detected_count_ = 0;
};

/// Table 7 style experiment: random vector pairs until the coverage has not
/// changed for `stop_window` consecutive pairs (or max_pairs).
struct PdfExperimentResult {
  std::uint64_t total_faults = 0;
  std::uint64_t detected = 0;
  std::uint64_t last_effective_pair = 0;  // 1-based; 0 if nothing detected
  std::uint64_t pairs_applied = 0;
};

PdfExperimentResult random_robust_pdf(const Netlist& nl, Rng& rng,
                                      std::uint64_t stop_window = 100000,
                                      std::uint64_t max_pairs = 2000000);

/// Exhaustive robust testability for small circuits: how many of the 2*N_p
/// path delay faults have SOME robust test. Complete for circuits whose
/// input count is <= exhaustive_limit; paths capped at `path_cap`.
struct PdfTestability {
  std::uint64_t total_faults = 0;
  std::uint64_t testable = 0;
};
PdfTestability count_robustly_testable(const Netlist& nl,
                                       unsigned exhaustive_limit = 12,
                                       std::size_t path_cap = 1u << 16);

}  // namespace compsyn
