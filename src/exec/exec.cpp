#include "exec/exec.hpp"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/domain.hpp"
#include "robust/robust.hpp"

namespace compsyn {
namespace {

// Set while the current thread executes chunks of some region (worker or
// inline caller). Primitives entered in this state run serially inline:
// nested parallelism is rejected by never spawning from within a region.
thread_local bool t_in_region = false;

/// Marks the current thread as inside a region for a scope; exception-safe
/// (an inline chunk that throws must not leave the flag stuck).
struct RegionGuard {
  RegionGuard() : prev(t_in_region) { t_in_region = true; }
  ~RegionGuard() { t_in_region = prev; }
  bool prev;
};

// The calling thread's bound pool (nullptr = use the default).
thread_local ExecPool* t_pool = nullptr;

}  // namespace

/// Workers are parked on a condition variable between regions; a region is
/// published under the mutex as a (sequence number, body, chunk count)
/// triple and chunks are claimed with an atomic cursor. Completion is
/// signalled back under the same mutex, so everything the chunks wrote
/// happens-before the caller's merge. The region also publishes the
/// opening thread's robust slot and obs domain; workers bind both around
/// their chunks so ticks, cancellation polls, counters and spans all
/// resolve to the lane that owns the region.
struct ExecPool::Impl {
  void set_jobs(unsigned jobs) {
    if (jobs < 1) jobs = 1;
    if (t_in_region) {
      throw std::logic_error("set_jobs called from inside a parallel region");
    }
    // Same order as run(): caller_mu_ before mu_, so a resize waits for any
    // in-flight region instead of tearing its workers down.
    std::lock_guard<std::mutex> caller_lock(caller_mu_);
    std::unique_lock<std::mutex> lock(mu_);
    if (jobs == jobs_) return;
    stop_workers(lock);
    jobs_ = jobs;
    threads_.reserve(jobs_ - 1);
    for (unsigned w = 1; w < jobs_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }

  unsigned jobs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return jobs_;
  }

  void run(std::size_t num_chunks,
           const std::function<void(std::size_t, unsigned)>& body) {
    if (num_chunks == 0) return;
    Counters::incr("exec.regions");
    Counters::incr("exec.chunks", num_chunks);

    // Nested invocation: run inline, chunks in index order (never spawn
    // from within a region). Checked before any locking so a nested call
    // from the orchestrating thread cannot self-deadlock.
    if (t_in_region) {
      run_inline(num_chunks, body);
      return;
    }
    // Serialize top-level regions from distinct threads (ordered strictly
    // before mu_: workers need mu_ to retire, so holding mu_ while waiting
    // here would deadlock a running region).
    std::lock_guard<std::mutex> caller_lock(caller_mu_);
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (jobs_ == 1 || num_chunks == 1) {
        lock.unlock();
        run_inline(num_chunks, body);
        return;
      }
      // Note: idle_workers_ is maintained by the workers alone (parked
      // workers are counted in it right now); resetting it here would
      // corrupt the count and deadlock the done-wait below.
      body_ = &body;
      num_chunks_ = num_chunks;
      region_slot_ = &robust::current_slot();
      region_domain_ = &obs_current_domain();
      next_chunk_.store(0, std::memory_order_relaxed);
      excs_.assign(num_chunks, nullptr);
      ++region_seq_;
    }
    // Wake only as many workers as could possibly claim a chunk (the caller
    // takes one share as worker 0). Small regions on wide pools otherwise
    // pay a full pool wake/re-park cycle per region -- each unneeded worker
    // costs two mutex acquisitions and a done_cv_ notify just to discover
    // the cursor is spent. Workers left parked keep idle_workers_ intact,
    // so the done-wait below is unaffected; a worker that misses a region
    // entirely catches up via the seq check on its next wake. Lost
    // notifies are benign: any not-yet-parked worker re-checks the seq
    // predicate before blocking.
    const std::size_t wake =
        num_chunks - 1 < threads_.size() ? num_chunks - 1 : threads_.size();
    if (wake == threads_.size()) {
      cv_.notify_all();
    } else {
      for (std::size_t i = 0; i < wake; ++i) cv_.notify_one();
    }

    // The caller participates as worker 0 (already bound to its own slot
    // and domain -- no rebinding needed).
    {
      RegionGuard guard;
      run_chunks(body, /*worker=*/0);
    }

    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return idle_workers_ == threads_.size(); });
    body_ = nullptr;
    std::exception_ptr first;
    for (std::exception_ptr& e : excs_) {
      if (e && !first) first = e;
      e = nullptr;
    }
    lock.unlock();
    if (first) std::rethrow_exception(first);
  }

  void run_inline(std::size_t num_chunks,
                  const std::function<void(std::size_t, unsigned)>& body) {
    RegionGuard guard;
    // Exceptions propagate directly: with one thread, chunk c throwing
    // before chunks > c ran is exactly the serial contract. The poll point
    // makes every chunk boundary a cancellation opportunity (CancelledError
    // propagates like any other chunk exception).
    for (std::size_t c = 0; c < num_chunks; ++c) {
      robust::poll_cancellation();
      body(c, 0);
    }
  }

  void run_chunks(const std::function<void(std::size_t, unsigned)>& body,
                  unsigned worker) {
    for (;;) {
      const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks_) return;
      try {
        // Cancellation poll: a pending cancel fails this chunk (and every
        // later one) with CancelledError, which run() rethrows as the
        // lowest-chunk exception after the region drains.
        robust::poll_cancellation();
        body(c, worker);
      } catch (...) {
        excs_[c] = std::current_exception();
      }
    }
  }

  void worker_loop(unsigned worker) {
    // The caller participates as worker 0 on trace track 0; spawned workers
    // get their pool id as their Chrome trace track, so per-thread activity
    // in a --trace-out profile lines up with the deterministic chunk
    // assignment worker ids.
    ChromeTrace::set_thread_track(worker);
    std::uint64_t seen_seq = 0;
    for (;;) {
      const std::function<void(std::size_t, unsigned)>* body = nullptr;
      robust::Slot* slot = nullptr;
      ObsDomain* domain = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ++idle_workers_;
        done_cv_.notify_all();
        cv_.wait(lock, [&] { return stop_ || region_seq_ != seen_seq; });
        if (stop_) return;
        seen_seq = region_seq_;
        --idle_workers_;
        body = body_;
        slot = region_slot_;
        domain = region_domain_;
      }
      if (body != nullptr) {
        // Inherit the region opener's environment: charge()/poll points
        // and Counters/Trace below resolve through these bindings.
        robust::SlotBind slot_bind(*slot);
        ObsDomainBind domain_bind(*domain);
        RegionGuard guard;
        run_chunks(*body, worker);
      }
    }
  }

  /// Joins every worker. Called with the lock held; returns with it held.
  void stop_workers(std::unique_lock<std::mutex>& lock) {
    if (threads_.empty()) return;
    stop_ = true;
    lock.unlock();
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    lock.lock();
    threads_.clear();
    stop_ = false;
    idle_workers_ = 0;
  }

  std::mutex caller_mu_;             // serializes top-level run() calls
  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: new region / stop
  std::condition_variable done_cv_;  // caller: all workers idle again
  std::vector<std::thread> threads_;
  unsigned jobs_ = 1;
  bool stop_ = false;

  // Current region (valid while body_ != nullptr).
  const std::function<void(std::size_t, unsigned)>* body_ = nullptr;
  std::size_t num_chunks_ = 0;
  robust::Slot* region_slot_ = nullptr;
  ObsDomain* region_domain_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::vector<std::exception_ptr> excs_;
  std::size_t idle_workers_ = 0;  // workers parked between regions
  std::uint64_t region_seq_ = 0;
};

ExecPool::ExecPool(unsigned jobs) : impl_(new Impl()) {
  if (jobs > 1) impl_->set_jobs(jobs);
}

ExecPool::~ExecPool() {
  {
    std::lock_guard<std::mutex> caller_lock(impl_->caller_mu_);
    std::unique_lock<std::mutex> lock(impl_->mu_);
    impl_->stop_workers(lock);
  }
  delete impl_;
}

void ExecPool::set_jobs(unsigned jobs) { impl_->set_jobs(jobs); }

unsigned ExecPool::jobs() const { return impl_->jobs(); }

void ExecPool::run(std::size_t num_chunks,
                   const std::function<void(std::size_t, unsigned)>& body) {
  impl_->run(num_chunks, body);
}

ExecPool& default_exec_pool() {
  static ExecPool* p = new ExecPool();  // leaked: workers may outlive dtors
  return *p;
}

ExecPool& current_exec_pool() {
  return t_pool != nullptr ? *t_pool : default_exec_pool();
}

ExecPoolBind::ExecPoolBind(ExecPool& p) : prev_(t_pool) { t_pool = &p; }

ExecPoolBind::~ExecPoolBind() { t_pool = prev_; }

void set_jobs(unsigned jobs) { current_exec_pool().set_jobs(jobs); }

unsigned jobs() { return current_exec_pool().jobs(); }

bool in_parallel_region() { return t_in_region; }

namespace exec_detail {

void run_region(std::size_t num_chunks,
                const std::function<void(std::size_t, unsigned)>& body) {
  current_exec_pool().run(num_chunks, body);
}

}  // namespace exec_detail

}  // namespace compsyn
