// Deterministic parallel execution layer (`compsyn_exec`).
//
// A fixed-size thread pool plus `parallel_for` / `parallel_map` /
// `parallel_reduce` primitives built around one contract:
//
//   THE RESULT OF EVERY PRIMITIVE IS A PURE FUNCTION OF (n, grain, fn) --
//   never of the job count or the runtime schedule.
//
// The contract is met by construction:
//  * Chunking is by index only: the range [0, n) is cut into
//    ceil(n / grain) fixed chunks. The partition depends on n and grain,
//    NOT on the number of workers, so per-chunk side effects (and the
//    exec.* obs counters) are identical for --jobs=1 and --jobs=N.
//  * Chunks are claimed dynamically (an atomic cursor) for load balance,
//    but all results are merged IN CHUNK INDEX ORDER after the region
//    completes. parallel_map concatenates per-chunk buffers in order;
//    parallel_reduce folds per-chunk partials left-to-right.
//  * With jobs == 1 (the default) every primitive runs inline on the
//    calling thread, chunk by chunk in order -- no pool, no threads, no
//    atomics on the work path -- so serial behaviour is byte-identical to
//    code that never heard of this library.
//
// Nested parallelism is rejected: a primitive invoked from inside a worker
// (or from inside an inline region) never spawns -- it degrades to serial
// inline execution on the calling thread. This keeps the pool deadlock-free
// by construction and keeps nested loops deterministic.
//
// Exceptions thrown by `fn` are captured per chunk; after the region the
// exception of the LOWEST-numbered throwing chunk is rethrown on the
// caller (a deterministic choice). Other chunks may or may not have run.
//
// Thread safety of `fn` is the caller's job: the intended pattern is
// read-only shared state (e.g. a Netlist whose lazy caches were warmed
// before the region -- see exec_warm_netlist_caches-style helpers at the
// call sites) plus per-chunk or per-worker scratch indexed by the worker
// id passed to the low-level `parallel_chunks`.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace compsyn {

/// A fixed-size worker pool that executes parallel regions. The process
/// has a default pool that unbound threads share -- one-shot binaries
/// never construct one and behave exactly as before -- while the serving
/// daemon gives each job lane a private pool (ExecPoolBind) so lanes run
/// truly concurrently without sharing a chunk cursor or worker set.
///
/// Workers inherit the robust slot and obs domain of the thread that
/// opened the region: ticks charged and counters/spans recorded from
/// worker threads land on the lane that owns the region, never on a
/// neighbour. The chunk partition stays a pure function of (n, grain),
/// so results are identical no matter which pool runs the region.
class ExecPool {
 public:
  /// A pool with `jobs` workers (1 = serial inline, no threads spawned).
  explicit ExecPool(unsigned jobs = 1);
  ~ExecPool();
  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  /// Resizes the pool. Must not be called from inside one of its regions.
  void set_jobs(unsigned jobs);
  unsigned jobs() const;

  /// Runs body(chunk_index, worker_id) for every chunk. Low-level: call
  /// sites use the parallel_* primitives, which route through the bound
  /// pool via exec_detail::run_region.
  void run(std::size_t num_chunks,
           const std::function<void(std::size_t, unsigned)>& body);

 private:
  struct Impl;
  Impl* impl_;
};

/// The pool unbound threads use (leaked: workers may outlive static dtors).
ExecPool& default_exec_pool();

/// The calling thread's pool: the bound one, else the default.
ExecPool& current_exec_pool();

/// Binds `p` as the calling thread's pool for a scope. Nests by
/// restoration. Serving lanes bind their private pool around the job
/// loop; everything below (resynthesis, fault sim, SAT) picks it up
/// through the primitives without signature changes.
class ExecPoolBind {
 public:
  explicit ExecPoolBind(ExecPool& p);
  ~ExecPoolBind();
  ExecPoolBind(const ExecPoolBind&) = delete;
  ExecPoolBind& operator=(const ExecPoolBind&) = delete;

 private:
  ExecPool* prev_;
};

/// Job count of the calling thread's pool. 1 (the default) means fully
/// serial inline execution. Must not be called while one of that pool's
/// regions is running.
void set_jobs(unsigned jobs);
unsigned jobs();

/// True while the calling thread is executing inside a parallel region
/// (worker or inline). Primitives invoked in this state run serially.
bool in_parallel_region();

/// Default grain (items per chunk) when a call site has no better number.
inline constexpr std::size_t kDefaultGrain = 16;

namespace exec_detail {

/// Number of chunks the range [0, n) is cut into: ceil(n / grain).
/// grain < 1 is treated as 1. Independent of the job count by design.
inline std::size_t chunk_count(std::size_t n, std::size_t grain) {
  if (grain < 1) grain = 1;
  return n == 0 ? 0 : (n + grain - 1) / grain;
}

/// Runs body(chunk_index, worker_id) for every chunk in [0, num_chunks).
/// worker_id is in [0, jobs()); the caller participates as worker 0.
/// Rethrows the lowest-chunk-index exception after the region completes.
void run_region(std::size_t num_chunks,
                const std::function<void(std::size_t, unsigned)>& body);

}  // namespace exec_detail

/// Low-level primitive: fn(begin, end, worker_id) for every chunk
/// [begin, end) of the fixed index partition of [0, n). The worker id is
/// stable for the duration of one chunk and lies in [0, jobs()): use it to
/// index per-worker scratch sized by jobs().
template <typename Fn>
void parallel_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = exec_detail::chunk_count(n, grain);
  exec_detail::run_region(chunks, [&](std::size_t c, unsigned worker) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    fn(begin, end, worker);
  });
}

/// fn(i) for every i in [0, n). No cross-iteration ordering is guaranteed;
/// iterations must be independent (distinct output slots, no shared
/// mutable state). Use parallel_map/parallel_reduce when results must be
/// combined.
template <typename Fn>
void parallel_for(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_chunks(n, grain, [&](std::size_t begin, std::size_t end, unsigned) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// results[i] = fn(i) for every i in [0, n), assembled in index order.
/// Each chunk fills a private buffer; buffers are concatenated in chunk
/// order after the region, so the output is identical at any job count
/// (this also sidesteps std::vector<bool>'s shared-word writes).
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, std::size_t grain, Fn&& fn) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = exec_detail::chunk_count(n, grain);
  std::vector<std::vector<T>> parts(chunks);
  parallel_chunks(n, grain, [&](std::size_t begin, std::size_t end, unsigned) {
    std::vector<T>& out = parts[begin / grain];
    out.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) out.push_back(fn(i));
  });
  std::vector<T> results;
  results.reserve(n);
  for (std::vector<T>& p : parts) {
    for (T& v : p) results.push_back(std::move(v));
  }
  return results;
}

/// Left fold of fn(i) over [0, n) with a deterministic shape:
///   result = merge(...merge(merge(init, fn(0)), fn(1))..., fn(n-1))
/// Per-chunk partials are folded inside each chunk in index order and the
/// chunk partials are folded left-to-right afterwards, so `merge` must be
/// associative for the parallel fold to equal the serial one (integer sums,
/// max, set union, "first strictly better wins" selections all qualify;
/// floating-point sums do NOT unless the chunk shape makes them exact).
template <typename T, typename Fn, typename Merge>
T parallel_reduce(std::size_t n, std::size_t grain, T init, Fn&& fn,
                  Merge&& merge) {
  if (grain < 1) grain = 1;
  const std::size_t chunks = exec_detail::chunk_count(n, grain);
  if (chunks == 0) return init;
  std::vector<T> partials(chunks);  // every chunk holds >= 1 item, all filled
  parallel_chunks(n, grain, [&](std::size_t begin, std::size_t end, unsigned) {
    T acc = fn(begin);
    for (std::size_t i = begin + 1; i < end; ++i) acc = merge(std::move(acc), fn(i));
    partials[begin / grain] = std::move(acc);
  });
  T result = std::move(init);
  for (T& p : partials) result = merge(std::move(result), std::move(p));
  return result;
}

}  // namespace compsyn
