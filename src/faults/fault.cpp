#include "faults/fault.hpp"

#include <map>
#include <numeric>
#include <sstream>

namespace compsyn {
namespace {

bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::Const0 || t == GateType::Const1;
}

/// Union-find over fault ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) x = parent_[x] = parent_[parent_[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

std::string to_string(const Netlist& nl, const StuckFault& f) {
  std::ostringstream ss;
  const Node& n = nl.node(f.node);
  const std::string name = n.name.empty() ? "n" + std::to_string(f.node) : n.name;
  if (f.is_stem()) {
    ss << name;
  } else {
    const NodeId src = n.fanins[static_cast<std::size_t>(f.pin)];
    const Node& s = nl.node(src);
    ss << (s.name.empty() ? "n" + std::to_string(src) : s.name) << "->" << name
       << "[" << f.pin << "]";
  }
  ss << " s-a-" << (f.value ? 1 : 0);
  return ss.str();
}

std::vector<StuckFault> enumerate_faults(const Netlist& nl, bool collapse) {
  const auto& fanouts = nl.fanouts();

  // Collect fault sites: stems for every live node (except constants),
  // branches for pins fed by multi-fanout stems.
  std::vector<StuckFault> sites;
  for (NodeId n = 0; n < nl.size(); ++n) {
    if (nl.is_dead(n)) continue;
    const GateType t = nl.node(n).type;
    if (t == GateType::Const0 || t == GateType::Const1) continue;
    // A stem with no observers contributes no faults.
    if (fanouts[n].empty() && !nl.node(n).is_output) continue;
    sites.push_back({n, -1, false});
    sites.push_back({n, -1, true});
  }
  for (NodeId n = 0; n < nl.size(); ++n) {
    if (nl.is_dead(n)) continue;
    const Node& nd = nl.node(n);
    if (is_source(nd.type)) continue;
    for (std::size_t pin = 0; pin < nd.fanins.size(); ++pin) {
      const NodeId src = nd.fanins[pin];
      if (nl.node(src).type == GateType::Const0 ||
          nl.node(src).type == GateType::Const1) {
        continue;  // faults on constant connections are untestable by design
      }
      const bool multi = fanouts[src].size() > 1 ||
                         (fanouts[src].size() == 1 && nl.node(src).is_output);
      if (multi) {
        sites.push_back({n, static_cast<int>(pin), false});
        sites.push_back({n, static_cast<int>(pin), true});
      }
    }
  }
  if (!collapse) return sites;

  // Equivalence collapsing via union-find. Map each site to an index.
  std::map<std::pair<NodeId, int>, std::size_t> line_index;  // line -> 2 faults
  std::vector<std::pair<NodeId, int>> lines;
  for (std::size_t i = 0; i < sites.size(); i += 2) {
    line_index[{sites[i].node, sites[i].pin}] = lines.size();
    lines.push_back({sites[i].node, sites[i].pin});
  }
  auto fault_id = [&](NodeId node, int pin, bool value) -> std::size_t {
    auto it = line_index.find({node, pin});
    if (it == line_index.end()) return static_cast<std::size_t>(-1);
    return 2 * it->second + (value ? 1 : 0);
  };
  UnionFind uf(2 * lines.size());

  for (NodeId n = 0; n < nl.size(); ++n) {
    if (nl.is_dead(n)) continue;
    const Node& nd = nl.node(n);
    if (is_source(nd.type)) continue;
    const std::size_t out0 = fault_id(n, -1, false);
    const std::size_t out1 = fault_id(n, -1, true);
    for (std::size_t pin = 0; pin < nd.fanins.size(); ++pin) {
      // The line feeding this pin: the branch if it exists, else the stem.
      NodeId src = nd.fanins[pin];
      std::size_t in0 = fault_id(n, static_cast<int>(pin), false);
      if (in0 == static_cast<std::size_t>(-1)) {
        in0 = fault_id(src, -1, false);
      }
      if (in0 == static_cast<std::size_t>(-1)) continue;  // constant feed
      const std::size_t in1 = in0 + 1;
      switch (nd.type) {
        case GateType::Buf:
          if (out0 != static_cast<std::size_t>(-1)) {
            uf.unite(in0, out0);
            uf.unite(in1, out1);
          }
          break;
        case GateType::Not:
          if (out0 != static_cast<std::size_t>(-1)) {
            uf.unite(in0, out1);
            uf.unite(in1, out0);
          }
          break;
        case GateType::And:
          if (out0 != static_cast<std::size_t>(-1)) uf.unite(in0, out0);
          break;
        case GateType::Nand:
          if (out1 != static_cast<std::size_t>(-1)) uf.unite(in0, out1);
          break;
        case GateType::Or:
          if (out1 != static_cast<std::size_t>(-1)) uf.unite(in1, out1);
          break;
        case GateType::Nor:
          if (out0 != static_cast<std::size_t>(-1)) uf.unite(in1, out0);
          break;
        default:
          break;  // XOR-type gates have no structural equivalences
      }
    }
  }

  // One representative (the first site) per class.
  std::vector<StuckFault> out;
  std::vector<char> taken(2 * lines.size(), 0);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const std::size_t id = fault_id(sites[i].node, sites[i].pin, sites[i].value);
    const std::size_t rep = uf.find(id);
    if (!taken[rep]) {
      taken[rep] = 1;
      out.push_back(sites[i]);
    }
  }
  return out;
}

}  // namespace compsyn
