// Single stuck-at fault universe over a netlist.
//
// Fault sites follow the ISCAS convention: one line per gate output (the
// stem) and one line per fanout branch of a multi-fanout stem. A connection
// from a single-fanout stem to its consumer is one line, represented by the
// stem. Each line carries a stuck-at-0 and a stuck-at-1 fault.
//
// enumerate_faults(collapse=true) applies structural equivalence collapsing:
//   BUF: in s-a-v  == out s-a-v          NOT: in s-a-v == out s-a-!v
//   AND: in s-a-0  == out s-a-0          NAND: in s-a-0 == out s-a-1
//   OR:  in s-a-1  == out s-a-1          NOR: in s-a-1 == out s-a-0
// keeping one representative per equivalence class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace compsyn {

struct StuckFault {
  NodeId node = kNoNode;  // owning gate for branches, the stem node otherwise
  int pin = -1;           // -1: output stem; >= 0: fanin branch index
  bool value = false;     // stuck-at value

  bool is_stem() const { return pin < 0; }
  bool operator==(const StuckFault& o) const = default;
};

std::string to_string(const Netlist& nl, const StuckFault& f);

/// All fault sites of the live netlist; collapsed when requested.
std::vector<StuckFault> enumerate_faults(const Netlist& nl, bool collapse = true);

}  // namespace compsyn
