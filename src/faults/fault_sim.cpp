#include "faults/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace compsyn {

FaultSimulator::FaultSimulator(const Netlist& nl, std::vector<StuckFault> faults)
    : nl_(nl), faults_(std::move(faults)) {
  detected_.assign(faults_.size(), 0);
  first_pattern_.assign(faults_.size(), 0);
  stamp_.assign(nl_.size(), 0);
  fval_.assign(nl_.size(), 0);
  topo_rank_.assign(nl_.size(), 0);
  const auto& order = nl_.topo_order();
  for (std::uint32_t i = 0; i < order.size(); ++i) topo_rank_[order[i]] = i;
  is_po_.assign(nl_.size(), 0);
  for (NodeId o : nl_.outputs()) is_po_[o] = 1;
}

std::vector<std::size_t> FaultSimulator::simulate_block(
    const std::vector<std::uint64_t>& pi_words, std::uint64_t base_pattern) {
  const auto sp = Trace::span("fsim.block");
  std::uint64_t events = 0;     // faulty-value propagation events
  std::uint64_t activated = 0;  // faults whose origin differed this block
  nl_.simulate_into(pi_words, good_);
  const auto& fanouts = nl_.fanouts();

  std::vector<std::size_t> newly;
  std::vector<std::uint64_t> ins;
  using HeapItem = std::pair<std::uint32_t, NodeId>;  // (topo rank, node)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;

  for (std::size_t fi = 0; fi < faults_.size(); ++fi) {
    if (detected_[fi]) continue;
    const StuckFault& f = faults_[fi];
    ++epoch_;

    auto faulty_of = [&](NodeId x) {
      return stamp_[x] == epoch_ ? fval_[x] : good_[x];
    };
    auto set_faulty = [&](NodeId x, std::uint64_t v) {
      stamp_[x] = epoch_;
      fval_[x] = v;
    };

    const std::uint64_t stuck_word = f.value ? ~0ull : 0ull;
    NodeId origin;
    std::uint64_t origin_val;
    if (f.is_stem()) {
      origin = f.node;
      origin_val = stuck_word;
    } else {
      origin = f.node;
      const Node& nd = nl_.node(origin);
      ins.clear();
      for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
        ins.push_back(static_cast<int>(p) == f.pin ? stuck_word
                                                   : good_[nd.fanins[p]]);
      }
      origin_val = eval_gate(nd.type, ins);
    }
    if (origin_val == good_[origin]) continue;  // not activated this block
    ++activated;
    set_faulty(origin, origin_val);

    std::uint64_t po_diff = 0;
    if (is_po_[origin]) po_diff |= origin_val ^ good_[origin];
    heap.push({topo_rank_[origin], origin});
    while (!heap.empty()) {
      const NodeId x = heap.top().second;
      heap.pop();
      const std::uint64_t xv = faulty_of(x);
      if (xv == good_[x]) continue;  // difference died
      for (NodeId y : fanouts[x]) {
        const Node& nd = nl_.node(y);
        ins.clear();
        for (NodeId g : nd.fanins) ins.push_back(faulty_of(g));
        const std::uint64_t yv = eval_gate(nd.type, ins);
        const std::uint64_t prev = faulty_of(y);
        if (yv == prev) continue;
        ++events;
        set_faulty(y, yv);
        if (is_po_[y]) po_diff |= yv ^ good_[y];
        heap.push({topo_rank_[y], y});
      }
    }
    if (po_diff != 0) {
      detected_[fi] = 1;
      ++detected_total_;
      first_pattern_[fi] =
          base_pattern + static_cast<unsigned>(__builtin_ctzll(po_diff));
      newly.push_back(fi);
    }
  }
  // Batched per 64-pattern block; patterns/sec falls out of the patterns
  // counter over the fsim.block span's total time.
  Counters::incr("fsim.blocks");
  Counters::incr("fsim.patterns", 64);
  Counters::incr("fsim.events", events);
  Counters::incr("fsim.faults_activated", activated);
  Counters::incr("fsim.faults_dropped", newly.size());
  Counters::observe("fsim.dropped_per_block", static_cast<double>(newly.size()));
  return newly;
}

SafExperimentResult random_saf_experiment(const Netlist& nl, Rng& rng,
                                          std::uint64_t max_patterns,
                                          bool collapse) {
  FaultSimulator sim(nl, enumerate_faults(nl, collapse));
  SafExperimentResult res;
  res.total_faults = sim.total_faults();
  const std::size_t n = nl.inputs().size();
  std::vector<std::uint64_t> pi(n);
  std::uint64_t applied = 0;
  while (applied < max_patterns && sim.remaining() > 0) {
    for (std::size_t i = 0; i < n; ++i) pi[i] = rng.next();
    const auto newly = sim.simulate_block(pi, applied);
    for (std::size_t fi : newly) {
      res.last_effective_pattern =
          std::max(res.last_effective_pattern, sim.detecting_pattern(fi) + 1);
    }
    applied += 64;
  }
  res.patterns_applied = applied;
  res.remaining = sim.remaining();
  return res;
}

}  // namespace compsyn
