#include "faults/fault_sim.hpp"

#include <algorithm>
#include <cassert>

#include "exec/exec.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "robust/robust.hpp"

namespace compsyn {

namespace {
// Faults per chunk. Fixed (never derived from the job count) so the chunk
// partition -- and with it every merge order and exec.* counter -- is the
// same at any --jobs value.
constexpr std::size_t kFaultGrain = 64;
}  // namespace

FaultSimulator::FaultSimulator(const Netlist& nl, std::vector<StuckFault> faults)
    : nl_(nl), faults_(std::move(faults)) {
  detected_.assign(faults_.size(), 0);
  first_pattern_.assign(faults_.size(), 0);
  topo_rank_.assign(nl_.size(), 0);
  const auto& order = nl_.topo_order();
  for (std::uint32_t i = 0; i < order.size(); ++i) topo_rank_[order[i]] = i;
  is_po_.assign(nl_.size(), 0);
  for (NodeId o : nl_.outputs()) is_po_[o] = 1;
}

std::uint64_t FaultSimulator::propagate_fault(const StuckFault& f,
                                              std::uint64_t mask,
                                              Scratch& s) const {
  if (s.stamp.size() != nl_.size()) {
    s.stamp.assign(nl_.size(), 0);
    s.fval.assign(nl_.size(), 0);
    s.epoch = 0;
  }
  ++s.epoch;

  auto faulty_of = [&](NodeId x) {
    return s.stamp[x] == s.epoch ? s.fval[x] : good_[x];
  };
  auto set_faulty = [&](NodeId x, std::uint64_t v) {
    s.stamp[x] = s.epoch;
    s.fval[x] = v;
  };

  const std::uint64_t stuck_word = f.value ? ~0ull : 0ull;
  NodeId origin;
  std::uint64_t origin_val;
  if (f.is_stem()) {
    origin = f.node;
    origin_val = stuck_word;
  } else {
    origin = f.node;
    const Node& nd = nl_.node(origin);
    s.ins.clear();
    for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
      s.ins.push_back(static_cast<int>(p) == f.pin ? stuck_word
                                                   : good_[nd.fanins[p]]);
    }
    origin_val = eval_gate(nd.type, s.ins);
  }
  if (((origin_val ^ good_[origin]) & mask) == 0) return 0;  // not activated
  ++s.activated;
  set_faulty(origin, origin_val);

  const auto& fanouts = nl_.fanouts();
  std::uint64_t po_diff = 0;
  if (is_po_[origin]) po_diff |= origin_val ^ good_[origin];
  s.heap.push({topo_rank_[origin], origin});
  while (!s.heap.empty()) {
    const NodeId x = s.heap.top().second;
    s.heap.pop();
    const std::uint64_t xv = faulty_of(x);
    if (xv == good_[x]) continue;  // difference died
    for (NodeId y : fanouts[x]) {
      const Node& nd = nl_.node(y);
      s.ins.clear();
      for (NodeId g : nd.fanins) s.ins.push_back(faulty_of(g));
      const std::uint64_t yv = eval_gate(nd.type, s.ins);
      const std::uint64_t prev = faulty_of(y);
      if (yv == prev) continue;
      ++s.events;
      set_faulty(y, yv);
      if (is_po_[y]) po_diff |= yv ^ good_[y];
      s.heap.push({topo_rank_[y], y});
    }
  }
  return po_diff & mask;
}

std::vector<std::size_t> FaultSimulator::simulate_block(
    const std::vector<std::uint64_t>& pi_words, std::uint64_t base_pattern,
    unsigned num_patterns) {
  const auto sp = Trace::span("fsim.block");
  assert(num_patterns >= 1 && num_patterns <= 64);
  const std::uint64_t mask =
      num_patterns >= 64 ? ~0ull : ((1ull << num_patterns) - 1);
  nl_.simulate_into(pi_words, good_);
  nl_.fanouts();  // warm the shared lazy cache before the parallel region

  if (scratch_.size() < jobs()) scratch_.resize(jobs());
  for (Scratch& s : scratch_) {
    s.events = 0;
    s.activated = 0;
  }

  const std::size_t n = faults_.size();
  const std::size_t chunks = exec_detail::chunk_count(n, kFaultGrain);
  // Per chunk: (fault index, first detecting bit) hits, ascending by fault.
  std::vector<std::vector<std::pair<std::size_t, unsigned>>> hits(chunks);
  parallel_chunks(n, kFaultGrain,
                  [&](std::size_t begin, std::size_t end, unsigned worker) {
                    Scratch& s = scratch_[worker];
                    auto& out = hits[begin / kFaultGrain];
                    for (std::size_t fi = begin; fi < end; ++fi) {
                      if (detected_[fi]) continue;
                      const std::uint64_t diff =
                          propagate_fault(faults_[fi], mask, s);
                      if (diff != 0) {
                        out.emplace_back(
                            fi, static_cast<unsigned>(__builtin_ctzll(diff)));
                      }
                    }
                  });

  // Merge in chunk (= fault index) order: the newly-detected list and the
  // recorded first patterns match the serial sweep exactly.
  std::vector<std::size_t> newly;
  for (const auto& chunk_hits : hits) {
    for (const auto& [fi, bit] : chunk_hits) {
      detected_[fi] = 1;
      ++detected_total_;
      first_pattern_[fi] = base_pattern + bit;
      newly.push_back(fi);
    }
  }

  std::uint64_t events = 0, activated = 0;
  for (const Scratch& s : scratch_) {
    events += s.events;
    activated += s.activated;
  }
  // One budget tick per simulated pattern block, charged at this serial
  // merge point so the tick stream is jobs-invariant.
  robust::charge(1);
  // Batched per pattern block; patterns/sec falls out of the patterns
  // counter over the fsim.block span's total time.
  Counters::incr("fsim.blocks");
  Counters::incr("fsim.patterns", num_patterns);
  Counters::incr("fsim.events", events);
  Counters::incr("fsim.faults_activated", activated);
  Counters::incr("fsim.faults_dropped", newly.size());
  Counters::observe("fsim.dropped_per_block", static_cast<double>(newly.size()));
  // Counter track for the profile: live (undetected) faults after each
  // block, sampled at this serial merge point so the value sequence is
  // jobs-invariant.
  ChromeTrace::counter("fsim.live_faults",
                       static_cast<double>(faults_.size() - detected_total_));
  return newly;
}

SafExperimentResult random_saf_experiment(const Netlist& nl, Rng& rng,
                                          std::uint64_t max_patterns,
                                          bool collapse) {
  FaultSimulator sim(nl, enumerate_faults(nl, collapse));
  SafExperimentResult res;
  res.total_faults = sim.total_faults();
  const std::size_t n = nl.inputs().size();
  std::vector<std::uint64_t> pi(n);
  std::uint64_t applied = 0;
  while (applied < max_patterns && sim.remaining() > 0) {
    for (std::size_t i = 0; i < n; ++i) pi[i] = rng.next();
    const unsigned np = static_cast<unsigned>(
        std::min<std::uint64_t>(64, max_patterns - applied));
    const auto newly = sim.simulate_block(pi, applied, np);
    for (std::size_t fi : newly) {
      res.last_effective_pattern =
          std::max(res.last_effective_pattern, sim.detecting_pattern(fi) + 1);
    }
    applied += np;
  }
  res.patterns_applied = applied;
  res.remaining = sim.remaining();
  return res;
}

}  // namespace compsyn
