// Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault
// simulator -- the FSIM [17] substrate used by the Table 6 experiment.
//
// Each call simulates up to 64 patterns at once: one fault-free pass, then
// for every still-undetected fault an event-driven forward propagation of
// the 64-bit difference word from the fault site; a fault is detected when
// a nonzero difference reaches a primary output.
//
// Faults are independent given the fault-free values, so a block fans the
// fault list out over the exec layer (exec/exec.hpp): the list is cut into
// fixed index chunks, every worker propagates its chunk's faults against
// private scratch, and detections are merged back in fault-index order.
// The chunk partition never depends on the job count, so detected sets,
// first-detecting patterns, and the fsim.* counters are byte-identical for
// --jobs=1 and --jobs=N.
#pragma once

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {

class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, std::vector<StuckFault> faults);

  std::size_t total_faults() const { return faults_.size(); }
  std::size_t detected_count() const { return detected_total_; }
  std::size_t remaining() const { return faults_.size() - detected_total_; }

  /// Simulates one block of up to 64 patterns (pi_words[i] = 64 values of
  /// input i; only the low `num_patterns` bits count as applied patterns).
  /// Returns the indices (into faults()) of newly detected faults, in
  /// ascending order. `base_pattern` is the global index of bit 0, used to
  /// record each fault's first detecting pattern.
  std::vector<std::size_t> simulate_block(const std::vector<std::uint64_t>& pi_words,
                                          std::uint64_t base_pattern,
                                          unsigned num_patterns = 64);

  const std::vector<StuckFault>& faults() const { return faults_; }
  bool is_detected(std::size_t fault_index) const { return detected_[fault_index]; }
  /// First pattern that detected the fault (valid when is_detected).
  std::uint64_t detecting_pattern(std::size_t fault_index) const {
    return first_pattern_[fault_index];
  }

 private:
  /// Epoch-stamped faulty values (avoids clearing per fault) plus the
  /// event queue and fanin buffer -- everything one fault propagation
  /// touches besides the shared read-only good values. One per worker.
  struct Scratch {
    std::vector<std::uint64_t> fval;
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;
    std::vector<std::uint64_t> ins;
    using HeapItem = std::pair<std::uint32_t, NodeId>;  // (topo rank, node)
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    std::uint64_t events = 0;     // faulty-value propagation events
    std::uint64_t activated = 0;  // faults whose origin differed this block
  };

  /// Propagates one fault against the current good values; returns the
  /// masked PO difference word (nonzero = detected this block).
  std::uint64_t propagate_fault(const StuckFault& f, std::uint64_t mask,
                                Scratch& s) const;

  const Netlist& nl_;
  std::vector<StuckFault> faults_;
  std::vector<char> detected_;
  std::vector<std::uint64_t> first_pattern_;
  std::size_t detected_total_ = 0;

  std::vector<std::uint64_t> good_;   // fault-free values, shared read-only
  std::vector<Scratch> scratch_;      // one slot per worker
  std::vector<std::uint32_t> topo_rank_;
  std::vector<char> is_po_;
};

/// Table 6 experiment: applies random pattern blocks until all faults are
/// detected or `max_patterns` have been applied (the final block is partial
/// when max_patterns is not a multiple of 64). Deterministic given the rng.
struct SafExperimentResult {
  std::size_t total_faults = 0;
  std::size_t remaining = 0;
  std::uint64_t last_effective_pattern = 0;  // 1-based; 0 if none effective
  std::uint64_t patterns_applied = 0;
};

SafExperimentResult random_saf_experiment(const Netlist& nl, Rng& rng,
                                          std::uint64_t max_patterns,
                                          bool collapse = true);

}  // namespace compsyn
