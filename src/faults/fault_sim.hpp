// Parallel-pattern single-fault-propagation (PPSFP) stuck-at fault
// simulator -- the FSIM [17] substrate used by the Table 6 experiment.
//
// Each call simulates 64 patterns at once: one fault-free pass, then for
// every still-undetected fault an event-driven forward propagation of the
// 64-bit difference word from the fault site; a fault is detected when a
// nonzero difference reaches a primary output.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {

class FaultSimulator {
 public:
  FaultSimulator(const Netlist& nl, std::vector<StuckFault> faults);

  std::size_t total_faults() const { return faults_.size(); }
  std::size_t detected_count() const { return detected_total_; }
  std::size_t remaining() const { return faults_.size() - detected_total_; }

  /// Simulates one block of 64 patterns (pi_words[i] = 64 values of input i).
  /// Returns the indices (into faults()) of newly detected faults.
  /// `base_pattern` is the global index of bit 0, used to record each
  /// fault's first detecting pattern.
  std::vector<std::size_t> simulate_block(const std::vector<std::uint64_t>& pi_words,
                                          std::uint64_t base_pattern);

  const std::vector<StuckFault>& faults() const { return faults_; }
  bool is_detected(std::size_t fault_index) const { return detected_[fault_index]; }
  /// First pattern that detected the fault (valid when is_detected).
  std::uint64_t detecting_pattern(std::size_t fault_index) const {
    return first_pattern_[fault_index];
  }

 private:
  const Netlist& nl_;
  std::vector<StuckFault> faults_;
  std::vector<char> detected_;
  std::vector<std::uint64_t> first_pattern_;
  std::size_t detected_total_ = 0;

  // Scratch (epoch-stamped faulty values to avoid clearing per fault).
  std::vector<std::uint64_t> good_;
  std::vector<std::uint64_t> fval_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> topo_rank_;
  std::vector<char> is_po_;
};

/// Table 6 experiment: applies random pattern blocks until all faults are
/// detected or `max_patterns` have been applied. Deterministic given the rng.
struct SafExperimentResult {
  std::size_t total_faults = 0;
  std::size_t remaining = 0;
  std::uint64_t last_effective_pattern = 0;  // 1-based; 0 if none effective
  std::uint64_t patterns_applied = 0;
};

SafExperimentResult random_saf_experiment(const Netlist& nl, Rng& rng,
                                          std::uint64_t max_patterns,
                                          bool collapse = true);

}  // namespace compsyn
