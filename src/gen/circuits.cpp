#include "gen/circuits.hpp"

#include <algorithm>
#include <stdexcept>

#include "bench_io/bench_io.hpp"
#include "core/two_level.hpp"
#include "util/rng.hpp"

namespace compsyn {

Netlist make_c17() {
  return read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)", "c17");
}

Netlist make_s27() {
  return read_bench_string(R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)", "s27");
}

Netlist make_ripple_adder(unsigned bits) {
  Netlist nl("add" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  NodeId carry = nl.add_input("cin");
  for (unsigned i = 0; i < bits; ++i) {
    NodeId axb = nl.add_gate(GateType::Xor, {a[i], b[i]});
    NodeId sum = nl.add_gate(GateType::Xor, {axb, carry}, "s" + std::to_string(i));
    NodeId g1 = nl.add_gate(GateType::And, {a[i], b[i]});
    NodeId g2 = nl.add_gate(GateType::And, {axb, carry});
    carry = nl.add_gate(GateType::Or, {g1, g2});
    nl.mark_output(sum);
  }
  nl.mark_output(carry);
  return nl;
}

Netlist make_comparator(unsigned bits) {
  // Iterative: lt/eq from MSB down.
  Netlist nl("cmp" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  NodeId lt = kNoNode, eq = kNoNode;
  // Process from the MSB (index bits-1) down to the LSB.
  for (unsigned i = bits; i-- > 0;) {
    NodeId na = nl.add_gate(GateType::Not, {a[i]});
    NodeId lt_here = nl.add_gate(GateType::And, {na, b[i]});
    NodeId eq_here = nl.add_gate(GateType::Xnor, {a[i], b[i]});
    if (eq == kNoNode) {
      lt = lt_here;
      eq = eq_here;
    } else {
      NodeId t = nl.add_gate(GateType::And, {eq, lt_here});
      lt = nl.add_gate(GateType::Or, {lt, t});
      eq = nl.add_gate(GateType::And, {eq, eq_here});
    }
  }
  NodeId gt = nl.add_gate(GateType::Nor, {lt, eq});
  nl.mark_output(lt);
  nl.mark_output(eq);
  nl.mark_output(gt);
  return nl;
}

Netlist make_decoder(unsigned sel_bits) {
  Netlist nl("dec" + std::to_string(sel_bits));
  std::vector<NodeId> s(sel_bits), ns(sel_bits);
  for (unsigned i = 0; i < sel_bits; ++i) s[i] = nl.add_input("s" + std::to_string(i));
  for (unsigned i = 0; i < sel_bits; ++i) ns[i] = nl.add_gate(GateType::Not, {s[i]});
  for (std::uint32_t m = 0; m < (1u << sel_bits); ++m) {
    std::vector<NodeId> lits;
    for (unsigned i = 0; i < sel_bits; ++i) {
      lits.push_back(((m >> i) & 1u) ? s[i] : ns[i]);
    }
    NodeId o = sel_bits == 1 ? lits[0]
                             : nl.add_gate(GateType::And, lits, "y" + std::to_string(m));
    nl.mark_output(o);
  }
  return nl;
}

Netlist make_mux_tree(unsigned sel_bits) {
  Netlist nl("mux" + std::to_string(sel_bits));
  const unsigned n = 1u << sel_bits;
  std::vector<NodeId> data(n), sel(sel_bits);
  for (unsigned i = 0; i < n; ++i) data[i] = nl.add_input("d" + std::to_string(i));
  for (unsigned i = 0; i < sel_bits; ++i) sel[i] = nl.add_input("s" + std::to_string(i));
  std::vector<NodeId> layer = data;
  for (unsigned level = 0; level < sel_bits; ++level) {
    NodeId nsel = nl.add_gate(GateType::Not, {sel[level]});
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      NodeId t0 = nl.add_gate(GateType::And, {layer[i], nsel});
      NodeId t1 = nl.add_gate(GateType::And, {layer[i + 1], sel[level]});
      next.push_back(nl.add_gate(GateType::Or, {t0, t1}));
    }
    layer = next;
  }
  nl.mark_output(layer[0]);
  return nl;
}

Netlist make_parity_tree(unsigned bits) {
  Netlist nl("par" + std::to_string(bits));
  std::vector<NodeId> layer(bits);
  for (unsigned i = 0; i < bits; ++i) layer[i] = nl.add_input("x" + std::to_string(i));
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.add_gate(GateType::Xor, {layer[i], layer[i + 1]}));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  nl.mark_output(layer[0]);
  return nl;
}

Netlist make_alu_slice(unsigned bits) {
  // op1 op0 select among AND / OR / XOR / ADD.
  Netlist nl("alu" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  NodeId op0 = nl.add_input("op0");
  NodeId op1 = nl.add_input("op1");
  NodeId nop0 = nl.add_gate(GateType::Not, {op0});
  NodeId nop1 = nl.add_gate(GateType::Not, {op1});
  NodeId sel_and = nl.add_gate(GateType::And, {nop1, nop0});
  NodeId sel_or = nl.add_gate(GateType::And, {nop1, op0});
  NodeId sel_xor = nl.add_gate(GateType::And, {op1, nop0});
  NodeId sel_add = nl.add_gate(GateType::And, {op1, op0});
  NodeId carry = nl.add_const(false, "c0");
  for (unsigned i = 0; i < bits; ++i) {
    NodeId f_and = nl.add_gate(GateType::And, {a[i], b[i]});
    NodeId f_or = nl.add_gate(GateType::Or, {a[i], b[i]});
    NodeId f_xor = nl.add_gate(GateType::Xor, {a[i], b[i]});
    NodeId f_sum = nl.add_gate(GateType::Xor, {f_xor, carry});
    NodeId c1 = nl.add_gate(GateType::And, {f_xor, carry});
    carry = nl.add_gate(GateType::Or, {f_and, c1});
    NodeId m0 = nl.add_gate(GateType::And, {f_and, sel_and});
    NodeId m1 = nl.add_gate(GateType::And, {f_or, sel_or});
    NodeId m2 = nl.add_gate(GateType::And, {f_xor, sel_xor});
    NodeId m3 = nl.add_gate(GateType::And, {f_sum, sel_add});
    NodeId y = nl.add_gate(GateType::Or, {m0, m1, m2, m3}, "y" + std::to_string(i));
    nl.mark_output(y);
  }
  nl.mark_output(carry);
  return nl;
}

Netlist make_multiplier(unsigned bits) {
  Netlist nl("mult" + std::to_string(bits));
  std::vector<NodeId> a(bits), b(bits);
  for (unsigned i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  // Partial products, then carry-save rows of full adders (array style).
  auto full_add = [&](NodeId x, NodeId y, NodeId c, NodeId& sum, NodeId& carry) {
    NodeId xy = nl.add_gate(GateType::Xor, {x, y});
    sum = nl.add_gate(GateType::Xor, {xy, c});
    NodeId g1 = nl.add_gate(GateType::And, {x, y});
    NodeId g2 = nl.add_gate(GateType::And, {xy, c});
    carry = nl.add_gate(GateType::Or, {g1, g2});
  };
  // acc holds the not-yet-emitted accumulated sum, LSB-aligned to the next
  // product bit to emit.
  std::vector<NodeId> acc(bits);
  for (unsigned j = 0; j < bits; ++j) acc[j] = nl.add_gate(GateType::And, {a[j], b[0]});
  nl.mark_output(acc[0]);          // p0
  acc.erase(acc.begin());          // remaining bits await the next rows
  for (unsigned i = 1; i < bits; ++i) {
    std::vector<NodeId> pp(bits);
    for (unsigned j = 0; j < bits; ++j) pp[j] = nl.add_gate(GateType::And, {a[j], b[i]});
    std::vector<NodeId> sum(bits, kNoNode);
    NodeId carry = kNoNode;
    for (unsigned j = 0; j < bits; ++j) {
      const NodeId x = pp[j];
      const NodeId y = j < acc.size() ? acc[j] : kNoNode;
      if (y == kNoNode && carry == kNoNode) {
        sum[j] = x;
      } else if (y == kNoNode || carry == kNoNode) {
        const NodeId other = y == kNoNode ? carry : y;
        sum[j] = nl.add_gate(GateType::Xor, {x, other});
        carry = nl.add_gate(GateType::And, {x, other});
      } else {
        full_add(x, y, carry, sum[j], carry);
      }
    }
    nl.mark_output(sum[0]);  // p_i
    acc.assign(sum.begin() + 1, sum.end());
    if (carry != kNoNode) acc.push_back(carry);
  }
  for (NodeId hi : acc) nl.mark_output(hi);  // p_bits .. p_{2*bits-1}
  nl.sweep();
  return nl;
}

namespace {

/// Adds a prime-irredundant two-level SOP blob for a random interval
/// function over `vars`. Irredundant single-output SOPs are fully stuck-at
/// testable, matching the paper's irredundant starting circuits, while still
/// carrying many more gates and paths than a comparison unit. With the given
/// probability an extra (redundant) prime implicant is planted -- those are
/// exactly the redundant faults Table 2's redundancy-removal column cleans
/// up after Procedure 2.
NodeId add_sop_blob_over(Netlist& nl, Rng& rng, const std::vector<NodeId>& vars,
                         double redundant_term_chance) {
  const unsigned width = static_cast<unsigned>(vars.size());
  const std::uint32_t max = (1u << width) - 1;
  const std::uint32_t lo = static_cast<std::uint32_t>(rng.below(max));
  const std::uint32_t span = std::min<std::uint32_t>(max - lo, 6);
  const std::uint32_t hi = lo + 1 + static_cast<std::uint32_t>(rng.below(span));

  const TruthTable f = TruthTable::from_function(
      width, [&](std::uint32_t m) { return m >= lo && m <= hi; });
  std::vector<Cube> cover = irredundant_cover(f);
  if (rng.unit() < redundant_term_chance) {
    for (const Cube& p : prime_implicants(f)) {
      if (std::find(cover.begin(), cover.end(), p) == cover.end()) {
        cover.push_back(p);
        break;
      }
    }
  }
  return build_sop(nl, vars, cover, width);
}

}  // namespace

Netlist make_synthetic(const SyntheticOptions& opt) {
  // Column-mixing generator: a pool of "columns" (wires) starts as the
  // primary inputs; each step computes a new block over a few distinct
  // columns and OVERWRITES one of its own input columns with the result.
  // Consuming the replaced column keeps all logic live and grows depth
  // linearly in gates/columns; SOP blobs are prime-irredundant covers and
  // the carry/XOR mixing keeps the fabric observable, so the circuits stay
  // close to irredundant (small redundancy-removal deltas, as in the
  // paper's irs circuits) while path counts multiply along the depth.
  Rng rng(opt.seed);
  Netlist nl("syn");
  const unsigned n_in = std::min(opt.inputs, 64u);
  std::vector<NodeId> cols;
  std::vector<NodeId> pis;
  for (unsigned i = 0; i < n_in; ++i) {
    pis.push_back(nl.add_input("x" + std::to_string(i)));
    cols.push_back(pis.back());
  }
  // Approximate N_p per column, used to keep the total path count far below
  // the 2^63 overflow guard (deep mixing multiplies paths exponentially).
  std::vector<double> np(cols.size(), 1.0);
  const double np_cap = 2.0e6;

  auto pick_distinct = [&](unsigned want) {
    std::vector<std::size_t> idx;
    while (idx.size() < std::min<std::size_t>(want, cols.size())) {
      const std::size_t i = rng.below(cols.size());
      if (std::find(idx.begin(), idx.end(), i) == idx.end()) idx.push_back(i);
    }
    return idx;
  };
  /// Sum of input path estimates, doubled (a rough K_p factor).
  auto combined_np = [&](const std::vector<std::size_t>& idx) {
    double s = 0;
    for (std::size_t i : idx) s += np[i];
    return 2.0 * s;
  };
  /// When a column's paths grow too large, expose it as an output and
  /// restart the column from a primary input.
  auto harvest_largest = [&] {
    std::size_t big = 0;
    for (std::size_t i = 1; i < cols.size(); ++i) {
      if (np[i] > np[big]) big = i;
    }
    if (nl.node(cols[big]).type != GateType::Input) nl.mark_output(cols[big]);
    cols[big] = pis[rng.below(pis.size())];
    np[big] = 1.0;
  };
  const GateType glue[] = {GateType::And, GateType::Or, GateType::Nand,
                           GateType::Nor};

  while (nl.gate_count() < opt.gates) {
    const double roll = rng.unit();
    if (roll < opt.sop_fraction) {
      // Prime-irredundant interval SOP blob.
      const unsigned width = 3 + static_cast<unsigned>(rng.below(3));  // 3..5
      const auto idx = pick_distinct(width);
      if (idx.size() < 3) continue;
      const double est = combined_np(idx);
      if (est > np_cap) {
        harvest_largest();
        continue;
      }
      std::vector<NodeId> vars;
      for (std::size_t i : idx) vars.push_back(cols[i]);
      const NodeId out =
          add_sop_blob_over(nl, rng, vars, opt.redundant_term_chance);
      const std::size_t repl = idx[rng.below(idx.size())];
      cols[repl] = out;
      np[repl] = est;
    } else if (roll < opt.sop_fraction + 0.25) {
      // Mini ripple-adder segment: the classic path multiplier.
      const unsigned m = 2 + static_cast<unsigned>(rng.below(3));  // 2..4 bits
      const auto idx = pick_distinct(2 * m);
      if (idx.size() < 2 * m) continue;
      const double est = combined_np(idx);
      if (est > np_cap) {
        harvest_largest();
        continue;
      }
      NodeId carry = kNoNode;
      std::vector<NodeId> sums;
      for (unsigned j = 0; j < m; ++j) {
        const NodeId x = cols[idx[2 * j]];
        const NodeId y = cols[idx[2 * j + 1]];
        NodeId axb = nl.add_gate(GateType::Xor, {x, y});
        if (carry == kNoNode) {
          sums.push_back(axb);
          carry = nl.add_gate(GateType::And, {x, y});
        } else {
          sums.push_back(nl.add_gate(GateType::Xor, {axb, carry}));
          NodeId g1 = nl.add_gate(GateType::And, {x, y});
          NodeId g2 = nl.add_gate(GateType::And, {axb, carry});
          carry = nl.add_gate(GateType::Or, {g1, g2});
        }
      }
      sums.push_back(carry);
      for (unsigned j = 0; j < sums.size() && j < idx.size(); ++j) {
        cols[idx[j]] = sums[j];
        np[idx[j]] = est;  // carry-chain outputs see all operand paths
      }
    } else {
      // Glue gate.
      const GateType t = glue[rng.below(4)];
      const unsigned arity =
          2 + static_cast<unsigned>(rng.below(std::max(1u, opt.max_arity - 1)));
      const auto idx = pick_distinct(arity);
      if (idx.size() < 2) continue;
      const double est = combined_np(idx);
      if (est > np_cap) {
        harvest_largest();
        continue;
      }
      std::vector<NodeId> fi;
      for (std::size_t i : idx) fi.push_back(cols[i]);
      const NodeId out = nl.add_gate(t, fi);
      const std::size_t repl = idx[rng.below(idx.size())];
      cols[repl] = out;
      np[repl] = est / 2.0;  // one path per glue-gate input
    }
  }

  // Outputs: the final column values (every column is live by construction).
  auto order = rng.permutation(static_cast<std::uint32_t>(cols.size()));
  for (std::uint32_t i : order) {
    if (nl.outputs().size() >= opt.outputs) break;
    if (nl.node(cols[i]).type != GateType::Input) nl.mark_output(cols[i]);
  }
  nl.sweep();
  return nl;
}

std::vector<BenchmarkEntry> benchmark_suite() {
  return {
      {"c17", 6},      {"s27", 10},     {"add8", 40},      {"cmp8", 50},
      {"dec5", 40},    {"mux4", 50},    {"alu4", 60},      {"mult6", 200},
      {"mult8", 380},  {"syn150", 150}, {"syn300", 300},   {"syn600", 600},
      {"syn1000", 1000}, {"syn1500", 1500},
  };
}

Netlist make_benchmark(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "s27") return make_s27();
  if (name == "add8") return make_ripple_adder(8);
  if (name == "cmp8") return make_comparator(8);
  if (name == "dec5") return make_decoder(5);
  if (name == "mux4") return make_mux_tree(4);
  if (name == "alu4") return make_alu_slice(4);
  if (name == "mult6") {
    Netlist nl = make_multiplier(6);
    nl.set_name("mult6");
    return nl;
  }
  if (name == "mult8") {
    Netlist nl = make_multiplier(8);
    nl.set_name("mult8");
    return nl;
  }
  auto synth = [&](unsigned gates, unsigned inputs, unsigned outputs,
                   std::uint64_t seed) {
    SyntheticOptions o;
    o.gates = gates;
    o.inputs = inputs;
    o.outputs = outputs;
    o.seed = seed;
    Netlist nl = make_synthetic(o);
    nl.set_name(name);
    return nl;
  };
  if (name == "syn150") return synth(150, 24, 12, 1001);
  if (name == "syn300") return synth(300, 32, 18, 1002);
  if (name == "syn600") return synth(600, 48, 24, 1003);
  if (name == "syn1000") return synth(1000, 64, 30, 1004);
  if (name == "syn1500") return synth(1500, 64, 36, 1005);
  throw std::invalid_argument("unknown benchmark: " + name);
}

}  // namespace compsyn
