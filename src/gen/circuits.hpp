// Benchmark circuits for the experiment harnesses.
//
// The paper evaluates on fully-scanned, irredundant ISCAS89 circuits
// (irs1423 .. irs38584). Those netlists are not available offline, so the
// suite substitutes (a) embedded real ISCAS circuits small enough to
// reproduce exactly (c17, s27), (b) structured arithmetic/control circuits,
// and (c) seeded pseudo-random multilevel circuits in the same style --
// bounded-fanin AND/OR/NAND/NOR/NOT networks with two-level sum-of-products
// blobs (occasionally with redundant consensus terms) spliced in, which is
// the kind of structure the paper's procedures exploit in SIS-synthesized
// netlists. See DESIGN.md, "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace compsyn {

// -- embedded real circuits -------------------------------------------------
Netlist make_c17();
Netlist make_s27();  // scan-converted (DFFs as pseudo PI/PO)

// -- structured circuits ----------------------------------------------------
/// Ripple-carry adder: 2*bits+1 inputs (a, b, cin), bits+1 outputs.
Netlist make_ripple_adder(unsigned bits);
/// Magnitude comparator: outputs (a<b, a==b, a>b).
Netlist make_comparator(unsigned bits);
/// Full decoder: sel_bits inputs, 2^sel_bits one-hot outputs.
Netlist make_decoder(unsigned sel_bits);
/// Multiplexer tree: 2^sel_bits data inputs + sel_bits selects, 1 output.
Netlist make_mux_tree(unsigned sel_bits);
/// Balanced XOR parity tree.
Netlist make_parity_tree(unsigned bits);
/// One-hot-select ALU slice array (AND/OR/XOR/ADD per bit).
Netlist make_alu_slice(unsigned bits);
/// Array multiplier (c6288-style: quadratic gate count, very large path
/// count). bits x bits -> 2*bits product.
Netlist make_multiplier(unsigned bits);

// -- synthetic "irs-like" circuits -------------------------------------------
struct SyntheticOptions {
  unsigned inputs = 20;       // at most 64 (support masks are one word)
  unsigned outputs = 10;
  unsigned gates = 300;       // approximate gate budget
  std::uint64_t seed = 1;
  unsigned max_arity = 3;
  /// Fraction of the gate budget spent on two-level SOP blobs (minterm-level
  /// implementations of interval functions -- the structure the procedures
  /// exploit). The rest is random glue gates.
  double sop_fraction = 0.6;
  /// Probability that an SOP blob receives a redundant extra term (these are
  /// the redundant stuck-at faults that Table 2's red.rem column removes).
  double redundant_term_chance = 0.15;
};
Netlist make_synthetic(const SyntheticOptions& opt);

// -- the named suite used by the bench tables --------------------------------
struct BenchmarkEntry {
  std::string name;
  unsigned approx_gates;  // informational
};

/// Names in suite order (small to large).
std::vector<BenchmarkEntry> benchmark_suite();

/// Builds a suite circuit by name; throws std::invalid_argument for unknown
/// names. Circuits are deterministic: the same name always yields the same
/// netlist.
Netlist make_benchmark(const std::string& name);

}  // namespace compsyn
