#include "netlist/equivalence.hpp"

#include <sstream>

namespace compsyn {

std::uint64_t exhaustive_mask(unsigned input_index) {
  static constexpr std::uint64_t kMasks[6] = {
      0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
      0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
  };
  return kMasks[input_index];
}

namespace {

/// Extracts the PI assignment for pattern `bit` of block `block`.
std::vector<bool> pattern_bits(std::size_t n_inputs, std::uint64_t block, unsigned bit) {
  std::vector<bool> v(n_inputs);
  for (std::size_t i = 0; i < n_inputs; ++i) {
    if (i < 6) v[i] = ((bit >> i) & 1u) != 0;
    else v[i] = ((block >> (i - 6)) & 1ull) != 0;
  }
  return v;
}

}  // namespace

EquivalenceResult check_equivalent(const Netlist& a, const Netlist& b, Rng& rng,
                                   unsigned random_words, unsigned exhaustive_limit) {
  EquivalenceResult res;
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    res.message = "interface mismatch";
    return res;
  }
  const std::size_t n = a.inputs().size();
  const std::size_t n_out = a.outputs().size();
  std::vector<std::uint64_t> pia(n), pib(n), va, vb;

  auto compare_block = [&](std::uint64_t care_mask, std::uint64_t block) -> bool {
    a.simulate_into(pia, va);
    b.simulate_into(pib, vb);
    for (std::size_t o = 0; o < n_out; ++o) {
      const std::uint64_t diff = (va[a.outputs()[o]] ^ vb[b.outputs()[o]]) & care_mask;
      if (diff != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(diff));
        res.counterexample = pattern_bits(n, block, bit);
        // For random blocks the counterexample is read back from the words.
        if (block == ~0ull) {
          for (std::size_t i = 0; i < n; ++i) {
            res.counterexample[i] = ((pia[i] >> bit) & 1ull) != 0;
          }
        }
        std::ostringstream ss;
        ss << "output " << o << " differs";
        res.message = ss.str();
        res.proven = true;  // a counterexample is a definitive verdict
        return false;
      }
    }
    return true;
  };

  if (n <= exhaustive_limit && n <= kMaxExhaustiveInputs) {
    res.exhaustive = true;
    res.proven = true;
    const std::uint64_t blocks = n >= 6 ? (1ull << (n - 6)) : 1;
    const std::uint64_t care =
        n >= 6 ? ~0ull : ((n == 0 ? 1ull : (1ull << (1u << n))) - 1ull);
    for (std::uint64_t blk = 0; blk < blocks; ++blk) {
      for (std::size_t i = 0; i < n; ++i) {
        pia[i] = i < 6 ? exhaustive_mask(static_cast<unsigned>(i))
                       : (((blk >> (i - 6)) & 1ull) ? ~0ull : 0ull);
        pib[i] = pia[i];
      }
      if (!compare_block(care, blk)) return res;
    }
    res.equivalent = true;
    res.message = "proved equivalent by exhaustive simulation";
    return res;
  }

  for (unsigned w = 0; w < random_words; ++w) {
    for (std::size_t i = 0; i < n; ++i) {
      pia[i] = rng.next();
      pib[i] = pia[i];
    }
    if (!compare_block(~0ull, ~0ull)) return res;
  }
  res.equivalent = true;  // no difference found (not a proof)
  std::ostringstream ss;
  ss << "no difference in " << random_words << " random words (not a proof)";
  res.message = ss.str();
  return res;
}

}  // namespace compsyn
