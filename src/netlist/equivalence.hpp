// Combinational equivalence checking between two netlists with matching
// interfaces (same number of inputs and outputs, matched by position).
//
// Exhaustive up to `exhaustive_limit` inputs (64 patterns per simulated word)
// and random-simulation based beyond that. Random simulation can of course
// only refute equivalence, never prove it -- `EquivalenceResult::proven`
// distinguishes a real verdict (exhaustive sweep, or a concrete
// counterexample) from a mere failure to refute. For proofs beyond the
// exhaustive limit use the SAT backend (sat/cec.hpp), which fills in the
// same result struct.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {

/// Largest input count checked exhaustively by default: 2^20 patterns
/// (16384 simulated 64-bit words per netlist).
inline constexpr unsigned kDefaultExhaustiveLimit = 20;

/// Hard ceiling on the exhaustive sweep regardless of the caller's limit:
/// beyond 40 inputs the 2^(n-6) block count no longer fits sensible time
/// budgets (and at 70 it would overflow the 64-bit block index).
inline constexpr unsigned kMaxExhaustiveInputs = 40;

struct EquivalenceResult {
  bool equivalent = false;
  // True when the verdict is definitive: an exhaustive sweep, a SAT proof,
  // or a concrete counterexample. A random-simulation pass that found no
  // difference reports equivalent=true with proven=false.
  bool proven = false;
  bool exhaustive = false;  // the proof came from an exhaustive sweep
  std::vector<bool> counterexample;  // PI assignment, valid when !equivalent
  std::string message;
};

/// The canonical 64-bit mask for exhaustive simulation: bit j of the word for
/// input i (i < 6) equals bit i of pattern index j.
std::uint64_t exhaustive_mask(unsigned input_index);

EquivalenceResult check_equivalent(const Netlist& a, const Netlist& b, Rng& rng,
                                   unsigned random_words = 256,
                                   unsigned exhaustive_limit = kDefaultExhaustiveLimit);

}  // namespace compsyn
