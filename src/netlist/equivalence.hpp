// Combinational equivalence checking between two netlists with matching
// interfaces (same number of inputs and outputs, matched by position).
//
// Exhaustive up to `exhaustive_limit` inputs (64 patterns per simulated word)
// and random-simulation based beyond that. Random simulation can of course
// only refute equivalence; the resynthesis procedures are additionally
// covered by construction-level tests on small cones where exhaustive
// checking applies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace compsyn {

struct EquivalenceResult {
  bool equivalent = false;
  bool exhaustive = false;       // true if the verdict is a proof
  std::vector<bool> counterexample;  // PI assignment, valid when !equivalent
  std::string message;
};

/// The canonical 64-bit mask for exhaustive simulation: bit j of the word for
/// input i (i < 6) equals bit i of pattern index j.
std::uint64_t exhaustive_mask(unsigned input_index);

EquivalenceResult check_equivalent(const Netlist& a, const Netlist& b, Rng& rng,
                                   unsigned random_words = 256,
                                   unsigned exhaustive_limit = 20);

}  // namespace compsyn
