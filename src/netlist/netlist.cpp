#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace compsyn {

bool has_controlling_value(GateType t) {
  switch (t) {
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
      return true;
    default:
      return false;
  }
}

bool controlling_value(GateType t) {
  assert(has_controlling_value(t));
  return t == GateType::Or || t == GateType::Nor;
}

bool is_inverting(GateType t) {
  switch (t) {
    case GateType::Not:
    case GateType::Nand:
    case GateType::Nor:
    case GateType::Xnor:
      return true;
    default:
      return false;
  }
}

const char* to_string(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
  }
  return "?";
}

std::uint64_t eval_gate(GateType t, const std::vector<std::uint64_t>& in) {
  switch (t) {
    case GateType::Input:
      assert(false && "inputs are not evaluated");
      return 0;
    case GateType::Const0: return 0;
    case GateType::Const1: return ~0ull;
    case GateType::Buf: return in[0];
    case GateType::Not: return ~in[0];
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t v = ~0ull;
      for (std::uint64_t w : in) v &= w;
      return t == GateType::Nand ? ~v : v;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t v = 0;
      for (std::uint64_t w : in) v |= w;
      return t == GateType::Nor ? ~v : v;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint64_t v = 0;
      for (std::uint64_t w : in) v ^= w;
      return t == GateType::Xnor ? ~v : v;
    }
  }
  return 0;
}

bool eval_gate_bit(GateType t, const std::vector<bool>& in_bits) {
  std::vector<std::uint64_t> words(in_bits.size());
  for (std::size_t i = 0; i < in_bits.size(); ++i) words[i] = in_bits[i] ? ~0ull : 0;
  return (eval_gate(t, words) & 1ull) != 0;
}

NodeId Netlist::add_input(std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = GateType::Input;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  inputs_.push_back(id);
  invalidate_caches();
  return id;
}

NodeId Netlist::add_const(bool value, std::string name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.type = value ? GateType::Const1 : GateType::Const0;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  invalidate_caches();
  return id;
}

NodeId Netlist::add_gate(GateType type, std::vector<NodeId> fanins, std::string name) {
  assert(type != GateType::Input);
  NodeId id = static_cast<NodeId>(nodes_.size());
  for (NodeId f : fanins) {
    assert(f < id && "fanins must already exist (DAG invariant)");
    (void)f;
  }
  Node n;
  n.type = type;
  n.fanins = std::move(fanins);
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  invalidate_caches();
  return id;
}

void Netlist::mark_output(NodeId n) {
  if (!nodes_[n].is_output) {
    nodes_[n].is_output = true;
    outputs_.push_back(n);
  }
}

std::size_t Netlist::live_count() const {
  std::size_t c = 0;
  for (const Node& n : nodes_) c += n.dead ? 0 : 1;
  return c;
}

void Netlist::invalidate_caches() const {
  fanouts_valid_ = false;
  topo_valid_ = false;
}

const std::vector<std::vector<NodeId>>& Netlist::fanouts() const {
  if (!fanouts_valid_) {
    fanouts_.assign(nodes_.size(), {});
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (nodes_[id].dead) continue;
      for (NodeId f : nodes_[id].fanins) fanouts_[f].push_back(id);
    }
    fanouts_valid_ = true;
  }
  return fanouts_;
}

const std::vector<NodeId>& Netlist::topo_order() const {
  if (topo_valid_) return topo_;
  // Iterative DFS from all live nodes; redefine() can move a node before its
  // fanins in id order, so id order is not a valid topological order.
  topo_.clear();
  topo_.reserve(nodes_.size());
  enum : std::uint8_t { White, Grey, Black };
  std::vector<std::uint8_t> color(nodes_.size(), White);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId root = 0; root < nodes_.size(); ++root) {
    if (nodes_[root].dead || color[root] != White) continue;
    stack.emplace_back(root, 0);
    color[root] = Grey;
    while (!stack.empty()) {
      auto& [n, next] = stack.back();
      const auto& fi = nodes_[n].fanins;
      if (next < fi.size()) {
        NodeId f = fi[next++];
        if (color[f] == White) {
          color[f] = Grey;
          stack.emplace_back(f, 0);
        } else {
          assert(color[f] == Black && "cycle in netlist");
        }
      } else {
        color[n] = Black;
        topo_.push_back(n);
        stack.pop_back();
      }
    }
  }
  topo_valid_ = true;
  return topo_;
}

std::vector<std::uint32_t> Netlist::levels() const {
  std::vector<std::uint32_t> lvl(nodes_.size(), 0);
  for (NodeId n : topo_order()) {
    const Node& nd = nodes_[n];
    if (nd.type == GateType::Input || nd.type == GateType::Const0 ||
        nd.type == GateType::Const1) {
      continue;
    }
    std::uint32_t m = 0;
    for (NodeId f : nd.fanins) m = std::max(m, lvl[f]);
    lvl[n] = m + 1;
  }
  return lvl;
}

std::uint32_t Netlist::depth() const {
  auto lvl = levels();
  std::uint32_t d = 0;
  for (NodeId o : outputs_) d = std::max(d, lvl[o]);
  return d;
}

std::uint64_t Netlist::equivalent_gate_count() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    switch (n.type) {
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor:
        total += n.fanins.empty() ? 0 : n.fanins.size() - 1;
        break;
      default:
        break;
    }
  }
  return total;
}

std::uint64_t Netlist::gate_count() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.dead) continue;
    if (n.type != GateType::Input && n.type != GateType::Const0 &&
        n.type != GateType::Const1) {
      ++total;
    }
  }
  return total;
}

std::vector<std::uint64_t> Netlist::simulate(const std::vector<std::uint64_t>& pi_words) const {
  std::vector<std::uint64_t> values(nodes_.size(), 0);
  simulate_into(pi_words, values);
  return values;
}

void Netlist::simulate_into(const std::vector<std::uint64_t>& pi_words,
                            std::vector<std::uint64_t>& values) const {
  assert(pi_words.size() == inputs_.size());
  values.assign(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) values[inputs_[i]] = pi_words[i];
  std::vector<std::uint64_t> in_words;
  for (NodeId n : topo_order()) {
    const Node& nd = nodes_[n];
    switch (nd.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        values[n] = 0;
        break;
      case GateType::Const1:
        values[n] = ~0ull;
        break;
      default: {
        in_words.clear();
        for (NodeId f : nd.fanins) in_words.push_back(values[f]);
        values[n] = eval_gate(nd.type, in_words);
        break;
      }
    }
  }
}

void Netlist::redefine(NodeId n, GateType type, std::vector<NodeId> fanins) {
  assert(type != GateType::Input);
  assert(nodes_[n].type != GateType::Input && "cannot redefine a primary input");
  nodes_[n].type = type;
  nodes_[n].fanins = std::move(fanins);
  invalidate_caches();
}

void Netlist::replace_fanin(NodeId gate, NodeId old_fanin, NodeId new_fanin) {
  for (NodeId& f : nodes_[gate].fanins) {
    if (f == old_fanin) f = new_fanin;
  }
  invalidate_caches();
}

std::size_t Netlist::sweep() {
  std::vector<bool> reach(nodes_.size(), false);
  std::vector<NodeId> stack;
  for (NodeId o : outputs_) {
    if (!reach[o]) {
      reach[o] = true;
      stack.push_back(o);
    }
  }
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    for (NodeId f : nodes_[n].fanins) {
      if (!reach[f]) {
        reach[f] = true;
        stack.push_back(f);
      }
    }
  }
  std::size_t newly_dead = 0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    // Inputs stay live: they are part of the circuit interface even when no
    // output depends on them (matches the .bench/scan view of a circuit).
    const bool keep = reach[id] || nodes_[id].type == GateType::Input;
    if (!keep && !nodes_[id].dead) {
      nodes_[id].dead = true;
      nodes_[id].fanins.clear();
      ++newly_dead;
    }
  }
  if (newly_dead) invalidate_caches();
  return newly_dead;
}

bool Netlist::simplify() {
  bool changed_any = false;
  bool changed = true;
  while (changed) {
    changed = false;
    // value[n]: 0/1 if the node is a known constant, 2 otherwise.
    std::vector<std::uint8_t> cval(nodes_.size(), 2);
    // alias[n]: node that n is a pure buffer of (or kNoNode).
    std::vector<NodeId> alias(nodes_.size(), kNoNode);
    for (NodeId n : topo_order()) {
      Node& nd = nodes_[n];
      if (nd.type == GateType::Const0) { cval[n] = 0; continue; }
      if (nd.type == GateType::Const1) { cval[n] = 1; continue; }
      if (nd.type == GateType::Input) continue;

      // Re-point fanins at buffer sources discovered earlier this pass.
      for (NodeId& f : nd.fanins) {
        if (alias[f] != kNoNode) {
          f = alias[f];
          changed = true;
        }
      }

      if (nd.type == GateType::Buf) {
        if (cval[nd.fanins[0]] != 2) {
          nd.type = cval[nd.fanins[0]] ? GateType::Const1 : GateType::Const0;
          nd.fanins.clear();
          changed = true;
          cval[n] = nd.type == GateType::Const1 ? 1 : 0;
        } else if (!nd.is_output) {
          alias[n] = nd.fanins[0];
        }
        continue;
      }
      if (nd.type == GateType::Not) {
        if (cval[nd.fanins[0]] != 2) {
          nd.type = cval[nd.fanins[0]] ? GateType::Const0 : GateType::Const1;
          nd.fanins.clear();
          changed = true;
          cval[n] = nd.type == GateType::Const1 ? 1 : 0;
        }
        continue;
      }

      if (has_controlling_value(nd.type)) {
        const bool cv = controlling_value(nd.type);
        bool has_ctrl = false;
        std::vector<NodeId> kept;
        for (NodeId f : nd.fanins) {
          if (cval[f] == 2) {
            kept.push_back(f);
          } else if (cval[f] == static_cast<std::uint8_t>(cv)) {
            has_ctrl = true;
          }
          // non-controlling constants are simply dropped
        }
        if (has_ctrl) {
          nd.type = controlled_output(nd.type) ? GateType::Const1 : GateType::Const0;
          nd.fanins.clear();
          cval[n] = nd.type == GateType::Const1 ? 1 : 0;
          changed = true;
          continue;
        }
        if (kept.size() != nd.fanins.size()) changed = true;
        if (kept.empty()) {
          // All inputs were non-controlling constants: the output is the
          // gate's identity value (1 for AND, 0 for OR), inverted if needed.
          const bool v = !cv;  // value every input held
          const bool res = v ^ is_inverting(nd.type);
          nd.type = res ? GateType::Const1 : GateType::Const0;
          nd.fanins.clear();
          cval[n] = res ? 1 : 0;
          continue;
        }
        if (kept.size() == 1) {
          nd.type = is_inverting(nd.type) ? GateType::Not : GateType::Buf;
          nd.fanins = {kept[0]};
          if (nd.type == GateType::Buf && !nd.is_output) alias[n] = kept[0];
          continue;
        }
        nd.fanins = std::move(kept);
        continue;
      }

      if (nd.type == GateType::Xor || nd.type == GateType::Xnor) {
        bool parity = nd.type == GateType::Xnor;  // accumulated inversion
        std::vector<NodeId> kept;
        for (NodeId f : nd.fanins) {
          if (cval[f] == 2) kept.push_back(f);
          else parity ^= (cval[f] == 1);
        }
        if (kept.size() != nd.fanins.size()) changed = true;
        if (kept.empty()) {
          nd.type = parity ? GateType::Const1 : GateType::Const0;
          nd.fanins.clear();
          cval[n] = parity ? 1 : 0;
        } else if (kept.size() == 1) {
          nd.type = parity ? GateType::Not : GateType::Buf;
          nd.fanins = {kept[0]};
          if (nd.type == GateType::Buf && !nd.is_output) alias[n] = kept[0];
        } else {
          nd.type = parity ? GateType::Xnor : GateType::Xor;
          nd.fanins = std::move(kept);
        }
        continue;
      }
    }
    if (changed) {
      invalidate_caches();
      changed_any = true;
    }
  }
  if (sweep() > 0) changed_any = true;
  return changed_any;
}

Netlist Netlist::compacted(std::vector<NodeId>* out_map) const {
  Netlist out(name_);
  std::vector<NodeId> map(nodes_.size(), kNoNode);
  // Inputs first, preserving interface order.
  for (NodeId pi : inputs_) map[pi] = out.add_input(nodes_[pi].name);
  for (NodeId n : topo_order()) {
    const Node& nd = nodes_[n];
    if (nd.type == GateType::Input) continue;
    if (nd.type == GateType::Const0 || nd.type == GateType::Const1) {
      map[n] = out.add_const(nd.type == GateType::Const1, nd.name);
      continue;
    }
    std::vector<NodeId> fi;
    fi.reserve(nd.fanins.size());
    for (NodeId f : nd.fanins) {
      assert(map[f] != kNoNode);
      fi.push_back(map[f]);
    }
    map[n] = out.add_gate(nd.type, std::move(fi), nd.name);
  }
  for (NodeId o : outputs_) {
    assert(map[o] != kNoNode);
    out.mark_output(map[o]);
  }
  if (out_map) *out_map = std::move(map);
  return out;
}

std::string Netlist::check() const {
  std::ostringstream err;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.dead) continue;
    for (NodeId f : n.fanins) {
      if (f >= nodes_.size()) {
        err << "node " << id << " has out-of-range fanin " << f << '\n';
      } else if (nodes_[f].dead) {
        err << "node " << id << " has dead fanin " << f << '\n';
      }
    }
    switch (n.type) {
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        if (!n.fanins.empty()) err << "node " << id << " source with fanins\n";
        break;
      case GateType::Buf:
      case GateType::Not:
        if (n.fanins.size() != 1) err << "node " << id << " arity != 1\n";
        break;
      default:
        if (n.fanins.size() < 2) err << "node " << id << " arity < 2\n";
        break;
    }
  }
  // topo_order() asserts on cycles in debug builds; recompute defensively.
  (void)topo_order();
  for (NodeId o : outputs_) {
    if (nodes_[o].dead) err << "output node " << o << " is dead\n";
  }
  return err.str();
}

}  // namespace compsyn
