// Gate-level combinational netlist: the substrate every other subsystem
// (path counting, resynthesis, fault simulation, ATPG, mapping) operates on.
//
// A Netlist is a DAG of nodes. Primary inputs are nodes of type Input;
// primary outputs are nodes carrying an output mark (a node may be both an
// internal stem and an output). Fanout branches are implicit: the branch of
// stem `u` feeding pin `p` of gate `v` is identified by the pair (v, p).
//
// Mutation model: resynthesis rewrites a node in place (redefine), so its
// fanout edges and output marks are preserved; nodes that become unreachable
// from the outputs are flagged dead by sweep() and physically removed only by
// compact(), which is the only operation that invalidates NodeIds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace compsyn {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xffffffffu;

enum class GateType : std::uint8_t {
  Input,
  Const0,
  Const1,
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
};

/// True for And/Nand/Or/Nor: gates with a controlling input value.
bool has_controlling_value(GateType t);
/// Controlling input value of the gate (0 for And/Nand, 1 for Or/Nor).
/// Precondition: has_controlling_value(t).
bool controlling_value(GateType t);
/// True if the gate inverts: Not, Nand, Nor, Xnor.
bool is_inverting(GateType t);
/// Output value given that some input has the controlling value.
inline bool controlled_output(GateType t) { return controlling_value(t) ^ is_inverting(t); }
/// Human-readable gate-type name ("AND", "NOR", ...).
const char* to_string(GateType t);

struct Node {
  GateType type = GateType::Input;
  bool is_output = false;
  bool dead = false;
  std::vector<NodeId> fanins;
  std::string name;  // optional; preserved through I/O round trips
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // -- construction -------------------------------------------------------
  NodeId add_input(std::string name = {});
  NodeId add_const(bool value, std::string name = {});
  /// Adds a gate whose fanins must already exist (keeps the DAG invariant).
  NodeId add_gate(GateType type, std::vector<NodeId> fanins, std::string name = {});
  void mark_output(NodeId n);

  // -- access --------------------------------------------------------------
  std::size_t size() const { return nodes_.size(); }
  const Node& node(NodeId n) const { return nodes_[n]; }
  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }
  bool is_dead(NodeId n) const { return nodes_[n].dead; }

  /// Number of live (non-dead) nodes, including inputs and constants.
  std::size_t live_count() const;

  /// Fanout lists, rebuilt lazily after mutations. Dead nodes have empty
  /// fanout lists and do not appear in any list.
  const std::vector<std::vector<NodeId>>& fanouts() const;

  /// Live nodes in topological order (fanins before fanouts). The reference
  /// stays valid until the next mutation.
  const std::vector<NodeId>& topo_order() const;

  /// Structural level of every live node (inputs at 0; Buf/Not count as a
  /// level). Dead nodes get 0.
  std::vector<std::uint32_t> levels() const;

  /// Number of gates (Buf/Not count 1) on the longest input-to-output path.
  std::uint32_t depth() const;

  // -- metrics -------------------------------------------------------------
  /// Equivalent 2-input gate count per the paper: a k-input gate adds k-1;
  /// Not/Buf add 0. Dead nodes are not counted.
  std::uint64_t equivalent_gate_count() const;
  /// Number of live gate nodes (everything except inputs/constants).
  std::uint64_t gate_count() const;

  // -- simulation ----------------------------------------------------------
  /// 64-pattern parallel simulation. pi_words[i] holds 64 values for
  /// inputs()[i]. Returns one word per node (dead nodes get 0).
  std::vector<std::uint64_t> simulate(const std::vector<std::uint64_t>& pi_words) const;

  /// As simulate(), writing into a caller-provided buffer of size() words,
  /// using a cached topological order. For inner loops (fault simulation).
  void simulate_into(const std::vector<std::uint64_t>& pi_words,
                     std::vector<std::uint64_t>& node_words) const;

  // -- mutation ------------------------------------------------------------
  /// Rewrites node n in place: fanout edges and output marks are kept.
  void redefine(NodeId n, GateType type, std::vector<NodeId> fanins);
  /// Replaces every occurrence of old_fanin in gate's fanin list.
  void replace_fanin(NodeId gate, NodeId old_fanin, NodeId new_fanin);

  /// Flags nodes unreachable from any output as dead (inputs stay live).
  /// Returns the number of newly dead nodes.
  std::size_t sweep();

  /// Constant folding + single-input gate reduction + buffer bypassing for
  /// non-output buffers, then sweep(). Returns true if anything changed.
  bool simplify();

  /// Rebuilds the netlist without dead nodes. out_map (if non-null) receives
  /// old-id -> new-id (kNoNode for removed nodes).
  Netlist compacted(std::vector<NodeId>* out_map = nullptr) const;

  /// Deep structural checks (fanin arity, DAG-ness, live invariants);
  /// returns an empty string when healthy, else a description.
  std::string check() const;

 private:
  void invalidate_caches() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;

  mutable bool fanouts_valid_ = false;
  mutable std::vector<std::vector<NodeId>> fanouts_;
  mutable bool topo_valid_ = false;
  mutable std::vector<NodeId> topo_;
};

/// Evaluates one gate over 64-bit packed input words.
std::uint64_t eval_gate(GateType t, const std::vector<std::uint64_t>& in_words);

/// Evaluates one gate over single-bit inputs.
bool eval_gate_bit(GateType t, const std::vector<bool>& in_bits);

}  // namespace compsyn
