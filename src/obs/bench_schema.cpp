#include "obs/bench_schema.hpp"

#include <utility>

namespace compsyn {

bool bench_normalize_v2(Json doc, Json* out, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!doc.is_object()) return fail("bench report is not a JSON object");
  // Legacy hand-authored summary shape ({"bench": ..., "runs": [...]}, used
  // by the jobs/sat sweep files): lift it into v2 with the sweep rows as a
  // "runs" section and everything else as meta.
  const Json* bench = doc.find("bench");
  const Json* runs = doc.find("runs");
  if (doc.find("name") == nullptr && bench != nullptr &&
      bench->type() == Json::Type::String && runs != nullptr &&
      runs->is_array()) {
    Json v2 = Json::object();
    v2.set("schema", Json(std::string(kBenchSchemaV2)));
    v2.set("name", *bench);
    Json meta = Json::object();
    for (const auto& [key, value] : doc.items()) {
      if (key != "bench" && key != "runs") meta.set(key, value);
    }
    v2.set("meta", std::move(meta));
    v2.set("spans", Json::array());
    v2.set("counters", Json::object());
    v2.set("runs", *runs);
    *out = std::move(v2);
    return true;
  }
  const Json* name = doc.find("name");
  if (name == nullptr || name->type() != Json::Type::String) {
    return fail("bench report has no string 'name'");
  }
  const Json* spans = doc.find("spans");
  if (spans == nullptr || !spans->is_array()) {
    return fail("bench report has no 'spans' array");
  }
  const Json* counters = doc.find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return fail("bench report has no 'counters' object");
  }
  if (const Json* schema = doc.find("schema")) {
    if (schema->type() != Json::Type::String ||
        schema->as_string() != kBenchSchemaV2) {
      return fail("unsupported bench schema '" +
                  (schema->type() == Json::Type::String ? schema->as_string()
                                                        : std::string("?")) +
                  "' (expected " + std::string(kBenchSchemaV2) + ")");
    }
    *out = std::move(doc);
    return true;
  }
  // Legacy (untagged) report: prepend the tag, keep everything else in order.
  Json tagged = Json::object();
  tagged.set("schema", Json(std::string(kBenchSchemaV2)));
  for (auto& [key, value] : doc.items()) {
    tagged.set(key, value);
  }
  *out = std::move(tagged);
  return true;
}

}  // namespace compsyn
