// The unified bench-report schema (compsyn-bench-v2, DESIGN.md §12.4) and
// its normalizer. A v2 report is the classic RunReport document with a
// leading "schema" tag:
//
//   { "schema": "compsyn-bench-v2", "name": ..., "meta": ..., "wall_seconds":
//     ..., "spans": [...], "counters": {...}, "distributions": [...],
//     ["histograms": [...], "phases": [...], "hot_cones": [...],
//      "peak_rss_bytes": N,]  "tables": {...}, ...sections }
//
// The bracketed members are the extended-telemetry sections and appear only
// when the producing run passed a telemetry flag. Untagged (legacy) reports
// written by earlier releases are accepted everywhere a v2 report is and are
// normalized by prepending the tag; unknown schema strings are rejected.
//
// Like trace_check, this is a pure function layer: always compiled, never
// gated by COMPSYN_TRACE.
#pragma once

#include <string>
#include <string_view>

#include "obs/json.hpp"

namespace compsyn {

inline constexpr std::string_view kBenchSchemaV2 = "compsyn-bench-v2";

/// Normalizes a parsed bench report to v2: tags a legacy document, passes a
/// v2 document through untouched, rejects anything else (wrong schema string,
/// non-object, missing the name/spans/counters core). Returns false and
/// fills *error on rejection.
bool bench_normalize_v2(Json doc, Json* out, std::string* error = nullptr);

}  // namespace compsyn
