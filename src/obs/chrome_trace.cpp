#include "obs/chrome_trace.hpp"

#include <fstream>

#if COMPSYN_TRACE

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace compsyn {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Event {
  char ph;                // 'B', 'E', 'X', 'i', 'C'
  std::uint32_t tid;
  std::uint64_t ts_ns;    // relative to enable()
  std::uint64_t dur_ns;   // 'X' only
  double value;           // counter sample
  std::string name;
};

struct Collector {
  std::mutex mu;
  std::vector<Event> events;
  std::atomic<std::uint64_t> epoch_ns{0};  // set once by enable()
  std::string armed_path;  // flush target for abnormal exits ("" = none)
};

std::atomic<bool> g_enabled{false};
thread_local std::uint32_t t_track = 0;
// Open B names on this thread, so end() can stamp the matching name on its
// E event (the in-repo checker pairs B/E strictly by name).
thread_local std::vector<std::string>* t_open = nullptr;

std::vector<std::string>& open_stack() {
  if (t_open == nullptr) t_open = new std::vector<std::string>();  // leaked
  return *t_open;
}

Collector& collector() {
  static Collector* c = new Collector();  // leaked: events may land at exit
  return *c;
}

void push(Event e) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.events.push_back(std::move(e));
}

/// ts in fractional microseconds, the unit the trace-event format uses.
double ts_us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

Json event_json(const Event& e) {
  Json o = Json::object();
  if (!e.name.empty()) o.set("name", e.name);
  o.set("ph", std::string(1, e.ph));
  o.set("ts", ts_us(e.ts_ns));
  o.set("pid", std::uint64_t{1});
  o.set("tid", static_cast<std::uint64_t>(e.tid));
  if (e.ph == 'X') o.set("dur", ts_us(e.dur_ns));
  if (e.ph == 'i') o.set("s", "t");
  if (e.ph == 'C') {
    Json args = Json::object();
    args.set("value", e.value);
    o.set("args", std::move(args));
  }
  return o;
}

Json metadata_json(const char* what, std::uint32_t tid, const std::string& name) {
  Json o = Json::object();
  o.set("name", what);
  o.set("ph", "M");
  o.set("ts", 0.0);
  o.set("pid", std::uint64_t{1});
  o.set("tid", static_cast<std::uint64_t>(tid));
  Json args = Json::object();
  args.set("name", name);
  o.set("args", std::move(args));
  return o;
}

}  // namespace

bool ChromeTrace::enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

void ChromeTrace::enable() {
  Collector& c = collector();
  std::uint64_t expected = 0;
  c.epoch_ns.compare_exchange_strong(expected, steady_ns(),
                                     std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void ChromeTrace::disable_and_clear() {
  g_enabled.store(false, std::memory_order_relaxed);
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.events.clear();
  c.epoch_ns.store(0, std::memory_order_relaxed);
}

std::size_t ChromeTrace::event_count() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.events.size();
}

std::uint64_t ChromeTrace::now_ns() {
  const std::uint64_t epoch =
      collector().epoch_ns.load(std::memory_order_relaxed);
  if (epoch == 0) return 0;
  const std::uint64_t now = steady_ns();
  return now >= epoch ? now - epoch : 0;
}

bool ChromeTrace::begin(std::string_view name) {
  if (!enabled()) return false;
  open_stack().emplace_back(name);
  push({'B', t_track, now_ns(), 0, 0.0, std::string(name)});
  return true;
}

void ChromeTrace::end() {
  std::vector<std::string>& open = open_stack();
  // Pop even when collection was disabled mid-span: begin() only pushes
  // (and returns true) while enabled, and the caller latched that it did.
  if (open.empty()) return;
  std::string name = std::move(open.back());
  open.pop_back();
  if (!enabled()) return;
  push({'E', t_track, now_ns(), 0, 0.0, std::move(name)});
}

void ChromeTrace::complete(std::string_view name, std::uint64_t start_ns,
                           std::uint64_t end_ns) {
  if (!enabled()) return;
  if (end_ns < start_ns) end_ns = start_ns;
  // A single X (complete) event, not a retro-dated B/E pair: it never has
  // to interleave with the open-span stack of the track it lands on, so
  // clock-granularity timestamp ties cannot corrupt B/E nesting.
  push({'X', t_track, start_ns, end_ns - start_ns, 0.0, std::string(name)});
}

void ChromeTrace::instant(std::string_view name) {
  if (!enabled()) return;
  push({'i', t_track, now_ns(), 0, 0.0, std::string(name)});
}

void ChromeTrace::counter(std::string_view name, double value) {
  if (!enabled()) return;
  push({'C', t_track, now_ns(), 0, value, std::string(name)});
}

void ChromeTrace::set_thread_track(std::uint32_t track) { t_track = track; }

std::uint32_t ChromeTrace::thread_track() { return t_track; }

bool ChromeTrace::write(const std::string& path, std::string* error) {
  std::vector<Event> snapshot;
  {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    snapshot = c.events;
  }
  // Buffer order is push order; complete() events are pushed after the work
  // they describe, so their B timestamps predate earlier pushes. Sort by
  // time (stable, so a zero-length pair keeps B before E). Per thread the
  // recorded intervals nest in real time, which makes the time-sorted
  // per-track sequence a well-formed B/E nesting.
  std::stable_sort(snapshot.begin(), snapshot.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  Json events = Json::array();
  events.push(metadata_json("process_name", 0, "compsyn"));
  // One thread-name metadata event per track seen, in track order.
  std::vector<std::uint32_t> tracks;
  for (const Event& e : snapshot) {
    bool seen = false;
    for (std::uint32_t t : tracks) seen = seen || t == e.tid;
    if (!seen) tracks.push_back(e.tid);
  }
  std::sort(tracks.begin(), tracks.end());
  for (std::uint32_t t : tracks) {
    events.push(metadata_json("thread_name", t,
                              t == 0 ? "main/worker-0"
                                     : "worker-" + std::to_string(t)));
  }
  for (const Event& e : snapshot) events.push(event_json(e));
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");

  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  doc.write(os, 0);
  os << '\n';
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void ChromeTrace::arm_output(std::string path) {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.armed_path = std::move(path);
}

void ChromeTrace::flush_armed() {
  std::string path;
  {
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    path.swap(c.armed_path);
  }
  if (!path.empty()) write(path);
}

}  // namespace compsyn

#else  // COMPSYN_TRACE == 0

namespace compsyn {

// Even the compiled-out build honours --trace-out with a valid (empty) trace
// so tooling pointed at the file does not choke on a missing artifact.
bool ChromeTrace::write(const std::string& path, std::string* error) {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  os << "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}\n";
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace compsyn

#endif  // COMPSYN_TRACE
