// Chrome trace-event collector: records B/E span pairs, instant events, and
// counter-track samples into an in-memory buffer and serialises them as a
// catapult / Perfetto-loadable trace ({"traceEvents": [...]}, chrome://tracing
// JSON). Driven by `--trace-out=<file>.json` on every binary.
//
// Gating follows the obs contract (obs.hpp): compiled out entirely under
// -DCOMPSYN_TRACE=0, and even when compiled in every record call is a single
// relaxed atomic load until ChromeTrace::enable() is called. The collector
// piggybacks on the span layer -- Trace::span() emits a B event on entry and
// an E event on scope exit when collection is on -- so the trace shows the
// same labels as the aggregate report, with per-thread tracks fed by the exec
// layer's worker ids (set_thread_track, called from the pool's worker loop).
//
// Timestamps are nanoseconds from enable() (written as fractional-microsecond
// `ts` values, the unit the trace-event format specifies). Events are buffered
// under a mutex; per-thread event order is preserved, which is what the
// in-repo checker (trace_check.hpp) validates nesting against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace compsyn {

#if COMPSYN_TRACE

class ChromeTrace {
 public:
  /// True while the collector is recording (single relaxed load).
  static bool enabled();

  /// Starts collecting; the enable instant is ts 0.
  static void enable();

  /// Stops collecting and drops every buffered event. Test helper.
  static void disable_and_clear();

  /// Number of events buffered so far. Test helper.
  static std::size_t event_count();

  /// B (duration begin) on the calling thread's track, stamped now. Returns
  /// true when an event was recorded; callers must latch the result and only
  /// call end() for a begin() that returned true, keeping the per-thread B/E
  /// stack balanced across enable()/disable transitions.
  [[nodiscard]] static bool begin(std::string_view name);

  /// E (duration end) matching the innermost begin(), stamped now.
  static void end();

  /// X (complete) event from explicit clock readings (used for work timed
  /// without a Trace::Span, e.g. per-cone evaluations inside workers).
  static void complete(std::string_view name, std::uint64_t start_ns,
                       std::uint64_t end_ns);

  /// i (instant, thread scope): robustness milestones -- budget exhaustion,
  /// checkpoint writes, cancellation wind-down.
  static void instant(std::string_view name);

  /// C (counter-track sample): SAT session size, memo hit rate, live fault
  /// counts. One series per name.
  static void counter(std::string_view name, double value);

  /// Monotonic nanoseconds since enable() (0 when not enabled); the clock
  /// complete() timestamps must come from.
  static std::uint64_t now_ns();

  /// The calling thread's track id (chrome `tid`). Track 0 is the main
  /// thread; the exec pool assigns its worker ids.
  static void set_thread_track(std::uint32_t track);
  static std::uint32_t thread_track();

  /// Serialises the buffer as trace-event JSON (plus process/thread metadata
  /// events). Returns false and fills *error on I/O failure. Does not clear
  /// or disable the collector.
  static bool write(const std::string& path, std::string* error = nullptr);

  /// Arms `path` as the flush target for abnormal exits ("" disarms): the
  /// top-level guard calls flush_armed() when a run is cancelled, so a
  /// budget-exhausted or interrupted run still leaves its trace behind.
  static void arm_output(std::string path);

  /// Best-effort write() to the armed path, then disarms. No-op when
  /// nothing is armed.
  static void flush_armed();
};

#else  // COMPSYN_TRACE == 0

class ChromeTrace {
 public:
  static bool enabled() { return false; }
  static void enable() {}
  static void disable_and_clear() {}
  static std::size_t event_count() { return 0; }
  [[nodiscard]] static bool begin(std::string_view) { return false; }
  static void end() {}
  static void complete(std::string_view, std::uint64_t, std::uint64_t) {}
  static void instant(std::string_view) {}
  static void counter(std::string_view, double) {}
  static std::uint64_t now_ns() { return 0; }
  static void set_thread_track(std::uint32_t) {}
  static std::uint32_t thread_track() { return 0; }
  static bool write(const std::string&, std::string* error = nullptr);
  static void arm_output(std::string) {}
  static void flush_armed() {}
};

#endif

}  // namespace compsyn
