#include "obs/counters.hpp"

#if COMPSYN_TRACE

#include <algorithm>
#include <map>
#include <mutex>
#include <ostream>

#include "obs/domain.hpp"
#include "util/table.hpp"

namespace compsyn {
namespace {

struct Dist {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::map<std::string, Dist, std::less<>> dists;
};

// The calling thread's registry: lives in the bound obs domain (default
// domain for one-shot binaries, which is leaked -- usable during exit).
Registry& registry() {
  return *static_cast<Registry*>(obs_current_domain().get_or_create(
      kObsSlotCounters, [] { return static_cast<void*>(new Registry()); },
      [](void* p) { delete static_cast<Registry*>(p); }));
}

}  // namespace

void Counters::incr(std::string_view name, std::uint64_t delta) {
  if (!obs_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    r.counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void Counters::observe(std::string_view name, double value) {
  if (!obs_enabled()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.dists.find(name);
  if (it == r.dists.end()) {
    Dist d;
    d.count = 1;
    d.sum = d.min = d.max = value;
    r.dists.emplace(std::string(name), d);
  } else {
    Dist& d = it->second;
    ++d.count;
    d.sum += value;
    d.min = std::min(d.min, value);
    d.max = std::max(d.max, value);
  }
}

std::uint64_t Counters::value(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  return it == r.counters.end() ? 0 : it->second;
}

std::vector<CounterStat> Counters::counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterStat> out;
  out.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters) out.push_back({name, value});
  return out;
}

std::vector<DistStat> Counters::distributions() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<DistStat> out;
  out.reserve(r.dists.size());
  for (const auto& [name, d] : r.dists) {
    out.push_back({name, d.count, d.sum, d.min, d.max});
  }
  return out;
}

void Counters::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters.clear();
  r.dists.clear();
}

void Counters::print_summary(std::ostream& os) {
  const auto cs = counters();
  const auto ds = distributions();
  if (cs.empty() && ds.empty()) {
    os << "(no counters recorded)\n";
    return;
  }
  if (!cs.empty()) {
    Table t({"counter", "value"});
    for (const CounterStat& c : cs) t.row().add(c.name).add_commas(c.value);
    t.print(os);
  }
  if (!ds.empty()) {
    if (!cs.empty()) os << '\n';
    Table t({"distribution", "samples", "mean", "min", "max"});
    for (const DistStat& d : ds) {
      t.row()
          .add(d.name)
          .add_commas(d.count)
          .add(d.count == 0 ? 0.0 : d.sum / static_cast<double>(d.count), 2)
          .add(d.min, 2)
          .add(d.max, 2);
    }
    t.print(os);
  }
}

}  // namespace compsyn

#endif  // COMPSYN_TRACE
