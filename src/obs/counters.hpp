// Named integer counters and value distributions with a thread-safe global
// registry.
//
//   Counters::incr("atpg.backtracks");              // +1
//   Counters::incr("fsim.patterns", 64);            // +delta
//   Counters::observe("fsim.drops_per_block", 3.0); // distribution sample
//
// Hot call sites should accumulate locally and incr once per batch (the
// fault simulator does this per 64-pattern block). Calls are no-ops until
// obs_set_enabled(true); snapshots and value() always reflect what has been
// recorded so far.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace compsyn {

struct CounterStat {
  std::string name;
  std::uint64_t value = 0;
};

/// Summary of observe() samples for one name.
struct DistStat {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

#if COMPSYN_TRACE

class Counters {
 public:
  /// Adds delta to the named counter (no-op while recording is off).
  static void incr(std::string_view name, std::uint64_t delta = 1);

  /// Records one sample of a value distribution (count/sum/min/max).
  static void observe(std::string_view name, double value);

  /// Current value of a counter (0 if never incremented).
  static std::uint64_t value(std::string_view name);

  /// All counters, sorted by name.
  static std::vector<CounterStat> counters();

  /// All distributions, sorted by name.
  static std::vector<DistStat> distributions();

  /// Drops every counter and distribution. Test helper.
  static void reset();

  /// Human-readable tables of counters and distributions.
  static void print_summary(std::ostream& os);
};

#else  // COMPSYN_TRACE == 0

class Counters {
 public:
  static void incr(std::string_view, std::uint64_t = 1) {}
  static void observe(std::string_view, double) {}
  static std::uint64_t value(std::string_view) { return 0; }
  static std::vector<CounterStat> counters() { return {}; }
  static std::vector<DistStat> distributions() { return {}; }
  static void reset() {}
  static void print_summary(std::ostream&) {}
};

#endif

}  // namespace compsyn
