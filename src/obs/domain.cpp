#include "obs/domain.hpp"

namespace compsyn {
namespace {

thread_local ObsDomain* t_domain = nullptr;

}  // namespace

ObsDomain::~ObsDomain() {
  for (int i = 0; i < kObsSlotCount; ++i) {
    if (void* p = slots_[i].load(std::memory_order_acquire)) {
      destroyers_[i](p);
    }
  }
}

void* ObsDomain::get_or_create(int slot, void* (*make)(),
                               void (*destroy)(void*)) {
  if (void* p = slots_[slot].load(std::memory_order_acquire)) return p;
  std::lock_guard<std::mutex> lock(mu_);
  if (void* p = slots_[slot].load(std::memory_order_relaxed)) return p;
  void* p = make();
  destroyers_[slot] = destroy;
  slots_[slot].store(p, std::memory_order_release);
  return p;
}

ObsDomain& obs_default_domain() {
  static ObsDomain* d = new ObsDomain();  // leaked: usable during exit
  return *d;
}

ObsDomain& obs_current_domain() {
  return t_domain != nullptr ? *t_domain : obs_default_domain();
}

ObsDomainBind::ObsDomainBind(ObsDomain& d) : prev_(t_domain) {
  t_domain = &d;
}

ObsDomainBind::~ObsDomainBind() { t_domain = prev_; }

}  // namespace compsyn
