// Per-run observability domains.
//
// The counter registry and the span-trace registry used to be process
// singletons; a concurrent serving daemon needs each job lane's report to
// see only its own job's counters and spans. An ObsDomain bundles those
// two registries. Threads route through their *bound* domain
// (thread-local, RAII ObsDomainBind), defaulting to the process domain,
// so one-shot binaries never bind one and behave exactly as before.
// Exec-pool workers inherit the domain of the thread that opened the
// parallel region, so spans and counters recorded from workers land in
// the right lane's report.
//
// Only Counters and Trace live in a domain: run reports embed exactly
// those two sections unconditionally. Histograms, phase attribution and
// the telemetry registry are extended telemetry -- the daemon never
// enables it -- and stay process-global.
#pragma once

#include <atomic>
#include <mutex>

namespace compsyn {

inline constexpr int kObsSlotCounters = 0;
inline constexpr int kObsSlotTrace = 1;
inline constexpr int kObsSlotCount = 2;

/// One isolation unit of observability state. Registries are created
/// lazily on first use (a domain whose lane never records costs two
/// null pointers) and owned by the domain.
class ObsDomain {
 public:
  ObsDomain() = default;
  ~ObsDomain();
  ObsDomain(const ObsDomain&) = delete;
  ObsDomain& operator=(const ObsDomain&) = delete;

  /// The registry in `slot`, created by `make` on first use; `destroy`
  /// is remembered for the destructor. Obs-internal: the callers are
  /// counters.cpp / trace.cpp, which cast back to their private types.
  void* get_or_create(int slot, void* (*make)(), void (*destroy)(void*));

 private:
  std::mutex mu_;  // serializes first-use creation only
  std::atomic<void*> slots_[kObsSlotCount] = {};
  void (*destroyers_[kObsSlotCount])(void*) = {};
};

/// The process-default domain (leaked: usable during exit).
ObsDomain& obs_default_domain();

/// The calling thread's domain: the bound one, else the default.
ObsDomain& obs_current_domain();

/// Binds `d` as the calling thread's domain for a scope. Nests by
/// restoration; bind obs_default_domain() to record daemon-level
/// counters from a lane thread without touching the job's report.
class ObsDomainBind {
 public:
  explicit ObsDomainBind(ObsDomain& d);
  ~ObsDomainBind();
  ObsDomainBind(const ObsDomainBind&) = delete;
  ObsDomainBind& operator=(const ObsDomainBind&) = delete;

 private:
  ObsDomain* prev_;
};

}  // namespace compsyn
