#include "obs/events.hpp"

#if COMPSYN_TRACE

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

#include <unistd.h>

namespace compsyn {
namespace {

struct LogState {
  std::mutex mu;
  std::FILE* file = nullptr;  // guarded by mu
  std::uint64_t seq = 0;      // guarded by mu
  std::chrono::steady_clock::time_point epoch;  // guarded by mu
};

LogState& state() {
  static LogState s;
  return s;
}

// Cheap pre-check so instrumentation sites skip the mutex when no log is
// open (the common case).
std::atomic<bool> g_active{false};

// Must be called with s.mu held.
void write_record_locked(LogState& s, std::string_view type, Json fields) {
  double t_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - s.epoch)
          .count();
  Json rec = Json::object();
  rec.set("type", Json(std::string(type)));
  rec.set("seq", Json(s.seq++));
  rec.set("t_ms", Json(t_ms));
  if (fields.is_object()) {
    for (const auto& [key, value] : fields.items()) {
      rec.set(key, value);
    }
  }
  std::string line = rec.dump();
  line.push_back('\n');
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fflush(s.file);
}

// Must be called with s.mu held.
void close_locked(LogState& s) {
  if (s.file != nullptr) {
    std::fclose(s.file);
    s.file = nullptr;
  }
  g_active.store(false, std::memory_order_relaxed);
}

}  // namespace

bool EventLog::open(const std::string& path, std::string_view name,
                    std::string* error) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  close_locked(s);
  s.file = std::fopen(path.c_str(), "w");
  if (s.file == nullptr) {
    if (error != nullptr) *error = "cannot open event log: " + path;
    return false;
  }
  s.seq = 0;
  s.epoch = std::chrono::steady_clock::now();
  g_active.store(true, std::memory_order_relaxed);
  obs_set_enabled(true);
  Json fields = Json::object();
  fields.set("schema", Json(std::string(kEventSchema)));
  fields.set("name", Json(std::string(name)));
  fields.set("pid", Json(static_cast<std::int64_t>(::getpid())));
  write_record_locked(s, "start", std::move(fields));
  return true;
}

bool EventLog::active() { return g_active.load(std::memory_order_relaxed); }

void EventLog::emit(std::string_view type, Json fields) {
  if (!active()) return;
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file == nullptr) return;
  write_record_locked(s, type, std::move(fields));
}

void EventLog::phase(std::string_view name, bool begin) {
  if (!active()) return;
  Json fields = Json::object();
  fields.set("phase", Json(std::string(name)));
  fields.set("event", Json(std::string(begin ? "begin" : "end")));
  emit("phase", std::move(fields));
}

void EventLog::progress(std::string_view phase, std::uint64_t done,
                        std::uint64_t total) {
  if (!active()) return;
  Json fields = Json::object();
  fields.set("phase", Json(std::string(phase)));
  fields.set("done", Json(done));
  fields.set("total", Json(total));
  emit("progress", std::move(fields));
}

void EventLog::heartbeat(std::string_view phase, double elapsed_s) {
  if (!active()) return;
  Json fields = Json::object();
  fields.set("phase", Json(std::string(phase)));
  fields.set("elapsed_s", Json(elapsed_s));
  emit("heartbeat", std::move(fields));
}

void EventLog::milestone(std::string_view what) {
  if (!active()) return;
  Json fields = Json::object();
  fields.set("what", Json(std::string(what)));
  emit("milestone", std::move(fields));
}

void EventLog::finish(std::string_view status) {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.file == nullptr) return;
  Json fields = Json::object();
  fields.set("status", Json(std::string(status)));
  write_record_locked(s, "finish", std::move(fields));
  close_locked(s);
}

void EventLog::reset() {
  LogState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  close_locked(s);
  s.seq = 0;
}

}  // namespace compsyn

#else  // COMPSYN_TRACE == 0

#include <cstdint>
#include <cstdio>

#include <unistd.h>

namespace compsyn {

// The compiled-out build still honours --events with a minimal, schema-valid
// log (start + finish, no instrumentation records), so tooling pointed at
// the file does not choke on a missing artifact.
bool EventLog::open(const std::string& path, std::string_view name,
                    std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open event log: " + path;
    return false;
  }
  Json start = Json::object();
  start.set("type", Json("start"));
  start.set("seq", Json(std::uint64_t{0}));
  start.set("t_ms", Json(0.0));
  start.set("schema", Json(std::string(kEventSchema)));
  start.set("name", Json(std::string(name)));
  start.set("pid", Json(static_cast<std::int64_t>(::getpid())));
  Json fin = Json::object();
  fin.set("type", Json("finish"));
  fin.set("seq", Json(std::uint64_t{1}));
  fin.set("t_ms", Json(0.0));
  fin.set("status", Json("ok"));
  const std::string text = start.dump() + "\n" + fin.dump() + "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace compsyn

#endif
