// Streaming JSONL event log (`--events=<file>.jsonl`, schema
// `compsyn-events-v1`): one self-describing JSON object per line, flushed
// per record, so long runs (and the future resynth_serve daemon) are
// monitorable mid-flight with `tail -f` without touching stdout.
//
// Record types (all carry "type", a monotonically increasing "seq", and
// "t_ms" milliseconds since open()):
//   start      -- first line; also carries "schema": "compsyn-events-v1",
//                 the producing binary's "name", and its "pid"
//   phase      -- {"phase": <name>, "event": "begin"|"end"}
//   progress   -- {"phase": <sweep>, "done": N, "total": M}; emitted at
//                 deterministic commit points with a fixed work stride, so
//                 the progress record sequence (ignoring t_ms) is identical
//                 at any --jobs value
//   heartbeat  -- {"phase": ..., "elapsed_s": ...}; time-gated (explicitly
//                 non-deterministic -- consumers needing determinism drop it)
//   milestone  -- {"what": "checkpoint.write" | "budget.exhausted" |
//                 "cancel.signal" | ...}
//   finish     -- last line; {"status": "ok" | "degraded" | ...}
//
// The log is a process-global singleton like the other obs sinks; open()
// also implies obs recording. Writes take a mutex and are line-atomic.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace compsyn {

inline constexpr const char* kEventSchema = "compsyn-events-v1";

#if COMPSYN_TRACE

class EventLog {
 public:
  /// Opens `path` and writes the start record. Returns false and fills
  /// *error on I/O failure. Reopening closes the previous log first.
  static bool open(const std::string& path, std::string_view name,
                   std::string* error = nullptr);

  /// True while a log is open (single relaxed load).
  static bool active();

  /// Appends one record; "type"/"seq"/"t_ms" are added in front of
  /// `fields`. No-op while inactive.
  static void emit(std::string_view type, Json fields);

  static void phase(std::string_view name, bool begin);
  static void progress(std::string_view phase, std::uint64_t done,
                       std::uint64_t total);
  static void heartbeat(std::string_view phase, double elapsed_s);
  static void milestone(std::string_view what);

  /// Writes the finish record and closes the log.
  static void finish(std::string_view status);

  /// Closes without a finish record and resets seq. Test helper.
  static void reset();
};

#else  // COMPSYN_TRACE == 0

class EventLog {
 public:
  static bool open(const std::string& path, std::string_view,
                   std::string* error = nullptr);
  static bool active() { return false; }
  static void emit(std::string_view, Json) {}
  static void phase(std::string_view, bool) {}
  static void progress(std::string_view, std::uint64_t, std::uint64_t) {}
  static void heartbeat(std::string_view, double) {}
  static void milestone(std::string_view) {}
  static void finish(std::string_view) {}
  static void reset() {}
};

#endif

}  // namespace compsyn
