#include "obs/histogram.hpp"

#if COMPSYN_TRACE

#include <algorithm>
#include <bit>
#include <map>
#include <mutex>

#include "obs/telemetry.hpp"

namespace compsyn {
namespace {

struct HistData {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t buckets[kHistBuckets] = {};
};

struct Registry {
  std::mutex mu;
  // std::map keeps snapshot() name-sorted for free; the histogram set is
  // small (a handful of fixed instrumentation sites).
  std::map<std::string, HistData, std::less<>> hists;
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

void Histogram::observe_ns(std::string_view name, std::uint64_t ns) {
  if (!telemetry_extended()) return;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hists.find(name);
  if (it == r.hists.end()) {
    it = r.hists.emplace(std::string(name), HistData{}).first;
  }
  HistData& h = it->second;
  h.count += 1;
  h.sum_ns += ns;
  h.buckets[bucket_for(ns)] += 1;
}

unsigned Histogram::bucket_for(std::uint64_t ns) {
  // floor(log2(max(ns, 1))) == bit_width(ns) - 1 for ns >= 1.
  unsigned k = ns == 0 ? 0 : static_cast<unsigned>(std::bit_width(ns)) - 1;
  return std::min(k, kHistBuckets - 1);
}

std::uint64_t Histogram::bucket_upper_ns(unsigned k) {
  if (k >= kHistBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << (k + 1)) - 1;
}

std::vector<HistStat> Histogram::snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistStat> out;
  out.reserve(r.hists.size());
  for (const auto& [name, h] : r.hists) {
    HistStat s;
    s.name = name;
    s.count = h.count;
    s.sum_ns = h.sum_ns;
    s.buckets.assign(h.buckets, h.buckets + kHistBuckets);
    out.push_back(std::move(s));
  }
  return out;
}

void Histogram::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.hists.clear();
}

}  // namespace compsyn

#endif  // COMPSYN_TRACE
