// Fixed log-scale duration histograms for resource attribution below the
// span level: per-cone evaluation times (`resynth.cone.ns`), per-fault ATPG
// decisions (`atpg.fault.ns`), individual SAT queries (`sat.query.ns`).
//
// Buckets are FIXED power-of-two nanosecond ranges -- bucket k counts samples
// in [2^k, 2^(k+1)) ns (bucket 0 also absorbs 0) -- so the bucket layout is
// a constant of the binary, never of the data. Bucket *counts* are timing
// data and vary run to run, but the total sample count per histogram is a
// pure function of the work performed, hence jobs-invariant (tested at
// --jobs=1 vs --jobs=8).
//
// Recording is gated one level stricter than spans/counters: samples are
// only taken while telemetry_extended() is on (any of the new telemetry
// flags), so plain --report runs keep byte-identical reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace compsyn {

/// Number of power-of-two buckets: [0,2), [2,4), ..., [2^39, inf) covers
/// sub-nanosecond noise through ~9-minute outliers.
inline constexpr unsigned kHistBuckets = 40;

struct HistStat {
  std::string name;
  std::uint64_t count = 0;    // total samples
  std::uint64_t sum_ns = 0;   // total duration (timing data; masked in diffs)
  std::vector<std::uint64_t> buckets;  // kHistBuckets counts
};

#if COMPSYN_TRACE

class Histogram {
 public:
  /// Records one duration sample; no-op unless telemetry_extended() is on.
  static void observe_ns(std::string_view name, std::uint64_t ns);

  /// The fixed bucket a duration falls into: floor(log2(max(ns,1))),
  /// clamped to the last bucket.
  static unsigned bucket_for(std::uint64_t ns);

  /// Inclusive upper bound of bucket k (2^(k+1)-1; ~0 for the last).
  static std::uint64_t bucket_upper_ns(unsigned k);

  /// All histograms, sorted by name.
  static std::vector<HistStat> snapshot();

  /// Drops every histogram. Test helper.
  static void reset();
};

#else  // COMPSYN_TRACE == 0

class Histogram {
 public:
  static void observe_ns(std::string_view, std::uint64_t) {}
  static unsigned bucket_for(std::uint64_t) { return 0; }
  static std::uint64_t bucket_upper_ns(unsigned) { return 0; }
  static std::vector<HistStat> snapshot() { return {}; }
  static void reset() {}
};

#endif

}  // namespace compsyn
