#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace compsyn {

Json& Json::set(std::string key, Json value) {
  assert(type_ == Type::Object);
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  assert(type_ == Type::Array);
  arr_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  assert(type_ == Type::Array && i < arr_.size());
  return arr_[i];
}

std::int64_t Json::as_i64() const {
  if (type_ == Type::Uint) return static_cast<std::int64_t>(u_);
  if (type_ == Type::Double) return static_cast<std::int64_t>(d_);
  return i_;
}

std::uint64_t Json::as_u64() const {
  if (type_ == Type::Int) return static_cast<std::uint64_t>(i_);
  if (type_ == Type::Double) return static_cast<std::uint64_t>(d_);
  return u_;
}

double Json::as_double() const {
  if (type_ == Type::Int) return static_cast<double>(i_);
  if (type_ == Type::Uint) return static_cast<double>(u_);
  return d_;
}

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  os.write(buf, res.ptr - buf);
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  switch (type_) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (b_ ? "true" : "false"); break;
    case Type::Int: os << i_; break;
    case Type::Uint: os << u_; break;
    case Type::Double: write_double(os, d_); break;
    case Type::String: write_escaped(os, s_); break;
    case Type::Array: {
      if (arr_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        arr_[i].write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Type::Object: {
      if (obj_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        write_escaped(os, obj_[i].first);
        os << (indent > 0 ? ": " : ":");
        obj_[i].second.write_impl(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream ss;
  write(ss, indent);
  return ss.str();
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<Json> run() {
    skip_ws();
    Json v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(Json& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (literal("true")) {
      out = Json(true);
      return true;
    }
    if (literal("false")) {
      out = Json(false);
      return true;
    }
    if (literal("null")) {
      out = Json();
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(Json& out) {
    ++pos_;  // '{'
    out = Json::object();
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) {
        fail("expected ':'");
        return false;
      }
      skip_ws();
      Json v;
      if (!parse_value(v)) return false;
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(Json& out) {
    ++pos_;  // '['
    out = Json::array();
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      Json v;
      if (!parse_value(v)) return false;
      out.push(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) {
      fail("expected string");
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad \\u escape");
              return false;
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs not recombined;
          // the emitter only writes \u for control characters).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-" || tok == "+") {
      fail("expected value");
      return false;
    }
    if (!is_double) {
      if (tok[0] == '-') {
        std::int64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
          out = Json(v);
          return true;
        }
      } else {
        std::uint64_t v = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
          out = Json(v);
          return true;
        }
      }
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("malformed number");
      return false;
    }
    out = Json(d);
    return true;
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace compsyn
