// Minimal JSON value tree: enough to compose run reports, serialize them
// (compact or pretty), and parse them back for validation. Object keys keep
// insertion order so emitted reports are stable and diffable.
//
// Not a general-purpose JSON library: numbers wider than uint64/int64/double
// and non-UTF-8 byte sequences are out of scope.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace compsyn {

class Json {
 public:
  enum class Type { Null, Bool, Int, Uint, Double, String, Array, Object };

  Json() : type_(Type::Null) {}
  Json(bool b) : type_(Type::Bool), b_(b) {}
  Json(std::int64_t v) : type_(Type::Int), i_(v) {}
  Json(int v) : Json(static_cast<std::int64_t>(v)) {}
  Json(std::uint64_t v) : type_(Type::Uint), u_(v) {}
  Json(unsigned v) : Json(static_cast<std::uint64_t>(v)) {}
  Json(double v) : type_(Type::Double), d_(v) {}
  Json(std::string s) : type_(Type::String), s_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::String), s_(s) {}
  Json(const char* s) : type_(Type::String), s_(s) {}

  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_object() const { return type_ == Type::Object; }
  bool is_array() const { return type_ == Type::Array; }

  /// Object member assignment (replaces an existing key, keeps order).
  Json& set(std::string key, Json value);

  /// Array append.
  Json& push(Json value);

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;

  /// Array / object element count; 0 for scalars.
  std::size_t size() const;

  /// Array element access (valid for i < size()).
  const Json& at(std::size_t i) const;
  /// Object entries, in insertion order.
  const std::vector<std::pair<std::string, Json>>& items() const { return obj_; }

  bool as_bool() const { return b_; }
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  double as_double() const;
  const std::string& as_string() const { return s_; }

  /// Serialization. indent <= 0: compact one-liner; indent > 0: pretty-printed
  /// with that many spaces per level.
  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

  /// Strict parser; returns nullopt and fills *error on malformed input.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Type type_;
  bool b_ = false;
  std::int64_t i_ = 0;
  std::uint64_t u_ = 0;
  double d_ = 0.0;
  std::string s_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace compsyn
