#include "obs/memstats.hpp"

#if COMPSYN_TRACE

#include <atomic>
#include <cstdlib>
#include <new>

#include <sys/resource.h>

// The counting allocator and sanitizer allocators both want to own
// operator new; the sanitizer wins (its interposition carries the poisoning
// and leak bookkeeping the CI sanitizer jobs depend on).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define COMPSYN_ALLOC_HOOK 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define COMPSYN_ALLOC_HOOK 0
#else
#define COMPSYN_ALLOC_HOOK 1
#endif
#else
#define COMPSYN_ALLOC_HOOK 1
#endif

namespace compsyn {
namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

}  // namespace

MemSnapshot mem_snapshot() {
  MemSnapshot s;
  s.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  s.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  return s;
}

std::uint64_t peak_rss_bytes() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

namespace memstats_detail {

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  // operator new must never return nullptr for n == 0.
  return std::malloc(n != 0 ? n : 1);
}

}  // namespace memstats_detail
}  // namespace compsyn

#if COMPSYN_ALLOC_HOOK

void* operator new(std::size_t n) {
  void* p = compsyn::memstats_detail::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t n) {
  void* p = compsyn::memstats_detail::counted_alloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return compsyn::memstats_detail::counted_alloc(n);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return compsyn::memstats_detail::counted_alloc(n);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // COMPSYN_ALLOC_HOOK

#endif  // COMPSYN_TRACE
