// Allocation-count sampling and peak-RSS readings for per-phase resource
// attribution (obs/telemetry.hpp's PhaseScope).
//
// When COMPSYN_TRACE is on and the build is not sanitized, memstats.cpp
// replaces the global operator new/delete with thin counting wrappers (two
// relaxed atomic adds per allocation on top of malloc). Sanitizer builds
// keep the sanitizer's own allocator interposition -- alloc counts then read
// 0 and only the RSS figures are meaningful. The counters are always
// counting (they cost nothing to read), so a PhaseScope can snapshot deltas
// without a global enable step; whether anything is *reported* is still
// gated by telemetry_extended().
#pragma once

#include <cstdint>

#include "obs/obs.hpp"  // default COMPSYN_TRACE=1

namespace compsyn {

struct MemSnapshot {
  std::uint64_t alloc_count = 0;  // operator-new calls since process start
  std::uint64_t alloc_bytes = 0;  // bytes requested since process start
};

#if COMPSYN_TRACE

/// Current allocation totals (0/0 when the counting allocator is not
/// installed, e.g. sanitizer builds).
MemSnapshot mem_snapshot();

/// Process peak resident set size in bytes (getrusage ru_maxrss; 0 when the
/// platform does not report it). Monotonic over the process lifetime.
std::uint64_t peak_rss_bytes();

#else  // COMPSYN_TRACE == 0

inline MemSnapshot mem_snapshot() { return {}; }
inline std::uint64_t peak_rss_bytes() { return 0; }

#endif

}  // namespace compsyn
