// Observability runtime switch shared by the tracer and the counters.
//
// Two layers of gating keep instrumentation out of the way:
//  * compile time: building with -DCOMPSYN_TRACE=0 turns every Trace/Counters
//    call into an empty inline stub (nothing is compiled in);
//  * run time: even when compiled in, instrumentation is OFF by default and
//    costs one relaxed atomic load per call site until obs_set_enabled(true)
//    is called (the bench harnesses enable it for --report / --trace runs).
//
// Neither layer ever changes the observable behaviour of the algorithms:
// instrumentation only reads clocks and bumps counters.
#pragma once

#include <atomic>

#ifndef COMPSYN_TRACE
#define COMPSYN_TRACE 1
#endif

namespace compsyn {

#if COMPSYN_TRACE

namespace obs_detail {
extern std::atomic<bool> g_enabled;
}  // namespace obs_detail

/// True when instrumentation is recording (runtime flag, default off).
inline bool obs_enabled() {
  return obs_detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns span/counter recording on or off globally.
inline void obs_set_enabled(bool on) {
  obs_detail::g_enabled.store(on, std::memory_order_relaxed);
}

#else  // COMPSYN_TRACE == 0: everything compiles away.

constexpr bool obs_enabled() { return false; }
inline void obs_set_enabled(bool) {}

#endif

}  // namespace compsyn
