#include "obs/report.hpp"

#include <fstream>
#include <ostream>

#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/memstats.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace compsyn {
namespace {

Json spans_json() {
  Json arr = Json::array();
  for (const SpanStats& s : Trace::snapshot()) {
    Json o = Json::object();
    o.set("label", s.label);
    o.set("count", s.count);
    o.set("total_ns", s.total_ns);
    o.set("self_ns", s.self_ns);
    o.set("min_ns", s.min_ns);
    o.set("max_ns", s.max_ns);
    arr.push(std::move(o));
  }
  return arr;
}

Json counters_json() {
  Json o = Json::object();
  for (const CounterStat& c : Counters::counters()) o.set(c.name, c.value);
  return o;
}

Json distributions_json() {
  Json arr = Json::array();
  for (const DistStat& d : Counters::distributions()) {
    Json o = Json::object();
    o.set("name", d.name);
    o.set("count", d.count);
    o.set("sum", d.sum);
    o.set("min", d.min);
    o.set("max", d.max);
    arr.push(std::move(o));
  }
  return arr;
}

Json histograms_json() {
  Json arr = Json::array();
  for (const HistStat& h : Histogram::snapshot()) {
    Json o = Json::object();
    o.set("name", h.name);
    o.set("count", h.count);
    o.set("sum_ns", h.sum_ns);
    // Trailing-zero buckets are elided; the layout is fixed (power-of-two
    // ns ranges, bucket k = [2^k, 2^(k+1)) ns), so indices alone identify
    // the ranges.
    std::size_t last = h.buckets.size();
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    Json buckets = Json::array();
    for (std::size_t k = 0; k < last; ++k) buckets.push(h.buckets[k]);
    o.set("buckets", std::move(buckets));
    arr.push(std::move(o));
  }
  return arr;
}

Json phases_json() {
  Json arr = Json::array();
  for (const PhaseStat& p : telemetry_phases()) {
    Json o = Json::object();
    o.set("name", p.name);
    o.set("wall_ns", p.wall_ns);
    o.set("alloc_count", p.alloc_count);
    o.set("alloc_bytes", p.alloc_bytes);
    o.set("peak_rss_bytes", p.peak_rss_bytes);
    arr.push(std::move(o));
  }
  return arr;
}

Json hot_cones_json() {
  Json arr = Json::array();
  for (const HotCone& c : telemetry_hot_cones()) {
    Json o = Json::object();
    o.set("root", c.root);
    o.set("total_ns", c.total_ns);
    o.set("cones", c.cones);
    arr.push(std::move(o));
  }
  return arr;
}

}  // namespace

RunReport::RunReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

void RunReport::set_meta(std::string key, Json value) {
  meta_.set(std::move(key), std::move(value));
}

void RunReport::add_table(std::string label, const Table& t) {
  Json headers = Json::array();
  for (const std::string& h : t.headers()) headers.push(h);
  Json rows = Json::array();
  for (const auto& r : t.rows()) {
    Json row = Json::object();
    for (std::size_t c = 0; c < t.headers().size(); ++c) {
      row.set(t.headers()[c], c < r.size() ? Json(r[c]) : Json());
    }
    rows.push(std::move(row));
  }
  Json table = Json::object();
  table.set("headers", std::move(headers));
  table.set("rows", std::move(rows));
  tables_.emplace_back(std::move(label), std::move(table));
}

void RunReport::add_record(std::string section, Json record) {
  for (auto& [name, arr] : sections_) {
    if (name == section) {
      arr.push(std::move(record));
      return;
    }
  }
  Json arr = Json::array();
  arr.push(std::move(record));
  sections_.emplace_back(std::move(section), std::move(arr));
}

Json RunReport::to_json() const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  Json doc = Json::object();
  doc.set("name", name_);
  doc.set("meta", meta_);
  doc.set("wall_seconds", wall);
  doc.set("spans", spans_json());
  doc.set("counters", counters_json());
  doc.set("distributions", distributions_json());
  // Extended-telemetry sections appear ONLY when one of the telemetry flags
  // was passed: reports from plain --report runs stay byte-identical (the
  // golden-reference tests depend on it).
  if (telemetry_extended()) {
    doc.set("histograms", histograms_json());
    doc.set("phases", phases_json());
    doc.set("hot_cones", hot_cones_json());
    doc.set("peak_rss_bytes", peak_rss_bytes());
  }
  Json tables = Json::object();
  for (const auto& [label, t] : tables_) tables.set(label, t);
  doc.set("tables", std::move(tables));
  for (const auto& [section, arr] : sections_) doc.set(section, arr);
  return doc;
}

void RunReport::write_jsonl(std::ostream& os) const {
  const Json doc = to_json();
  auto emit = [&os](const char* type, Json payload) {
    Json line = Json::object();
    line.set("type", type);
    for (auto& [k, v] : payload.items()) line.set(k, v);
    line.write(os, 0);
    os << '\n';
  };
  {
    Json head = Json::object();
    head.set("name", *doc.find("name"));
    head.set("meta", *doc.find("meta"));
    head.set("wall_seconds", *doc.find("wall_seconds"));
    emit("run", std::move(head));
  }
  for (std::size_t i = 0; i < doc.find("spans")->size(); ++i) {
    emit("span", doc.find("spans")->at(i));
  }
  {
    Json c = Json::object();
    c.set("counters", *doc.find("counters"));
    emit("counters", std::move(c));
  }
  for (std::size_t i = 0; i < doc.find("distributions")->size(); ++i) {
    emit("distribution", doc.find("distributions")->at(i));
  }
  for (const auto& [label, table] : tables_) {
    const Json* rows = table.find("rows");
    for (std::size_t i = 0; i < rows->size(); ++i) {
      Json r = Json::object();
      r.set("table", label);
      r.set("row", rows->at(i));
      emit("row", std::move(r));
    }
  }
  for (const auto& [section, arr] : sections_) {
    for (std::size_t i = 0; i < arr.size(); ++i) {
      Json r = Json::object();
      r.set("section", section);
      r.set("record", arr.at(i));
      emit("record", std::move(r));
    }
  }
}

bool RunReport::write(const std::string& path, std::string* error) const {
  std::ofstream os(path);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  if (path.size() > 6 && path.substr(path.size() - 6) == ".jsonl") {
    write_jsonl(os);
  } else {
    to_json().write(os, 2);
    os << '\n';
  }
  os.flush();
  if (!os) {
    if (error != nullptr) *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

void RunReport::print_summary(std::ostream& os) const {
  os << "== " << name_ << ": span summary ==\n";
  Trace::print_summary(os);
  os << "\n== " << name_ << ": counters ==\n";
  Counters::print_summary(os);
}

}  // namespace compsyn
