// Machine-readable run reports: one RunReport per bench/example invocation
// collects run metadata, the plain-text tables as structured records, and a
// snapshot of every span and counter, then writes a single JSON document
// (or JSONL, one record per line, when the path ends in ".jsonl").
//
// The report layer is always compiled in -- it is the explicit, user-facing
// sink behind --report=<file>; only the Trace/Counters snapshots it embeds
// are subject to the COMPSYN_TRACE / runtime gating (they come out empty when
// instrumentation is off).
#pragma once

#include <chrono>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace compsyn {

class Table;

class RunReport {
 public:
  /// `name` identifies the producing binary ("table2_proc2", ...). Wall time
  /// is measured from construction to to_json()/write().
  explicit RunReport(std::string name);

  const std::string& name() const { return name_; }

  /// Run metadata (seed, K, circuit list, flag values, ...).
  void set_meta(std::string key, Json value);

  /// Captures a printed table as structured rows: each row becomes an object
  /// mapping column header to cell text.
  void add_table(std::string label, const Table& t);

  /// Appends a free-form record to a named section (e.g. per-circuit stats).
  void add_record(std::string section, Json record);

  /// The full document: name, meta, wall_seconds, spans, counters,
  /// distributions, tables, and every record section.
  Json to_json() const;

  /// Writes to_json() to `path` (pretty JSON; JSONL when the extension is
  /// ".jsonl"). Returns false and fills *error on I/O failure.
  bool write(const std::string& path, std::string* error = nullptr) const;

  /// JSONL form: one {"type": ...} record per line.
  void write_jsonl(std::ostream& os) const;

  /// Human-readable sink: span and counter summary tables.
  void print_summary(std::ostream& os) const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  Json meta_ = Json::object();
  std::vector<std::pair<std::string, Json>> tables_;    // label -> {headers, rows}
  std::vector<std::pair<std::string, Json>> sections_;  // section -> array
};

}  // namespace compsyn
