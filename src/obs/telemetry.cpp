#include "obs/telemetry.hpp"

#if COMPSYN_TRACE

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/memstats.hpp"

namespace compsyn {
namespace {

std::atomic<bool> g_extended{false};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ConeData {
  std::uint64_t total_ns = 0;
  std::uint64_t cones = 0;
};

struct TelemetryState {
  std::mutex mu;
  std::vector<PhaseStat> phases;
  std::map<std::string, ConeData, std::less<>> cones;
  // --progress heartbeat (stderr). interval_ns == 0 means disabled.
  std::string progress_name;
  std::uint64_t progress_interval_ns = 0;
  std::uint64_t progress_epoch_ns = 0;
  std::uint64_t progress_last_ns = 0;
};

TelemetryState& state() {
  static TelemetryState s;
  return s;
}

}  // namespace

bool telemetry_extended() {
  return g_extended.load(std::memory_order_relaxed);
}

void telemetry_set_extended(bool on) {
  g_extended.store(on, std::memory_order_relaxed);
  if (on) obs_set_enabled(true);
}

void telemetry_set_progress(std::string name, double interval_seconds) {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (interval_seconds <= 0) {
    s.progress_interval_ns = 0;
    return;
  }
  s.progress_name = std::move(name);
  s.progress_interval_ns =
      static_cast<std::uint64_t>(interval_seconds * 1e9);
  s.progress_epoch_ns = steady_ns();
  s.progress_last_ns = 0;  // first tick prints immediately
}

void telemetry_progress(std::string_view phase, std::uint64_t done,
                        std::uint64_t total) {
  if (!telemetry_extended()) return;

  // Event-log record at a fixed work stride (plus the final tick), so the
  // progress sequence is a function of the work, not of --jobs or timing.
  if (EventLog::active() &&
      (done % kProgressStride == 0 || done == total)) {
    EventLog::progress(phase, done, total);
  }

  // Stderr heartbeat, time-gated; stdout is never touched.
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.progress_interval_ns == 0) return;
  std::uint64_t now = steady_ns();
  if (s.progress_last_ns != 0 &&
      now - s.progress_last_ns < s.progress_interval_ns) {
    return;
  }
  s.progress_last_ns = now;
  double elapsed_s =
      static_cast<double>(now - s.progress_epoch_ns) / 1e9;
  std::fprintf(stderr, "[%s] %.*s %llu/%llu (%.1fs)\n",
               s.progress_name.c_str(), static_cast<int>(phase.size()),
               phase.data(), static_cast<unsigned long long>(done),
               static_cast<unsigned long long>(total), elapsed_s);
  std::fflush(stderr);
  if (EventLog::active()) {
    EventLog::heartbeat(phase, elapsed_s);
  }
}

void telemetry_note_cone(std::string_view root, std::uint64_t ns,
                         std::uint64_t cones) {
  if (!telemetry_extended()) return;
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.cones.find(root);
  if (it == s.cones.end()) {
    it = s.cones.emplace(std::string(root), ConeData{}).first;
  }
  it->second.total_ns += ns;
  it->second.cones += cones;
}

std::vector<HotCone> telemetry_hot_cones(std::size_t top) {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<HotCone> all;
  all.reserve(s.cones.size());
  for (const auto& [root, d] : s.cones) {
    all.push_back(HotCone{root, d.total_ns, d.cones});
  }
  // Hottest first; the map iteration order already breaks ns ties by name.
  std::stable_sort(all.begin(), all.end(),
                   [](const HotCone& a, const HotCone& b) {
                     return a.total_ns > b.total_ns;
                   });
  if (all.size() > top) all.resize(top);
  return all;
}

std::vector<PhaseStat> telemetry_phases() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.phases;
}

void telemetry_reset() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.phases.clear();
  s.cones.clear();
  s.progress_name.clear();
  s.progress_interval_ns = 0;
  s.progress_epoch_ns = 0;
  s.progress_last_ns = 0;
}

PhaseScope::PhaseScope(std::string name)
    : name_(std::move(name)), active_(telemetry_extended()) {
  if (!active_) return;
  start_ns_ = steady_ns();
  MemSnapshot m = mem_snapshot();
  alloc_count0_ = m.alloc_count;
  alloc_bytes0_ = m.alloc_bytes;
  chrome_ = ChromeTrace::begin(name_);
  EventLog::phase(name_, /*begin=*/true);
}

PhaseScope::~PhaseScope() {
  if (!active_) return;
  std::uint64_t wall_ns = steady_ns() - start_ns_;
  MemSnapshot m = mem_snapshot();
  PhaseStat stat;
  stat.name = name_;
  stat.wall_ns = wall_ns;
  stat.alloc_count = m.alloc_count - alloc_count0_;
  stat.alloc_bytes = m.alloc_bytes - alloc_bytes0_;
  stat.peak_rss_bytes = peak_rss_bytes();
  {
    TelemetryState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.phases.push_back(std::move(stat));
  }
  EventLog::phase(name_, /*begin=*/false);
  if (chrome_) ChromeTrace::end();
}

}  // namespace compsyn

#endif  // COMPSYN_TRACE
