// Second-generation telemetry switchboard (DESIGN.md §12).
//
// PR 1's spans/counters answer "where did the time go, on aggregate". This
// layer adds the profile-grade views on top -- all default-off, all gated
// behind the *extended* flag so that runs without the new CLI flags keep
// byte-identical stdout and (masked) reports:
//
//  * telemetry_extended()  -- master gate, set when any of --trace-out,
//    --events or --progress is passed. Guards every new report section
//    (histograms, phases, hot cones) and every new sample point.
//  * PhaseScope            -- top-level phase attribution: wall time plus
//    allocation-count/byte deltas (obs/memstats) and peak RSS, recorded per
//    named phase and emitted in the report's "phases" section, the Chrome
//    trace, and the event log.
//  * telemetry_progress()  -- deterministic commit-point progress ticks from
//    the engines (resynthesis root sweep, redundancy-removal windows). Feeds
//    the --events log at a fixed work stride (jobs-invariant sequence) and
//    the --progress stderr heartbeat (time-gated one-liner; stderr only, so
//    stdout stays untouched).
//  * hot-cone registry     -- per-root evaluation time keyed by the root
//    gate's name, so the report can point at the cones that dominate a run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace compsyn {

class Json;

/// Per-phase resource attribution (one entry per completed PhaseScope).
struct PhaseStat {
  std::string name;
  std::uint64_t wall_ns = 0;
  std::uint64_t alloc_count = 0;   // operator-new calls during the phase
  std::uint64_t alloc_bytes = 0;   // bytes requested during the phase
  std::uint64_t peak_rss_bytes = 0;  // process high-water mark at phase end
};

/// One hot resynthesis root: total candidate-evaluation time attributed to
/// the root gate's name.
struct HotCone {
  std::string root;
  std::uint64_t total_ns = 0;
  std::uint64_t cones = 0;  // cones evaluated under this root
};

#if COMPSYN_TRACE

/// True when extended telemetry is recording (single relaxed load).
bool telemetry_extended();

/// Turns extended telemetry on or off. Implies obs_set_enabled(true) when
/// turned on (the extended layer builds on spans/counters).
void telemetry_set_extended(bool on);

/// Enables the stderr progress heartbeat with the given minimum interval in
/// seconds (<= 0 disables). `name` prefixes each line ("[resynth_flow] ...").
void telemetry_set_progress(std::string name, double interval_seconds);

/// Deterministic commit-point progress tick. `phase` names the sweep,
/// `done`/`total` its position. Emits an event-log progress record every
/// `kProgressStride` ticks (plus the final one) and, when --progress is
/// active and the interval elapsed, one stderr heartbeat line.
void telemetry_progress(std::string_view phase, std::uint64_t done,
                        std::uint64_t total);

/// Work stride between event-log progress records (fixed, jobs-invariant).
inline constexpr std::uint64_t kProgressStride = 16;

/// Attributes `ns` of candidate-evaluation time to the resynthesis root
/// named `root` (no-op unless telemetry_extended()).
void telemetry_note_cone(std::string_view root, std::uint64_t ns,
                         std::uint64_t cones);

/// The `top` hottest roots by total ns (ties broken by name).
std::vector<HotCone> telemetry_hot_cones(std::size_t top = 10);

/// Completed phases, in completion order.
std::vector<PhaseStat> telemetry_phases();

/// Drops phases, hot cones, and progress state. Test helper.
void telemetry_reset();

/// RAII top-level phase: spans the Chrome trace, emits event-log phase
/// begin/end records, and attributes wall time / allocations / peak RSS to
/// `name`. Inert unless telemetry_extended() was on at construction.
class PhaseScope {
 public:
  explicit PhaseScope(std::string name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  std::string name_;
  bool active_ = false;
  bool chrome_ = false;  // our ChromeTrace::begin() recorded; end() in dtor
  std::uint64_t start_ns_ = 0;
  std::uint64_t alloc_count0_ = 0;
  std::uint64_t alloc_bytes0_ = 0;
};

#else  // COMPSYN_TRACE == 0

constexpr bool telemetry_extended() { return false; }
inline void telemetry_set_extended(bool) {}
inline void telemetry_set_progress(std::string, double) {}
inline void telemetry_progress(std::string_view, std::uint64_t, std::uint64_t) {}
inline constexpr std::uint64_t kProgressStride = 16;
inline void telemetry_note_cone(std::string_view, std::uint64_t, std::uint64_t) {}
inline std::vector<HotCone> telemetry_hot_cones(std::size_t = 10) { return {}; }
inline std::vector<PhaseStat> telemetry_phases() { return {}; }
inline void telemetry_reset() {}

class PhaseScope {
 public:
  explicit PhaseScope(std::string) {}
  ~PhaseScope() {}
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
};

#endif

}  // namespace compsyn
