#include "obs/trace.hpp"

#if COMPSYN_TRACE

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <mutex>
#include <ostream>

#include "obs/chrome_trace.hpp"
#include "obs/domain.hpp"
#include "util/table.hpp"

namespace compsyn {

namespace obs_detail {
std::atomic<bool> g_enabled{false};
}  // namespace obs_detail

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t min_ns = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ns = 0;
};

struct Registry {
  std::mutex mu;
  // transparent comparator: lookup by string_view without allocating
  std::map<std::string, std::uint32_t, std::less<>> slots;
  std::vector<const std::string*> labels;  // slot -> label (stable map keys)
  std::vector<Agg> aggs;

  std::uint32_t slot_for(std::string_view label) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = slots.find(label);
    if (it != slots.end()) return it->second;
    const auto slot = static_cast<std::uint32_t>(aggs.size());
    auto [pos, inserted] = slots.emplace(std::string(label), slot);
    labels.push_back(&pos->first);
    aggs.emplace_back();
    return slot;
  }

  void record(std::uint32_t slot, std::uint64_t total, std::uint64_t self) {
    std::lock_guard<std::mutex> lock(mu);
    Agg& a = aggs[slot];
    ++a.count;
    a.total_ns += total;
    a.self_ns += self;
    a.min_ns = std::min(a.min_ns, total);
    a.max_ns = std::max(a.max_ns, total);
  }
};

// The calling thread's registry: lives in the bound obs domain (default
// domain for one-shot binaries, which is leaked -- spans may end at exit
// time).
Registry& registry() {
  return *static_cast<Registry*>(obs_current_domain().get_or_create(
      kObsSlotTrace, [] { return static_cast<void*>(new Registry()); },
      [](void* p) { delete static_cast<Registry*>(p); }));
}

thread_local Trace::Span* t_current = nullptr;

}  // namespace

Trace::Span::Span(void* registry, std::uint32_t slot, bool chrome)
    : registry_(registry), slot_(slot), chrome_(chrome) {
  if (slot_ == kInert) return;
  parent_ = t_current;
  t_current = this;
  start_ns_ = now_ns();
}

Trace::Span::~Span() {
  if (slot_ == kInert) return;
  const std::uint64_t end = now_ns();
  const std::uint64_t total = end >= start_ns_ ? end - start_ns_ : 0;
  t_current = parent_;
  if (parent_ != nullptr) parent_->child_ns_ += total;
  const std::uint64_t self = total >= child_ns_ ? total - child_ns_ : 0;
  // Record into the registry the span *started* in: the slot index is
  // only meaningful there, and a domain rebind mid-span must not leak
  // the measurement into a neighbouring domain.
  static_cast<Registry*>(registry_)->record(slot_, total, self);
  if (chrome_) ChromeTrace::end();
}

Trace::Span Trace::span(std::string_view label) {
  if (!obs_enabled()) return Span(nullptr, Span::kInert);
  // Mirror the span into the Chrome trace here, where the label is at hand;
  // the matching E is emitted by the destructor. The flag is latched into the
  // span so an enable()/disable between entry and exit cannot unbalance the
  // B/E stack.
  const bool chrome = ChromeTrace::begin(label);
  Registry& r = registry();
  return Span(&r, r.slot_for(label), chrome);
}

std::vector<SpanStats> Trace::snapshot() {
  Registry& r = registry();
  std::vector<SpanStats> out;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    out.reserve(r.aggs.size());
    for (std::uint32_t s = 0; s < r.aggs.size(); ++s) {
      const Agg& a = r.aggs[s];
      if (a.count == 0) continue;
      SpanStats st;
      st.label = *r.labels[s];
      st.count = a.count;
      st.total_ns = a.total_ns;
      st.self_ns = a.self_ns;
      st.min_ns = a.min_ns;
      st.max_ns = a.max_ns;
      out.push_back(std::move(st));
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.label < b.label;
  });
  return out;
}

void Trace::reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.slots.clear();
  r.labels.clear();
  r.aggs.clear();
}

void Trace::print_summary(std::ostream& os) {
  const auto spans = snapshot();
  if (spans.empty()) {
    os << "(no spans recorded)\n";
    return;
  }
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  Table t({"span", "calls", "total ms", "self ms", "min ms", "max ms"});
  for (const SpanStats& s : spans) {
    t.row()
        .add(s.label)
        .add(s.count)
        .add(ms(s.total_ns), 3)
        .add(ms(s.self_ns), 3)
        .add(ms(s.min_ns), 3)
        .add(ms(s.max_ns), 3);
  }
  t.print(os);
}

}  // namespace compsyn

#endif  // COMPSYN_TRACE
