// Scoped-span tracer: monotonic-clock timing with nesting-aware self time
// and a thread-safe global registry aggregated per label.
//
//   {
//     auto s = Trace::span("resynth.pass");
//     ...work...
//   }  // elapsed time recorded on scope exit
//
// Per label the registry keeps call count, total time, self time (total minus
// the time spent in child spans started while this one was active on the same
// thread), and min/max per-call duration. Spans are cheap: one label lookup
// and two clock reads when enabled, a single relaxed atomic load when not
// (see obs.hpp for the gating contract).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"

namespace compsyn {

/// Aggregated statistics for one span label.
struct SpanStats {
  std::string label;
  std::uint64_t count = 0;     // completed spans
  std::uint64_t total_ns = 0;  // wall time, children included
  std::uint64_t self_ns = 0;   // wall time minus same-thread child spans
  std::uint64_t min_ns = 0;    // fastest single span
  std::uint64_t max_ns = 0;    // slowest single span
};

#if COMPSYN_TRACE

class Trace {
 public:
  /// RAII span; records on destruction. Not copyable or movable -- keep it in
  /// a local variable for the duration of the scope being measured.
  class Span {
   public:
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

   private:
    friend class Trace;
    explicit Span(void* registry, std::uint32_t slot, bool chrome = false);

    static constexpr std::uint32_t kInert = ~0u;
    void* registry_ = nullptr;  // registry of the domain the span started in
    std::uint32_t slot_;
    bool chrome_ = false;  // emitted a ChromeTrace begin; end on destruction
    std::uint64_t start_ns_ = 0;
    std::uint64_t child_ns_ = 0;  // accumulated by direct children
    Span* parent_ = nullptr;
  };

  /// Starts a span; inert (two loads, no clock read) when recording is off.
  [[nodiscard]] static Span span(std::string_view label);

  /// Snapshot of every label seen so far, sorted by descending total time.
  static std::vector<SpanStats> snapshot();

  /// Drops all aggregates (labels are forgotten too). Test helper.
  static void reset();

  /// Human-readable aggregate table (label, calls, total/self ms, min/max).
  static void print_summary(std::ostream& os);
};

#else  // COMPSYN_TRACE == 0

class Trace {
 public:
  class Span {
   public:
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    // Non-trivial so `auto s = Trace::span(...)` never trips
    // -Wunused-variable in the compiled-out configuration.
    ~Span() {}

   private:
    friend class Trace;
    Span() = default;
  };

  [[nodiscard]] static Span span(std::string_view) { return Span(); }
  static std::vector<SpanStats> snapshot() { return {}; }
  static void reset() {}
  static void print_summary(std::ostream&) {}
};

#endif

}  // namespace compsyn
