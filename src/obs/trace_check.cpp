#include "obs/trace_check.hpp"

#include <map>
#include <set>
#include <utility>

#include "obs/json.hpp"

namespace compsyn {
namespace {

bool is_number(const Json* j) {
  if (j == nullptr) return false;
  switch (j->type()) {
    case Json::Type::Int:
    case Json::Type::Uint:
    case Json::Type::Double:
      return true;
    default:
      return false;
  }
}

struct OpenSpan {
  std::string name;
  double ts = 0;
};

void fail(TraceCheckResult& r, std::size_t index, std::string msg) {
  r.errors.push_back("event " + std::to_string(index) + ": " + std::move(msg));
}

}  // namespace

TraceCheckResult check_chrome_trace(std::string_view text) {
  TraceCheckResult r;
  std::string parse_error;
  std::optional<Json> doc = Json::parse(text, &parse_error);
  if (!doc.has_value()) {
    r.errors.push_back("not valid JSON: " + parse_error);
    return r;
  }
  if (!doc->is_object()) {
    r.errors.push_back("top level is not an object");
    return r;
  }
  const Json* events = doc->find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    r.errors.push_back("missing \"traceEvents\" array");
    return r;
  }

  using Track = std::pair<double, double>;  // (pid, tid)
  std::map<Track, std::vector<OpenSpan>> stacks;
  std::map<Track, double> last_ts;  // per-track B/E timestamp monotonicity
  std::set<Track> duration_tracks;

  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    r.events += 1;
    if (!e.is_object()) {
      fail(r, i, "not an object");
      continue;
    }

    const Json* name = e.find("name");
    if (name == nullptr || name->type() != Json::Type::String ||
        name->as_string().empty()) {
      fail(r, i, "missing or empty \"name\"");
      continue;
    }
    const Json* ph = e.find("ph");
    if (ph == nullptr || ph->type() != Json::Type::String ||
        ph->as_string().size() != 1) {
      fail(r, i, "missing \"ph\"");
      continue;
    }
    char phase = ph->as_string()[0];
    if (phase != 'B' && phase != 'E' && phase != 'i' && phase != 'C' &&
        phase != 'X' && phase != 'M') {
      fail(r, i, std::string("unknown ph \"") + phase + "\"");
      continue;
    }
    const Json* ts = e.find("ts");
    const Json* pid = e.find("pid");
    const Json* tid = e.find("tid");
    if (!is_number(ts)) {
      fail(r, i, "missing numeric \"ts\"");
      continue;
    }
    if (!is_number(pid) || !is_number(tid)) {
      fail(r, i, "missing numeric \"pid\"/\"tid\"");
      continue;
    }
    double ts_v = ts->as_double();
    if (ts_v < 0) {
      fail(r, i, "negative \"ts\"");
      continue;
    }
    Track track{pid->as_double(), tid->as_double()};

    switch (phase) {
      case 'B': {
        auto it = last_ts.find(track);
        if (it != last_ts.end() && ts_v < it->second) {
          fail(r, i, "\"ts\" goes backwards on its track");
        }
        last_ts[track] = ts_v;
        stacks[track].push_back(OpenSpan{name->as_string(), ts_v});
        duration_tracks.insert(track);
        break;
      }
      case 'E': {
        auto it = last_ts.find(track);
        if (it != last_ts.end() && ts_v < it->second) {
          fail(r, i, "\"ts\" goes backwards on its track");
        }
        last_ts[track] = ts_v;
        std::vector<OpenSpan>& stack = stacks[track];
        if (stack.empty()) {
          fail(r, i, "E \"" + name->as_string() + "\" with no open B");
          break;
        }
        if (stack.back().name != name->as_string()) {
          fail(r, i, "E \"" + name->as_string() +
                         "\" does not close innermost B \"" +
                         stack.back().name + "\"");
          break;
        }
        stack.pop_back();
        r.span_pairs += 1;
        duration_tracks.insert(track);
        break;
      }
      case 'X': {
        if (!is_number(e.find("dur"))) {
          fail(r, i, "X without numeric \"dur\"");
          break;
        }
        r.span_pairs += 1;
        duration_tracks.insert(track);
        break;
      }
      case 'i':
        r.instants += 1;
        break;
      case 'C': {
        const Json* args = e.find("args");
        bool has_series = false;
        if (args != nullptr && args->is_object()) {
          for (const auto& [key, value] : args->items()) {
            (void)key;
            if (is_number(&value)) has_series = true;
          }
        }
        if (!has_series) {
          fail(r, i, "C without a numeric series in \"args\"");
          break;
        }
        r.counter_samples += 1;
        break;
      }
      case 'M': {
        const Json* args = e.find("args");
        const Json* arg_name =
            args != nullptr ? args->find("name") : nullptr;
        if (arg_name == nullptr || arg_name->type() != Json::Type::String) {
          fail(r, i, "M without \"args\".\"name\"");
        }
        break;
      }
      default:
        break;
    }
  }

  for (const auto& [track, stack] : stacks) {
    for (const OpenSpan& open : stack) {
      r.errors.push_back("unclosed B \"" + open.name + "\" on track (" +
                         std::to_string(track.first) + ", " +
                         std::to_string(track.second) + ")");
    }
  }

  r.thread_tracks = duration_tracks.size();
  r.ok = r.errors.empty();
  return r;
}

}  // namespace compsyn
