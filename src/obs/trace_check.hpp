// Strict structural checker for Chrome trace-event JSON, used by the tests
// to validate --trace-out output without an external viewer. Deliberately
// pickier than Perfetto's importer: a trace that passes here loads there.
//
// Checked invariants:
//  * the document parses as JSON and is an object with a "traceEvents" array
//  * every event is an object with "name" (non-empty string), "ph" (one of
//    B E i C X M), "ts" (number), "pid" (number), "tid" (number)
//  * duration events nest: per (pid, tid) track, every E closes the most
//    recent open B with the same name, and no B is left open at the end
//  * "X" events carry a numeric "dur"; "C" events carry an "args" object
//    with at least one numeric series; "M" events carry "args"."name"
//  * timestamps are non-negative and, per track, Bs/Es are non-decreasing
//
// The checker is independent of COMPSYN_TRACE -- it is a pure function over
// text and also runs in trace-off builds (where it checks fixture strings).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace compsyn {

struct TraceCheckResult {
  bool ok = false;
  std::vector<std::string> errors;   // empty iff ok
  std::size_t events = 0;            // total events seen
  std::size_t span_pairs = 0;        // matched B/E pairs
  std::size_t instants = 0;          // "i" events
  std::size_t counter_samples = 0;   // "C" events
  std::size_t thread_tracks = 0;     // distinct (pid, tid) with B/E/X events
};

/// Validates `text` as a Chrome trace-event document.
TraceCheckResult check_chrome_trace(std::string_view text);

}  // namespace compsyn
