#include "paths/paths.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"

namespace compsyn {
namespace {

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;
  if (s < a || s > kPathCountSaturated) {
    throw std::overflow_error("path count exceeds 2^63");
  }
  return s;
}

/// Saturating variant: once either operand is saturated (or the sum would
/// be), the result pins to kPathCountSaturated and stays there.
std::uint64_t clamped_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  if (s < a || s > kPathCountSaturated) return kPathCountSaturated;
  return s;
}

bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::Const0 || t == GateType::Const1;
}

}  // namespace

PathCounts count_paths(const Netlist& nl) {
  const auto sp = Trace::span("paths.count");
  Counters::incr("paths.count_sweeps");
  PathCounts pc;
  pc.np.assign(nl.size(), 0);
  for (NodeId pi : nl.inputs()) {
    if (!nl.is_dead(pi)) pc.np[pi] = 1;
  }
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    if (is_source(nd.type)) continue;
    std::uint64_t sum = 0;
    for (NodeId f : nd.fanins) sum = checked_add(sum, pc.np[f]);
    pc.np[n] = sum;
  }
  pc.output_offsets.reserve(nl.outputs().size() + 1);
  std::uint64_t total = 0;
  for (NodeId o : nl.outputs()) {
    pc.output_offsets.push_back(total);
    total = checked_add(total, pc.np[o]);
  }
  pc.output_offsets.push_back(total);
  pc.total = total;
  return pc;
}

PathCounts count_paths_clamped(const Netlist& nl) {
  const auto sp = Trace::span("paths.count");
  Counters::incr("paths.count_sweeps");
  PathCounts pc;
  pc.np.assign(nl.size(), 0);
  for (NodeId pi : nl.inputs()) {
    if (!nl.is_dead(pi)) pc.np[pi] = 1;
  }
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    if (is_source(nd.type)) continue;
    std::uint64_t sum = 0;
    for (NodeId f : nd.fanins) sum = clamped_add(sum, pc.np[f]);
    pc.np[n] = sum;
  }
  pc.output_offsets.reserve(nl.outputs().size() + 1);
  std::uint64_t total = 0;
  for (NodeId o : nl.outputs()) {
    pc.output_offsets.push_back(total);
    total = clamped_add(total, pc.np[o]);
  }
  pc.output_offsets.push_back(total);
  pc.total = total;
  return pc;
}

std::string format_path_total(std::uint64_t total) {
  if (total >= kPathCountSaturated) return ">=2^63";
  return std::to_string(total);
}

namespace {

/// Emits paths ending at `n` (recursing towards inputs), appending the node
/// chain in output-to-input order into `rev`, flipping on emit.
void emit_paths(const Netlist& nl, const PathCounts& pc, NodeId n,
                std::uint64_t id_base, std::vector<NodeId>& rev,
                std::vector<Path>& out, std::size_t cap) {
  if (out.size() >= cap) return;
  rev.push_back(n);
  const Node& nd = nl.node(n);
  if (nd.type == GateType::Input) {
    Path p;
    p.nodes.assign(rev.rbegin(), rev.rend());
    p.id = id_base;
    out.push_back(std::move(p));
  } else {
    std::uint64_t off = 0;
    for (NodeId f : nd.fanins) {
      if (pc.np[f] != 0) emit_paths(nl, pc, f, id_base + off, rev, out, cap);
      off += pc.np[f];
      if (out.size() >= cap) break;
    }
  }
  rev.pop_back();
}

}  // namespace

std::vector<Path> enumerate_paths(const Netlist& nl, std::size_t cap) {
  const PathCounts pc = count_paths(nl);
  std::vector<Path> out;
  out.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(pc.total, cap)));
  std::vector<NodeId> rev;
  for (std::size_t k = 0; k < nl.outputs().size(); ++k) {
    if (out.size() >= cap) break;
    emit_paths(nl, pc, nl.outputs()[k], pc.output_offsets[k], rev, out, cap);
  }
  return out;
}

Path path_from_id(const Netlist& nl, const PathCounts& pc, std::uint64_t id) {
  assert(id < pc.total);
  // Find the output whose range contains id.
  const auto it = std::upper_bound(pc.output_offsets.begin(),
                                   pc.output_offsets.end(), id);
  const std::size_t k = static_cast<std::size_t>(it - pc.output_offsets.begin()) - 1;
  NodeId n = nl.outputs()[k];
  std::uint64_t rem = id - pc.output_offsets[k];
  std::vector<NodeId> rev{n};
  while (nl.node(n).type != GateType::Input) {
    const Node& nd = nl.node(n);
    NodeId chosen = kNoNode;
    for (NodeId f : nd.fanins) {
      if (rem < pc.np[f]) {
        chosen = f;
        break;
      }
      rem -= pc.np[f];
    }
    assert(chosen != kNoNode);
    n = chosen;
    rev.push_back(n);
  }
  Path p;
  p.nodes.assign(rev.rbegin(), rev.rend());
  p.id = id;
  return p;
}

}  // namespace compsyn
