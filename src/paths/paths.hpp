// Path accounting per Section 2 of the paper.
//
// Procedure 1: label every line g with N_p(g), the number of paths from the
// primary inputs to g (inputs get 1, a gate output gets the sum of its fanin
// labels, fanout branches inherit the stem label); the circuit's path count
// is the sum of the primary-output labels.
//
// On top of the labels we define a global path numbering used by the path
// delay fault machinery: paths are ordered lexicographically by (output
// index, fanin choice at each gate from the output downwards), so the paths
// terminating at output o occupy the contiguous id range
// [offset(o), offset(o) + N_p(o)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace compsyn {

/// Sentinel for a path total that overflowed the representable range: every
/// count at or above 2^63 saturates to exactly this value.
inline constexpr std::uint64_t kPathCountSaturated = 1ull << 63;

struct PathCounts {
  /// N_p label per node (stem label; branches inherit it). Dead nodes and
  /// constants get 0.
  std::vector<std::uint64_t> np;
  /// Sum of primary-output labels = number of physical paths.
  std::uint64_t total = 0;
  /// offsets[k] = first global path id of outputs()[k]; offsets.back() == total.
  std::vector<std::uint64_t> output_offsets;
};

/// Procedure 1 (overflow-checked; throws std::overflow_error if the path
/// count exceeds 2^63, far beyond anything the procedures are run on).
PathCounts count_paths(const Netlist& nl);

/// Procedure 1, saturating instead of throwing: any label or total that
/// would exceed 2^63 is clamped to kPathCountSaturated. Never throws, so
/// report/printing boundaries can label pathological circuits instead of
/// crashing. output_offsets are valid only while total < saturation.
PathCounts count_paths_clamped(const Netlist& nl);

/// Renders a (possibly saturated) path total for tables and reports:
/// ">=2^63" when saturated, the plain decimal number otherwise.
std::string format_path_total(std::uint64_t total);

/// A structural path: nodes from its origin (a primary input) to a primary
/// output, in input-to-output order.
struct Path {
  std::vector<NodeId> nodes;
  std::uint64_t id = 0;  // global id under the numbering above
};

/// Enumerates all paths (in global-id order) up to `cap` paths; returns
/// fewer only if the circuit has fewer. Intended for tests and for the
/// brute-force side of the delay-fault experiments.
std::vector<Path> enumerate_paths(const Netlist& nl, std::size_t cap = 1u << 20);

/// Reconstructs the path with the given global id (inverse of the numbering).
Path path_from_id(const Netlist& nl, const PathCounts& pc, std::uint64_t id);

}  // namespace compsyn
