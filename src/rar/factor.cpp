#include "rar/factor.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/cones.hpp"

namespace compsyn {

std::uint64_t FactorExpr::equiv_gates() const {
  if (kind == Literal) return 0;
  std::uint64_t total = args.size() - 1;
  for (const auto& a : args) total += a->equiv_gates();
  return total;
}

std::uint64_t FactorExpr::literal_occurrences() const {
  if (kind == Literal) return 1;
  std::uint64_t total = 0;
  for (const auto& a : args) total += a->literal_occurrences();
  return total;
}

namespace {

std::unique_ptr<FactorExpr> make_literal(unsigned var, bool positive) {
  auto e = std::make_unique<FactorExpr>();
  e->kind = FactorExpr::Literal;
  e->var = var;
  e->positive = positive;
  return e;
}

std::unique_ptr<FactorExpr> make_node(FactorExpr::Kind kind,
                                      std::vector<std::unique_ptr<FactorExpr>> args) {
  if (args.size() == 1) return std::move(args[0]);
  auto e = std::make_unique<FactorExpr>();
  e->kind = kind;
  e->args = std::move(args);
  return e;
}

std::unique_ptr<FactorExpr> cube_expr(const Cube& c, unsigned n) {
  std::vector<std::unique_ptr<FactorExpr>> lits;
  for (unsigned v = 0; v < n; ++v) {
    const std::uint32_t bit = 1u << (n - 1 - v);
    if (c.care & bit) lits.push_back(make_literal(v, (c.value & bit) != 0));
  }
  assert(!lits.empty());
  return make_node(FactorExpr::And, std::move(lits));
}

}  // namespace

std::unique_ptr<FactorExpr> quick_factor(const std::vector<Cube>& cover,
                                         unsigned n_vars) {
  assert(!cover.empty());
  if (cover.size() == 1) return cube_expr(cover[0], n_vars);

  // Most frequent literal across the cover.
  std::map<std::pair<unsigned, bool>, unsigned> freq;
  for (const Cube& c : cover) {
    for (unsigned v = 0; v < n_vars; ++v) {
      const std::uint32_t bit = 1u << (n_vars - 1 - v);
      if (c.care & bit) ++freq[{v, (c.value & bit) != 0}];
    }
  }
  std::pair<unsigned, bool> best{0, false};
  unsigned best_count = 0;
  for (const auto& [lit, count] : freq) {
    if (count > best_count) {
      best_count = count;
      best = lit;
    }
  }
  if (best_count <= 1) {
    // No sharing: a flat OR of cube ANDs.
    std::vector<std::unique_ptr<FactorExpr>> terms;
    for (const Cube& c : cover) terms.push_back(cube_expr(c, n_vars));
    return make_node(FactorExpr::Or, std::move(terms));
  }

  const std::uint32_t bit = 1u << (n_vars - 1 - best.first);
  std::vector<Cube> quotient, remainder;
  bool quotient_has_unit = false;  // a cube that was exactly the literal
  for (const Cube& c : cover) {
    if ((c.care & bit) && ((c.value & bit) != 0) == best.second) {
      Cube q = c;
      q.care &= ~bit;
      q.value &= ~bit;
      if (q.care == 0) quotient_has_unit = true;
      else quotient.push_back(q);
    } else {
      remainder.push_back(c);
    }
  }
  std::unique_ptr<FactorExpr> term;
  if (quotient_has_unit || quotient.empty()) {
    // l * (1 + q) == l  (or the degenerate l with empty quotient).
    term = make_literal(best.first, best.second);
  } else {
    std::vector<std::unique_ptr<FactorExpr>> parts;
    parts.push_back(make_literal(best.first, best.second));
    parts.push_back(quick_factor(quotient, n_vars));
    term = make_node(FactorExpr::And, std::move(parts));
  }
  if (remainder.empty()) return term;
  std::vector<std::unique_ptr<FactorExpr>> ors;
  ors.push_back(std::move(term));
  ors.push_back(quick_factor(remainder, n_vars));
  return make_node(FactorExpr::Or, std::move(ors));
}

namespace {

NodeId build_rec(Netlist& nl, const FactorExpr& e, const std::vector<NodeId>& vars,
                 std::map<NodeId, NodeId>& inverters) {
  if (e.kind == FactorExpr::Literal) {
    const NodeId v = vars[e.var];
    if (e.positive) return v;
    auto it = inverters.find(v);
    if (it == inverters.end()) {
      it = inverters.emplace(v, nl.add_gate(GateType::Not, {v})).first;
    }
    return it->second;
  }
  std::vector<NodeId> fi;
  fi.reserve(e.args.size());
  for (const auto& a : e.args) fi.push_back(build_rec(nl, *a, vars, inverters));
  return nl.add_gate(e.kind == FactorExpr::And ? GateType::And : GateType::Or, fi);
}

}  // namespace

NodeId build_factored(Netlist& nl, const FactorExpr& e,
                      const std::vector<NodeId>& vars) {
  std::map<NodeId, NodeId> inverters;
  return build_rec(nl, e, vars, inverters);
}

FactorConesStats factor_cones(Netlist& nl, const FactorConesOptions& opt) {
  FactorConesStats stats;
  stats.gates_before = nl.equivalent_gate_count();
  ConeOptions cone_opt;
  cone_opt.max_leaves = opt.k;
  cone_opt.max_cones = opt.max_cones;
  cone_opt.expand_slack = opt.cone_slack;

  for (unsigned pass = 0; pass < opt.max_passes; ++pass) {
    std::uint64_t replaced = 0;
    const std::vector<NodeId> order = nl.topo_order();  // snapshot
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId g = *it;
      if (nl.is_dead(g)) continue;
      const GateType t = nl.node(g).type;
      if (t == GateType::Input || t == GateType::Const0 || t == GateType::Const1) {
        continue;
      }
      // Best factored replacement over all cones at g.
      std::int64_t best_gain = 0;
      std::unique_ptr<FactorExpr> best_expr;
      std::vector<NodeId> best_leaves;
      bool best_const = false, best_const_val = false;
      for (const Cone& cone : enumerate_cones(nl, g, cone_opt)) {
        const TruthTable f = cone_function(nl, cone);
        std::vector<unsigned> kept;
        const TruthTable reduced = f.support_reduced(&kept);
        const std::int64_t removable =
            static_cast<std::int64_t>(removable_gate_count(nl, cone, nullptr));
        if (reduced.num_vars() == 0) {
          if (removable > best_gain) {
            best_gain = removable;
            best_expr.reset();
            best_const = true;
            best_const_val = reduced.get(0);
          }
          continue;
        }
        // Factor whichever polarity is cheaper; an output inverter is free
        // in the equivalent-gate metric but we only use the positive form
        // here to keep the rewrite simple.
        const auto cover = irredundant_cover(reduced);
        if (cover.empty()) continue;
        auto expr = quick_factor(cover, reduced.num_vars());
        const std::int64_t gain =
            removable - static_cast<std::int64_t>(expr->equiv_gates());
        if (gain > best_gain) {
          best_gain = gain;
          best_expr = std::move(expr);
          best_const = false;
          best_leaves.clear();
          for (unsigned v : kept) best_leaves.push_back(cone.leaves[v]);
        }
      }
      if (best_gain <= 0) continue;
      if (best_const) {
        nl.redefine(g, best_const_val ? GateType::Const1 : GateType::Const0, {});
      } else {
        const NodeId out = build_factored(nl, *best_expr, best_leaves);
        nl.redefine(g, GateType::Buf, {out});
      }
      ++replaced;
      nl.sweep();
    }
    stats.replacements += replaced;
    nl.simplify();
    if (replaced == 0) break;
  }
  stats.gates_after = nl.equivalent_gate_count();
  return stats;
}

}  // namespace compsyn
