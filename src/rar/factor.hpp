// Algebraic factoring (SIS-style "quick factor") and factored-form cone
// rewriting -- the area-optimization muscle of the RAMBO_C-era baseline.
//
// quick_factor recursively divides an SOP cover by its most frequent
// literal: f = l*q + r, factoring q and r in turn; the result is a
// multilevel AND/OR tree whose equivalent-gate count is usually close to
// what comparison units achieve on interval functions, but which works for
// ARBITRARY functions and typically carries more paths (one per literal
// occurrence in the factored form) -- the structural reason the paper's
// Table 3 baseline wins gates but loses paths.
//
// factor_cones sweeps the circuit like Procedure 2, but replaces each cone
// with the quick-factored form of its prime irredundant cover whenever that
// reduces the equivalent gate count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/two_level.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

/// A factored-form expression over variables 0..n-1.
struct FactorExpr {
  enum Kind { Literal, And, Or } kind = Literal;
  unsigned var = 0;       // for Literal
  bool positive = true;   // for Literal
  std::vector<std::unique_ptr<FactorExpr>> args;

  /// Equivalent 2-input gates of the expression tree (inverters free).
  std::uint64_t equiv_gates() const;
  /// Number of literal occurrences (= paths through the factored form).
  std::uint64_t literal_occurrences() const;
};

/// Quick-factors a cover (assumed non-constant). The cover's cubes must all
/// have at least one literal.
std::unique_ptr<FactorExpr> quick_factor(const std::vector<Cube>& cover,
                                         unsigned n_vars);

/// Builds the expression into a netlist over the given variable nodes.
NodeId build_factored(Netlist& nl, const FactorExpr& e,
                      const std::vector<NodeId>& vars);

struct FactorConesOptions {
  unsigned k = 6;                // cone input limit
  std::size_t max_cones = 2000;  // enumeration cap per root
  unsigned cone_slack = 3;
  unsigned max_passes = 8;
};

struct FactorConesStats {
  std::uint64_t replacements = 0;
  std::uint64_t gates_before = 0;
  std::uint64_t gates_after = 0;
};

/// Factored-form cone rewriting to a fixpoint (function preserved exactly).
FactorConesStats factor_cones(Netlist& nl, const FactorConesOptions& opt = {});

}  // namespace compsyn
