#include "rar/rar.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "atpg/redundancy.hpp"
#include "faults/fault.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "paths/paths.hpp"
#include "rar/factor.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

bool is_and_family(GateType t) { return t == GateType::And || t == GateType::Nand; }
bool is_or_family(GateType t) { return t == GateType::Or || t == GateType::Nor; }

/// Transitive fanout of n (including n), for cycle avoidance.
std::vector<char> transitive_fanout(const Netlist& nl, NodeId n) {
  std::vector<char> in_tfo(nl.size(), 0);
  std::vector<NodeId> stack{n};
  in_tfo[n] = 1;
  const auto& fanouts = nl.fanouts();
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    for (NodeId y : fanouts[x]) {
      if (!in_tfo[y]) {
        in_tfo[y] = 1;
        stack.push_back(y);
      }
    }
  }
  return in_tfo;
}

/// Gates within `depth` levels upstream of root (inclusive).
std::vector<NodeId> tfi_gates(const Netlist& nl, NodeId root, unsigned depth) {
  std::vector<NodeId> out;
  std::set<NodeId> seen{root};
  std::vector<std::pair<NodeId, unsigned>> stack{{root, 0}};
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    const Node& nd = nl.node(n);
    if (nd.type != GateType::Input && nd.type != GateType::Const0 &&
        nd.type != GateType::Const1) {
      out.push_back(n);
      if (d < depth) {
        for (NodeId f : nd.fanins) {
          if (seen.insert(f).second) stack.push_back({f, d + 1});
        }
      }
    }
  }
  return out;
}

}  // namespace

unsigned extract_common_pairs(Netlist& nl) {
  unsigned created = 0;
  for (bool and_family : {true, false}) {
    for (;;) {
      // Count unordered fanin pairs across all same-family gates with >= 3
      // inputs (pairs in 2-input gates cannot be profitably extracted).
      std::map<std::pair<NodeId, NodeId>, std::vector<NodeId>> occurrences;
      for (NodeId n = 0; n < nl.size(); ++n) {
        if (nl.is_dead(n)) continue;
        const Node& nd = nl.node(n);
        const bool family_match =
            and_family ? is_and_family(nd.type) : is_or_family(nd.type);
        if (!family_match || nd.fanins.size() < 3) continue;
        std::vector<NodeId> fi = nd.fanins;
        std::sort(fi.begin(), fi.end());
        fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
        for (std::size_t i = 0; i < fi.size(); ++i) {
          for (std::size_t j = i + 1; j < fi.size(); ++j) {
            occurrences[{fi[i], fi[j]}].push_back(n);
          }
        }
      }
      std::pair<NodeId, NodeId> best{kNoNode, kNoNode};
      std::size_t best_uses = 1;
      for (const auto& [pair, gates] : occurrences) {
        if (gates.size() > best_uses) {
          best_uses = gates.size();
          best = pair;
        }
      }
      if (best.first == kNoNode) break;

      const NodeId divisor = nl.add_gate(
          and_family ? GateType::And : GateType::Or, {best.first, best.second});
      ++created;
      for (NodeId g : occurrences[best]) {
        std::vector<NodeId> fi;
        for (NodeId f : nl.node(g).fanins) {
          if (f != best.first && f != best.second) fi.push_back(f);
        }
        fi.push_back(divisor);
        nl.redefine(g, nl.node(g).type, std::move(fi));
      }
    }
  }
  nl.simplify();
  return created;
}

std::uint64_t literal_count(const Netlist& nl) {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < nl.size(); ++n) {
    if (!nl.is_dead(n)) total += nl.node(n).fanins.size();
  }
  return total;
}

unsigned merge_duplicate_gates(Netlist& nl) {
  unsigned merged = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::tuple<GateType, std::vector<NodeId>>, NodeId> index;
    std::map<NodeId, NodeId> replace;
    for (NodeId n : nl.topo_order()) {
      const Node& nd = nl.node(n);
      if (nd.type == GateType::Input || nd.type == GateType::Const0 ||
          nd.type == GateType::Const1 || nd.is_output) {
        continue;
      }
      std::vector<NodeId> fi = nd.fanins;
      for (NodeId& f : fi) {
        auto it = replace.find(f);
        if (it != replace.end()) f = it->second;
      }
      std::sort(fi.begin(), fi.end());
      auto [it, inserted] = index.try_emplace({nd.type, fi}, n);
      if (!inserted) replace[n] = it->second;
    }
    if (!replace.empty()) {
      changed = true;
      merged += static_cast<unsigned>(replace.size());
      for (NodeId n = 0; n < nl.size(); ++n) {
        if (nl.is_dead(n)) continue;
        std::vector<NodeId> fi = nl.node(n).fanins;
        bool touched = false;
        for (NodeId& f : fi) {
          auto it = replace.find(f);
          if (it != replace.end()) {
            f = it->second;
            touched = true;
          }
        }
        if (touched) nl.redefine(n, nl.node(n).type, std::move(fi));
      }
      nl.sweep();
    }
  }
  return merged;
}

unsigned resubstitute_divisors(Netlist& nl) {
  unsigned rewrites = 0;
  for (bool and_family : {true, false}) {
    bool changed = true;
    while (changed) {
      changed = false;
      // Divisors: plain AND (resp. OR) gates, by their sorted fanin set.
      std::vector<std::pair<std::vector<NodeId>, NodeId>> divisors;
      const GateType base = and_family ? GateType::And : GateType::Or;
      for (NodeId n = 0; n < nl.size(); ++n) {
        if (nl.is_dead(n) || nl.node(n).type != base) continue;
        std::vector<NodeId> fi = nl.node(n).fanins;
        std::sort(fi.begin(), fi.end());
        fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
        if (fi.size() >= 2) divisors.push_back({std::move(fi), n});
      }
      for (NodeId g = 0; g < nl.size() && !changed; ++g) {
        if (nl.is_dead(g)) continue;
        const Node& nd = nl.node(g);
        const bool family_match =
            and_family ? is_and_family(nd.type) : is_or_family(nd.type);
        if (!family_match || nd.fanins.size() < 3) continue;
        std::vector<NodeId> fi = nd.fanins;
        std::sort(fi.begin(), fi.end());
        fi.erase(std::unique(fi.begin(), fi.end()), fi.end());
        for (const auto& [dfi, d] : divisors) {
          if (d == g || dfi.size() >= fi.size()) continue;
          if (!std::includes(fi.begin(), fi.end(), dfi.begin(), dfi.end())) continue;
          std::vector<NodeId> rest;
          std::set_difference(fi.begin(), fi.end(), dfi.begin(), dfi.end(),
                              std::back_inserter(rest));
          rest.push_back(d);
          nl.redefine(g, nd.type, std::move(rest));
          ++rewrites;
          changed = true;
          break;
        }
      }
      nl.sweep();
    }
  }
  return rewrites;
}

RarStats rar_optimize(Netlist& nl, const RarOptions& opt) {
  const auto whole = Trace::span("rar.optimize");
  RarStats stats;
  stats.gates_before = nl.equivalent_gate_count();
  stats.paths_before = count_paths(nl).total;
  Rng rng(opt.seed);
  std::uint64_t connections_tried = 0;

  if (opt.run_redundancy_removal) {
    const auto sp = Trace::span("rar.redundancy_removal");
    RedundancyRemovalOptions rr;
    rr.atpg = opt.atpg;
    remove_redundancies(nl, rr);
  }
  if (opt.run_extraction) {
    const auto sp = Trace::span("rar.extraction");
    merge_duplicate_gates(nl);
    stats.extracted = extract_common_pairs(nl);
    resubstitute_divisors(nl);
    merge_duplicate_gates(nl);
    nl.simplify();
  }
  if (opt.run_factoring) {
    const auto sp = Trace::span("rar.factoring");
    factor_cones(nl);
    if (opt.run_extraction) {
      merge_duplicate_gates(nl);
      resubstitute_divisors(nl);
      nl.simplify();
    }
  }

  if (opt.run_addition_removal) {
    const auto sp = Trace::span("rar.addition_removal");
    // Snapshot of candidate destinations (new gates created later by
    // accepted transactions are not revisited; one sweep is the budget).
    std::vector<NodeId> destinations;
    for (NodeId n = 0; n < nl.size(); ++n) {
      if (!nl.is_dead(n) && has_controlling_value(nl.node(n).type) &&
          nl.node(n).fanins.size() < opt.max_gate_arity) {
        destinations.push_back(n);
      }
    }
    rng.shuffle(destinations);

    for (NodeId gd : destinations) {
      if (stats.additions >= opt.max_adds) break;
      if (nl.is_dead(gd)) continue;
      const Node& gd_node = nl.node(gd);
      if (!has_controlling_value(gd_node.type) ||
          gd_node.fanins.size() >= opt.max_gate_arity) {
        continue;
      }
      const auto in_tfo = transitive_fanout(nl, gd);
      // Sample candidate sources near (but not inside) the destination cone.
      std::vector<NodeId> sources;
      for (unsigned t = 0; t < opt.candidates_per_gate * 4 &&
                           sources.size() < opt.candidates_per_gate;
           ++t) {
        const NodeId ws = static_cast<NodeId>(rng.below(nl.size()));
        if (nl.is_dead(ws) || in_tfo[ws]) continue;
        const GateType wt = nl.node(ws).type;
        if (wt == GateType::Const0 || wt == GateType::Const1) continue;
        if (std::find(gd_node.fanins.begin(), gd_node.fanins.end(), ws) !=
            gd_node.fanins.end()) {
          continue;
        }
        sources.push_back(ws);
      }

      for (NodeId ws : sources) {
        ++connections_tried;
        const Netlist snapshot = nl;  // revert point for this transaction
        const std::uint64_t literals_at_start = literal_count(nl);

        std::vector<NodeId> fi = nl.node(gd).fanins;
        fi.push_back(ws);
        const int new_pin = static_cast<int>(fi.size()) - 1;
        nl.redefine(gd, nl.node(gd).type, std::move(fi));

        // The added connection must be provably redundant.
        const bool nc = !controlling_value(nl.node(gd).type);
        const AtpgResult proof = run_podem(nl, {gd, new_pin, nc}, opt.atpg);
        if (proof.status != AtpgStatus::Untestable) {
          nl = snapshot;
          continue;
        }

        // Hunt for wires the addition made redundant, nearby.
        unsigned removed_here = 0;
        for (NodeId g : tfi_gates(nl, gd, opt.neighborhood_depth)) {
          const Node& gn = nl.node(g);
          if (!has_controlling_value(gn.type)) continue;
          for (std::size_t pin = 0; pin < gn.fanins.size(); ++pin) {
            if (g == gd && static_cast<int>(pin) == new_pin) continue;
            const GateType st = nl.node(gn.fanins[pin]).type;
            if (st == GateType::Const0 || st == GateType::Const1) continue;
            const bool pin_nc = !controlling_value(gn.type);
            const AtpgResult r =
                run_podem(nl, {g, static_cast<int>(pin), pin_nc}, opt.atpg);
            if (r.status == AtpgStatus::Untestable) {
              NodeId k = nl.add_const(pin_nc);
              std::vector<NodeId> nfi = nl.node(g).fanins;
              nfi[pin] = k;
              nl.redefine(g, nl.node(g).type, std::move(nfi));
              ++removed_here;
              break;  // fanin list changed; move to the next gate
            }
          }
        }
        nl.simplify();
        // RAMBO-style acceptance: fewer connections overall (the added wire
        // must buy more than itself in removals).
        if (removed_here == 0 || literal_count(nl) >= literals_at_start) {
          nl = snapshot;  // not profitable
          continue;
        }
        ++stats.additions;
        stats.wires_removed += removed_here;
        break;  // one accepted transaction per destination
      }
    }
  }

  if (opt.run_redundancy_removal) {
    const auto sp = Trace::span("rar.redundancy_removal");
    RedundancyRemovalOptions rr;
    rr.atpg = opt.atpg;
    remove_redundancies(nl, rr);
  }
  nl.simplify();
  stats.gates_after = nl.equivalent_gate_count();
  stats.paths_after = count_paths(nl).total;
  Counters::incr("rar.runs");
  Counters::incr("rar.connections_tried", connections_tried);
  Counters::incr("rar.connections_added", stats.additions);
  Counters::incr("rar.wires_removed", stats.wires_removed);
  Counters::incr("rar.pairs_extracted", stats.extracted);
  return stats;
}

}  // namespace compsyn
