// Gate-count-oriented baseline optimizer standing in for RAMBO_C [1]
// (Cheng/Entrena, "Multi-Level Logic Optimization by Redundancy Addition and
// Removal"). See DESIGN.md, "Substitutions".
//
// Three ingredients, applied in sequence:
//   1. redundancy removal (shared with src/atpg);
//   2. common-pair extraction: a literal pair occurring in >= 2 same-family
//      gates is extracted into a new gate (fast_extract-style division) --
//      strong equivalent-gate reduction, path-count neutral;
//   3. redundancy addition and removal proper: a candidate connection
//      ws -> gd is added when ATPG proves the new wire's stuck-at-
//      non-controlling fault untestable (so the addition preserves the
//      function); wires in the neighbourhood that the addition made
//      redundant are then removed, and the addition is kept only when the
//      transaction reduces the equivalent gate count.
//
// Like the published RAMBO_C, the result tends to have FEWER gates but MORE
// paths than comparison-unit resynthesis -- the contrast Table 3 reports.
#pragma once

#include <cstdint>

#include "atpg/podem.hpp"
#include "netlist/netlist.hpp"

namespace compsyn {

struct RarOptions {
  unsigned max_adds = 40;             // accepted additions budget
  unsigned candidates_per_gate = 10;  // sampled sources per destination gate
  unsigned neighborhood_depth = 3;    // TFI depth scanned for new redundancies
  unsigned max_gate_arity = 5;        // do not grow gates beyond this
  std::uint64_t seed = 1;
  AtpgOptions atpg{.backtrack_limit = 2000};  // bounded: Untestable still proven
  bool run_extraction = true;
  bool run_factoring = true;  // quick-factor cone rewriting (see factor.hpp)
  bool run_addition_removal = true;
  bool run_redundancy_removal = true;
};

struct RarStats {
  unsigned extracted = 0;       // extraction divisors created
  unsigned additions = 0;       // accepted redundant additions
  unsigned wires_removed = 0;   // wires removed thanks to additions
  std::uint64_t gates_before = 0;
  std::uint64_t gates_after = 0;
  std::uint64_t paths_before = 0;
  std::uint64_t paths_after = 0;
};

/// Optimizes in place; the circuit function is preserved exactly.
RarStats rar_optimize(Netlist& nl, const RarOptions& opt = {});

/// The extraction ingredient alone (exposed for tests/ablation).
unsigned extract_common_pairs(Netlist& nl);

/// Merges structurally identical gates (same type, same sorted fanins).
/// Returns the number of gates merged away.
unsigned merge_duplicate_gates(Netlist& nl);

/// Divisor resubstitution: if an existing AND/OR gate's fanins are a subset
/// of a same-family gate's fanins, the subset is replaced by the divisor
/// output. Returns the number of rewrites.
unsigned resubstitute_divisors(Netlist& nl);

/// Total connection count (sum of live gate fanins) -- the RAMBO-style cost.
std::uint64_t literal_count(const Netlist& nl);

}  // namespace compsyn
