#include "robust/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "robust/inject.hpp"

namespace compsyn::robust {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

constexpr const char* kFormat = "compsyn-checkpoint-v1";

const Json* require(const Json& j, const char* key, Json::Type type,
                    std::string* error) {
  const Json* v = j.find(key);
  if (v == nullptr || v->type() != type) {
    if (error) {
      *error = std::string("checkpoint field '") + key + "' is " +
               (v == nullptr ? "missing" : "the wrong type");
    }
    return nullptr;
  }
  return v;
}

}  // namespace

Json FlowCheckpoint::to_json() const {
  Json j = Json::object();
  j.set("format", kFormat);
  Json compat = Json::object();
  compat.set("circuit", circuit);
  compat.set("proc", proc);
  compat.set("k", k);
  compat.set("weight_gates", weight_gates);
  compat.set("weight_paths", weight_paths);
  compat.set("verify", verify);
  compat.set("budget_limit", budget_limit);
  j.set("compat", std::move(compat));
  Json progress = Json::object();
  progress.set("stage", stage);
  progress.set("passes_done", passes_done);
  progress.set("ticks", ticks);
  progress.set("stopped_degraded", stopped_degraded);
  j.set("progress", std::move(progress));
  j.set("netlist_hash", fnv1a64(netlist_bench));
  j.set("netlist_bench", netlist_bench);
  j.set("original_bench", original_bench);
  j.set("stats", stats);
  j.set("counters", counters);
  return j;
}

bool FlowCheckpoint::from_json(const Json& j, std::string* error) {
  if (!j.is_object()) {
    if (error) *error = "checkpoint root is not an object";
    return false;
  }
  const Json* fmt = require(j, "format", Json::Type::String, error);
  if (fmt == nullptr) return false;
  if (fmt->as_string() != kFormat) {
    if (error) {
      *error = "unsupported checkpoint format '" + fmt->as_string() +
               "' (expected " + kFormat + ")";
    }
    return false;
  }
  const Json* compat = require(j, "compat", Json::Type::Object, error);
  const Json* progress = require(j, "progress", Json::Type::Object, error);
  if (compat == nullptr || progress == nullptr) return false;

  const Json* v = nullptr;
  if ((v = require(*compat, "circuit", Json::Type::String, error)) == nullptr)
    return false;
  circuit = v->as_string();
  if ((v = require(*compat, "proc", Json::Type::String, error)) == nullptr)
    return false;
  proc = v->as_string();
  if ((v = require(*compat, "k", Json::Type::Uint, error)) == nullptr)
    return false;
  k = static_cast<unsigned>(v->as_u64());
  if ((v = compat->find("weight_gates")) == nullptr) {
    if (error) *error = "checkpoint field 'weight_gates' is missing";
    return false;
  }
  weight_gates = v->as_double();
  if ((v = compat->find("weight_paths")) == nullptr) {
    if (error) *error = "checkpoint field 'weight_paths' is missing";
    return false;
  }
  weight_paths = v->as_double();
  if ((v = require(*compat, "verify", Json::Type::String, error)) == nullptr)
    return false;
  verify = v->as_string();
  if ((v = require(*compat, "budget_limit", Json::Type::Uint, error)) ==
      nullptr)
    return false;
  budget_limit = v->as_u64();

  if ((v = require(*progress, "stage", Json::Type::String, error)) == nullptr)
    return false;
  stage = v->as_string();
  if ((v = require(*progress, "passes_done", Json::Type::Uint, error)) ==
      nullptr)
    return false;
  passes_done = static_cast<unsigned>(v->as_u64());
  if ((v = require(*progress, "ticks", Json::Type::Uint, error)) == nullptr)
    return false;
  ticks = v->as_u64();
  if ((v = require(*progress, "stopped_degraded", Json::Type::Bool, error)) ==
      nullptr)
    return false;
  stopped_degraded = v->as_bool();

  if ((v = require(j, "netlist_bench", Json::Type::String, error)) == nullptr)
    return false;
  netlist_bench = v->as_string();
  if ((v = require(j, "original_bench", Json::Type::String, error)) == nullptr)
    return false;
  original_bench = v->as_string();
  const Json* hash = require(j, "netlist_hash", Json::Type::Uint, error);
  if (hash == nullptr) return false;
  if (hash->as_u64() != fnv1a64(netlist_bench)) {
    if (error) {
      *error = "checkpoint netlist hash mismatch (file corrupt or edited)";
    }
    return false;
  }
  const Json* st = j.find("stats");
  stats = (st != nullptr && st->is_object()) ? *st : Json::object();
  const Json* ct = j.find("counters");
  counters = (ct != nullptr && ct->is_object()) ? *ct : Json::object();
  return true;
}

bool FlowCheckpoint::save(const std::string& path, std::string* error) const {
  if (inject_write_failure()) {
    if (error) *error = "injected write failure for " + path;
    return false;
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      if (error) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    to_json().write(os, /*indent=*/2);
    os << '\n';
    if (!os.flush()) {
      if (error) *error = "write to " + tmp + " failed";
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
  ChromeTrace::instant("checkpoint.write");
  EventLog::milestone("checkpoint.write");
  // A scripted halt fires only after the rename: the file on disk is always
  // either the previous checkpoint or this complete one, never a torso.
  inject_halt_after_checkpoint();
  return true;
}

bool FlowCheckpoint::load(const std::string& path, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error) *error = "cannot open checkpoint " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string parse_error;
  const auto j = Json::parse(buf.str(), &parse_error);
  if (!j) {
    if (error) *error = "checkpoint " + path + " is not valid JSON: " + parse_error;
    return false;
  }
  std::string field_error;
  if (!from_json(*j, &field_error)) {
    if (error) *error = "checkpoint " + path + ": " + field_error;
    return false;
  }
  return true;
}

}  // namespace compsyn::robust
