// Flow checkpoint serialization (format "compsyn-checkpoint-v1").
//
// A checkpoint is cut only at a pass boundary of the resynthesis flow: the
// netlist is a complete, function-equivalent circuit and the recorded
// stats/counters describe exactly the work done so far. Resuming re-enters
// the pass loop with the restored netlist, tick count, and stats, so an
// interrupted run's final netlist and (masked) report are byte-identical to
// an uninterrupted run with the same --budget — see DESIGN.md §10 for the
// argument.
//
// The netlist travels as .bench text (the flow converts both ways), which
// keeps this library independent of compsyn_netlist and makes checkpoints
// human-inspectable. An FNV-1a hash of that text guards against truncated
// or hand-edited files; the obs strict JSON parser rejects half-written
// ones. Stats and counters are carried as opaque JSON blobs the flow
// interprets.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace compsyn::robust {

/// FNV-1a 64-bit hash (checkpoint integrity; not cryptographic).
std::uint64_t fnv1a64(std::string_view data);

struct FlowCheckpoint {
  // Compatibility fields: a resume refuses to continue under different
  // flags, because the continuation would not match any uninterrupted run.
  std::string circuit;  // circuit name/path as given on the command line
  std::string proc;     // "2" | "3" | "combined"
  unsigned k = 6;
  double weight_gates = 1.0;
  double weight_paths = 1.0;
  std::string verify;  // "sim" | "sat" | "both"
  std::uint64_t budget_limit = 0;

  // Progress.
  std::string stage;            // "resynth" (pass loop) | "post" (after it)
  unsigned passes_done = 0;     // completed resynthesis passes
  std::uint64_t ticks = 0;      // budget ticks consumed so far
  bool stopped_degraded = false;  // budget already tripped before the cut

  // State.
  std::string netlist_bench;   // current netlist, .bench text
  std::string original_bench;  // pre-flow netlist (for final verification)
  Json stats = Json::object();     // flow-defined pass records etc.
  Json counters = Json::object();  // obs counter snapshot (name -> value)

  Json to_json() const;

  /// Parses and validates a checkpoint; returns false and sets *error on
  /// format/version/hash mismatch.
  bool from_json(const Json& j, std::string* error);

  /// Writes the checkpoint atomically-ish (temp file + rename) and runs the
  /// inject_write_failure / inject_halt_after_checkpoint hooks. Returns
  /// false and sets *error on I/O failure.
  bool save(const std::string& path, std::string* error) const;

  /// Loads and validates; returns false and sets *error on any failure.
  bool load(const std::string& path, std::string* error);
};

}  // namespace compsyn::robust
