#include "robust/guard.hpp"

#include <iostream>
#include <stdexcept>
#include <string_view>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"
#include "obs/report.hpp"
#include "robust/robust.hpp"
#include "util/errors.hpp"

namespace compsyn::robust {
namespace {

/// Emits a minimal error report so even a run that died before producing
/// any results leaves a parseable record behind. Best-effort: a failure to
/// write here must not mask the original exit code.
void write_error_report(const char* name, const std::string& path,
                        const char* status, const std::string& message) {
  if (path.empty()) return;
  RunReport report(name);
  report.set_meta("status", status);
  if (!message.empty()) report.set_meta("error", message);
  std::string error;
  if (!report.write(path, &error)) {
    std::cerr << "error: failed to write report to " << path << ": " << error
              << "\n";
  }
}

}  // namespace

int exit_code_for_cancel() {
  switch (cancel_reason()) {
    case StopReason::Signal:
      return 128 + (cancel_signal() != 0 ? cancel_signal() : 2);
    case StopReason::Deadline:
      return kExitDeadline;
    case StopReason::Injected:
    case StopReason::Budget:
      return kExitDegraded;
    case StopReason::None:
      break;
  }
  return kExitDegraded;
}

std::string report_path_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--report=", 0) == 0) {
      return std::string(arg.substr(std::string_view("--report=").size()));
    }
  }
  return "";
}

int guard_main(const char* name, int argc, char** argv,
               const std::function<int()>& body) {
  install_signal_handlers();
  const std::string report_path = report_path_from_args(argc, argv);
  try {
    return body();
  } catch (const CancelledError& e) {
    const char* status =
        e.reason == StopReason::Budget || e.reason == StopReason::Injected
            ? "degraded"
            : "interrupted";
    // Wind-down telemetry: stamped here (ordinary exception context), never
    // in the signal handler, and the armed trace is flushed so a cancelled
    // run still leaves its profile behind.
    ChromeTrace::instant(std::string("cancel.") + to_string(e.reason));
    EventLog::finish(status);
    ChromeTrace::flush_armed();
    std::cerr << name << ": run " << status << " (" << to_string(e.reason)
              << ")\n";
    write_error_report(name, report_path, status, to_string(e.reason));
    return exit_code_for_cancel();
  } catch (const InputError& e) {
    std::cerr << name << ": input error: " << e.what() << "\n";
    write_error_report(name, report_path, "error", e.what());
    return kExitInputError;
  } catch (const std::invalid_argument& e) {
    // Legacy input-validation throws (make_benchmark and friends).
    std::cerr << name << ": input error: " << e.what() << "\n";
    write_error_report(name, report_path, "error", e.what());
    return kExitInputError;
  } catch (const std::exception& e) {
    std::cerr << name << ": internal error: " << e.what() << "\n";
    write_error_report(name, report_path, "error", e.what());
    return kExitInternalError;
  } catch (...) {
    std::cerr << name << ": internal error: unknown exception\n";
    write_error_report(name, report_path, "error", "unknown exception");
    return kExitInternalError;
  }
}

}  // namespace compsyn::robust
