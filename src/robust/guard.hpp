// Top-level error boundary for every binary (bench tables, examples,
// resynth_flow).
//
// guard_main wraps the program body so that *every* outcome — success,
// degraded budget run, SIGINT, malformed input, internal bug — ends with a
// documented exit code and, when --report=<file> was requested, a report
// that parses and carries a "status"/"error" block. Uncaught exceptions
// never reach std::terminate.
//
// Exit codes (see README / DESIGN.md §10):
//   0    success (complete run, verification passed where requested)
//   1    verification failed, or the report file could not be written
//   2    usage error (bad flags; report not attempted)
//   3    input error (malformed .bench, unreadable file, bad checkpoint)
//   4    internal error (unexpected exception; please report)
//   20   degraded: the tick budget tripped; output is valid best-so-far
//   21   interrupted by the --deadline watchdog
//   130  interrupted by SIGINT  (128 + 2)
//   143  interrupted by SIGTERM (128 + 15)
//   137  scripted halt from the fault-injection harness (halt:N)
#pragma once

#include <functional>
#include <string>

namespace compsyn::robust {

inline constexpr int kExitOk = 0;
inline constexpr int kExitVerifyFailed = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInputError = 3;
inline constexpr int kExitInternalError = 4;
inline constexpr int kExitDegraded = 20;
inline constexpr int kExitDeadline = 21;

/// Exit code for a cancellation: 128+sig for signals, kExitDeadline for
/// the watchdog, kExitDegraded for an injected budget trip.
int exit_code_for_cancel();

/// Runs `body` behind the error boundary. Installs the SIGINT/SIGTERM
/// handlers first, then:
///   - a normal return passes the body's exit code through;
///   - CancelledError   -> writes an "interrupted" error report (when the
///     command line asked for --report) and returns exit_code_for_cancel();
///   - InputError / std::invalid_argument -> "error" report, exit 3;
///   - any other std::exception           -> "error" report, exit 4.
/// `argv` is scanned for --report=<path> so the boundary can emit a report
/// even when the failure happened before the body built one.
int guard_main(const char* name, int argc, char** argv,
               const std::function<int()>& body);

/// The --report path from an argv scan ("" when absent). Exposed for the
/// boundary's own use and for tests.
std::string report_path_from_args(int argc, char** argv);

}  // namespace compsyn::robust
