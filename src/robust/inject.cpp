#include "robust/inject.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>

#include "util/strings.hpp"

namespace compsyn::robust {
namespace {

const FaultPlan* g_plan = nullptr;
std::atomic<std::uint64_t> g_sat_calls{0};
std::atomic<std::uint64_t> g_oracle_calls{0};
std::atomic<std::uint64_t> g_write_calls{0};
std::atomic<std::uint64_t> g_checkpoint_writes{0};
std::atomic<std::uint64_t> g_frames_sent{0};
std::atomic<std::uint64_t> g_accepts{0};
std::atomic<std::uint64_t> g_lane_starts{0};
std::atomic<std::uint64_t> g_wal_appends{0};

/// True when the 1-based ordinal of this event is scripted in `hits`.
bool fires(std::atomic<std::uint64_t>& counter,
           const std::vector<std::uint64_t>& hits) {
  if (hits.empty()) return false;
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed) + 1;
  return std::find(hits.begin(), hits.end(), n) != hits.end();
}

bool parse_count(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec,
                                          std::string* error) {
  FaultPlan plan;
  if (trim(spec).empty()) {
    if (error) *error = "empty inject spec";
    return std::nullopt;
  }
  for (const std::string& part : split(spec, ',')) {
    const std::string item(trim(part));
    if (item.empty()) {
      // An empty item is a typo ("sat:1,,halt:2"), not a request for
      // nothing; a chaos plan that silently loses events is worse than an
      // error.
      if (error) *error = "empty item in inject spec";
      return std::nullopt;
    }
    const auto colon = item.find(':');
    if (colon == std::string::npos) {
      if (error) *error = "inject spec '" + item + "' is missing ':N'";
      return std::nullopt;
    }
    const std::string kind(trim(item.substr(0, colon)));
    std::uint64_t n = 0;
    if (!parse_count(std::string(trim(item.substr(colon + 1))), &n) || n == 0) {
      if (error) {
        *error = "inject spec '" + item + "' needs a positive count";
      }
      return std::nullopt;
    }
    if (kind == "sat") plan.sat_failures.push_back(n);
    else if (kind == "oracle") plan.oracle_timeouts.push_back(n);
    else if (kind == "write") plan.write_failures.push_back(n);
    else if (kind == "halt") plan.halts.push_back(n);
    else if (kind == "frame") plan.frame_corruptions.push_back(n);
    else if (kind == "accept") plan.accept_failures.push_back(n);
    else if (kind == "lane") plan.lane_crashes.push_back(n);
    else if (kind == "wal") plan.wal_failures.push_back(n);
    else if (kind == "budget") plan.budget_trip = n;
    else {
      if (error) {
        *error = "unknown inject kind '" + kind +
                 "' (expected sat|oracle|write|budget|halt|frame|accept|"
                 "lane|wal)";
      }
      return std::nullopt;
    }
  }
  return plan;
}

InjectScope::InjectScope(const FaultPlan& plan) {
  assert(g_plan == nullptr && "nested InjectScope is not supported");
  g_sat_calls.store(0);
  g_oracle_calls.store(0);
  g_write_calls.store(0);
  g_checkpoint_writes.store(0);
  g_frames_sent.store(0);
  g_accepts.store(0);
  g_lane_starts.store(0);
  g_wal_appends.store(0);
  g_plan = &plan;
}

InjectScope::~InjectScope() { g_plan = nullptr; }

bool inject_active() { return g_plan != nullptr; }

bool inject_sat_failure() {
  if (g_plan == nullptr) return false;
  return fires(g_sat_calls, g_plan->sat_failures);
}

bool inject_oracle_timeout() {
  if (g_plan == nullptr) return false;
  return fires(g_oracle_calls, g_plan->oracle_timeouts);
}

bool inject_write_failure() {
  if (g_plan == nullptr) return false;
  return fires(g_write_calls, g_plan->write_failures);
}

void inject_halt_after_checkpoint() {
  if (g_plan == nullptr) return;
  if (fires(g_checkpoint_writes, g_plan->halts)) std::_Exit(137);
}

std::uint64_t injected_budget_trip() {
  return g_plan ? g_plan->budget_trip : 0;
}

bool inject_frame_corruption() {
  if (g_plan == nullptr) return false;
  return fires(g_frames_sent, g_plan->frame_corruptions);
}

bool inject_accept_failure() {
  if (g_plan == nullptr) return false;
  return fires(g_accepts, g_plan->accept_failures);
}

bool inject_lane_crash() {
  if (g_plan == nullptr) return false;
  return fires(g_lane_starts, g_plan->lane_crashes);
}

bool inject_wal_failure() {
  if (g_plan == nullptr) return false;
  return fires(g_wal_appends, g_plan->wal_failures);
}

}  // namespace compsyn::robust
