// Deterministic fault injection for chaos testing.
//
// A FaultPlan scripts failures by *count*, not by time: "the 3rd SAT call
// returns Unknown", "the 2nd oracle query times out", "the budget trips at
// tick 5000", "exit hard after the 1st checkpoint write". Counters are
// global atomics, so a plan replays identically on every run with the same
// input and flags (at --jobs=1 exactly; at higher job counts the *set* of
// events is fixed even when several threads race to the counter, because
// fetch_add hands out each ordinal exactly once).
//
// Hooks are free functions that engines call at the matching points; with
// no plan installed they compile down to one relaxed atomic load. The plan
// is installed via InjectScope RAII, mirroring BudgetScope.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace compsyn::robust {

/// Parsed --inject specification. Spec grammar (comma-separated):
///   sat:N     — the Nth SAT solve (1-based) returns Unknown
///   oracle:N  — the Nth reachability-oracle query times out (the caller
///               receives the safe over-approximation "all combinations
///               reachable", i.e. no don't-cares)
///   write:N   — the Nth guarded file write fails
///   budget:T  — the run behaves as if the budget tripped at tick T
///               (equivalent to --budget=T with StopReason::Injected)
///   halt:N    — the process _Exit(137)s right after the Nth checkpoint
///               write, simulating a kill at a crash-consistent point
/// Serve-layer kinds (drive the daemon's recovery paths deterministically):
///   frame:N   — the Nth frame *sent* by the daemon is corrupted (a byte
///               of the payload is flipped before the write), exercising
///               the client's guard/parse rejection and retry
///   accept:N  — the Nth accept(2) on the listening socket is treated as
///               failed (the connection is closed unserved)
///   lane:N    — the Nth job *started* on any lane throws a scripted
///               internal error mid-execution (a lane crash the daemon
///               must convert into a per-job "error" answer)
///   wal:N     — the Nth WAL append fails, exercising degraded journal
///               paths (the daemon keeps serving, marks the WAL dead)
struct FaultPlan {
  std::vector<std::uint64_t> sat_failures;
  std::vector<std::uint64_t> oracle_timeouts;
  std::vector<std::uint64_t> write_failures;
  std::vector<std::uint64_t> halts;
  std::vector<std::uint64_t> frame_corruptions;
  std::vector<std::uint64_t> accept_failures;
  std::vector<std::uint64_t> lane_crashes;
  std::vector<std::uint64_t> wal_failures;
  std::uint64_t budget_trip = 0;  // 0 = disabled

  /// Parses a spec string; returns nullopt and sets *error on bad syntax.
  static std::optional<FaultPlan> parse(const std::string& spec,
                                        std::string* error);
};

/// Installs a plan for a scope (resets all event counters). Non-nesting,
/// like BudgetScope.
class InjectScope {
 public:
  explicit InjectScope(const FaultPlan& plan);
  ~InjectScope();
  InjectScope(const InjectScope&) = delete;
  InjectScope& operator=(const InjectScope&) = delete;
};

/// True when an InjectScope is active.
bool inject_active();

/// Called at the top of every SAT solve. True => this call must fail
/// (return Unknown without searching).
bool inject_sat_failure();

/// Called per reachability-oracle query. True => treat the query as timed
/// out and use the safe over-approximation.
bool inject_oracle_timeout();

/// Called before every guarded file write. True => the write must fail.
bool inject_write_failure();

/// Called after every successful checkpoint write. Calls std::_Exit(137)
/// when this write's ordinal is scripted as a halt — simulating a kill
/// without flushing anything further, deterministically.
void inject_halt_after_checkpoint();

/// Tick at which the plan trips the budget (0 = no scripted trip).
std::uint64_t injected_budget_trip();

/// Called before every frame the daemon writes. True => corrupt the
/// payload (flip one byte) before sending.
bool inject_frame_corruption();

/// Called after every accept(2) on the daemon's listening socket. True =>
/// treat the accept as failed and close the connection unserved.
bool inject_accept_failure();

/// Called when a lane starts executing a job. True => the job throws a
/// scripted internal error ("injected lane crash").
bool inject_lane_crash();

/// Called before every WAL append. True => the append must fail.
bool inject_wal_failure();

}  // namespace compsyn::robust
