#include "robust/robust.hpp"

#include "robust/inject.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"

namespace compsyn::robust {
namespace {

// The installed budget. A raw atomic pointer (not unique_ptr) so charge()
// stays wait-free and safe to call from exec workers.
std::atomic<Budget*> g_budget{nullptr};

// Pending cancellation, encoded so the signal handler can publish reason
// and signal number with lock-free stores only. 0 = none; otherwise the
// StopReason value. First-wins via compare_exchange.
std::atomic<int> g_cancel_reason{0};
std::atomic<int> g_cancel_signal{0};

extern "C" void robust_signal_handler(int sig) {
  request_cancel(StopReason::Signal, sig);
}

}  // namespace

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Complete: return "ok";
    case RunStatus::Degraded: return "degraded";
    case RunStatus::Interrupted: return "interrupted";
  }
  return "?";
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Budget: return "budget";
    case StopReason::Deadline: return "deadline";
    case StopReason::Signal: return "signal";
    case StopReason::Injected: return "injected";
  }
  return "?";
}

BudgetScope::BudgetScope(Budget& b) {
  Budget* expected = nullptr;
  const bool ok = g_budget.compare_exchange_strong(expected, &b);
  assert(ok && "nested BudgetScope is not supported");
  (void)ok;
}

BudgetScope::~BudgetScope() { g_budget.store(nullptr); }

void charge(std::uint64_t n) {
  if (Budget* b = g_budget.load(std::memory_order_relaxed)) b->charge(n);
}

std::uint64_t ticks_consumed() {
  Budget* b = g_budget.load(std::memory_order_relaxed);
  return b ? b->ticks() : 0;
}

bool budget_exhausted() {
  Budget* b = g_budget.load(std::memory_order_relaxed);
  return b != nullptr && b->exhausted();
}

bool budget_installed() {
  return g_budget.load(std::memory_order_relaxed) != nullptr;
}

void request_cancel(StopReason reason, int signal) noexcept {
  int expected = 0;
  if (g_cancel_reason.compare_exchange_strong(expected,
                                              static_cast<int>(reason))) {
    g_cancel_signal.store(signal, std::memory_order_relaxed);
  }
}

void clear_cancel() noexcept {
  g_cancel_reason.store(0);
  g_cancel_signal.store(0);
}

bool cancel_requested() noexcept {
  return g_cancel_reason.load(std::memory_order_relaxed) != 0;
}

StopReason cancel_reason() noexcept {
  return static_cast<StopReason>(
      g_cancel_reason.load(std::memory_order_relaxed));
}

int cancel_signal() noexcept {
  return g_cancel_signal.load(std::memory_order_relaxed);
}

StopReason stop_reason() {
  if (cancel_requested()) return cancel_reason();
  if (budget_exhausted()) {
    // First observation of the trip gets a telemetry milestone. Emitted
    // here -- a serial decision point -- rather than in charge(), which runs
    // on worker threads in the hot path.
    static std::atomic<bool> announced{false};
    if (!announced.exchange(true, std::memory_order_relaxed)) {
      ChromeTrace::instant("budget.exhausted");
      EventLog::milestone("budget.exhausted");
    }
    // A trip scripted by the fault-injection plan reports as Injected so
    // chaos reports distinguish it from a user-requested --budget.
    return injected_budget_trip() != 0 ? StopReason::Injected
                                       : StopReason::Budget;
  }
  return StopReason::None;
}

void install_signal_handlers() {
  std::signal(SIGINT, robust_signal_handler);
  std::signal(SIGTERM, robust_signal_handler);
}

struct DeadlineWatchdog::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

DeadlineWatchdog::DeadlineWatchdog(double seconds) {
  if (seconds <= 0.0) return;
  impl_ = new Impl();
  impl_->thread = std::thread([impl = impl_, seconds] {
    std::unique_lock<std::mutex> lock(impl->mu);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    if (!impl->cv.wait_until(lock, deadline, [&] { return impl->stop; })) {
      request_cancel(StopReason::Deadline);
    }
  });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  delete impl_;
}

}  // namespace compsyn::robust
