#include "robust/robust.hpp"

#include "robust/inject.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/events.hpp"

namespace compsyn::robust {
namespace {

// The process-default slot, shared by every thread that never binds one.
// Leaked-static style is unnecessary: Slot is trivially destructible.
Slot g_default_slot;

// The calling thread's bound slot (nullptr = use the default). Exec-pool
// workers bind the region opener's slot around each chunk; serve lanes
// bind their private slot around the job loop.
thread_local Slot* t_slot = nullptr;

// Signal cancellation is process-wide: SIGINT/SIGTERM must stop every
// lane, so the handler publishes here and every slot observes it. 0 =
// none; otherwise the StopReason value (always Signal in practice).
std::atomic<int> g_signal_reason{0};
std::atomic<int> g_signal_signal{0};

extern "C" void robust_signal_handler(int sig) {
  request_cancel(StopReason::Signal, sig);
}

}  // namespace

const char* to_string(RunStatus s) {
  switch (s) {
    case RunStatus::Complete: return "ok";
    case RunStatus::Degraded: return "degraded";
    case RunStatus::Interrupted: return "interrupted";
  }
  return "?";
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::None: return "none";
    case StopReason::Budget: return "budget";
    case StopReason::Deadline: return "deadline";
    case StopReason::Signal: return "signal";
    case StopReason::Injected: return "injected";
  }
  return "?";
}

Slot& default_slot() { return g_default_slot; }

Slot& current_slot() { return t_slot != nullptr ? *t_slot : g_default_slot; }

SlotBind::SlotBind(Slot& s) : prev_(t_slot) { t_slot = &s; }

SlotBind::~SlotBind() { t_slot = prev_; }

BudgetScope::BudgetScope(Budget& b) : slot_(&current_slot()) {
  Budget* expected = nullptr;
  const bool ok = slot_->budget.compare_exchange_strong(expected, &b);
  assert(ok && "nested BudgetScope is not supported");
  (void)ok;
}

BudgetScope::~BudgetScope() { slot_->budget.store(nullptr); }

void charge(std::uint64_t n) {
  if (Budget* b = current_slot().budget.load(std::memory_order_relaxed)) {
    b->charge(n);
  }
}

std::uint64_t ticks_consumed() {
  Budget* b = current_slot().budget.load(std::memory_order_relaxed);
  return b ? b->ticks() : 0;
}

bool budget_exhausted() {
  Budget* b = current_slot().budget.load(std::memory_order_relaxed);
  return b != nullptr && b->exhausted();
}

bool budget_installed() {
  return current_slot().budget.load(std::memory_order_relaxed) != nullptr;
}

void request_cancel_on(Slot& s, StopReason reason, int signal) noexcept {
  if (reason == StopReason::Signal) {
    int expected = 0;
    if (g_signal_reason.compare_exchange_strong(expected,
                                                static_cast<int>(reason))) {
      g_signal_signal.store(signal, std::memory_order_relaxed);
    }
    return;
  }
  int expected = 0;
  if (s.cancel_reason.compare_exchange_strong(expected,
                                              static_cast<int>(reason))) {
    s.cancel_signal.store(signal, std::memory_order_relaxed);
  }
}

void request_cancel(StopReason reason, int signal) noexcept {
  request_cancel_on(current_slot(), reason, signal);
}

void clear_cancel() noexcept {
  clear_slot_cancel(current_slot());
  g_signal_reason.store(0);
  g_signal_signal.store(0);
}

void clear_slot_cancel(Slot& s) noexcept {
  s.cancel_reason.store(0);
  s.cancel_signal.store(0);
}

bool cancel_requested() noexcept {
  return current_slot().cancel_reason.load(std::memory_order_relaxed) != 0 ||
         g_signal_reason.load(std::memory_order_relaxed) != 0;
}

StopReason cancel_reason() noexcept {
  // A slot-local reason (budget/deadline/watchdog) takes precedence: it
  // was requested first from this slot's perspective, and the per-job
  // answer should name the per-job cause. The daemon maps a concurrent
  // signal at the process level regardless.
  const int local =
      current_slot().cancel_reason.load(std::memory_order_relaxed);
  if (local != 0) return static_cast<StopReason>(local);
  return static_cast<StopReason>(
      g_signal_reason.load(std::memory_order_relaxed));
}

int cancel_signal() noexcept {
  const int local =
      current_slot().cancel_reason.load(std::memory_order_relaxed);
  if (local != 0) {
    return current_slot().cancel_signal.load(std::memory_order_relaxed);
  }
  return g_signal_signal.load(std::memory_order_relaxed);
}

StopReason stop_reason() {
  if (cancel_requested()) return cancel_reason();
  if (budget_exhausted()) {
    // First observation of the trip gets a telemetry milestone. Emitted
    // here -- a serial decision point -- rather than in charge(), which runs
    // on worker threads in the hot path.
    static std::atomic<bool> announced{false};
    if (!announced.exchange(true, std::memory_order_relaxed)) {
      ChromeTrace::instant("budget.exhausted");
      EventLog::milestone("budget.exhausted");
    }
    // A trip scripted by the fault-injection plan reports as Injected so
    // chaos reports distinguish it from a user-requested --budget.
    return injected_budget_trip() != 0 ? StopReason::Injected
                                       : StopReason::Budget;
  }
  return StopReason::None;
}

void install_signal_handlers() {
  std::signal(SIGINT, robust_signal_handler);
  std::signal(SIGTERM, robust_signal_handler);
}

struct DeadlineWatchdog::Impl {
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
  Slot* slot = nullptr;  // slot of the constructing thread
  std::thread thread;
};

DeadlineWatchdog::DeadlineWatchdog(double seconds) {
  if (seconds <= 0.0) return;
  impl_ = new Impl();
  // The watchdog thread has no binding of its own; fire on the slot of
  // whoever armed the deadline so only that lane's job is interrupted.
  impl_->slot = &current_slot();
  impl_->thread = std::thread([impl = impl_, seconds] {
    std::unique_lock<std::mutex> lock(impl->mu);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    if (!impl->cv.wait_until(lock, deadline, [&] { return impl->stop; })) {
      request_cancel_on(*impl->slot, StopReason::Deadline);
    }
  });
}

DeadlineWatchdog::~DeadlineWatchdog() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->cv.notify_all();
  impl_->thread.join();
  delete impl_;
}

}  // namespace compsyn::robust
