// Deterministic budgets and cooperative cancellation.
//
// Two independent stop mechanisms with very different guarantees:
//
// * Budget — counts abstract work *ticks* (cones evaluated, SAT conflicts,
//   PODEM backtracks, fault-sim blocks). Engines charge ticks for work they
//   have COMPLETED and consult the budget only at serial commit points
//   (between roots in the resynthesis sweep, between commit windows in
//   redundancy removal). Because the work performed before each commit
//   point is a pure function of the input — the exec layer's chunk
//   partition never depends on the job count — the tick total observed at
//   every decision point is identical at any --jobs, so `--budget=N` stops
//   at the same place bit-for-bit on every run. The budget never throws:
//   engines notice `should_stop()` and wind down, committing only
//   fully-verified work.
//
// * Cancellation — an asynchronous flag set by a signal handler, the
//   deadline watchdog, or `request_cancel()`. It is checked at frequent
//   poll points (exec chunk loops, solver iterations) and surfaces as a
//   `CancelledError` thrown from `poll_cancellation()`. Where the flag
//   happens to be observed depends on wall-clock timing, so cancellation is
//   documented non-deterministic; the contract is weaker but still strong:
//   the run winds down at the next poll point, commits nothing unverified,
//   and the flow reports `"status":"interrupted"`.
//
// Both mechanisms live in a *slot* -- a small bundle of lock-free atomics
// (installed budget, pending cancel reason/signal). Deep engine code still
// reaches them through free functions without threading a context object
// through every signature, but the functions route through the calling
// thread's *bound* slot: one-shot binaries never bind one and use the
// process-default slot (exactly the old process-global behaviour), while
// the serving daemon binds a private slot per job lane (SlotBind) so one
// lane's budget trip or per-job deadline can never stop a neighbour's job.
// Exec-pool workers inherit the slot of the thread that opened the parallel
// region, so ticks charged from workers land on the right lane.
//
// Signals are the exception: SIGINT/SIGTERM must stop the whole process,
// not one lane, so a signal cancellation is recorded process-globally and
// observed by every slot. The handler touches only lock-free atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace compsyn::robust {

/// How a run ended.
enum class RunStatus {
  Complete,     // ran to its natural fixpoint
  Degraded,     // budget tripped: best-so-far result, fully verified
  Interrupted,  // signal / deadline: wound down at a poll point
};

/// What triggered a stop (None while running normally).
enum class StopReason {
  None,
  Budget,    // deterministic tick budget exhausted
  Deadline,  // wall-clock watchdog fired (non-deterministic)
  Signal,    // SIGINT / SIGTERM
  Injected,  // fault-injection harness tripped the run
};

const char* to_string(RunStatus s);
const char* to_string(StopReason r);

/// The run status a stop reason maps to: budget-style stops degrade the
/// run (deterministic best-so-far), asynchronous ones interrupt it.
inline RunStatus run_status_for(StopReason r) {
  switch (r) {
    case StopReason::Budget:
    case StopReason::Injected:
      return RunStatus::Degraded;
    case StopReason::Signal:
    case StopReason::Deadline:
      return RunStatus::Interrupted;
    case StopReason::None:
      break;
  }
  return RunStatus::Complete;
}

/// Counts work ticks against an optional limit. `limit == 0` means
/// unlimited (counting still happens so reports can show ticks consumed).
/// The counter is atomic: engines may charge from worker threads; the
/// *decision* to stop is only ever taken at serial points.
class Budget {
 public:
  explicit Budget(std::uint64_t limit = 0, std::uint64_t consumed = 0)
      : ticks_(consumed), limit_(limit) {}

  void charge(std::uint64_t n) {
    ticks_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  std::uint64_t limit() const { return limit_; }
  bool exhausted() const { return limit_ != 0 && ticks() >= limit_; }

 private:
  std::atomic<std::uint64_t> ticks_;
  std::uint64_t limit_;
};

/// One isolation unit of robustness state: the installed budget and any
/// pending (non-signal) cancellation. The process has a default slot that
/// unbound threads share; a serving lane owns a private one. All members
/// are lock-free atomics -- reads are wait-free from workers and handlers.
struct Slot {
  std::atomic<Budget*> budget{nullptr};
  std::atomic<int> cancel_reason{0};  // 0 = none, else StopReason value
  std::atomic<int> cancel_signal{0};
};

/// The slot unbound threads use (one-shot binaries, tests, the listener).
Slot& default_slot();

/// The calling thread's slot: the bound one, else default_slot().
Slot& current_slot();

/// Binds `s` as the calling thread's slot for a scope. Used by serving
/// lanes (around their job loop) and by exec-pool workers (around each
/// region, inheriting the region opener's slot). Nests by restoration.
class SlotBind {
 public:
  explicit SlotBind(Slot& s);
  ~SlotBind();
  SlotBind(const SlotBind&) = delete;
  SlotBind& operator=(const SlotBind&) = delete;

 private:
  Slot* prev_;
};

/// Installs `b` as the current slot's budget for a scope. Nesting is not
/// supported (the inner scope would silently shadow the outer charge
/// stream); the constructor asserts the slot has none installed.
class BudgetScope {
 public:
  explicit BudgetScope(Budget& b);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  Slot* slot_;  // the slot the budget was installed into
};

/// Charges `n` ticks to the installed budget; no-op when none is installed.
void charge(std::uint64_t n = 1);
/// Ticks consumed by the installed budget (0 when none is installed).
std::uint64_t ticks_consumed();
/// True when a budget is installed and its limit is reached.
bool budget_exhausted();
/// True when a BudgetScope is active.
bool budget_installed();

/// Requests cooperative cancellation. First caller wins; later requests
/// (e.g. a second Ctrl-C while winding down) keep the original reason.
/// Signal cancels are recorded process-globally (every slot observes
/// them); all other reasons land on the calling thread's slot.
/// Async-signal-safe: touches only lock-free atomics.
void request_cancel(StopReason reason, int signal = 0) noexcept;
/// Targets a specific slot (daemon watchdog cancelling one lane's job).
/// A Signal reason is still broadcast process-globally.
void request_cancel_on(Slot& s, StopReason reason, int signal = 0) noexcept;
/// Clears any pending cancellation on the current slot AND the global
/// signal broadcast (used between test scenarios and one-shot retries).
void clear_cancel() noexcept;
/// Clears only `s`'s pending cancellation, leaving a process-wide signal
/// broadcast intact. Lanes use this between jobs so a concurrent SIGTERM
/// can never be raced away.
void clear_slot_cancel(Slot& s) noexcept;
/// True once request_cancel has been called.
bool cancel_requested() noexcept;
/// Reason of the pending cancellation (None if none).
StopReason cancel_reason() noexcept;
/// Signal number recorded with a StopReason::Signal cancel (0 otherwise).
int cancel_signal() noexcept;

/// Serial-point check: budget exhausted OR cancellation pending. Engines
/// consult this where winding down is deterministic-safe.
inline bool should_stop() {
  return cancel_requested() || budget_exhausted();
}

/// The reason should_stop() fired: the cancel reason if one is pending,
/// else Budget if the budget tripped, else None.
StopReason stop_reason();

/// Thrown from poll points when cancellation is pending. Engines either
/// let it propagate to the top-level guard (flow stages) or catch it and
/// return a degraded-but-valid result (solver, PODEM).
struct CancelledError : std::runtime_error {
  explicit CancelledError(StopReason r)
      : std::runtime_error("run cancelled"), reason(r) {}
  StopReason reason;
};

/// Poll point: throws CancelledError when cancellation is pending. Budget
/// exhaustion never throws here — the budget stops runs only at serial
/// decision points, keeping its behaviour jobs-invariant.
inline void poll_cancellation() {
  if (cancel_requested()) throw CancelledError(cancel_reason());
}

/// Installs SIGINT/SIGTERM handlers that call
/// `request_cancel(StopReason::Signal, sig)`. Idempotent.
void install_signal_handlers();

/// Wall-clock watchdog: requests cancellation (StopReason::Deadline) after
/// `seconds` of wall time unless destroyed first. Inert for seconds <= 0.
/// Deadlines are inherently non-deterministic; see the header comment.
class DeadlineWatchdog {
 public:
  explicit DeadlineWatchdog(double seconds);
  ~DeadlineWatchdog();
  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace compsyn::robust
