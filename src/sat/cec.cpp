#include "sat/cec.hpp"

#include <sstream>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sat/session.hpp"
#include "sat/tseitin.hpp"

namespace compsyn {

const char* to_string(VerifyMode m) {
  switch (m) {
    case VerifyMode::Sim: return "sim";
    case VerifyMode::Sat: return "sat";
    case VerifyMode::Both: return "both";
  }
  return "?";
}

std::optional<VerifyMode> parse_verify_mode(std::string_view s) {
  if (s == "sim") return VerifyMode::Sim;
  if (s == "sat") return VerifyMode::Sat;
  if (s == "both") return VerifyMode::Both;
  return std::nullopt;
}

EquivalenceResult check_equivalent_sat(const Netlist& a, const Netlist& b,
                                       const SolverBudget& budget) {
  const auto sp = Trace::span("sat.cec");
  EquivalenceResult res;
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    res.message = "interface mismatch";
    return res;
  }
  Solver solver;
  const MiterEncoding miter = encode_miter(a, b, solver);
  const SolveStatus st = solver.solve({}, budget);
  Counters::incr("sat.cec.calls");
  std::ostringstream ss;
  switch (st) {
    case SolveStatus::Unsat:
      res.equivalent = true;
      res.proven = true;
      ss << "proved equivalent by SAT (" << solver.stats().conflicts
         << " conflicts)";
      Counters::incr("sat.cec.proofs");
      break;
    case SolveStatus::Sat:
      res.counterexample = miter.counterexample(solver);
      res.proven = true;  // a concrete refutation is a proof of inequivalence
      ss << "SAT counterexample found (" << solver.stats().conflicts
         << " conflicts)";
      Counters::incr("sat.cec.refutations");
      break;
    case SolveStatus::Unknown:
      ss << "SAT budget exhausted after " << solver.stats().conflicts
         << " conflicts (verdict open)";
      Counters::incr("sat.cec.unknown");
      break;
  }
  res.message = ss.str();
  return res;
}

EquivalenceResult check_equivalent_sat(SatSession& session, const Netlist& a,
                                       const Netlist& b,
                                       const SolverBudget& budget) {
  return session.check_equivalent(a, b, budget);
}

EquivalenceResult check_equivalent_mode(const Netlist& a, const Netlist& b,
                                        Rng& rng, VerifyMode mode,
                                        unsigned random_words,
                                        unsigned exhaustive_limit,
                                        const SolverBudget& budget,
                                        SatSession* session) {
  const auto sat_check = [&] {
    return session ? check_equivalent_sat(*session, a, b, budget)
                   : check_equivalent_sat(a, b, budget);
  };
  if (mode == VerifyMode::Sat) return sat_check();
  EquivalenceResult sim =
      check_equivalent(a, b, rng, random_words, exhaustive_limit);
  if (mode == VerifyMode::Sim || sim.proven || !sim.equivalent) return sim;
  // Both: simulation passed without a proof; close the gap with SAT.
  EquivalenceResult sat = sat_check();
  if (sat.proven) return sat;
  // Budget ran out: keep the (unproven) simulation verdict, note the attempt.
  sim.message += "; " + sat.message;
  return sim;
}

}  // namespace compsyn
