// SAT-backed combinational equivalence checking: the proof-capable backend
// behind check_equivalent. Where the simulation checker in
// netlist/equivalence.hpp can only prove equivalence up to
// kDefaultExhaustiveLimit primary inputs (and merely fails to refute beyond
// it), the miter + CDCL route returns a real proof at any width -- Unsat
// means equivalent, Sat yields a counterexample input assignment, and the
// budget turns into an explicit Unknown instead of a silent non-proof.
//
// VerifyMode is the user-facing switch (--verify=sim|sat|both):
//   sim  -- the historical behaviour (exhaustive when small, random beyond);
//   sat  -- miter proof only;
//   both -- simulation first (fast refutation), then a SAT proof whenever
//           simulation could not prove.
#pragma once

#include <optional>
#include <string_view>

#include "netlist/equivalence.hpp"
#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace compsyn {

class SatSession;  // sat/session.hpp

enum class VerifyMode { Sim, Sat, Both };

const char* to_string(VerifyMode m);
/// Parses "sim" / "sat" / "both"; nullopt on anything else.
std::optional<VerifyMode> parse_verify_mode(std::string_view s);

/// Default conflict budget for one CEC proof; generous enough that every
/// in-repo miter closes, while still guaranteeing termination (Unknown).
inline constexpr std::uint64_t kDefaultCecConflicts = 4'000'000;

/// SAT-based CEC. On Unsat: equivalent and proven. On Sat: a counterexample
/// is read back. On budget exhaustion: equivalent=false, proven=false, with
/// a message saying the verdict is open (NOT a refutation).
EquivalenceResult check_equivalent_sat(
    const Netlist& a, const Netlist& b,
    const SolverBudget& budget = {kDefaultCecConflicts, 0});

/// As above, but through a persistent SatSession (sat/session.hpp): the
/// circuits' encodings and the solver's learned clauses are shared with
/// every other query on the session instead of being rebuilt.
EquivalenceResult check_equivalent_sat(
    SatSession& session, const Netlist& a, const Netlist& b,
    const SolverBudget& budget = {kDefaultCecConflicts, 0});

/// Mode dispatcher used by resynth_flow and the bench harnesses. When
/// `session` is non-null the SAT proofs route through it (--sat=session);
/// null keeps the historical per-query path (--sat=oneshot).
EquivalenceResult check_equivalent_mode(
    const Netlist& a, const Netlist& b, Rng& rng, VerifyMode mode,
    unsigned random_words = 256,
    unsigned exhaustive_limit = kDefaultExhaustiveLimit,
    const SolverBudget& budget = {kDefaultCecConflicts, 0},
    SatSession* session = nullptr);

}  // namespace compsyn
