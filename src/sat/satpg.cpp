#include "sat/satpg.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sat/tseitin.hpp"

namespace compsyn {

SatFaultResult prove_fault(const Netlist& nl, const StuckFault& fault,
                           const SolverBudget& budget) {
  const auto sp = Trace::span("sat.atpg");
  SatFaultResult res;
  Solver solver;
  const FaultMiterEncoding miter = encode_fault_miter(nl, fault, solver);
  const SolveStatus st = solver.solve({}, budget);
  res.conflicts = solver.stats().conflicts;
  Counters::incr("sat.atpg.calls");
  switch (st) {
    case SolveStatus::Sat:
      res.status = SatFaultStatus::Testable;
      res.test = miter.test(solver);
      Counters::incr("sat.atpg.tests");
      break;
    case SolveStatus::Unsat:
      res.status = SatFaultStatus::Untestable;
      Counters::incr("sat.atpg.redundancy_proofs");
      break;
    case SolveStatus::Unknown:
      res.status = SatFaultStatus::Unknown;
      Counters::incr("sat.atpg.unknown");
      break;
  }
  return res;
}

}  // namespace compsyn
