// SAT-based single stuck-at fault test generation / redundancy proving via
// the fault-miter encoding (tseitin.hpp). This is the completion backend for
// PODEM: where the structural search aborts on its backtrack budget, the
// CDCL engine re-decides the fault -- Sat yields a test vector, Unsat is a
// genuine untestability (redundancy) proof, Unknown only means the conflict
// budget ran out.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace compsyn {

enum class SatFaultStatus {
  Testable,    // model extracted: `test` detects the fault
  Untestable,  // proven redundant
  Unknown,     // budget exhausted
};

struct SatFaultResult {
  SatFaultStatus status = SatFaultStatus::Unknown;
  std::vector<bool> test;  // PI assignment, valid when status == Testable
  std::uint64_t conflicts = 0;
};

/// Default conflict budget per fault; sized so the redundancy-removal
/// fallback stays bounded even on pathological XOR cones.
inline constexpr std::uint64_t kDefaultFaultConflicts = 200'000;

SatFaultResult prove_fault(const Netlist& nl, const StuckFault& fault,
                           const SolverBudget& budget = {kDefaultFaultConflicts, 0});

}  // namespace compsyn
