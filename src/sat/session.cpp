#include "sat/session.hpp"

#include <atomic>
#include <chrono>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "robust/checkpoint.hpp"  // fnv1a64

namespace compsyn {

namespace {

// Thread-local so concurrent serving lanes can run jobs with different
// backends: every read site is on the orchestrating thread of its job
// (flow setup, redundancy-removal defaults, bench drivers) -- exec-pool
// workers never consult it.
thread_local SatBackend t_sat_backend{SatBackend::Session};

std::uint64_t query_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-query extended telemetry: one `sat.query.ns` histogram sample and a
/// `sat.session.vars` counter-track point (the incremental session's size,
/// which sawtooths as circuits accumulate and compactions reset it).
void note_query(std::uint64_t t0_ns, std::uint64_t t1_ns,
                std::size_t session_vars) {
  Histogram::observe_ns("sat.query.ns", t1_ns - t0_ns);
  ChromeTrace::counter("sat.session.vars",
                       static_cast<double>(session_vars));
}

/// Exact structural serialisation of a netlist: node count, interface, and
/// every live node's (id, type, fanins) in topological order. Two netlists
/// with equal keys have identical live structure over identical node ids, so
/// one Tseitin encoding serves both.
std::string structural_key(const Netlist& nl) {
  std::string key;
  key.reserve(nl.size() * 16);
  const auto put = [&key](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      key.push_back(static_cast<char>(v & 0xff));
      v >>= 8;
    }
  };
  put(nl.size());
  put(nl.inputs().size());
  for (const NodeId n : nl.inputs()) put(n);
  put(nl.outputs().size());
  for (const NodeId n : nl.outputs()) put(n);
  for (const NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    put(n);
    put(static_cast<std::uint64_t>(nd.type));
    put(nd.fanins.size());
    for (const NodeId f : nd.fanins) put(f);
  }
  return key;
}

}  // namespace

const char* to_string(SatBackend b) {
  switch (b) {
    case SatBackend::Session: return "session";
    case SatBackend::Oneshot: return "oneshot";
  }
  return "?";
}

std::optional<SatBackend> parse_sat_backend(std::string_view s) {
  if (s == "session") return SatBackend::Session;
  if (s == "oneshot") return SatBackend::Oneshot;
  return std::nullopt;
}

void set_sat_backend(SatBackend b) { t_sat_backend = b; }

SatBackend sat_backend() { return t_sat_backend; }

SatSession::CircuitId SatSession::add_circuit(const Netlist& nl) {
  std::string key = structural_key(nl);
  const std::uint64_t fp = robust::fnv1a64(key);
  for (CircuitId id = 0; id < circuits_.size(); ++id) {
    if (circuits_[id].fingerprint == fp && circuits_[id].key == key) {
      Counters::incr("sat.session.reuse_hits");
      return id;
    }
  }
  Entry e;
  e.fingerprint = fp;
  e.key = std::move(key);
  e.netlist = nl;
  e.enc = encode_circuit(e.netlist, solver_);
  circuits_.push_back(std::move(e));
  Counters::incr("sat.session.encoded");
  return circuits_.size() - 1;
}

void SatSession::retire(SatLit act) {
  solver_.add_clause(~act);
  Counters::incr("sat.session.retired");
  if (++retired_ >= max_retired_) compact();
}

void SatSession::compact() {
  solver_ = Solver();
  for (Entry& e : circuits_) e.enc = encode_circuit(e.netlist, solver_);
  retired_ = 0;
  Counters::incr("sat.session.compactions");
}

SatFaultResult SatSession::prove_fault(CircuitId id, const StuckFault& fault,
                                       const SolverBudget& budget) {
  const auto sp = Trace::span("sat.atpg");
  Entry& e = circuits_[id];
  SatFaultResult res;
  const SatLit act = new_activation();
  const FaultMiterEncoding miter =
      encode_fault_miter_gated(e.netlist, fault, solver_, e.enc, act);
  const std::uint64_t conflicts_before = solver_.stats().conflicts;
  const bool telem = telemetry_extended();
  const std::uint64_t t0 = telem ? query_clock_ns() : 0;
  const SolveStatus st = solver_.solve({act}, budget);
  if (telem) note_query(t0, query_clock_ns(), solver_.num_vars());
  res.conflicts = solver_.stats().conflicts - conflicts_before;
  Counters::incr("sat.atpg.calls");
  Counters::incr("sat.session.queries");
  switch (st) {
    case SolveStatus::Sat:
      res.status = SatFaultStatus::Testable;
      res.test = miter.test(solver_);
      Counters::incr("sat.atpg.tests");
      break;
    case SolveStatus::Unsat:
      res.status = SatFaultStatus::Untestable;
      Counters::incr("sat.atpg.redundancy_proofs");
      break;
    case SolveStatus::Unknown:
      res.status = SatFaultStatus::Unknown;
      Counters::incr("sat.atpg.unknown");
      break;
  }
  retire(act);
  return res;
}

EquivalenceResult SatSession::check_equivalent(CircuitId a, CircuitId b,
                                               const SolverBudget& budget) {
  const auto sp = Trace::span("sat.cec");
  EquivalenceResult res;
  const Entry& ea = circuits_[a];
  const Entry& eb = circuits_[b];
  if (ea.netlist.inputs().size() != eb.netlist.inputs().size() ||
      ea.netlist.outputs().size() != eb.netlist.outputs().size()) {
    res.message = "interface mismatch";
    return res;
  }
  Counters::incr("sat.cec.calls");
  Counters::incr("sat.session.queries");
  if (a == b) {
    // Same encoding: the two netlists are structurally identical (exact key
    // compare in add_circuit), which is a proof with zero solver work. This
    // fast path pays for the session on flows that re-verify an unchanged
    // circuit (e.g. redundancy removal that removed nothing).
    res.equivalent = true;
    res.proven = true;
    res.message = "proved equivalent by SAT session (identical structure)";
    Counters::incr("sat.cec.proofs");
    Counters::incr("sat.session.structural_proofs");
    return res;
  }
  const SatLit act = new_activation();
  encode_miter_gated(ea.netlist, ea.enc, eb.netlist, eb.enc, solver_, act);
  const std::uint64_t conflicts_before = solver_.stats().conflicts;
  const bool telem = telemetry_extended();
  const std::uint64_t t0 = telem ? query_clock_ns() : 0;
  const SolveStatus st = solver_.solve({act}, budget);
  if (telem) note_query(t0, query_clock_ns(), solver_.num_vars());
  const std::uint64_t conflicts = solver_.stats().conflicts - conflicts_before;
  std::ostringstream ss;
  switch (st) {
    case SolveStatus::Unsat:
      res.equivalent = true;
      res.proven = true;
      ss << "proved equivalent by SAT (" << conflicts << " conflicts)";
      Counters::incr("sat.cec.proofs");
      break;
    case SolveStatus::Sat: {
      res.proven = true;  // a concrete refutation is a proof of inequivalence
      res.counterexample.reserve(ea.netlist.inputs().size());
      for (const NodeId in : ea.netlist.inputs()) {
        res.counterexample.push_back(solver_.model_value(ea.enc.node_var[in]));
      }
      ss << "SAT counterexample found (" << conflicts << " conflicts)";
      Counters::incr("sat.cec.refutations");
      break;
    }
    case SolveStatus::Unknown:
      ss << "SAT budget exhausted after " << conflicts
         << " conflicts (verdict open)";
      Counters::incr("sat.cec.unknown");
      break;
  }
  res.message = ss.str();
  retire(act);
  return res;
}

EquivalenceResult SatSession::check_equivalent(const Netlist& a, const Netlist& b,
                                               const SolverBudget& budget) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    EquivalenceResult res;
    res.message = "interface mismatch";
    return res;
  }
  const CircuitId ia = add_circuit(a);
  const CircuitId ib = add_circuit(b);
  return check_equivalent(ia, ib, budget);
}

}  // namespace compsyn
