// Persistent incremental SAT sessions (the PR 2 engine, reused instead of
// rebuilt). The one-shot entry points (sat/satpg.hpp, sat/cec.hpp) construct
// a fresh Solver and a fresh Tseitin miter for every query, even when
// hundreds of queries interrogate the same circuit. A SatSession keeps ONE
// solver alive and
//
//  * encodes each circuit once (structural fingerprint + exact structural
//    compare, so re-adding the same netlist is free and shares the clauses),
//  * adds the per-query constraints (fault miter cone, CEC miter binding)
//    under a fresh activation literal, with ~act appended to every clause,
//  * solves under the assumption {act}, and
//  * retires the group afterwards by adding the unit clause ~act, which
//    satisfies every gated clause -- including any learned clause that
//    depended on the group -- leaving them inert but sound.
//
// Learned clauses over the shared (ungated) circuit definitions survive
// between queries: that clause reuse, plus skipping the re-encoding, is the
// measured win in BENCH_table2_sat.json. The session is deterministic -- no
// randomness, count-based compaction only -- but its conflict trajectories
// differ from the one-shot engine's (the solver carries VSIDS/phase state
// across queries), so near-budget verdicts (Unknown) can differ between
// backends. Definitive verdicts (Sat/Unsat) never do.
//
// Sessions are single-threaded and caller-scoped: a session answers queries
// about the snapshots it was given; after mutating a netlist, add it again
// (a changed structure gets a fresh encoding) or start a fresh session.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/fault.hpp"
#include "netlist/equivalence.hpp"
#include "netlist/netlist.hpp"
#include "sat/cec.hpp"
#include "sat/satpg.hpp"
#include "sat/solver.hpp"
#include "sat/tseitin.hpp"

namespace compsyn {

/// Thread-local switch between the persistent-session SAT path and the
/// historical per-query ("oneshot") path, surfaced as --sat=session|oneshot
/// on the flow and bench binaries. Session is the default. Thread-local
/// (rather than process-wide) so concurrent serving lanes can honour
/// per-job backends; one-shot binaries set it once on the main thread.
enum class SatBackend { Session, Oneshot };

const char* to_string(SatBackend b);
/// Parses "session" / "oneshot"; nullopt on anything else.
std::optional<SatBackend> parse_sat_backend(std::string_view s);

void set_sat_backend(SatBackend b);
SatBackend sat_backend();

class SatSession {
 public:
  using CircuitId = std::size_t;

  /// Retired activation groups tolerated before the session compacts
  /// (rebuilds the solver and re-encodes every circuit, dropping all inert
  /// clauses). Count-based, so compaction points are deterministic.
  static constexpr std::size_t kDefaultMaxRetired = 256;

  explicit SatSession(std::size_t max_retired = kDefaultMaxRetired)
      : max_retired_(max_retired) {}

  /// Encodes `nl` into the session (or finds the existing encoding of a
  /// structurally identical netlist: fingerprint match confirmed by an exact
  /// structural compare, never by hash alone). Counters:
  /// sat.session.encoded / sat.session.reuse_hits.
  CircuitId add_circuit(const Netlist& nl);

  /// SAT-ATPG over the shared encoding: gated fault miter, solve under the
  /// activation, retire. Same verdicts and counters as sat/satpg.hpp's
  /// prove_fault (conflicts are this query's delta).
  SatFaultResult prove_fault(CircuitId id, const StuckFault& fault,
                             const SolverBudget& budget = {kDefaultFaultConflicts,
                                                           0});

  /// CEC between two encoded circuits: gated miter binding, solve, retire.
  /// When both ids name the same encoding the circuits are structurally
  /// identical and the proof is immediate (no solver call).
  EquivalenceResult check_equivalent(CircuitId a, CircuitId b,
                                     const SolverBudget& budget = {
                                         kDefaultCecConflicts, 0});

  /// Convenience: add (or re-find) both circuits, then check.
  EquivalenceResult check_equivalent(const Netlist& a, const Netlist& b,
                                     const SolverBudget& budget = {
                                         kDefaultCecConflicts, 0});

  std::size_t num_circuits() const { return circuits_.size(); }
  const SolverStats& stats() const { return solver_.stats(); }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string key;   // exact structural serialisation (collision guard)
    Netlist netlist;   // snapshot: queries and compaction re-encodes use it
    CircuitEncoding enc;
  };

  SatLit new_activation() { return mk_lit(solver_.new_var(), false); }
  void retire(SatLit act);
  /// Deterministic rebuild: fresh solver, every circuit re-encoded in id
  /// order. Drops retired groups and all learned clauses.
  void compact();

  Solver solver_;
  std::vector<Entry> circuits_;
  std::size_t retired_ = 0;  // groups retired since the last compaction
  std::size_t max_retired_;
};

}  // namespace compsyn
