#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>

#include "obs/counters.hpp"
#include "robust/inject.hpp"
#include "robust/robust.hpp"

namespace compsyn {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::Sat: return "SAT";
    case SolveStatus::Unsat: return "UNSAT";
    case SolveStatus::Unknown: return "UNKNOWN";
  }
  return "?";
}

std::uint64_t luby(std::uint64_t i) {
  // Position i (1-based) either ends a subsequence (i == 2^k - 1, value
  // 2^(k-1)) or lies in the tail, which repeats the sequence from the start.
  for (;;) {
    std::uint64_t pow = 2;  // 2^k, smallest with 2^k - 1 >= i
    while (pow - 1 < i) pow <<= 1;
    if (pow - 1 == i) return pow >> 1;
    i -= (pow >> 1) - 1;
  }
}

Solver::Solver() = default;

SatVar Solver::new_var() {
  const SatVar v = static_cast<SatVar>(assign_.size());
  assign_.push_back(kUndef);
  model_.push_back(kUndef);
  phase_.push_back(kFalse);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(kNoSatVar);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<SatLit> lits) {
  assert(decision_level() == 0 && "clauses may only be added at level 0");
  if (!ok_) return false;
  std::sort(lits.begin(), lits.end());
  std::vector<SatLit> out;
  out.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const SatLit l = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return true;  // tautology
    if (!out.empty() && out.back() == l) continue;              // duplicate
    const std::uint8_t v = value(l);
    if (v == kTrue) return true;  // already satisfied at level 0
    if (v == kFalse) continue;    // falsified at level 0: drop the literal
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoReason);
    if (propagate() != kNoReason) ok_ = false;
    return ok_;
  }
  const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size());
  clauses_.push_back(std::move(out));
  ++num_problem_clauses_;
  attach_clause(ci);
  return true;
}

void Solver::attach_clause(std::uint32_t ci) {
  const auto& c = clauses_[ci];
  watches_[(~c[0]).x].push_back({ci, c[1]});
  watches_[(~c[1]).x].push_back({ci, c[0]});
}

void Solver::enqueue(SatLit l, std::uint32_t reason) {
  assert(value(l) == kUndef);
  assign_[l.var()] = l.negated() ? kFalse : kTrue;
  level_[l.var()] = decision_level();
  reason_[l.var()] = reason;
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  std::uint32_t confl = kNoReason;
  while (qhead_ < trail_.size()) {
    const SatLit p = trail_[qhead_++];  // p is true; visit watchers of ~p
    ++stats_.propagations;
    auto& ws = watches_[p.x];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      auto& c = clauses_[w.clause];
      // Normalise: the false watched literal goes to slot 1.
      const SatLit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      if (value(c[0]) == kTrue) {
        ws[keep++] = {w.clause, c[0]};
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).x].push_back({w.clause, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      ws[keep++] = {w.clause, c[0]};
      if (value(c[0]) == kFalse) {
        confl = w.clause;
        qhead_ = trail_.size();
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        break;
      }
      enqueue(c[0], w.clause);
    }
    ws.resize(keep);
    if (confl != kNoReason) break;
  }
  return confl;
}

void Solver::bump_var(SatVar v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] != kNoSatVar) heap_sift_up(heap_pos_[v]);
}

void Solver::decay_activities() { var_inc_ /= kVarDecay; }

/// Basic (reason-local) minimisation: a learnt literal is redundant when its
/// reason clause exists and every other literal of that reason is already in
/// the learnt clause or assigned at level 0.
bool Solver::lit_redundant(SatLit l) const {
  const std::uint32_t r = reason_[l.var()];
  if (r == kNoReason) return false;
  for (const SatLit q : clauses_[r]) {
    if (q.var() == l.var()) continue;
    if (!seen_[q.var()] && level(q.var()) > 0) return false;
  }
  return true;
}

void Solver::analyze(std::uint32_t confl, std::vector<SatLit>& learnt,
                     unsigned& bt_level) {
  learnt.clear();
  learnt.push_back(kNoSatLit);  // slot for the asserting (first-UIP) literal
  unsigned counter = 0;         // current-level literals still to resolve
  SatLit p = kNoSatLit;
  std::size_t index = trail_.size();

  for (;;) {
    const auto& c = clauses_[confl];
    for (const SatLit q : c) {
      if (p != kNoSatLit && q == p) continue;  // skip the resolved pivot
      const SatVar v = q.var();
      if (seen_[v] || level(v) == 0) continue;
      seen_[v] = 1;
      bump_var(v);
      if (level(v) == decision_level()) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked current-level literal.
    while (!seen_[trail_[index - 1].var()]) --index;
    p = trail_[--index];
    seen_[p.var()] = 0;
    --counter;
    if (counter == 0) break;
    confl = reason_[p.var()];
    assert(confl != kNoReason);
  }
  learnt[0] = ~p;

  // Minimise: drop redundant non-asserting literals. seen_ stays set for the
  // whole pass (a dropped literal may justify dropping a later one); the
  // pre-minimisation copy lets us clear EVERY marked variable afterwards --
  // stale seen_ flags would silently corrupt the next conflict analysis.
  minimize_buf_.assign(learnt.begin() + 1, learnt.end());
  std::size_t keep = 1;
  for (const SatLit l : minimize_buf_) {
    if (!lit_redundant(l)) learnt[keep++] = l;
  }
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals.
  bt_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level(learnt[i].var()) > bt_level) {
      bt_level = level(learnt[i].var());
      max_i = i;
    }
  }
  if (learnt.size() > 1) std::swap(learnt[1], learnt[max_i]);
  for (const SatLit l : minimize_buf_) seen_[l.var()] = 0;
}

void Solver::backtrack_to(unsigned lvl) {
  if (decision_level() <= lvl) return;
  for (std::size_t i = trail_.size(); i > trail_lim_[lvl];) {
    --i;
    const SatVar v = trail_[i].var();
    phase_[v] = assign_[v];  // phase saving
    assign_[v] = kUndef;
    reason_[v] = kNoReason;
    if (heap_pos_[v] == kNoSatVar) heap_insert(v);
  }
  trail_.resize(trail_lim_[lvl]);
  trail_lim_.resize(lvl);
  qhead_ = trail_.size();
}

bool Solver::heap_better(SatVar a, SatVar b) const {
  return activity_[a] > activity_[b] || (activity_[a] == activity_[b] && a < b);
}

void Solver::heap_insert(SatVar v) {
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const SatVar v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_better(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const SatVar v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_better(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!heap_better(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

SatVar Solver::pick_branch_var() {
  while (!heap_.empty()) {
    const SatVar v = heap_[0];
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_pos_[v] = kNoSatVar;
    if (!heap_.empty()) heap_sift_down(0);
    if (assign_[v] == kUndef) return v;
  }
  return kNoSatVar;
}

SolveStatus Solver::solve(const std::vector<SatLit>& assumptions,
                          const SolverBudget& budget) {
  ++stats_.solves;
  // Chaos hook: a scripted sat:N failure makes this call give up without
  // searching, exactly like an exhausted per-call budget.
  if (robust::inject_sat_failure()) {
    publish_counters();
    return SolveStatus::Unknown;
  }
  if (!ok_) {
    publish_counters();
    return SolveStatus::Unsat;
  }
  const std::uint64_t conflict_start = stats_.conflicts;
  const std::uint64_t prop_start = stats_.propagations;
  std::uint64_t restart_number = 0;
  std::uint64_t conflicts_until_restart = 100 * luby(1);
  std::uint64_t conflicts_this_restart = 0;
  std::vector<SatLit> learnt;
  SolveStatus result = SolveStatus::Unknown;

  for (;;) {
    // Cooperative cancellation: wind down with Unknown at the next
    // iteration. Checked like a budget (never throws) so callers deep in
    // ATPG loops always receive a three-valued answer.
    if (robust::cancel_requested()) break;
    const std::uint32_t confl = propagate();
    if (confl != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (decision_level() == 0) {
        ok_ = false;
        result = SolveStatus::Unsat;
        break;
      }
      unsigned bt_level = 0;
      analyze(confl, learnt, bt_level);
      backtrack_to(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        const std::uint32_t ci = static_cast<std::uint32_t>(clauses_.size());
        clauses_.push_back(learnt);
        attach_clause(ci);
        enqueue(learnt[0], ci);
        ++stats_.learned;
      }
      decay_activities();
      if (budget.max_conflicts != 0 &&
          stats_.conflicts - conflict_start >= budget.max_conflicts) {
        break;
      }
      if (budget.max_propagations != 0 &&
          stats_.propagations - prop_start >= budget.max_propagations) {
        break;
      }
      continue;
    }
    if (budget.max_propagations != 0 &&
        stats_.propagations - prop_start >= budget.max_propagations) {
      break;
    }
    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      ++restart_number;
      conflicts_until_restart = 100 * luby(restart_number + 1);
      conflicts_this_restart = 0;
      backtrack_to(0);
      continue;
    }
    // Re-establish the assumption prefix (levels 1..assumptions.size()).
    if (decision_level() < assumptions.size()) {
      const SatLit a = assumptions[decision_level()];
      const std::uint8_t v = value(a);
      if (v == kFalse) {
        // The assumption contradicts level-0 facts or earlier assumptions.
        backtrack_to(0);
        result = SolveStatus::Unsat;
        break;
      }
      trail_lim_.push_back(trail_.size());
      if (v == kUndef) enqueue(a, kNoReason);
      continue;
    }
    const SatVar next = pick_branch_var();
    if (next == kNoSatVar) {
      model_ = assign_;
      backtrack_to(0);
      result = SolveStatus::Sat;
      break;
    }
    ++stats_.decisions;
    trail_lim_.push_back(trail_.size());
    enqueue(mk_lit(next, phase_[next] == kFalse), kNoReason);
  }
  backtrack_to(0);
  // One tick per call plus one per conflict resolved: the work unit the
  // per-call SolverBudget already bounds deterministically.
  robust::charge(1 + (stats_.conflicts - conflict_start));
  publish_counters();
  return result;
}

void Solver::publish_counters() {
  if (!obs_enabled()) {
    published_ = stats_;
    return;
  }
  Counters::incr("sat.solves", stats_.solves - published_.solves);
  Counters::incr("sat.decisions", stats_.decisions - published_.decisions);
  Counters::incr("sat.conflicts", stats_.conflicts - published_.conflicts);
  Counters::incr("sat.propagations", stats_.propagations - published_.propagations);
  Counters::incr("sat.learned", stats_.learned - published_.learned);
  Counters::incr("sat.restarts", stats_.restarts - published_.restarts);
  published_ = stats_;
}

}  // namespace compsyn
