// Compact CDCL SAT solver (MiniSat lineage), the proof engine behind the
// sound verification paths: equivalence checking beyond the exhaustive
// limit, redundancy proofs for PODEM-aborted faults, and exact SDC
// reachability queries on circuits with many primary inputs.
//
// Features: two-watched-literal unit propagation, first-UIP conflict-clause
// learning with basic (reason-local) minimisation, VSIDS-style variable
// activities with exponential decay, phase saving, Luby restarts,
// incremental solving under assumptions, and a conflict/propagation budget
// that yields a three-valued result (Sat / Unsat / Unknown). Unsat and Sat
// are definitive; Unknown only means the budget ran out. The solver is
// fully deterministic: no randomness, no time-based heuristics.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/obs.hpp"

namespace compsyn {

using SatVar = std::uint32_t;
inline constexpr SatVar kNoSatVar = 0xffffffffu;

/// Literal: variable index and sign packed as (var << 1) | negated.
struct SatLit {
  std::uint32_t x = 0xffffffffu;

  SatVar var() const { return x >> 1; }
  bool negated() const { return (x & 1u) != 0; }
  bool operator==(const SatLit& o) const = default;
  bool operator<(const SatLit& o) const { return x < o.x; }
};

inline SatLit mk_lit(SatVar v, bool negated = false) {
  return SatLit{(v << 1) | static_cast<std::uint32_t>(negated)};
}
inline SatLit operator~(SatLit l) { return SatLit{l.x ^ 1u}; }
inline constexpr SatLit kNoSatLit{0xffffffffu};

enum class SolveStatus {
  Sat,      // satisfying assignment found (model available)
  Unsat,    // proven unsatisfiable under the given assumptions
  Unknown,  // budget exhausted before a verdict
};

const char* to_string(SolveStatus s);

/// Per-solve effort limits; 0 means unlimited. Budgets make every SAT-backed
/// query total: callers receive Unknown instead of an unbounded search.
struct SolverBudget {
  std::uint64_t max_conflicts = 0;
  std::uint64_t max_propagations = 0;
};

/// Cumulative effort statistics (across all solve() calls on this solver).
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t propagations = 0;  // literals propagated
  std::uint64_t learned = 0;       // conflict clauses learned
  std::uint64_t restarts = 0;
  std::uint64_t solves = 0;
};

class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns its index.
  SatVar new_var();
  std::size_t num_vars() const { return assign_.size(); }

  /// Adds a clause over existing variables. Tautologies are dropped,
  /// duplicate literals merged, level-0-false literals removed. Returns
  /// false iff the formula became trivially unsatisfiable (empty clause or
  /// level-0 conflict); the solver stays usable and reports Unsat.
  bool add_clause(std::vector<SatLit> lits);
  /// Convenience forms for the encoders.
  bool add_clause(SatLit a) { return add_clause(std::vector<SatLit>{a}); }
  bool add_clause(SatLit a, SatLit b) { return add_clause(std::vector<SatLit>{a, b}); }
  bool add_clause(SatLit a, SatLit b, SatLit c) {
    return add_clause(std::vector<SatLit>{a, b, c});
  }

  /// True until an unconditional (assumption-free) contradiction is derived.
  bool ok() const { return ok_; }

  /// Solves under the given assumption literals. Incremental: clauses learned
  /// in earlier calls are kept and assumptions may change between calls.
  SolveStatus solve(const std::vector<SatLit>& assumptions = {},
                    const SolverBudget& budget = {});

  /// Model value of a variable; valid after solve() returned Sat.
  bool model_value(SatVar v) const { return model_[v] == kTrue; }

  const SolverStats& stats() const { return stats_; }

  /// Flushes this solver's effort deltas into the global obs counters
  /// (sat.decisions, sat.conflicts, ...). Called automatically at the end of
  /// every solve(); idempotent between solves.
  void publish_counters();

 private:
  static constexpr std::uint8_t kFalse = 0, kTrue = 1, kUndef = 2;
  static constexpr std::uint32_t kNoReason = 0xffffffffu;

  struct Watcher {
    std::uint32_t clause = 0;
    SatLit blocker;  // fast skip: clause already true through this literal
  };

  std::uint8_t value(SatLit l) const {
    const std::uint8_t a = assign_[l.var()];
    return a == kUndef ? kUndef : static_cast<std::uint8_t>(a ^ l.negated());
  }
  unsigned level(SatVar v) const { return level_[v]; }
  unsigned decision_level() const { return static_cast<unsigned>(trail_lim_.size()); }

  void attach_clause(std::uint32_t ci);
  void enqueue(SatLit l, std::uint32_t reason);
  std::uint32_t propagate();  // returns conflicting clause index or kNoReason
  void analyze(std::uint32_t confl, std::vector<SatLit>& learnt, unsigned& bt_level);
  bool lit_redundant(SatLit l) const;
  void backtrack_to(unsigned level);
  void bump_var(SatVar v);
  void decay_activities();
  SatVar pick_branch_var();

  // Order heap (max-heap on activity) -----------------------------------
  void heap_insert(SatVar v);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  bool heap_better(SatVar a, SatVar b) const;

  bool ok_ = true;
  std::vector<std::vector<SatLit>> clauses_;      // problem + learned clauses
  std::size_t num_problem_clauses_ = 0;
  std::vector<std::vector<Watcher>> watches_;     // indexed by SatLit::x
  std::vector<std::uint8_t> assign_;              // per var: kFalse/kTrue/kUndef
  std::vector<std::uint8_t> model_;               // snapshot of last Sat assignment
  std::vector<std::uint8_t> phase_;               // saved polarity per var
  std::vector<unsigned> level_;
  std::vector<std::uint32_t> reason_;
  std::vector<SatLit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  static constexpr double kVarDecay = 0.95;
  std::vector<SatVar> heap_;
  std::vector<std::uint32_t> heap_pos_;  // kNoSatVar when not in heap

  std::vector<std::uint8_t> seen_;     // analyze() scratch
  std::vector<SatLit> minimize_buf_;   // analyze() scratch: pre-minimisation copy

  SolverStats stats_;
  SolverStats published_;  // counters already flushed to obs
};

/// The Luby restart sequence (1,1,2,1,1,2,4,...), 1-based.
std::uint64_t luby(std::uint64_t i);

}  // namespace compsyn
