#include "sat/tseitin.hpp"

#include <cassert>

namespace compsyn {
namespace {

/// Clause emitter with optional activation gating: when `gate` is a real
/// literal (the negated activation literal), it is appended to every clause,
/// so the whole constraint group holds only while solving under the
/// assumption ~gate and can later be retired for good by adding the unit
/// clause `gate` (sat/session.hpp).
struct ClauseSink {
  Solver& s;
  SatLit gate = kNoSatLit;

  SatVar new_var() { return s.new_var(); }
  void add(std::vector<SatLit> lits) {
    if (gate != kNoSatLit) lits.push_back(gate);
    s.add_clause(std::move(lits));
  }
  void add(SatLit a) { add(std::vector<SatLit>{a}); }
  void add(SatLit a, SatLit b) { add(std::vector<SatLit>{a, b}); }
  void add(SatLit a, SatLit b, SatLit c) { add(std::vector<SatLit>{a, b, c}); }
};

/// Clauses for out = AND(ins): (~out | in_i) for all i, (out | ~in_1 ... ~in_k).
void clauses_and(ClauseSink& s, SatLit out, const std::vector<SatLit>& ins) {
  std::vector<SatLit> big;
  big.reserve(ins.size() + 2);
  big.push_back(out);
  for (const SatLit in : ins) {
    s.add(~out, in);
    big.push_back(~in);
  }
  s.add(std::move(big));
}

/// Clauses for out = OR(ins): (out | ~in_i) for all i, (~out | in_1 ... in_k).
void clauses_or(ClauseSink& s, SatLit out, const std::vector<SatLit>& ins) {
  std::vector<SatLit> big;
  big.reserve(ins.size() + 2);
  big.push_back(~out);
  for (const SatLit in : ins) {
    s.add(out, ~in);
    big.push_back(in);
  }
  s.add(std::move(big));
}

/// Clauses for out = a XOR b (4 clauses).
void clauses_xor2(ClauseSink& s, SatLit out, SatLit a, SatLit b) {
  s.add(~out, a, b);
  s.add(~out, ~a, ~b);
  s.add(out, ~a, b);
  s.add(out, a, ~b);
}

/// Clauses for out = in (2 clauses).
void clauses_buf(ClauseSink& s, SatLit out, SatLit in) {
  s.add(~out, in);
  s.add(out, ~in);
}

/// Encodes one gate given its (possibly substituted) input literals. The
/// inverting types reuse the base encoders with a negated output literal.
void encode_gate(ClauseSink& s, GateType type, SatLit out,
                 const std::vector<SatLit>& ins) {
  switch (type) {
    case GateType::Input:
      return;  // free variable
    case GateType::Const0:
      s.add(~out);
      return;
    case GateType::Const1:
      s.add(out);
      return;
    case GateType::Buf:
      clauses_buf(s, out, ins[0]);
      return;
    case GateType::Not:
      clauses_buf(s, ~out, ins[0]);
      return;
    case GateType::And:
      clauses_and(s, out, ins);
      return;
    case GateType::Nand:
      clauses_and(s, ~out, ins);
      return;
    case GateType::Or:
      clauses_or(s, out, ins);
      return;
    case GateType::Nor:
      clauses_or(s, ~out, ins);
      return;
    case GateType::Xor:
    case GateType::Xnor: {
      // Fold the parity chain left to right through auxiliary variables;
      // the final stage writes the (possibly complemented) output literal.
      const SatLit out_eff = type == GateType::Xnor ? ~out : out;
      if (ins.size() == 1) {
        clauses_buf(s, out_eff, ins[0]);
        return;
      }
      SatLit acc = ins[0];
      for (std::size_t i = 1; i < ins.size(); ++i) {
        const SatLit stage =
            i + 1 == ins.size() ? out_eff : mk_lit(s.new_var(), false);
        clauses_xor2(s, stage, acc, ins[i]);
        acc = stage;
      }
      return;
    }
  }
}

/// Core encoder: encodes all live nodes, reusing `pinned[n]` as the variable
/// of node n when set (primary-input sharing, good/faulty copy sharing).
CircuitEncoding encode_with_pins(const Netlist& nl, Solver& solver,
                                 const std::vector<SatVar>& pinned) {
  ClauseSink s{solver};
  CircuitEncoding enc;
  enc.node_var.assign(nl.size(), kNoSatVar);
  for (const NodeId n : nl.topo_order()) {
    if (n < pinned.size() && pinned[n] != kNoSatVar) {
      enc.node_var[n] = pinned[n];
      continue;
    }
    enc.node_var[n] = s.new_var();
    const Node& nd = nl.node(n);
    std::vector<SatLit> ins;
    ins.reserve(nd.fanins.size());
    for (const NodeId f : nd.fanins) ins.push_back(enc.lit(f));
    encode_gate(s, nd.type, enc.lit(n), ins);
  }
  return enc;
}

/// Fresh XOR variable d = (a != b), returned as a literal.
SatLit encode_diff(ClauseSink& s, SatLit a, SatLit b) {
  const SatLit d = mk_lit(s.new_var(), false);
  clauses_xor2(s, d, a, b);
  return d;
}

std::vector<bool> read_pi_model(const Solver& s, const std::vector<SatVar>& pi_vars) {
  std::vector<bool> out(pi_vars.size());
  for (std::size_t i = 0; i < pi_vars.size(); ++i) {
    out[i] = s.model_value(pi_vars[i]);
  }
  return out;
}

}  // namespace

CircuitEncoding encode_circuit(const Netlist& nl, Solver& s) {
  return encode_with_pins(nl, s, {});
}

CircuitEncoding encode_circuit(const Netlist& nl, Solver& s,
                               const std::vector<SatVar>& pi_vars) {
  assert(pi_vars.size() == nl.inputs().size());
  std::vector<SatVar> pinned(nl.size(), kNoSatVar);
  for (std::size_t i = 0; i < pi_vars.size(); ++i) {
    pinned[nl.inputs()[i]] = pi_vars[i];
  }
  return encode_with_pins(nl, s, pinned);
}

std::vector<bool> MiterEncoding::counterexample(const Solver& s) const {
  return read_pi_model(s, pi_vars);
}

MiterEncoding encode_miter(const Netlist& a, const Netlist& b, Solver& s) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  MiterEncoding m;
  m.pi_vars.reserve(a.inputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) m.pi_vars.push_back(s.new_var());
  m.a = encode_circuit(a, s, m.pi_vars);
  m.b = encode_circuit(b, s, m.pi_vars);
  ClauseSink sink{s};
  std::vector<SatLit> any_diff;
  any_diff.reserve(a.outputs().size());
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    any_diff.push_back(
        encode_diff(sink, m.a.lit(a.outputs()[o]), m.b.lit(b.outputs()[o])));
  }
  sink.add(std::move(any_diff));
  return m;
}

void encode_miter_gated(const Netlist& a, const CircuitEncoding& ea,
                        const Netlist& b, const CircuitEncoding& eb,
                        Solver& s, SatLit act) {
  assert(a.inputs().size() == b.inputs().size());
  assert(a.outputs().size() == b.outputs().size());
  ClauseSink sink{s, ~act};
  // The copies were encoded over separate primary-input variables; bind
  // them pairwise (under the activation) so the miter ranges over one
  // shared input space.
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    clauses_buf(sink, ea.lit(a.inputs()[i]), eb.lit(b.inputs()[i]));
  }
  std::vector<SatLit> any_diff;
  any_diff.reserve(a.outputs().size());
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    any_diff.push_back(
        encode_diff(sink, ea.lit(a.outputs()[o]), eb.lit(b.outputs()[o])));
  }
  sink.add(std::move(any_diff));
}

std::vector<bool> FaultMiterEncoding::test(const Solver& s) const {
  return read_pi_model(s, pi_vars);
}

namespace {

/// Shared body of the fault-miter encoders. The good copy is `good` (already
/// present in the solver); every clause added here goes through `s`, whose
/// gating (if any) the caller chose.
FaultMiterEncoding encode_fault_miter_impl(const Netlist& nl,
                                           const StuckFault& fault,
                                           ClauseSink& s,
                                           CircuitEncoding good) {
  FaultMiterEncoding m;
  m.good = std::move(good);
  m.pi_vars.reserve(nl.inputs().size());
  for (const NodeId in : nl.inputs()) m.pi_vars.push_back(m.good.node_var[in]);

  // The faulty copy only differs inside the fault's output cone; every node
  // outside it shares the good copy's variable. The cone root is the faulted
  // stem, or the consuming gate for a branch fault.
  const NodeId root = fault.node;
  std::vector<char> in_cone(nl.size(), 0);
  std::vector<NodeId> stack{root};
  in_cone[root] = 1;
  const auto& fanouts = nl.fanouts();
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId y : fanouts[n]) {
      if (!in_cone[y]) {
        in_cone[y] = 1;
        stack.push_back(y);
      }
    }
  }

  // Constant literal for the stuck value (a pinned fresh variable).
  const SatLit stuck = mk_lit(s.new_var(), false);
  s.add(fault.value ? stuck : ~stuck);

  CircuitEncoding faulty;
  faulty.node_var.assign(nl.size(), kNoSatVar);
  for (const NodeId n : nl.topo_order()) {
    if (!in_cone[n]) {
      faulty.node_var[n] = m.good.node_var[n];
      continue;
    }
    faulty.node_var[n] = s.new_var();
    if (fault.is_stem() && n == root) {
      // The stem's faulty value IS the stuck constant; its gate function is
      // disconnected in the faulty machine.
      clauses_buf(s, faulty.lit(n), stuck);
      continue;
    }
    const Node& nd = nl.node(n);
    std::vector<SatLit> ins;
    ins.reserve(nd.fanins.size());
    for (std::size_t p = 0; p < nd.fanins.size(); ++p) {
      if (!fault.is_stem() && n == root && static_cast<int>(p) == fault.pin) {
        ins.push_back(stuck);  // only this branch sees the stuck value
      } else {
        ins.push_back(faulty.lit(nd.fanins[p]));
      }
    }
    encode_gate(s, nd.type, faulty.lit(n), ins);
  }

  // Activation: the good value of the faulted line must be the opposite of
  // the stuck value (implied by detection; stated explicitly to prune).
  const NodeId driver =
      fault.is_stem() ? root
                      : nl.node(root).fanins[static_cast<std::size_t>(fault.pin)];
  s.add(m.good.lit(driver, /*negated=*/fault.value));

  // D-constraint: some primary output differs between the two machines.
  std::vector<SatLit> any_diff;
  for (const NodeId o : nl.outputs()) {
    if (!in_cone[o]) continue;  // identical by construction
    any_diff.push_back(encode_diff(s, m.good.lit(o), faulty.lit(o)));
  }
  if (any_diff.empty()) {
    // The fault reaches no output: untestable by construction. (Under a
    // gate, the empty clause reduces to the unit ~act: the query, not the
    // whole formula, becomes unsatisfiable.)
    s.add(std::vector<SatLit>{});
  } else {
    s.add(std::move(any_diff));
  }
  return m;
}

}  // namespace

FaultMiterEncoding encode_fault_miter(const Netlist& nl, const StuckFault& fault,
                                      Solver& s) {
  ClauseSink sink{s};
  return encode_fault_miter_impl(nl, fault, sink, encode_circuit(nl, s));
}

FaultMiterEncoding encode_fault_miter_gated(const Netlist& nl,
                                            const StuckFault& fault, Solver& s,
                                            const CircuitEncoding& good,
                                            SatLit act) {
  ClauseSink sink{s, ~act};
  return encode_fault_miter_impl(nl, fault, sink, good);
}

}  // namespace compsyn
