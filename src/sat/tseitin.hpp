// Tseitin CNF encoding of a Netlist: one solver variable per live node, one
// clause set per gate (linear in circuit size), so any question about signal
// values becomes a SAT query. Three encoders are provided:
//
//  * encode_circuit     -- one copy, fresh primary-input variables;
//  * encode_miter       -- two interface-compatible circuits over SHARED
//                          primary inputs plus the standard CEC miter
//                          constraint (some output pair differs);
//  * encode_fault_miter -- good/faulty copies of one circuit for a single
//                          stuck-at fault (faulty copy only re-encodes the
//                          fault's output cone) plus the D-constraint, the
//                          standard SAT-ATPG fault encoding.
//
// Satisfying models are read back through the stored variable maps, giving
// counterexamples (CEC) and tests (ATPG) as primary-input assignments.
#pragma once

#include <vector>

#include "faults/fault.hpp"
#include "netlist/netlist.hpp"
#include "sat/solver.hpp"

namespace compsyn {

/// Node-to-variable map of one encoded circuit copy.
struct CircuitEncoding {
  std::vector<SatVar> node_var;  // indexed by NodeId; kNoSatVar for dead nodes

  bool has(NodeId n) const {
    return n < node_var.size() && node_var[n] != kNoSatVar;
  }
  SatLit lit(NodeId n, bool negated = false) const {
    return mk_lit(node_var[n], negated);
  }
};

/// Encodes every live node of `nl` into `s` with fresh variables.
CircuitEncoding encode_circuit(const Netlist& nl, Solver& s);

/// As encode_circuit, but inputs()[i] is bound to pi_vars[i] instead of a
/// fresh variable (pi_vars.size() must equal nl.inputs().size()).
CircuitEncoding encode_circuit(const Netlist& nl, Solver& s,
                               const std::vector<SatVar>& pi_vars);

/// CEC miter over shared inputs: the added constraint is satisfiable iff the
/// circuits differ on some input. Interfaces must match positionally.
struct MiterEncoding {
  CircuitEncoding a;
  CircuitEncoding b;
  std::vector<SatVar> pi_vars;  // shared primary-input variables

  /// Reads the differing input assignment out of a Sat model.
  std::vector<bool> counterexample(const Solver& s) const;
};
MiterEncoding encode_miter(const Netlist& a, const Netlist& b, Solver& s);

/// Stuck-at fault miter: good copy, cone-limited faulty copy with the fault
/// line tied to its stuck value, activation constraint on the good line, and
/// the D-constraint (good and faulty outputs differ). Satisfiable iff the
/// fault is testable; the model is a test.
struct FaultMiterEncoding {
  CircuitEncoding good;
  std::vector<SatVar> pi_vars;

  /// Reads the detecting test out of a Sat model.
  std::vector<bool> test(const Solver& s) const;
};
FaultMiterEncoding encode_fault_miter(const Netlist& nl, const StuckFault& fault,
                                      Solver& s);

// Activation-gated variants (sat/session.hpp). Every clause added by these
// encoders carries the extra literal ~act, so the constraint group binds only
// while solving under the assumption `act`; adding the unit clause ~act
// afterwards retires the group permanently (its clauses become satisfied and
// inert). The circuit copies themselves are NOT added here -- they are pure
// definitions, safe to keep ungated and share across queries.

/// Fault miter over an existing (ungated) encoding of `nl`: gated faulty
/// cone, activation constraint, and D-constraint.
FaultMiterEncoding encode_fault_miter_gated(const Netlist& nl,
                                            const StuckFault& fault, Solver& s,
                                            const CircuitEncoding& good,
                                            SatLit act);

/// CEC miter constraint between two circuits already encoded (over separate
/// primary-input variables): gated pairwise PI binding plus the gated
/// some-output-differs constraint. Satisfiable under {act} iff they differ.
void encode_miter_gated(const Netlist& a, const CircuitEncoding& ea,
                        const Netlist& b, const CircuitEncoding& eb,
                        Solver& s, SatLit act);

}  // namespace compsyn
