#include "serve/cache.hpp"

#include "core/signature.hpp"
#include "robust/checkpoint.hpp"

namespace compsyn::serve {

std::uint64_t ResultCache::key_of(const std::string& canonical_bench,
                                  const std::string& option_key) {
  return signature_mix(robust::fnv1a64(canonical_bench),
                       robust::fnv1a64(option_key));
}

std::uint64_t ResultCache::entry_bytes(const Entry& e) {
  // Accounting is intentionally coarse (string payloads dominate); the Json
  // report is charged at its serialized size.
  return e.canonical_bench.size() + e.option_key.size() +
         e.result.status.size() + e.result.bench.size() +
         e.result.stdout_text.size() + e.result.report.dump().size() + 128;
}

bool ResultCache::lookup(const std::string& canonical_bench,
                         const std::string& option_key, CachedResult* out) {
  if (max_bytes_ == 0) {
    ++misses_;
    return false;
  }
  const std::uint64_t key = key_of(canonical_bench, option_key);
  auto [lo, hi] = index_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    const Entry& e = it->second->second;
    if (e.canonical_bench == canonical_bench && e.option_key == option_key) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      ++hits_;
      if (out != nullptr) *out = e.result;
      return true;
    }
    ++collisions_;
  }
  ++misses_;
  return false;
}

void ResultCache::insert(const std::string& canonical_bench,
                         const std::string& option_key, CachedResult result) {
  if (max_bytes_ == 0) return;
  const std::uint64_t key = key_of(canonical_bench, option_key);
  // Refresh in place if the entry already exists (re-executed after a
  // colliding probe, or raced in by an earlier identical job).
  auto [lo, hi] = index_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    Entry& e = it->second->second;
    if (e.canonical_bench == canonical_bench && e.option_key == option_key) {
      bytes_ -= e.size_bytes;
      e.result = std::move(result);
      e.size_bytes = entry_bytes(e);
      bytes_ += e.size_bytes;
      lru_.splice(lru_.begin(), lru_, it->second);
      evict_to_budget();
      return;
    }
  }
  Entry e;
  e.canonical_bench = canonical_bench;
  e.option_key = option_key;
  e.result = std::move(result);
  e.size_bytes = entry_bytes(e);
  if (e.size_bytes > max_bytes_) return;  // would evict everything for nothing
  bytes_ += e.size_bytes;
  lru_.emplace_front(key, std::move(e));
  index_.emplace(key, lru_.begin());
  evict_to_budget();
}

std::vector<ResultCache::SnapshotEntry> ResultCache::snapshot() const {
  std::vector<SnapshotEntry> out;
  out.reserve(lru_.size());
  for (const auto& [key, e] : lru_) {
    out.push_back(SnapshotEntry{e.canonical_bench, e.option_key, e.result});
  }
  return out;
}

void ResultCache::evict_to_budget() {
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    auto victim = std::prev(lru_.end());
    auto [lo, hi] = index_.equal_range(victim->first);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == victim) {
        index_.erase(it);
        break;
      }
    }
    bytes_ -= victim->second.size_bytes;
    lru_.erase(victim);
    ++evictions_;
  }
}

}  // namespace compsyn::serve
