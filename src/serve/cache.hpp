// Content-addressed cross-job result cache (DESIGN.md §13.3).
//
// Keyed by what the job *means*, not what it looked like on the wire: the
// input netlist is canonicalised through the same .bench round-trip the
// checkpoint machinery uses (parse -> write_bench_string), so two textually
// different descriptions of the same circuit share one entry, and the key
// is the structural FNV-1a fingerprint of that canonical text (the same
// robust::fnv1a64 the SatSession and checkpoint formats already use) mixed
// with the fingerprint of the job's option key via signature_mix. A 64-bit
// key is never trusted alone: every probe is confirmed by an exact compare
// of the stored canonical text and option key (the SatSession /
// identification-memo rule), so a fingerprint collision costs one string
// compare and can never serve a wrong result.
//
// Eviction is bounded-memory LRU with a deterministic order: entries carry
// the ordinal of their last touch, ordinals advance only when the (serial)
// executor looks up or inserts, and eviction removes the
// smallest-last-touch entry until the byte budget holds. Given the same job
// sequence, the cache's hit/miss/evict trace is therefore identical on
// every run -- there is no wall-clock or address-order dependence anywhere.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/json.hpp"

namespace compsyn::serve {

/// What a hit serves back: the executed job's three artifacts plus its
/// terminal status ("ok" or "degraded"; nothing else is cached).
struct CachedResult {
  std::string status;
  std::string bench;
  Json report;
  std::string stdout_text;
};

class ResultCache {
 public:
  /// `max_bytes` bounds the sum of entry sizes (canonical text + artifacts);
  /// 0 disables caching entirely (lookups miss, inserts drop).
  explicit ResultCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Fingerprint of (canonical bench text, option key). Exposed for tests.
  static std::uint64_t key_of(const std::string& canonical_bench,
                              const std::string& option_key);

  /// Probes the cache. On a fingerprint match the stored canonical text and
  /// option key are compared exactly; only a confirmed match returns true
  /// (and refreshes the entry's LRU ordinal).
  bool lookup(const std::string& canonical_bench, const std::string& option_key,
              CachedResult* out);

  /// Inserts (or refreshes) an entry, then evicts least-recently-touched
  /// entries until the byte budget holds. An entry larger than the whole
  /// budget is dropped immediately.
  void insert(const std::string& canonical_bench, const std::string& option_key,
              CachedResult result);

  /// One live entry, as needed to rebuild the cache (WAL compaction).
  struct SnapshotEntry {
    std::string canonical_bench;
    std::string option_key;
    CachedResult result;
  };

  /// Every live entry, most-recently-touched first (deterministic order).
  /// Used by the daemon to compact the job journal down to its cache.
  std::vector<SnapshotEntry> snapshot() const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t collisions() const { return collisions_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t entries() const { return lru_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string canonical_bench;  // exact-confirm guard
    std::string option_key;       // exact-confirm guard
    CachedResult result;
    std::uint64_t size_bytes = 0;
  };
  // LRU list, most-recent at the front; the map points into it. Keyed by
  // the 64-bit fingerprint -- multiple semantically distinct entries behind
  // one fingerprint are legal (chained in the list, all exact-confirmed).
  using LruList = std::list<std::pair<std::uint64_t, Entry>>;

  static std::uint64_t entry_bytes(const Entry& e);
  void evict_to_budget();

  std::uint64_t max_bytes_;
  LruList lru_;
  std::unordered_multimap<std::uint64_t, LruList::iterator> index_;
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t collisions_ = 0;  // fingerprint matched, exact confirm failed
  std::uint64_t evictions_ = 0;
};

}  // namespace compsyn::serve
