#include "serve/job.hpp"

#include <optional>
#include <sstream>

#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "core/comparison.hpp"
#include "core/resynth.hpp"
#include "gen/circuits.hpp"
#include "netlist/equivalence.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "paths/paths.hpp"
#include "robust/robust.hpp"
#include "sat/cec.hpp"
#include "sat/session.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace compsyn::serve {
namespace {

/// Mirrors resynth_flow's path_total_json: plain number normally, the
/// ">=2^63" string once saturated.
Json path_total_json(std::uint64_t total) {
  if (total >= kPathCountSaturated) return Json(format_path_total(total));
  return Json(total);
}

ResynthOptions resynth_options(const JobSpec& spec) {
  ResynthOptions opt;
  if (spec.proc == "combined") {
    opt.objective = ResynthObjective::Combined;
    opt.weight_gates = spec.weight_gates;
    opt.weight_paths = spec.weight_paths;
  } else if (spec.proc == "3") {
    opt.objective = ResynthObjective::Paths;
    opt.allow_gate_increase = true;
  } else {
    opt.objective = ResynthObjective::Gates;
  }
  opt.k = spec.k;
  return opt;
}

}  // namespace

Json job_error_report(const char* status, const std::string& message) {
  RunReport report("resynth_flow");
  report.set_meta("status", status);
  if (!message.empty()) report.set_meta("error", message);
  return report.to_json();
}

void begin_job_isolation() {
  Counters::reset();
  Trace::reset();
  Histogram::reset();
  telemetry_reset();
  clear_exact_identification_memo();
}

JobExecution run_resynth_job(const JobSpec& spec) {
  JobExecution out;
  const auto verify = parse_verify_mode(spec.verify);
  const auto backend = parse_sat_backend(spec.sat);
  if (!verify || !backend) {  // from_json validated already; belt and braces
    out.status = "error";
    out.error = "invalid verify/sat mode";
    out.report = job_error_report("error", out.error);
    return out;
  }
  set_sat_backend(*backend);

  // Per-job robustness scopes, mirroring flow_main: the budget is installed
  // whenever a robust flag is present (limit 0 still counts ticks), the
  // watchdog only when a deadline was given.
  robust::Budget budget(spec.budget, 0);
  std::optional<robust::BudgetScope> budget_scope;
  if (spec.robust_active()) budget_scope.emplace(budget);
  robust::DeadlineWatchdog watchdog(spec.deadline);

  std::ostringstream cout;  // the flow's stdout, captured
  try {
    RunReport report("resynth_flow");
    RedundancyRemovalOptions rr_opt;
    rr_opt.sat_fallback = *verify != VerifyMode::Sim;
    Netlist nl;
    try {
      nl = spec.bench.empty()
               ? make_benchmark(spec.circuit)
               : read_bench_string(spec.bench,
                                   bench_name_from_path(spec.circuit));
    } catch (const InputError&) {
      throw;
    } catch (const robust::CancelledError&) {
      throw;
    } catch (const std::exception& e) {
      throw InputError(e.what());
    }

    cout << "circuit " << nl.name() << ": " << nl.inputs().size()
         << " inputs, " << nl.outputs().size() << " outputs, "
         << nl.equivalent_gate_count() << " equivalent 2-input gates\n";

    robust::StopReason degraded_reason = robust::StopReason::None;
    auto note_stage = [&](robust::RunStatus s, robust::StopReason r) {
      if (s == robust::RunStatus::Degraded &&
          degraded_reason == robust::StopReason::None) {
        degraded_reason = r;
      }
    };

    Netlist original;
    {
      PhaseScope phase_rr0("redundancy_removal");
      auto rr0 = remove_redundancies(nl, rr_opt);
      if (rr0.status == robust::RunStatus::Interrupted) {
        throw robust::CancelledError(rr0.stop_reason);
      }
      note_stage(rr0.status, rr0.stop_reason);
      cout << "redundancy removal: " << rr0.removed
           << " substitutions (irredundant start, as in the paper)\n";
      original = nl.compacted();
      cout << "irredundant: " << original.equivalent_gate_count() << " gates, "
           << format_path_total(count_paths_clamped(original).total)
           << " paths, depth " << original.depth() << "\n";
    }

    ResynthStats st;
    {
      PhaseScope phase_resynth("resynth");
      if (spec.proc == "combined") {
        st = resynthesize(nl, resynth_options(spec));
      } else {
        st = spec.proc == "3" ? procedure3(nl, spec.k) : procedure2(nl, spec.k);
      }
    }
    if (st.status == robust::RunStatus::Interrupted) {
      throw robust::CancelledError(st.stop_reason);
    }
    note_stage(st.status, st.stop_reason);
    if (spec.proc == "combined") {
      cout << "Combined objective (K=" << spec.k << ", wg=" << spec.weight_gates
           << ", wp=" << spec.weight_paths << "): " << st.replacements
           << " replacements over " << st.passes << " pass(es)\n";
    } else {
      cout << "Procedure " << spec.proc << " (K=" << spec.k
           << "): " << st.replacements << " replacements over " << st.passes
           << " pass(es)\n";
    }
    cout << "  gates " << st.gates_before << " -> " << st.gates_after
         << "\n  paths " << format_path_total(st.paths_before) << " -> "
         << format_path_total(st.paths_after) << "\n";
    for (const ResynthPassRecord& pr : st.history) {
      cout << "  pass " << pr.pass << ": " << pr.replacements
           << " replacement(s) -> " << pr.gates << " gates, "
           << format_path_total(pr.paths) << " paths\n";
    }
    if (st.status == robust::RunStatus::Degraded) {
      cout << "resynthesis degraded (" << robust::to_string(st.stop_reason)
           << " after " << robust::ticks_consumed()
           << " ticks): best-so-far result, every committed replacement "
              "verified\n";
    }

    std::optional<PhaseScope> phase_rr1;
    phase_rr1.emplace("redundancy_removal_post");
    auto rr1 = remove_redundancies(nl, rr_opt);
    phase_rr1.reset();
    if (rr1.status == robust::RunStatus::Interrupted) {
      throw robust::CancelledError(rr1.stop_reason);
    }
    note_stage(rr1.status, rr1.stop_reason);
    if (rr1.removed) {
      cout << "post-resynthesis redundancy removal: " << rr1.removed
           << " substitutions -> " << nl.equivalent_gate_count() << " gates, "
           << format_path_total(count_paths_clamped(nl).total) << " paths\n";
    } else {
      cout << "no redundant stuck-at faults after resynthesis\n";
    }
    cout << "depth: " << original.depth() << " -> " << nl.depth() << "\n";

    Rng rng(1);
    std::optional<SatSession> verify_session;
    if (*verify != VerifyMode::Sim && sat_backend() == SatBackend::Session) {
      verify_session.emplace();
    }
    std::optional<PhaseScope> phase_verify;
    phase_verify.emplace("verify");
    auto eq = *verify == VerifyMode::Sim
                  ? check_equivalent(original, nl, rng, 128)
                  : check_equivalent_mode(original, nl, rng, *verify, 128,
                                          kDefaultExhaustiveLimit,
                                          {kDefaultCecConflicts, 0},
                                          verify_session ? &*verify_session
                                                         : nullptr);
    phase_verify.reset();
    if (robust::cancel_requested()) {
      throw robust::CancelledError(robust::cancel_reason());
    }
    std::string how =
        eq.exhaustive ? " (proved exhaustively)" : " (random vectors)";
    if (*verify != VerifyMode::Sim && !eq.exhaustive && eq.proven) {
      how = eq.equivalent ? " (proved by SAT)" : " (SAT counterexample)";
    }
    cout << "function preserved: " << (eq.equivalent ? "yes" : "NO") << how
         << "\n";

    out.bench = write_bench_string(nl.compacted());

    const bool degraded = degraded_reason != robust::StopReason::None;
    report.set_meta("circuit", spec.circuit);
    report.set_meta("proc", spec.proc);
    report.set_meta("k", static_cast<std::uint64_t>(spec.k));
    report.set_meta("gates_before", st.gates_before);
    report.set_meta("gates_after", st.gates_after);
    report.set_meta("paths_before", path_total_json(st.paths_before));
    report.set_meta("paths_after", path_total_json(st.paths_after));
    report.set_meta("function_preserved", eq.equivalent);
    report.set_meta("verify", spec.verify);
    report.set_meta("verify_proven", eq.proven);
    if (spec.robust_active() || degraded) {
      report.set_meta("status", degraded ? "degraded" : "ok");
      if (degraded) {
        report.set_meta("stop_reason", robust::to_string(degraded_reason));
      }
      report.set_meta("ticks", robust::ticks_consumed());
      if (spec.budget != 0) report.set_meta("budget", spec.budget);
    }
    for (const ResynthPassRecord& pr : st.history) {
      Json rec = Json::object();
      rec.set("pass", static_cast<std::uint64_t>(pr.pass));
      rec.set("replacements", pr.replacements);
      rec.set("gates", pr.gates);
      rec.set("paths", path_total_json(pr.paths));
      report.add_record("passes", std::move(rec));
    }
    out.report = report.to_json();
    out.stdout_text = cout.str();
    if (!eq.equivalent) {
      out.status = "error";
      out.error = "verification failed: function not preserved";
      out.cacheable = false;
    } else {
      out.status = degraded ? "degraded" : "ok";
      // Deterministic outcomes only: a deadline makes the stop point
      // wall-clock dependent, so those results are never served twice.
      out.cacheable = spec.deadline <= 0.0;
    }
    return out;
  } catch (const robust::CancelledError& e) {
    const char* status = e.reason == robust::StopReason::Budget ||
                                 e.reason == robust::StopReason::Injected
                             ? "degraded"
                             : "interrupted";
    out.status = status;
    out.error = robust::to_string(e.reason);
    out.report = job_error_report(status, out.error);
    out.stdout_text = cout.str();
    return out;
  } catch (const InputError& e) {
    out.status = "error";
    out.error = e.what();
    out.report = job_error_report("error", out.error);
    return out;
  } catch (const std::invalid_argument& e) {
    out.status = "error";
    out.error = e.what();
    out.report = job_error_report("error", out.error);
    return out;
  } catch (const std::exception& e) {
    out.status = "error";
    out.error = std::string("internal error: ") + e.what();
    out.report = job_error_report("error", out.error);
    return out;
  }
}

}  // namespace compsyn::serve
