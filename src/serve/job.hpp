// In-process execution of one serve job: the exact one-shot `resynth_flow`
// pipeline (redundancy removal -> Procedure 2/3/combined -> redundancy
// removal -> equivalence check), producing the same three artifacts a
// one-shot run would leave behind -- the resynthesized .bench text, the run
// report JSON, and the stdout text -- byte-identical to
// `resynth_flow <flags> <circuit>` after masking the report's wall-clock
// fields (DESIGN.md §13.2).
//
// Byte-identity holds because (a) run_resynth_job mirrors the flow binary's
// default (non-checkpoint) code path statement for statement, and (b) the
// executor calls begin_job_isolation() first, which resets every piece of
// mutable global observability state a fresh process would start without
// (counters, spans, distributions, telemetry, and the calling thread's
// exact-identification memo). Engine *results* never depend on that state
// -- every cache in the repo exact-confirms its hits -- but the counter
// streams embedded in reports do, and reports are part of the contract.
#pragma once

#include <iosfwd>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

namespace compsyn::serve {

/// Outcome of an executed (not cache-served) job.
struct JobExecution {
  std::string status;       // "ok" | "degraded" | "interrupted" | "error"
  std::string error;        // set when status is "interrupted"/"error"
  std::string bench;        // write_bench of the final compacted netlist
  Json report;              // resynth_flow-shaped report document
  std::string stdout_text;  // the flow's stdout, byte-identical
  bool cacheable = false;   // deterministic outcome, safe to serve again
};

/// The guard_main error-report shape (robust/guard.cpp) for jobs that never
/// produced a full report: {"name":"resynth_flow", meta.status, meta.error}.
/// Used for cancelled/failed jobs and for queued jobs a drain abandons.
Json job_error_report(const char* status, const std::string& message);

/// Resets the global state a fresh resynth_flow process would not have:
/// obs counters/distributions, span aggregates, histograms, extended
/// telemetry, and this thread's exact-identification memo. Must run on the
/// executor thread, outside any parallel region, with no job in flight.
void begin_job_isolation();

/// Runs one job to completion on the calling thread. Installs the per-job
/// budget scope and deadline watchdog, catches CancelledError (per-job
/// degradation -- the daemon outlives its jobs), and never throws for
/// malformed input (BenchParseError diagnostics come back in .error).
/// Signal cancellations are NOT absorbed: status "interrupted" with the
/// cancel flag left pending, so the server can drain.
JobExecution run_resynth_job(const JobSpec& spec);

}  // namespace compsyn::serve
