#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace compsyn::serve {
namespace {

/// Reads exactly n bytes. Distinguishes clean EOF before the first byte
/// (Eof) from EOF mid-buffer (Truncated).
FrameStatus read_exact(int fd, char* buf, std::size_t n, std::string* error,
                       const std::function<bool()>& should_stop) {
  std::size_t got = 0;
  while (got < n) {
    if (should_stop && should_stop()) return FrameStatus::Stopped;
    struct pollfd pfd = {fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("poll: ") + std::strerror(errno);
      return FrameStatus::Error;
    }
    if (pr == 0) continue;  // timeout: re-check should_stop
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("read: ") + std::strerror(errno);
      return FrameStatus::Error;
    }
    if (r == 0) return got == 0 ? FrameStatus::Eof : FrameStatus::Truncated;
    got += static_cast<std::size_t>(r);
  }
  return FrameStatus::Ok;
}

bool write_all(int fd, const char* buf, std::size_t n, std::string* error) {
  std::size_t put = 0;
  while (put < n) {
    const ssize_t w = ::write(fd, buf + put, n - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = std::string("write: ") + std::strerror(errno);
      return false;
    }
    put += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

FrameStatus read_frame(int fd, std::string* payload, std::string* error,
                       const std::function<bool()>& should_stop,
                       std::uint32_t max_payload) {
  char head[4];
  FrameStatus st = read_exact(fd, head, 4, error, should_stop);
  if (st == FrameStatus::Truncated && error != nullptr) {
    *error = "stream ended inside a length prefix";
  }
  if (st != FrameStatus::Ok) return st;
  const std::uint32_t len = (static_cast<std::uint32_t>(
                                 static_cast<unsigned char>(head[0]))
                             << 24) |
                            (static_cast<std::uint32_t>(
                                 static_cast<unsigned char>(head[1]))
                             << 16) |
                            (static_cast<std::uint32_t>(
                                 static_cast<unsigned char>(head[2]))
                             << 8) |
                            static_cast<std::uint32_t>(
                                static_cast<unsigned char>(head[3]));
  if (len == 0 || len > max_payload) {
    if (error != nullptr) {
      *error = "frame length " + std::to_string(len) +
               (len == 0 ? " (empty frames are invalid)"
                         : " exceeds the " + std::to_string(max_payload) +
                               "-byte limit");
    }
    return FrameStatus::TooLarge;
  }
  payload->resize(len);
  st = read_exact(fd, payload->data(), len, error, should_stop);
  if (st == FrameStatus::Eof || st == FrameStatus::Truncated) {
    if (error != nullptr) {
      *error = "stream ended inside a " + std::to_string(len) +
               "-byte frame payload";
    }
    return FrameStatus::Truncated;
  }
  return st;
}

bool write_frame(int fd, std::string_view payload, std::string* error,
                 std::uint32_t max_payload) {
  if (payload.empty() || payload.size() > max_payload) {
    if (error != nullptr) {
      *error = "refusing to write a " + std::to_string(payload.size()) +
               "-byte frame";
    }
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char head[4] = {static_cast<char>(len >> 24), static_cast<char>(len >> 16),
                  static_cast<char>(len >> 8), static_cast<char>(len)};
  return write_all(fd, head, 4, error) &&
         write_all(fd, payload.data(), payload.size(), error);
}

bool write_message(int fd, const Json& message, std::string* error) {
  return write_frame(fd, message.dump(), error);
}

std::string JobSpec::option_key() const {
  std::string key;
  key.reserve(128);
  key += "circuit=";
  key += circuit;
  key += "|proc=";
  key += proc;
  key += "|k=";
  key += std::to_string(k);
  key += "|wg=";
  key += Json(weight_gates).dump();  // exact double round-trip formatting
  key += "|wp=";
  key += Json(weight_paths).dump();
  key += "|verify=";
  key += verify;
  key += "|sat=";
  key += sat;
  key += "|budget=";
  key += std::to_string(budget);
  return key;
}

Json JobSpec::to_json() const {
  Json j = Json::object();
  j.set("type", "job");
  j.set("id", id);
  j.set("circuit", circuit);
  if (!bench.empty()) j.set("bench", bench);
  j.set("proc", proc);
  j.set("k", static_cast<std::uint64_t>(k));
  j.set("weight_gates", weight_gates);
  j.set("weight_paths", weight_paths);
  j.set("verify", verify);
  j.set("sat", sat);
  if (budget != 0) j.set("budget", budget);
  if (deadline > 0.0) j.set("deadline", deadline);
  return j;
}

std::optional<JobSpec> JobSpec::from_json(const Json& j, std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<JobSpec> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("job message is not an object");
  JobSpec spec;
  const Json* f = j.find("id");
  if (f == nullptr || f->type() != Json::Type::String) {
    return fail("job message missing string 'id'");
  }
  spec.id = f->as_string();
  f = j.find("circuit");
  if (f == nullptr || f->type() != Json::Type::String || f->as_string().empty()) {
    return fail("job message missing non-empty string 'circuit'");
  }
  spec.circuit = f->as_string();
  if ((f = j.find("bench")) != nullptr) {
    if (f->type() != Json::Type::String) return fail("'bench' must be a string");
    spec.bench = f->as_string();
  }
  if ((f = j.find("proc")) != nullptr) spec.proc = f->as_string();
  if (spec.proc != "2" && spec.proc != "3" && spec.proc != "combined") {
    return fail("'proc' must be \"2\", \"3\", or \"combined\"");
  }
  if ((f = j.find("k")) != nullptr) {
    const std::uint64_t k = f->as_u64();
    if (k == 0 || k > 16) return fail("'k' must be in [1, 16]");
    spec.k = static_cast<unsigned>(k);
  }
  if ((f = j.find("weight_gates")) != nullptr) spec.weight_gates = f->as_double();
  if ((f = j.find("weight_paths")) != nullptr) spec.weight_paths = f->as_double();
  if ((f = j.find("verify")) != nullptr) spec.verify = f->as_string();
  if (spec.verify != "sim" && spec.verify != "sat" && spec.verify != "both") {
    return fail("'verify' must be \"sim\", \"sat\", or \"both\"");
  }
  if ((f = j.find("sat")) != nullptr) spec.sat = f->as_string();
  if (spec.sat != "session" && spec.sat != "oneshot") {
    return fail("'sat' must be \"session\" or \"oneshot\"");
  }
  if ((f = j.find("budget")) != nullptr) spec.budget = f->as_u64();
  if ((f = j.find("deadline")) != nullptr) spec.deadline = f->as_double();
  return spec;
}

Json JobResult::to_json() const {
  Json j = Json::object();
  j.set("type", "result");
  j.set("id", id);
  j.set("status", status);
  j.set("cache", cache_hit ? "hit" : "miss");
  if (!error.empty()) j.set("error", error);
  if (!bench.empty()) j.set("bench", bench);
  if (report.is_object()) j.set("report", report);
  if (!stdout_text.empty()) j.set("stdout", stdout_text);
  j.set("wall_ms", wall_ms);
  if (retry_after_ms > 0) j.set("retry_after_ms", retry_after_ms);
  return j;
}

std::optional<JobResult> JobResult::from_json(const Json& j,
                                              std::string* error) {
  auto fail = [&](const std::string& why) -> std::optional<JobResult> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!j.is_object()) return fail("result message is not an object");
  JobResult r;
  const Json* f = j.find("id");
  if (f == nullptr) return fail("result missing 'id'");
  r.id = f->as_string();
  f = j.find("status");
  if (f == nullptr) return fail("result missing 'status'");
  r.status = f->as_string();
  if ((f = j.find("cache")) != nullptr) r.cache_hit = f->as_string() == "hit";
  if ((f = j.find("error")) != nullptr) r.error = f->as_string();
  if ((f = j.find("bench")) != nullptr) r.bench = f->as_string();
  if ((f = j.find("report")) != nullptr) r.report = *f;
  if ((f = j.find("stdout")) != nullptr) r.stdout_text = f->as_string();
  if ((f = j.find("wall_ms")) != nullptr) r.wall_ms = f->as_double();
  if ((f = j.find("retry_after_ms")) != nullptr) r.retry_after_ms = f->as_u64();
  return r;
}

}  // namespace compsyn::serve
