// The compsyn-serve-v1 wire protocol (DESIGN.md §13).
//
// Transport: a byte stream (Unix-domain socket or a stdio pipe) carrying a
// sequence of *frames*. One frame is a 4-byte big-endian payload length
// followed by that many bytes of UTF-8 JSON (one message per frame, compact
// or pretty -- the strict obs parser decides). Length 0 is invalid; lengths
// above the receiver's limit (kMaxFramePayload by default) are a protocol
// error: the receiver answers with an "error" message and drops the
// connection, because the stream position after an oversized or truncated
// frame is unrecoverable. Malformed *payloads* (bad JSON, missing fields,
// unparseable .bench) are recoverable: they yield a per-message "error" or
// per-job "result" with status "error", and the connection keeps serving.
//
// Messages (JSON objects, discriminated by "type"):
//   client -> server
//     {"type":"job", "id":..., "circuit":..., ["bench":...,] job flags...}
//     {"type":"ping"}              liveness probe
//     {"type":"stats"}             daemon counters snapshot
//     {"type":"shutdown"}          drain queued jobs, then exit 0
//   server -> client
//     {"type":"result", "id":..., "status":"ok|degraded|interrupted|error",
//      "cache":"hit|miss", ["error":...,] ["bench":..., "report":{...},
//      "stdout":...,] "wall_ms":...}
//     {"type":"pong", "schema":"compsyn-serve-v1"}
//     {"type":"stats", ...counters}
//     {"type":"bye", "jobs_served":N}
//     {"type":"error", "error":...}   protocol-level failure
//
// Framing helpers here are plain blocking-fd functions with an optional
// should_stop predicate (polled every kPollIntervalMs) so reader threads
// wind down promptly when the daemon drains.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "obs/json.hpp"

namespace compsyn::serve {

inline constexpr const char* kServeSchema = "compsyn-serve-v1";

/// Hard ceiling on one frame's payload (guards against hostile or corrupt
/// length prefixes allocating unbounded memory).
inline constexpr std::uint32_t kMaxFramePayload = 64u * 1024 * 1024;

/// Poll granularity of the framing loops: how often should_stop is checked
/// while a read or write would block.
inline constexpr int kPollIntervalMs = 100;

/// Outcome of one framed read.
enum class FrameStatus {
  Ok,         // *payload holds one complete frame
  Eof,        // clean end of stream before any byte of a frame
  Truncated,  // stream ended inside a frame (length prefix or payload)
  TooLarge,   // length prefix exceeds the limit; stream position is lost
  Stopped,    // should_stop() fired while waiting
  Error,      // read(2)/write(2) failure; *error holds errno text
};

/// Reads one length-prefixed frame from `fd`. Blocks (poll + read loop)
/// until a full frame, EOF, an error, or should_stop. On TooLarge the bad
/// length is reported in *error; no payload bytes are consumed.
FrameStatus read_frame(int fd, std::string* payload, std::string* error,
                       const std::function<bool()>& should_stop = {},
                       std::uint32_t max_payload = kMaxFramePayload);

/// Writes one frame (4-byte big-endian length + payload). Returns false on
/// error or when the payload exceeds max_payload.
bool write_frame(int fd, std::string_view payload, std::string* error,
                 std::uint32_t max_payload = kMaxFramePayload);

/// Serializes a message and writes it as one frame (compact JSON).
bool write_message(int fd, const Json& message, std::string* error);

/// One resynthesis job as it travels on the wire: the same knob set as the
/// one-shot `resynth_flow` binary, so a job's result can be byte-compared
/// against a one-shot run (DESIGN.md §13.2).
struct JobSpec {
  std::string id;            // client-chosen correlation id
  std::string circuit;       // suite name, or the path string of a .bench
  std::string bench;         // .bench text ("" = build `circuit` via the suite)
  std::string proc = "2";    // "2" | "3" | "combined"
  unsigned k = 6;
  double weight_gates = 1.0;
  double weight_paths = 1.0;
  std::string verify = "sim";     // "sim" | "sat" | "both"
  std::string sat = "session";    // "session" | "oneshot"
  std::uint64_t budget = 0;       // deterministic tick budget (0 = none)
  double deadline = 0.0;          // per-job wall-clock watchdog (0 = none)

  /// True when any robust flag is in play (mirrors resynth_flow's
  /// cfg.robust_active, which gates the report's status/ticks meta).
  bool robust_active() const { return budget != 0 || deadline > 0.0; }

  /// The flag-set part of the cache key: every field that changes the
  /// result or the report, in a fixed order. Deadline is excluded -- jobs
  /// with a deadline are never cached (their outcome is wall-clock
  /// dependent); the executor enforces that separately.
  std::string option_key() const;

  /// Encodes as a {"type":"job"} message.
  Json to_json() const;

  /// Decodes a {"type":"job"} message; returns nullopt and fills *error on
  /// missing/ill-typed fields or out-of-range values.
  static std::optional<JobSpec> from_json(const Json& j, std::string* error);
};

/// One job's outcome as it travels back.
struct JobResult {
  std::string id;
  std::string status;   // "ok" | "degraded" | "interrupted" | "error"
  bool cache_hit = false;
  std::string error;    // non-empty iff status == "error"/"interrupted"
  std::string bench;    // resynthesized .bench text (empty on error)
  Json report;          // the resynth_flow-shaped run report (object)
  std::string stdout_text;  // the one-shot flow's stdout, byte-identical
  double wall_ms = 0.0;     // queue-to-response wall time (envelope only)
  // Set (non-zero) only on admission-control rejections (error
  // "overloaded"): how long the client should back off before
  // re-submitting. Deterministic -- computed from queue state, never from
  // the wall clock.
  std::uint64_t retry_after_ms = 0;

  Json to_json() const;
  static std::optional<JobResult> from_json(const Json& j, std::string* error);
};

}  // namespace compsyn::serve
