// Client for the resynth_serve daemon (compsyn-serve-v1).
//
// Single job -- flags mirror the one-shot resynth_flow binary, artifacts
// land in the same places, and the exit code maps the job status the same
// way (0 ok, 1 error, 20 degraded, 21 interrupted):
//
//   $ ./resynth_client --socket=S --proc=2 --k=5
//   $     --out=r.bench --report=r.json add8      (one command, wrapped)
//
// A .bench positional is read locally and shipped inline (the daemon never
// touches the client's filesystem); suite names are built daemon-side.
//
// Manifest replay -- a JSON array of job objects (or {"jobs":[...]}), each
// with the same field names as the wire JobSpec; ids default to job-<index>:
//
//   $ ./resynth_client --socket=S --manifest=jobs.json --concurrency=4
//   $     --rounds=2 --out-dir=results/            (one command, wrapped)
//
// Replay opens one connection per worker thread, reports client-observed
// latency (p50/p95) and throughput, and exits with the worst job status.
//
// Control messages: --ping, --stats, --shutdown (graceful drain; prints the
// daemon's jobs_served count from the "bye" reply).
//
// Resilience -- --retry=N re-submits a job after transport failures (daemon
// crash/restart, dropped connection, per-attempt --timeout=SECS expiry) and
// after deterministic "overloaded" sheds. Re-submission is idempotent: the
// daemon's result cache is content-addressed, so a job that executed before
// the connection died is answered from cache, byte-identical. Backoff is
// exponential from --retry-base-ms with *deterministic* jitter (FNV-1a of
// job id + attempt ordinal), honouring the daemon's retry_after_ms hint
// when one is present; identical runs back off identically (DESIGN.md
// §15.3).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "robust/checkpoint.hpp"
#include "robust/guard.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"

namespace {

using namespace compsyn;
using namespace compsyn::serve;

int connect_unix(const std::string& path, std::string* error) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long";
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Sends one message and reads one reply frame. Returns nullopt on any
/// transport failure; with timeout_s > 0, also when no reply arrives in
/// time (sets *timed_out so the caller can distinguish it from a dead
/// stream -- both are retried the same way, but the diagnostics differ).
std::optional<Json> round_trip(int fd, const Json& message, std::string* error,
                               double timeout_s = 0.0,
                               bool* timed_out = nullptr) {
  if (!write_message(fd, message, error)) return std::nullopt;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  auto expired = [&] {
    return timeout_s > 0.0 && std::chrono::steady_clock::now() >= deadline;
  };
  std::string payload;
  const FrameStatus st = read_frame(fd, &payload, error, expired);
  if (st == FrameStatus::Stopped) {
    if (timed_out != nullptr) *timed_out = true;
    *error = "no reply within " + Json(timeout_s).dump() + " s";
    return std::nullopt;
  }
  if (st != FrameStatus::Ok) {
    if (error->empty()) *error = "connection closed by daemon";
    return std::nullopt;
  }
  std::optional<Json> reply = Json::parse(payload, error);
  if (!reply) return std::nullopt;
  return reply;
}

/// Re-submit policy shared by the single-job path and replay workers.
struct RetryPolicy {
  int retries = 0;           // extra attempts after the first
  double timeout_s = 0.0;    // per-attempt reply timeout (0 = wait forever)
  std::uint64_t base_ms = 100;  // exponential backoff base
};

/// Backoff before attempt `attempt` (1-based) of the job keyed `key`:
/// exponential in the attempt ordinal, plus jitter derived from FNV-1a of
/// (key, attempt) -- deterministic, so identical runs space identically --
/// and never less than the daemon's own retry_after_ms hint.
std::uint64_t backoff_ms(const RetryPolicy& policy, const std::string& key,
                         int attempt, std::uint64_t server_hint_ms) {
  const int shift = std::min(attempt - 1, 10);
  std::uint64_t delay = policy.base_ms << shift;
  const std::uint64_t h =
      robust::fnv1a64(key + "#" + std::to_string(attempt));
  delay += h % (policy.base_ms + 1);
  return std::max(delay, server_hint_ms);
}

/// One connection to the daemon plus the retry loop around it. Transport
/// failures (connect refused, dead stream, per-attempt timeout) drop and
/// re-open the connection; "overloaded" sheds keep it and just wait.
class JobSubmitter {
 public:
  JobSubmitter(std::string socket_path, RetryPolicy policy)
      : socket_path_(std::move(socket_path)), policy_(policy) {}
  ~JobSubmitter() { disconnect(); }
  JobSubmitter(const JobSubmitter&) = delete;
  JobSubmitter& operator=(const JobSubmitter&) = delete;

  /// Runs the job to a final answer, retrying per policy. nullopt only
  /// after every attempt failed; *error then holds the last failure.
  std::optional<JobResult> submit(const JobSpec& spec, std::string* error) {
    const Json wire = spec.to_json();
    const int attempts = policy_.retries + 1;
    for (int attempt = 1; attempt <= attempts; ++attempt) {
      if (attempt > 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            backoff_ms(policy_, spec.id, attempt, last_hint_ms_)));
      }
      last_hint_ms_ = 0;
      if (fd_ < 0 && connect_unix_(error) < 0) continue;
      bool timed_out = false;
      std::optional<Json> reply =
          round_trip(fd_, wire, error, policy_.timeout_s, &timed_out);
      if (!reply) {
        // Dead or wedged stream: whatever reply was in flight is lost, so
        // start over on a fresh connection. The daemon side is idempotent.
        disconnect();
        continue;
      }
      std::optional<JobResult> result = JobResult::from_json(*reply, error);
      if (!result) {
        const Json* remote = reply->find("error");
        if (remote != nullptr) *error = remote->as_string();
        disconnect();
        continue;
      }
      if (result->status == "error" && result->error == "overloaded" &&
          attempt < attempts) {
        last_hint_ms_ = result->retry_after_ms;
        *error = "daemon overloaded";
        continue;  // connection stays up; just wait and re-submit
      }
      return result;
    }
    return std::nullopt;
  }

 private:
  int connect_unix_(std::string* error) {
    sockaddr_un addr{};
    if (socket_path_.size() >= sizeof(addr.sun_path)) {
      *error = "socket path too long";
      return -1;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socket_path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      *error = "connect " + socket_path_ + ": " + std::strerror(errno);
      disconnect();
      return -1;
    }
    return fd_;
  }

  void disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  std::string socket_path_;
  RetryPolicy policy_;
  int fd_ = -1;
  std::uint64_t last_hint_ms_ = 0;  // daemon's retry_after_ms, if any
};

RetryPolicy policy_from_cli(const Cli& cli) {
  RetryPolicy policy;
  policy.retries = std::max(0, cli.get_int("retry", 0));
  policy.timeout_s = std::max(0.0, cli.get_double("timeout", 0.0));
  policy.base_ms = std::max<std::uint64_t>(1, cli.get_u64("retry-base-ms", 100));
  return policy;
}

bool slurp(const std::string& path, std::string* out, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  *out = ss.str();
  return true;
}

/// Fills the job-defining fields from the command line (same flag names as
/// resynth_flow). Inlines the .bench file when the source is a path.
bool spec_from_cli(const Cli& cli, const std::string& source, JobSpec* spec,
                   std::string* error) {
  spec->circuit = source;
  if (source.size() > 6 && source.substr(source.size() - 6) == ".bench") {
    if (!slurp(source, &spec->bench, error)) return false;
  }
  spec->proc = cli.get("proc", "2");
  spec->k = static_cast<unsigned>(cli.get_u64("k", 6));
  spec->weight_gates = cli.get_double("weight-gates", 1.0);
  spec->weight_paths = cli.get_double("weight-paths", 1.0);
  spec->verify = cli.get("verify", "sim");
  spec->sat = cli.get("sat", "session");
  spec->budget = cli.get_u64("budget", 0);
  spec->deadline = cli.get_double("deadline", 0.0);
  return true;
}

int exit_code_for_status(const std::string& status) {
  if (status == "ok") return robust::kExitOk;
  if (status == "degraded") return robust::kExitDegraded;
  if (status == "interrupted") return robust::kExitDeadline;
  return robust::kExitVerifyFailed;
}

bool write_file(const std::string& path, const std::string& text,
                std::string* error) {
  std::ofstream os(path, std::ios::binary);
  os << text;
  os.flush();
  if (!os) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

/// Report files replicate RunReport::write's byte format exactly (pretty
/// JSON, two-space indent, trailing newline) so a daemon-produced report
/// file diffs clean against a one-shot --report file.
bool write_report_file(const std::string& path, const Json& report,
                       std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  report.write(os, 2);
  os << '\n';
  os.flush();
  if (!os) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

struct ReplayOutcome {
  JobResult result;
  double latency_ms = 0.0;
  bool transport_ok = false;
  std::string transport_error;
};

/// Loads a manifest: a JSON array of job objects or {"jobs":[...]}. Inline
/// "bench" text wins; otherwise a .bench circuit path is slurped relative
/// to the client's cwd.
bool load_manifest(const std::string& path, std::vector<JobSpec>* jobs,
                   std::string* error) {
  std::string text;
  if (!slurp(path, &text, error)) return false;
  const std::optional<Json> doc = Json::parse(text, error);
  if (!doc) {
    *error = path + ": " + *error;
    return false;
  }
  const Json* list = doc->is_object() ? doc->find("jobs") : &*doc;
  if (list == nullptr || !list->is_array()) {
    *error = path + ": expected a JSON array of jobs (or {\"jobs\":[...]})";
    return false;
  }
  for (std::size_t i = 0; i < list->size(); ++i) {
    Json entry = list->at(i);
    if (!entry.is_object()) {
      *error = path + ": job " + std::to_string(i) + " is not an object";
      return false;
    }
    if (entry.find("id") == nullptr) {
      entry.set("id", "job-" + std::to_string(i));
    }
    std::string jerr;
    std::optional<JobSpec> spec = JobSpec::from_json(entry, &jerr);
    if (!spec) {
      *error = path + ": job " + std::to_string(i) + ": " + jerr;
      return false;
    }
    if (spec->bench.empty() && spec->circuit.size() > 6 &&
        spec->circuit.substr(spec->circuit.size() - 6) == ".bench") {
      if (!slurp(spec->circuit, &spec->bench, error)) return false;
    }
    jobs->push_back(std::move(*spec));
  }
  return true;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int run_replay(const Cli& cli, const std::string& socket_path) {
  std::string err;
  std::vector<JobSpec> manifest;
  if (!load_manifest(cli.get("manifest"), &manifest, &err)) {
    std::cerr << "error: " << err << "\n";
    return robust::kExitInputError;
  }
  const int rounds = std::max(1, cli.get_int("rounds", 1));
  const int concurrency = std::max(1, cli.get_int("concurrency", 1));
  const std::string out_dir = cli.get("out-dir", "");

  // The work list: rounds x manifest, in manifest order within each round.
  std::vector<JobSpec> work;
  for (int r = 0; r < rounds; ++r) {
    for (const JobSpec& spec : manifest) {
      JobSpec j = spec;
      if (rounds > 1) j.id = j.id + ".r" + std::to_string(r);
      work.push_back(std::move(j));
    }
  }

  std::vector<ReplayOutcome> outcomes(work.size());
  std::atomic<std::size_t> next{0};
  const RetryPolicy policy = policy_from_cli(cli);
  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&] {
    std::string werr;
    JobSubmitter submitter(socket_path, policy);
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= work.size()) break;
      ReplayOutcome& out = outcomes[i];
      const auto js0 = std::chrono::steady_clock::now();
      std::optional<JobResult> r = submitter.submit(work[i], &werr);
      out.latency_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - js0)
                           .count();
      if (!r) {
        out.transport_error = werr;
        continue;
      }
      out.result = std::move(*r);
      out.transport_ok = true;
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < concurrency; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();

  std::vector<double> latencies;
  std::size_t ok = 0, degraded = 0, interrupted = 0, errors = 0, hits = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ReplayOutcome& out = outcomes[i];
    if (!out.transport_ok) {
      ++errors;
      std::cerr << "job " << work[i].id << ": transport error: "
                << out.transport_error << "\n";
      continue;
    }
    latencies.push_back(out.latency_ms);
    const std::string& st = out.result.status;
    if (st == "ok") ++ok;
    else if (st == "degraded") ++degraded;
    else if (st == "interrupted") ++interrupted;
    else ++errors;
    if (out.result.cache_hit) ++hits;
    if (!out_dir.empty() && !out.result.bench.empty()) {
      std::string werr2;
      const std::string base = out_dir + "/" + out.result.id;
      if (!write_file(base + ".bench", out.result.bench, &werr2) ||
          !write_report_file(base + ".report.json", out.result.report,
                             &werr2) ||
          !write_file(base + ".stdout.txt", out.result.stdout_text, &werr2)) {
        std::cerr << "error: " << werr2 << "\n";
        ++errors;
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::cout << "replayed " << work.size() << " job(s) (" << manifest.size()
            << " x " << rounds << " round(s)) at concurrency " << concurrency
            << " in " << wall_s << " s\n"
            << "  status: " << ok << " ok, " << degraded << " degraded, "
            << interrupted << " interrupted, " << errors << " error\n"
            << "  cache: " << hits << "/" << work.size() << " hits\n";
  if (!latencies.empty()) {
    std::cout << "  throughput: "
              << static_cast<double>(latencies.size()) / wall_s
              << " jobs/s; latency p50 " << percentile(latencies, 0.50)
              << " ms, p95 " << percentile(latencies, 0.95) << " ms\n";
  }
  if (errors != 0) return robust::kExitVerifyFailed;
  if (interrupted != 0) return robust::kExitDeadline;
  if (degraded != 0) return robust::kExitDegraded;
  return robust::kExitOk;
}

int client_main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string socket_path = cli.get("socket", "");
  if (socket_path.empty()) {
    std::cerr << "usage: resynth_client --socket=PATH [--ping | --stats | "
                 "--shutdown |\n"
                 "    --manifest=jobs.json [--concurrency=N] [--rounds=R] "
                 "[--out-dir=DIR] |\n"
                 "    [resynth_flow job flags] [--out=f.bench] "
                 "[--report=f.json] <circuit|file.bench>]\n"
                 "  job resilience: [--retry=N] [--timeout=SECS] "
                 "[--retry-base-ms=MS]\n";
    return robust::kExitUsage;
  }

  if (cli.has("manifest")) {
    const int rc = run_replay(cli, socket_path);
    cli.warn_unrecognized(std::cerr);
    return rc;
  }

  std::string err;
  if (cli.has("ping") || cli.has("stats") || cli.has("shutdown")) {
    const int fd = connect_unix(socket_path, &err);
    if (fd < 0) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitInputError;
    }
    struct FdCloser {
      int fd;
      ~FdCloser() { ::close(fd); }
    } closer{fd};
    Json msg = Json::object();
    msg.set("type", cli.has("ping")       ? "ping"
                    : cli.has("stats")    ? "stats"
                                          : "shutdown");
    std::optional<Json> reply = round_trip(fd, msg, &err);
    if (!reply) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitInputError;
    }
    std::cout << reply->dump(2) << "\n";
    cli.warn_unrecognized(std::cerr);
    return robust::kExitOk;
  }

  if (cli.positional().empty()) {
    std::cerr << "error: no circuit given (suite name or file.bench)\n";
    return robust::kExitUsage;
  }
  JobSpec spec;
  spec.id = cli.get("id", "cli");
  if (!spec_from_cli(cli, cli.positional()[0], &spec, &err)) {
    std::cerr << "error: " << err << "\n";
    return robust::kExitInputError;
  }
  JobSubmitter submitter(socket_path, policy_from_cli(cli));
  std::optional<JobResult> result = submitter.submit(spec, &err);
  if (!result) {
    std::cerr << "error: " << err << "\n";
    return robust::kExitInputError;
  }
  // The daemon's captured stdout IS this run's stdout, so a piped one-shot
  // invocation and a client invocation read identically.
  std::cout << result->stdout_text;
  if (!result->error.empty()) {
    std::cerr << "error: " << result->error << "\n";
  }
  if (cli.has("out") && !result->bench.empty()) {
    if (!write_file(cli.get("out"), result->bench, &err)) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitVerifyFailed;
    }
    std::cout << "wrote " << cli.get("out") << "\n";
  }
  if (cli.has("report")) {
    if (!write_report_file(cli.get("report"), result->report, &err)) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitVerifyFailed;
    }
  }
  cli.warn_unrecognized(std::cerr);
  return exit_code_for_status(result->status);
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("resynth_client", argc, argv,
                                     [&] { return client_main(argc, argv); });
}
