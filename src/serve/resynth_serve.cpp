// The resynthesis daemon: accepts compsyn-serve-v1 jobs (whole .bench text
// in, resynthesized .bench + resynth_flow-shaped report out) over a
// Unix-domain socket or a stdio pipe, executing them one at a time with
// per-job isolation so every result is byte-identical to a one-shot
// `resynth_flow` run with the same flags (DESIGN.md §13).
//
//   $ ./resynth_serve --socket=/tmp/compsyn.sock --cache-mb=64 &
//   $ ./resynth_client --socket=/tmp/compsyn.sock --proc=2 --k=5 add8
//
// Exit codes follow the one-shot binaries: 0 after a graceful drain
// ({"type":"shutdown"} or stdin EOF in --stdio mode), 130/143 after
// SIGINT/SIGTERM (queued jobs are answered "interrupted", the socket file
// is unlinked), 2 on usage errors, 3 when the socket cannot be bound.
#include <iostream>
#include <string>

#include "exec/exec.hpp"
#include "robust/guard.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

int serve_main(int argc, char** argv) {
  using namespace compsyn;
  Cli cli(argc, argv);
  serve::ServerConfig config;
  config.socket_path = cli.get("socket", "");
  config.use_stdio = cli.has("stdio");
  config.cache_bytes = cli.get_u64("cache-mb", 64) * 1024 * 1024;
  config.events_path = cli.get("events", "");
  if (config.use_stdio ? !config.socket_path.empty()
                       : config.socket_path.empty()) {
    std::cerr << "usage: resynth_serve --socket=PATH | --stdio "
                 "[--jobs=N] [--cache-mb=MB] [--events=log.jsonl]\n"
                 "  exactly one of --socket / --stdio\n";
    return robust::kExitUsage;
  }
  if (cli.has("jobs")) {
    const int j = cli.get_int("jobs", 1);
    if (j < 1) {
      std::cerr << "error: --jobs=" << cli.get("jobs")
                << " (expected a positive integer)\n";
      return robust::kExitUsage;
    }
    set_jobs(static_cast<unsigned>(j));
  }
  cli.warn_unrecognized(std::cerr);
  serve::Server server(std::move(config));
  return server.run();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("resynth_serve", argc, argv,
                                     [&] { return serve_main(argc, argv); });
}
