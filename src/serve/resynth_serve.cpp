// The resynthesis daemon: accepts compsyn-serve-v1 jobs (whole .bench text
// in, resynthesized .bench + resynth_flow-shaped report out) over a
// Unix-domain socket or a stdio pipe, executing them on --lanes=N isolated
// job lanes so every result is byte-identical to a one-shot `resynth_flow`
// run with the same flags, at any lane count (DESIGN.md §13, §15).
//
//   $ ./resynth_serve --socket=/tmp/compsyn.sock --lanes=4 \
//         --wal=/tmp/compsyn.wal --cache-mb=64 &
//   $ ./resynth_client --socket=/tmp/compsyn.sock --proc=2 --k=5 add8
//
// With --wal=PATH the daemon journals every deadline-free job and, after a
// crash, replays the journal on restart: finished answers are served from
// the recovered cache, in-flight jobs re-execute deterministically.
//
// Exit codes follow the one-shot binaries: 0 after a graceful drain
// ({"type":"shutdown"} or stdin EOF in --stdio mode), 130/143 after
// SIGINT/SIGTERM (queued jobs are answered "interrupted", the socket file
// is unlinked), 2 on usage errors, 3 when the socket cannot be bound.
#include <iostream>
#include <optional>
#include <string>

#include "robust/guard.hpp"
#include "robust/inject.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

int serve_main(int argc, char** argv) {
  using namespace compsyn;
  Cli cli(argc, argv);
  serve::ServerConfig config;
  config.socket_path = cli.get("socket", "");
  config.use_stdio = cli.has("stdio");
  config.cache_bytes = cli.get_u64("cache-mb", 64) * 1024 * 1024;
  config.events_path = cli.get("events", "");
  config.wal_path = cli.get("wal", "");
  if (config.use_stdio ? !config.socket_path.empty()
                       : config.socket_path.empty()) {
    std::cerr << "usage: resynth_serve --socket=PATH | --stdio\n"
                 "  [--lanes=N]        concurrent job lanes (default 1)\n"
                 "  [--jobs=N]         exec workers per lane (default 1)\n"
                 "  [--cache-mb=MB]    result cache budget (default 64)\n"
                 "  [--wal=PATH]       crash-safe job journal (default off)\n"
                 "  [--queue-max=N]    admission bound, 0=unbounded "
                 "(default 256)\n"
                 "  [--client-max=N]   per-client in-flight cap, 0=none "
                 "(default 0)\n"
                 "  [--watchdog=SECS]  hung-lane watchdog, 0=off (default 0)\n"
                 "  [--events=PATH]    compsyn-events-v1 log (default off)\n"
                 "  [--inject=SPEC]    scripted chaos (frame:N accept:N "
                 "lane:N wal:N ...)\n"
                 "  exactly one of --socket / --stdio\n";
    return robust::kExitUsage;
  }
  const int lanes = cli.get_int("lanes", 1);
  if (lanes < 1) {
    std::cerr << "error: --lanes=" << cli.get("lanes")
              << " (expected a positive integer)\n";
    return robust::kExitUsage;
  }
  config.lanes = static_cast<unsigned>(lanes);
  const int jobs = cli.get_int("jobs", 1);
  if (jobs < 1) {
    std::cerr << "error: --jobs=" << cli.get("jobs")
              << " (expected a positive integer)\n";
    return robust::kExitUsage;
  }
  config.jobs_per_lane = static_cast<unsigned>(jobs);
  config.queue_max = cli.get_u64("queue-max", 256);
  config.client_max = static_cast<unsigned>(cli.get_u64("client-max", 0));
  config.watchdog_seconds = cli.get_double("watchdog", 0.0);
  if (config.watchdog_seconds < 0.0) {
    std::cerr << "error: --watchdog=" << cli.get("watchdog")
              << " (expected a non-negative number of seconds)\n";
    return robust::kExitUsage;
  }
  // The plan must outlive the InjectScope (which keeps a pointer to it),
  // i.e. the whole serve loop.
  robust::FaultPlan plan;
  std::optional<robust::InjectScope> inject_scope;
  if (cli.has("inject")) {
    std::string err;
    const auto parsed = robust::FaultPlan::parse(cli.get("inject"), &err);
    if (!parsed) {
      std::cerr << "error: --inject=" << cli.get("inject") << ": " << err
                << "\n";
      return robust::kExitUsage;
    }
    plan = *parsed;
    inject_scope.emplace(plan);
  }
  cli.warn_unrecognized(std::cerr);
  serve::Server server(std::move(config));
  return server.run();
}

}  // namespace

int main(int argc, char** argv) {
  return compsyn::robust::guard_main("resynth_serve", argc, argv,
                                     [&] { return serve_main(argc, argv); });
}
