#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_io/bench_io.hpp"
#include "gen/circuits.hpp"
#include "obs/events.hpp"
#include "obs/memstats.hpp"
#include "obs/obs.hpp"
#include "robust/guard.hpp"
#include "robust/inject.hpp"
#include "serve/job.hpp"

namespace compsyn::serve {
namespace {

/// Compact the journal after this many appends: bounds the file to the
/// working set (cache snapshot + live jobs) instead of the full history.
constexpr std::size_t kWalCompactEvery = 256;

/// Canonicalises a job's input netlist the way checkpoint resume does: parse,
/// then write_bench_string. Two textually different .bench files describing
/// the same structure map to one cache key. nullopt when the input does not
/// parse (the job itself will produce the diagnostic).
std::optional<std::string> canonical_input(const JobSpec& spec) {
  try {
    Netlist nl = spec.bench.empty()
                     ? make_benchmark(spec.circuit)
                     : read_bench_string(spec.bench,
                                         bench_name_from_path(spec.circuit));
    return write_bench_string(nl);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Json ServeStats::to_json() const {
  Json j = Json::object();
  j.set("type", "stats");
  j.set("schema", kServeSchema);
  j.set("connections", connections);
  j.set("jobs_received", jobs_received);
  j.set("jobs_served", jobs_served);
  j.set("jobs_executed", jobs_executed);
  j.set("jobs_shed", jobs_shed);
  j.set("cache_hits", cache_hits);
  j.set("cache_misses", cache_misses);
  j.set("cache_collisions", cache_collisions);
  j.set("cache_evictions", cache_evictions);
  j.set("cache_entries", cache_entries);
  j.set("cache_bytes", cache_bytes);
  j.set("status_ok", status_ok);
  j.set("status_degraded", status_degraded);
  j.set("status_interrupted", status_interrupted);
  j.set("status_error", status_error);
  j.set("protocol_errors", protocol_errors);
  j.set("disconnects", disconnects);
  j.set("lanes", lanes);
  j.set("lanes_busy", lanes_busy);
  j.set("queue_depth", queue_depth);
  j.set("queue_max", queue_max);
  j.set("wal_replayed", wal_replayed);
  j.set("wal_recovered", wal_recovered);
  j.set("wal_appends", wal_appends);
  j.set("wal_errors", wal_errors);
  j.set("watchdog_fires", watchdog_fires);
  return j;
}

Server::Connection::~Connection() {
  if (own_fds && rfd >= 0) ::close(rfd);
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_bytes) {
  if (config_.lanes < 1) config_.lanes = 1;
  if (config_.jobs_per_lane < 1) config_.jobs_per_lane = 1;
}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int Server::setup_socket(std::string* error) {
  sockaddr_un addr{};
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long (limit " +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    return -1;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A stale socket file from a killed daemon would make bind fail; remove
  // it. Two live daemons on one path is a deployment error this cannot
  // detect -- the second steals the path, as with every Unix-socket server.
  ::unlink(config_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = "bind " + config_.socket_path + ": " + std::strerror(errno);
    return -1;
  }
  if (::listen(listen_fd_, 64) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return -1;
  }
  return 0;
}

void Server::listener_loop() {
  while (!stopping()) {
    pollfd pfd = {listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr <= 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    if (robust::inject_accept_failure()) {
      // Scripted accept failure: the kernel gave us the connection, the
      // chaos plan says the daemon never saw it.
      ::close(cfd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->rfd = conn->wfd = cfd;
    conn->own_fds = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.emplace_back(&Server::reader_loop, this, std::move(conn));
  }
}

void Server::reader_loop(ConnPtr conn) {
  std::string payload;
  std::string err;
  for (;;) {
    const FrameStatus st = read_frame(conn->rfd, &payload, &err,
                                      [this] { return stopping(); });
    switch (st) {
      case FrameStatus::Ok:
        handle_message(conn, payload);
        continue;
      case FrameStatus::Eof:
        // In stdio mode the client closing its end IS the shutdown request.
        if (config_.use_stdio) begin_drain(Drain::Graceful, nullptr);
        return;
      case FrameStatus::Stopped:
        return;
      case FrameStatus::Truncated:
      case FrameStatus::TooLarge:
      case FrameStatus::Error: {
        // The stream position is unrecoverable: answer (best effort) and
        // drop this connection. The daemon keeps serving everyone else.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
        }
        Json msg = Json::object();
        msg.set("type", "error");
        msg.set("error", err.empty() ? "framing error" : err);
        respond(conn, msg);
        return;
      }
    }
  }
}

void Server::shed(const ConnPtr& conn, const std::string& id, const char* why,
                  std::uint64_t retry_after_ms) {
  JobResult r;
  r.id = id;
  r.status = "error";
  r.error = why;
  r.retry_after_ms = retry_after_ms;
  r.report = job_error_report("error", r.error);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_served;
    ++stats_.jobs_shed;
    ++stats_.status_error;
  }
  Json ev = Json::object();
  ev.set("event", "shed");
  ev.set("id", id);
  ev.set("reason", why);
  ev.set("retry_after_ms", retry_after_ms);
  EventLog::emit("job", std::move(ev));
  respond(conn, r.to_json());
}

void Server::handle_message(const ConnPtr& conn, const std::string& payload) {
  std::string err;
  const std::optional<Json> parsed = Json::parse(payload, &err);
  if (!parsed || !parsed->is_object()) {
    // Framing is intact, so this is recoverable: answer and keep reading.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    Json msg = Json::object();
    msg.set("type", "error");
    msg.set("error", !parsed ? "malformed JSON payload: " + err
                             : "message must be a JSON object");
    respond(conn, msg);
    return;
  }
  const Json* type = parsed->find("type");
  const std::string kind =
      type != nullptr && type->type() == Json::Type::String ? type->as_string()
                                                            : "";
  if (kind == "ping") {
    Json msg = Json::object();
    msg.set("type", "pong");
    msg.set("schema", kServeSchema);
    respond(conn, msg);
    return;
  }
  if (kind == "stats") {
    refresh_cache_stats();
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = queue_.size();
    }
    std::uint64_t busy = 0;
    for (const auto& lane : lanes_) {
      if (lane->busy_since_ms.load(std::memory_order_relaxed) != 0) ++busy;
    }
    Json msg;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.lanes = config_.lanes;
      stats_.lanes_busy = busy;
      stats_.queue_depth = depth;
      stats_.queue_max = config_.queue_max;
      msg = stats_.to_json();
    }
    respond(conn, msg);
    return;
  }
  if (kind == "shutdown") {
    begin_drain(Drain::Graceful, conn);
    return;
  }
  if (kind == "job") {
    const Json* idf = parsed->find("id");
    const std::string id =
        idf != nullptr && idf->type() == Json::Type::String ? idf->as_string()
                                                            : "";
    // Tally the receipt before anything can answer it: counters must be
    // deterministic for a client that queries stats after its last reply.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs_received;
    }
    auto reject = [&](const std::string& why) {
      JobResult r;
      r.id = id;
      r.status = "error";
      r.error = why;
      r.report = job_error_report("error", why);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.jobs_served;
        ++stats_.status_error;
      }
      respond(conn, r.to_json());
    };
    if (stopping()) {
      reject("daemon is draining; job not accepted");
      return;
    }
    std::optional<JobSpec> spec = JobSpec::from_json(*parsed, &err);
    if (!spec) {
      reject(err);
      return;
    }
    // ---- admission control ----
    // Both rejections carry a deterministic retry_after_ms computed from
    // queue/in-flight state, so an identical load pattern sheds the same
    // jobs with the same hints on every run.
    if (config_.client_max > 0 &&
        conn->inflight.load(std::memory_order_relaxed) >= config_.client_max) {
      shed(conn, id, "overloaded",
           50ull * (conn->inflight.load(std::memory_order_relaxed) + 1));
      return;
    }
    std::uint64_t seq = 0;
    std::size_t depth = 0;
    bool full = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      depth = queue_.size();
      full = config_.queue_max > 0 && depth >= config_.queue_max;
      if (!full) seq = next_seq_++;
    }
    if (full) {
      shed(conn, id, "overloaded", 50ull * (depth - config_.queue_max + 2));
      return;
    }
    // Journal before enqueue: a job that entered the queue without an
    // accepted record would vanish in a crash.
    Pending p;
    p.spec = std::move(*spec);
    p.conn = conn;
    p.seq = seq;
    if (p.spec.deadline <= 0.0) {
      wal_append_accepted(seq, p.spec);
      p.journaled = true;  // best effort; a dead WAL just skips later marks
    }
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(p));
      depth = queue_.size();
    }
    cv_.notify_all();
    Json ev = Json::object();
    ev.set("event", "queued");
    ev.set("id", id);
    ev.set("queue_depth", depth);
    EventLog::emit("job", std::move(ev));
    return;
  }
  Json msg = Json::object();
  msg.set("type", "error");
  msg.set("error", kind.empty() ? "message missing string 'type'"
                                : "unknown message type: " + kind);
  respond(conn, msg);
}

void Server::respond(const ConnPtr& conn, const Json& message) {
  if (conn == nullptr) return;  // internal WAL-replay job: no client
  std::string err;
  std::string payload = message.dump();
  if (robust::inject_frame_corruption() && !payload.empty()) {
    // Scripted wire corruption: flip one payload byte. The framing stays
    // intact, so the client sees a guard/parse failure, not a dead stream.
    payload[payload.size() / 2] ^= 0x20;
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!write_frame(conn->wfd, payload, &err)) {
    // Client gone mid-job (or mid-drain). Per-job failure only.
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.disconnects;
  }
}

void Server::begin_drain(Drain mode, const ConnPtr& bye_conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Drain cur = drain_.load();
    // Only escalate: None -> Graceful -> Abort. Never de-escalate.
    if (mode == Drain::Abort || cur == Drain::None) drain_.store(mode);
    if (bye_conn != nullptr && bye_conn_ == nullptr) bye_conn_ = bye_conn;
  }
  cv_.notify_all();
}

void Server::refresh_cache_stats() {
  std::uint64_t hits, misses, collisions, evictions, entries, bytes;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    hits = cache_.hits();
    misses = cache_.misses();
    collisions = cache_.collisions();
    evictions = cache_.evictions();
    entries = cache_.entries();
    bytes = cache_.bytes();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.cache_hits = hits;
  stats_.cache_misses = misses;
  stats_.cache_collisions = collisions;
  stats_.cache_evictions = evictions;
  stats_.cache_entries = entries;
  stats_.cache_bytes = bytes;
}

// ---------------------------------------------------------------------------
// WAL plumbing
// ---------------------------------------------------------------------------

void Server::wal_note_failure(const std::string& err) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.wal_errors;
  }
  Json ev = Json::object();
  ev.set("event", "wal_error");
  ev.set("error", err);
  EventLog::emit("wal", std::move(ev));
}

void Server::wal_append_accepted(std::uint64_t seq, const JobSpec& spec) {
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.is_open()) return;
    WalRecord rec;
    rec.type = "accepted";
    rec.seq = seq;
    rec.fields.set("job", spec.to_json());
    std::string err;
    if (!wal_.append(rec, &err)) {
      wal_note_failure(err);
      return;
    }
    wal_live_[seq] = spec.to_json();
    compact = ++wal_appends_since_compact_ >= kWalCompactEvery;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.wal_appends;
  }
  if (compact) compact_wal();
}

void Server::wal_append_mark(const char* type, std::uint64_t seq) {
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.is_open()) return;
    WalRecord rec;
    rec.type = type;
    rec.seq = seq;
    std::string err;
    if (!wal_.append(rec, &err)) {
      wal_note_failure(err);
      return;
    }
    if (std::string_view(type) == "cached") wal_live_.erase(seq);
    compact = ++wal_appends_since_compact_ >= kWalCompactEvery;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.wal_appends;
  }
  if (compact) compact_wal();
}

void Server::wal_append_finished(std::uint64_t seq,
                                 const std::string& canonical,
                                 const std::string& option_key,
                                 const JobExecutionArtifacts& artifacts) {
  bool compact = false;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.is_open()) return;
    WalRecord rec;
    rec.type = "finished";
    rec.seq = seq;
    rec.fields.set("status", artifacts.status);
    rec.fields.set("cacheable", artifacts.cacheable);
    if (artifacts.cacheable) {
      rec.fields.set("canonical", canonical);
      rec.fields.set("option_key", option_key);
      rec.fields.set("bench", artifacts.bench);
      rec.fields.set("report", artifacts.report);
      rec.fields.set("stdout", artifacts.stdout_text);
    }
    std::string err;
    if (!wal_.append(rec, &err)) {
      wal_note_failure(err);
      return;
    }
    wal_live_.erase(seq);
    compact = ++wal_appends_since_compact_ >= kWalCompactEvery;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.wal_appends;
  }
  if (compact) compact_wal();
}

void Server::compact_wal() {
  // Lock order: cache snapshot first, journal second (cache_mu_ > wal_mu_
  // everywhere). The snapshot may be momentarily stale against a racing
  // insert -- that job's own finished record lands after the compaction,
  // so nothing is lost.
  std::vector<ResultCache::SnapshotEntry> snap;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    snap = cache_.snapshot();
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (!wal_.is_open()) return;
  std::vector<WalRecord> records;
  records.reserve(snap.size() + wal_live_.size());
  for (const auto& e : snap) {
    WalRecord rec;
    rec.type = "finished";
    rec.seq = 0;  // compacted entries carry no job identity, only artifacts
    rec.fields.set("status", e.result.status);
    rec.fields.set("cacheable", true);
    rec.fields.set("canonical", e.canonical_bench);
    rec.fields.set("option_key", e.option_key);
    rec.fields.set("bench", e.result.bench);
    rec.fields.set("report", e.result.report);
    rec.fields.set("stdout", e.result.stdout_text);
    records.push_back(std::move(rec));
  }
  for (const auto& [seq, job] : wal_live_) {
    WalRecord rec;
    rec.type = "accepted";
    rec.seq = seq;
    rec.fields.set("job", job);
    records.push_back(std::move(rec));
  }
  std::string err;
  if (!wal_.compact(records, &err)) {
    wal_note_failure(err);
    return;
  }
  wal_appends_since_compact_ = 0;
  Json ev = Json::object();
  ev.set("event", "wal_compacted");
  ev.set("finished", static_cast<std::uint64_t>(snap.size()));
  ev.set("live", static_cast<std::uint64_t>(wal_live_.size()));
  EventLog::emit("wal", std::move(ev));
}

void Server::recover_wal() {
  JobWal::Replay replay;
  std::string err;
  if (!wal_.open(config_.wal_path, &replay, &err)) {
    // Journal unusable (unwritable path, foreign format). Serve without
    // it rather than refusing to start -- crash safety degrades, service
    // does not.
    std::cerr << "warning: wal: " << err << " (journaling disabled)\n";
    wal_note_failure(err);
    return;
  }
  if (replay.dropped > 0) {
    Json ev = Json::object();
    ev.set("event", "wal_tail_dropped");
    ev.set("lines", static_cast<std::uint64_t>(replay.dropped));
    EventLog::emit("wal", std::move(ev));
  }

  struct RecoveredJob {
    Json spec;
    bool done = false;
  };
  std::map<std::uint64_t, RecoveredJob> jobs;  // ordered: replay in seq order
  std::uint64_t max_seq = 0;
  std::uint64_t preloaded = 0;
  for (const WalRecord& rec : replay.records) {
    if (rec.seq > max_seq) max_seq = rec.seq;
    if (rec.type == "accepted") {
      const Json* job = rec.fields.find("job");
      if (job != nullptr && job->is_object()) jobs[rec.seq].spec = *job;
    } else if (rec.type == "cached" || rec.type == "finished") {
      jobs[rec.seq].done = true;
      if (rec.type == "finished") {
        const Json* cacheable = rec.fields.find("cacheable");
        const Json* canonical = rec.fields.find("canonical");
        const Json* option_key = rec.fields.find("option_key");
        if (cacheable != nullptr && cacheable->as_bool() &&
            canonical != nullptr && option_key != nullptr) {
          const Json* status = rec.fields.find("status");
          const Json* bench = rec.fields.find("bench");
          const Json* report = rec.fields.find("report");
          const Json* stdout_text = rec.fields.find("stdout");
          CachedResult result;
          result.status = status != nullptr ? status->as_string() : "ok";
          result.bench = bench != nullptr ? bench->as_string() : "";
          result.report = report != nullptr ? *report : Json::object();
          result.stdout_text =
              stdout_text != nullptr ? stdout_text->as_string() : "";
          std::lock_guard<std::mutex> lock(cache_mu_);
          cache_.insert(canonical->as_string(), option_key->as_string(),
                        std::move(result));
          ++preloaded;
        }
      }
    }
    // "started" records carry no state beyond what accepted established;
    // a started-but-unfinished job is re-executed exactly like a queued one
    // (execution is deterministic, so the answer is the same).
  }

  // Re-enqueue every accepted-but-unfinished job as an internal Pending:
  // no client connection to answer, but the execution (re-)populates the
  // result cache, so a client re-submitting by job key gets the answer a
  // crash stole from it.
  std::uint64_t replayed = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    for (const auto& [seq, job] : jobs) {
      if (job.done || !job.spec.is_object()) continue;
      std::string parse_err;
      std::optional<JobSpec> spec = JobSpec::from_json(job.spec, &parse_err);
      if (!spec) continue;  // journal predates a spec change; skip
      Pending p;
      p.spec = std::move(*spec);
      p.conn = nullptr;
      p.seq = seq;
      p.journaled = true;
      wal_live_[seq] = job.spec;
      {
        std::lock_guard<std::mutex> qlock(mu_);
        queue_.push_back(std::move(p));
      }
      ++replayed;
    }
    next_seq_ = max_seq + 1;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.wal_recovered = preloaded;
    stats_.wal_replayed = replayed;
  }
  if (preloaded > 0 || replayed > 0 || replay.dropped > 0) {
    Json ev = Json::object();
    ev.set("event", "wal_replayed");
    ev.set("recovered_results", preloaded);
    ev.set("reexecuted_jobs", replayed);
    EventLog::emit("wal", std::move(ev));
  }
  // Trim history down to the working set right away: replayed journals
  // otherwise grow across every restart.
  compact_wal();
}

// ---------------------------------------------------------------------------
// Lanes
// ---------------------------------------------------------------------------

void Server::lane_loop(Lane& lane) {
  // Everything below these binds -- job execution, exec regions, obs
  // recording, budget/deadline/cancel checks -- resolves to this lane's
  // private state (DESIGN.md §15.1).
  robust::SlotBind slot_bind(lane.slot);
  ObsDomainBind domain_bind(lane.domain);
  ExecPoolBind pool_bind(lane.pool);
  for (;;) {
    Pending job;
    bool have = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [&] {
        return !queue_.empty() || drain_.load() != Drain::None;
      });
      if (drain_.load() == Drain::Abort) break;
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        have = true;
      } else if (drain_.load() == Drain::Graceful) {
        break;
      }
    }
    if (!have) continue;
    // A previous job's budget/deadline cancel must not leak into this
    // one. Slot-only: a process-wide signal broadcast is never cleared
    // here, so a concurrent SIGTERM cannot be raced away.
    robust::clear_slot_cancel(lane.slot);
    lane.current_seq.store(job.seq, std::memory_order_relaxed);
    lane.busy_since_ms.store(steady_ms(), std::memory_order_relaxed);
    execute(lane, std::move(job));
    lane.busy_since_ms.store(0, std::memory_order_relaxed);
    robust::clear_slot_cancel(lane.slot);
    // Only the global signal broadcast can still be pending now.
    if (robust::cancel_requested()) {
      begin_drain(Drain::Abort, nullptr);
      break;
    }
  }
  lanes_running_.fetch_sub(1);
  cv_.notify_all();
}

void Server::execute(Lane& lane, Pending job) {
  const auto t0 = std::chrono::steady_clock::now();
  const JobSpec& spec = job.spec;
  const bool internal = job.conn == nullptr;
  {
    Json ev = Json::object();
    ev.set("event", "started");
    ev.set("id", spec.id);
    ev.set("circuit", spec.circuit);
    ev.set("proc", spec.proc);
    ev.set("k", static_cast<std::uint64_t>(spec.k));
    ev.set("lane", static_cast<std::uint64_t>(lane.index));
    if (internal) ev.set("recovered", true);
    EventLog::emit("job", std::move(ev));
  }
  if (job.journaled) wal_append_mark("started", job.seq);

  JobResult r;
  r.id = spec.id;
  if (robust::inject_lane_crash()) {
    // Scripted lane crash: the job dies mid-flight with an internal
    // error; the lane (and the daemon) survive and keep serving.
    r.status = "error";
    r.error = "internal error: injected lane crash";
    r.report = job_error_report("error", r.error);
    if (job.journaled) {
      JobExecutionArtifacts artifacts;
      artifacts.status = r.status;
      artifacts.cacheable = false;
      wal_append_finished(job.seq, "", "", artifacts);
    }
  } else {
    const std::optional<std::string> canonical = canonical_input(spec);
    CachedResult cached;
    bool hit = false;
    if (canonical && spec.deadline <= 0.0) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      hit = cache_.lookup(*canonical, spec.option_key(), &cached);
    }
    if (hit) {
      r.status = cached.status;
      r.cache_hit = true;
      r.bench = cached.bench;
      r.report = cached.report;
      r.stdout_text = cached.stdout_text;
      if (job.journaled) wal_append_mark("cached", job.seq);
    } else {
      begin_job_isolation();
      JobExecution exec = run_resynth_job(spec);
      r.status = exec.status;
      r.error = exec.error;
      r.bench = exec.bench;
      r.report = exec.report;
      r.stdout_text = exec.stdout_text;
      if (exec.cacheable && canonical) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.insert(*canonical, spec.option_key(),
                      CachedResult{exec.status, exec.bench, exec.report,
                                   exec.stdout_text});
      }
      if (job.journaled) {
        JobExecutionArtifacts artifacts;
        artifacts.status = exec.status;
        artifacts.bench = exec.bench;
        artifacts.report = exec.report;
        artifacts.stdout_text = exec.stdout_text;
        artifacts.cacheable = exec.cacheable && canonical.has_value();
        wal_append_finished(job.seq, canonical ? *canonical : "",
                            spec.option_key(), artifacts);
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs_executed;
    }
  }
  r.wall_ms = ms_since(t0);
  if (!internal) {
    // Tally before respond(): once the client holds the reply, a stats
    // query from any connection must already see this job counted.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs_served;
      if (r.status == "ok") ++stats_.status_ok;
      else if (r.status == "degraded") ++stats_.status_degraded;
      else if (r.status == "interrupted") ++stats_.status_interrupted;
      else ++stats_.status_error;
    }
    job.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    respond(job.conn, r.to_json());
  }
  refresh_cache_stats();
  Json ev = Json::object();
  ev.set("event", "finished");
  ev.set("id", spec.id);
  ev.set("circuit", spec.circuit);
  ev.set("status", r.status);
  ev.set("cache", r.cache_hit ? "hit" : "miss");
  ev.set("lane", static_cast<std::uint64_t>(lane.index));
  ev.set("wall_ms", r.wall_ms);
  ev.set("peak_rss_bytes", peak_rss_bytes());
  if (internal) ev.set("recovered", true);
  EventLog::emit("job", std::move(ev));
}

// ---------------------------------------------------------------------------
// Monitor
// ---------------------------------------------------------------------------

void Server::monitor_loop() {
  const auto watchdog_ms =
      static_cast<std::uint64_t>(config_.watchdog_seconds * 1000.0);
  while (lanes_running_.load() != 0) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(kPollIntervalMs),
                   [&] { return lanes_running_.load() == 0; });
    }
    // The monitor thread is unbound (default slot): the only cancellation
    // that can land here is the process-wide signal broadcast.
    if (robust::cancel_requested()) begin_drain(Drain::Abort, nullptr);
    if (watchdog_ms == 0) continue;
    const std::uint64_t now = steady_ms();
    for (auto& lane : lanes_) {
      const std::uint64_t since =
          lane->busy_since_ms.load(std::memory_order_relaxed);
      if (since == 0 || now - since < watchdog_ms) continue;
      const std::uint64_t seq =
          lane->current_seq.load(std::memory_order_relaxed);
      if (lane->watchdog_kicked_seq == seq) continue;  // one kick per job
      lane->watchdog_kicked_seq = seq;
      // Deadline on the lane's slot: the wedged job winds down at its
      // next poll point and answers "interrupted"; neighbours never see
      // it, and the lane moves on to the next job.
      robust::request_cancel_on(lane->slot, robust::StopReason::Deadline);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.watchdog_fires;
      }
      Json ev = Json::object();
      ev.set("event", "watchdog");
      ev.set("lane", static_cast<std::uint64_t>(lane->index));
      ev.set("seq", seq);
      EventLog::emit("job", std::move(ev));
    }
  }
}

int Server::run() {
  // Results written to a client that vanished must be a per-job statistic,
  // not a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  // Job reports embed counters/spans exactly like a one-shot run with
  // --report, which turns obs recording on; match it.
  obs_set_enabled(true);
  if (!config_.events_path.empty()) {
    std::string err;
    if (!EventLog::open(config_.events_path, "resynth_serve", &err)) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitUsage;
    }
  }
  if (!config_.wal_path.empty()) recover_wal();
  if (config_.use_stdio) {
    auto conn = std::make_shared<Connection>();
    conn->rfd = 0;
    conn->wfd = 1;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.emplace_back(&Server::reader_loop, this, std::move(conn));
  } else {
    std::string err;
    if (setup_socket(&err) != 0) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitInputError;
    }
    listener_ = std::thread(&Server::listener_loop, this);
  }

  // ---- lanes up, then monitor until they all retire ----
  lanes_.reserve(config_.lanes);
  for (unsigned i = 0; i < config_.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(i, config_.jobs_per_lane));
  }
  lanes_running_.store(config_.lanes);
  for (auto& lane : lanes_) {
    lane->thread = std::thread(&Server::lane_loop, this, std::ref(*lane));
  }
  monitor_loop();
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }

  // ---- teardown ----
  if (drain_.load() == Drain::None) drain_.store(Drain::Graceful);
  if (listener_.joinable()) listener_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
  }
  // Jobs still queued (abort drain, or a race with a graceful one) are
  // answered, not dropped on the floor. Their WAL records stay live, so a
  // restarted daemon re-executes them.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) {
    if (p.conn == nullptr) continue;  // internal replay job: nobody to answer
    JobResult r;
    r.id = p.spec.id;
    r.status = "interrupted";
    r.error = "daemon shutting down before this job ran";
    r.report = job_error_report("interrupted", r.error);
    respond(p.conn, r.to_json());
    p.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_served;
    ++stats_.status_interrupted;
  }
  if (!config_.use_stdio) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  const bool aborted = drain_.load() == Drain::Abort;
  if (!aborted && bye_conn_ != nullptr) {
    std::uint64_t served = 0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      served = stats_.jobs_served;
    }
    Json bye = Json::object();
    bye.set("type", "bye");
    bye.set("jobs_served", served);
    respond(bye_conn_, bye);
  }
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_.close();
  }
  EventLog::finish(aborted ? "interrupted" : "ok");
  return aborted ? robust::exit_code_for_cancel() : robust::kExitOk;
}

}  // namespace compsyn::serve
