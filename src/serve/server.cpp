#include "serve/server.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iostream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_io/bench_io.hpp"
#include "gen/circuits.hpp"
#include "obs/events.hpp"
#include "obs/memstats.hpp"
#include "obs/obs.hpp"
#include "robust/guard.hpp"
#include "robust/robust.hpp"
#include "serve/job.hpp"

namespace compsyn::serve {
namespace {

/// Canonicalises a job's input netlist the way checkpoint resume does: parse,
/// then write_bench_string. Two textually different .bench files describing
/// the same structure map to one cache key. nullopt when the input does not
/// parse (the job itself will produce the diagnostic).
std::optional<std::string> canonical_input(const JobSpec& spec) {
  try {
    Netlist nl = spec.bench.empty()
                     ? make_benchmark(spec.circuit)
                     : read_bench_string(spec.bench,
                                         bench_name_from_path(spec.circuit));
    return write_bench_string(nl);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Json ServeStats::to_json() const {
  Json j = Json::object();
  j.set("type", "stats");
  j.set("schema", kServeSchema);
  j.set("connections", connections);
  j.set("jobs_received", jobs_received);
  j.set("jobs_served", jobs_served);
  j.set("jobs_executed", jobs_executed);
  j.set("cache_hits", cache_hits);
  j.set("cache_misses", cache_misses);
  j.set("cache_collisions", cache_collisions);
  j.set("cache_evictions", cache_evictions);
  j.set("cache_entries", cache_entries);
  j.set("cache_bytes", cache_bytes);
  j.set("status_ok", status_ok);
  j.set("status_degraded", status_degraded);
  j.set("status_interrupted", status_interrupted);
  j.set("status_error", status_error);
  j.set("protocol_errors", protocol_errors);
  j.set("disconnects", disconnects);
  return j;
}

Server::Connection::~Connection() {
  if (own_fds && rfd >= 0) ::close(rfd);
}

Server::Server(ServerConfig config)
    : config_(std::move(config)), cache_(config_.cache_bytes) {}

Server::~Server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

int Server::setup_socket(std::string* error) {
  sockaddr_un addr{};
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long (limit " +
             std::to_string(sizeof(addr.sun_path) - 1) + " bytes)";
    return -1;
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A stale socket file from a killed daemon would make bind fail; remove
  // it. Two live daemons on one path is a deployment error this cannot
  // detect -- the second steals the path, as with every Unix-socket server.
  ::unlink(config_.socket_path.c_str());
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    *error = "bind " + config_.socket_path + ": " + std::strerror(errno);
    return -1;
  }
  if (::listen(listen_fd_, 64) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    return -1;
  }
  return 0;
}

void Server::listener_loop() {
  while (!stopping()) {
    pollfd pfd = {listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, kPollIntervalMs);
    if (pr <= 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->rfd = conn->wfd = cfd;
    conn->own_fds = true;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.emplace_back(&Server::reader_loop, this, std::move(conn));
  }
}

void Server::reader_loop(ConnPtr conn) {
  std::string payload;
  std::string err;
  for (;;) {
    const FrameStatus st = read_frame(conn->rfd, &payload, &err,
                                      [this] { return stopping(); });
    switch (st) {
      case FrameStatus::Ok:
        handle_message(conn, payload);
        continue;
      case FrameStatus::Eof:
        // In stdio mode the client closing its end IS the shutdown request.
        if (config_.use_stdio) begin_drain(Drain::Graceful, nullptr);
        return;
      case FrameStatus::Stopped:
        return;
      case FrameStatus::Truncated:
      case FrameStatus::TooLarge:
      case FrameStatus::Error: {
        // The stream position is unrecoverable: answer (best effort) and
        // drop this connection. The daemon keeps serving everyone else.
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.protocol_errors;
        }
        Json msg = Json::object();
        msg.set("type", "error");
        msg.set("error", err.empty() ? "framing error" : err);
        respond(conn, msg);
        return;
      }
    }
  }
}

void Server::handle_message(const ConnPtr& conn, const std::string& payload) {
  std::string err;
  const std::optional<Json> parsed = Json::parse(payload, &err);
  if (!parsed || !parsed->is_object()) {
    // Framing is intact, so this is recoverable: answer and keep reading.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    Json msg = Json::object();
    msg.set("type", "error");
    msg.set("error", !parsed ? "malformed JSON payload: " + err
                             : "message must be a JSON object");
    respond(conn, msg);
    return;
  }
  const Json* type = parsed->find("type");
  const std::string kind =
      type != nullptr && type->type() == Json::Type::String ? type->as_string()
                                                            : "";
  if (kind == "ping") {
    Json msg = Json::object();
    msg.set("type", "pong");
    msg.set("schema", kServeSchema);
    respond(conn, msg);
    return;
  }
  if (kind == "stats") {
    Json msg;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      msg = stats_.to_json();
    }
    respond(conn, msg);
    return;
  }
  if (kind == "shutdown") {
    begin_drain(Drain::Graceful, conn);
    return;
  }
  if (kind == "job") {
    const Json* idf = parsed->find("id");
    const std::string id =
        idf != nullptr && idf->type() == Json::Type::String ? idf->as_string()
                                                            : "";
    auto reject = [&](const std::string& why) {
      JobResult r;
      r.id = id;
      r.status = "error";
      r.error = why;
      r.report = job_error_report("error", why);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.jobs_received;
        ++stats_.jobs_served;
        ++stats_.status_error;
      }
      respond(conn, r.to_json());
    };
    if (stopping()) {
      reject("daemon is draining; job not accepted");
      return;
    }
    std::optional<JobSpec> spec = JobSpec::from_json(*parsed, &err);
    if (!spec) {
      reject(err);
      return;
    }
    std::uint64_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(Pending{std::move(*spec), conn, next_seq_++});
      depth = queue_.size();
    }
    cv_.notify_all();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs_received;
    }
    Json ev = Json::object();
    ev.set("event", "queued");
    ev.set("id", id);
    ev.set("queue_depth", depth);
    EventLog::emit("job", std::move(ev));
    return;
  }
  Json msg = Json::object();
  msg.set("type", "error");
  msg.set("error", kind.empty() ? "message missing string 'type'"
                                : "unknown message type: " + kind);
  respond(conn, msg);
}

void Server::respond(const ConnPtr& conn, const Json& message) {
  std::string err;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!write_message(conn->wfd, message, &err)) {
    // Client gone mid-job (or mid-drain). Per-job failure only.
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.disconnects;
  }
}

void Server::begin_drain(Drain mode, const ConnPtr& bye_conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Drain cur = drain_.load();
    // Only escalate: None -> Graceful -> Abort. Never de-escalate.
    if (mode == Drain::Abort || cur == Drain::None) drain_.store(mode);
    if (bye_conn != nullptr && bye_conn_ == nullptr) bye_conn_ = bye_conn;
  }
  cv_.notify_all();
}

void Server::refresh_cache_stats_locked() {
  stats_.cache_hits = cache_.hits();
  stats_.cache_misses = cache_.misses();
  stats_.cache_collisions = cache_.collisions();
  stats_.cache_evictions = cache_.evictions();
  stats_.cache_entries = cache_.entries();
  stats_.cache_bytes = cache_.bytes();
}

void Server::execute(Pending job) {
  const auto t0 = std::chrono::steady_clock::now();
  const JobSpec& spec = job.spec;
  {
    Json ev = Json::object();
    ev.set("event", "started");
    ev.set("id", spec.id);
    ev.set("circuit", spec.circuit);
    ev.set("proc", spec.proc);
    ev.set("k", static_cast<std::uint64_t>(spec.k));
    EventLog::emit("job", std::move(ev));
  }

  JobResult r;
  r.id = spec.id;
  const std::optional<std::string> canonical = canonical_input(spec);
  CachedResult cached;
  if (canonical && spec.deadline <= 0.0 &&
      cache_.lookup(*canonical, spec.option_key(), &cached)) {
    r.status = cached.status;
    r.cache_hit = true;
    r.bench = cached.bench;
    r.report = cached.report;
    r.stdout_text = cached.stdout_text;
  } else {
    begin_job_isolation();
    JobExecution exec = run_resynth_job(spec);
    r.status = exec.status;
    r.error = exec.error;
    r.bench = exec.bench;
    r.report = exec.report;
    r.stdout_text = exec.stdout_text;
    if (exec.cacheable && canonical) {
      cache_.insert(*canonical, spec.option_key(),
                    CachedResult{exec.status, exec.bench, exec.report,
                                 exec.stdout_text});
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_executed;
  }
  r.wall_ms = ms_since(t0);
  respond(job.conn, r.to_json());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_served;
    if (r.status == "ok") ++stats_.status_ok;
    else if (r.status == "degraded") ++stats_.status_degraded;
    else if (r.status == "interrupted") ++stats_.status_interrupted;
    else ++stats_.status_error;
    refresh_cache_stats_locked();
  }
  Json ev = Json::object();
  ev.set("event", "finished");
  ev.set("id", spec.id);
  ev.set("circuit", spec.circuit);
  ev.set("status", r.status);
  ev.set("cache", r.cache_hit ? "hit" : "miss");
  ev.set("wall_ms", r.wall_ms);
  ev.set("peak_rss_bytes", peak_rss_bytes());
  EventLog::emit("job", std::move(ev));
}

int Server::run() {
  // Results written to a client that vanished must be a per-job statistic,
  // not a process-killing SIGPIPE.
  ::signal(SIGPIPE, SIG_IGN);
  // Job reports embed counters/spans exactly like a one-shot run with
  // --report, which turns obs recording on; match it.
  obs_set_enabled(true);
  if (!config_.events_path.empty()) {
    std::string err;
    if (!EventLog::open(config_.events_path, "resynth_serve", &err)) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitUsage;
    }
  }
  if (config_.use_stdio) {
    auto conn = std::make_shared<Connection>();
    conn->rfd = 0;
    conn->wfd = 1;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    readers_.emplace_back(&Server::reader_loop, this, std::move(conn));
  } else {
    std::string err;
    if (setup_socket(&err) != 0) {
      std::cerr << "error: " << err << "\n";
      return robust::kExitInputError;
    }
    listener_ = std::thread(&Server::listener_loop, this);
  }

  // ---- executor loop: one job at a time, FIFO ----
  for (;;) {
    Pending job;
    bool have = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait_for(lk, std::chrono::milliseconds(kPollIntervalMs), [&] {
        return !queue_.empty() || drain_.load() != Drain::None;
      });
      if (robust::cancel_requested() &&
          robust::cancel_reason() == robust::StopReason::Signal) {
        drain_.store(Drain::Abort);
      }
      if (drain_.load() == Drain::Abort) break;
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        have = true;
      } else if (drain_.load() == Drain::Graceful) {
        break;
      }
    }
    if (!have) continue;
    // A previous job's deadline/budget cancel must not leak into this one.
    if (robust::cancel_requested() &&
        robust::cancel_reason() != robust::StopReason::Signal) {
      robust::clear_cancel();
    }
    execute(std::move(job));
    if (robust::cancel_requested()) {
      if (robust::cancel_reason() == robust::StopReason::Signal) {
        begin_drain(Drain::Abort, nullptr);
      } else {
        robust::clear_cancel();
      }
    }
  }

  // ---- teardown ----
  if (drain_.load() == Drain::None) drain_.store(Drain::Graceful);
  if (listener_.joinable()) listener_.join();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
  }
  // Jobs still queued (abort drain, or a race with a graceful one) are
  // answered, not dropped on the floor.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) {
    JobResult r;
    r.id = p.spec.id;
    r.status = "interrupted";
    r.error = "daemon shutting down before this job ran";
    r.report = job_error_report("interrupted", r.error);
    respond(p.conn, r.to_json());
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_served;
    ++stats_.status_interrupted;
  }
  if (!config_.use_stdio) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  const bool aborted = drain_.load() == Drain::Abort;
  if (!aborted && bye_conn_ != nullptr) {
    std::uint64_t served = 0;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      served = stats_.jobs_served;
    }
    Json bye = Json::object();
    bye.set("type", "bye");
    bye.set("jobs_served", served);
    respond(bye_conn_, bye);
  }
  EventLog::finish(aborted ? "interrupted" : "ok");
  return aborted ? robust::exit_code_for_cancel() : robust::kExitOk;
}

}  // namespace compsyn::serve
