// The resynth_serve daemon core (DESIGN.md §13).
//
// Concurrency model: accept and parse concurrently, execute serially. A
// listener thread accepts connections (Unix-domain socket) and one reader
// thread per connection decodes frames and enqueues jobs; the thread that
// called run() is the *executor*, draining the FIFO queue one job at a
// time. Jobs still use the exec pool internally (the daemon's --jobs
// applies to every job), but no two jobs overlap — which is what makes the
// determinism contract trivial: each job sees exactly the global state a
// fresh one-shot process would (begin_job_isolation), in an order
// independent of client concurrency for the per-job artifacts (the
// *artifacts* depend only on the spec; only envelope fields like wall_ms
// and the event log's interleaving reflect arrival order).
//
// Lifecycle:
//   - {"type":"shutdown"} or stdin EOF (stdio mode): graceful drain --
//     queued jobs run to completion, results flow out, the shutdown
//     connection gets {"type":"bye"}, exit 0.
//   - SIGINT/SIGTERM: abort drain -- the in-flight job winds down at a poll
//     point and answers status "interrupted"; queued jobs answer
//     "interrupted" without running; the socket file is unlinked; exit
//     128+sig (130/143), matching the one-shot binaries.
// Per-job failures (malformed .bench, budget trips, client gone mid-job)
// never end the daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace compsyn::serve {

struct ServerConfig {
  std::string socket_path;  // Unix-domain socket ("" with use_stdio)
  bool use_stdio = false;   // serve one client over fds 0/1 instead
  std::uint64_t cache_bytes = 64ull * 1024 * 1024;
  std::string events_path;  // compsyn-events-v1 JSONL ("" = off)
};

/// Daemon counters, exposed by the {"type":"stats"} message and mirrored
/// into serve.* keys of the bench_serve report.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t jobs_received = 0;
  std::uint64_t jobs_served = 0;    // responses sent (any status)
  std::uint64_t jobs_executed = 0;  // actually ran the pipeline
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_collisions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t status_ok = 0;
  std::uint64_t status_degraded = 0;
  std::uint64_t status_interrupted = 0;
  std::uint64_t status_error = 0;
  std::uint64_t protocol_errors = 0;  // truncated/oversized/bad-JSON frames
  std::uint64_t disconnects = 0;      // responses that found the client gone

  Json to_json() const;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, serves until shutdown/EOF/signal, and returns the process exit
  /// code (0 graceful, 128+sig on signal, kExitInputError on bind failure).
  /// The calling thread becomes the job executor.
  int run();

 private:
  struct Connection {
    int rfd = -1;
    int wfd = -1;
    bool own_fds = false;  // close on destruction (socket conns only)
    std::mutex write_mu;   // reader (pong/stats) vs executor (results)
    ~Connection();
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Pending {
    JobSpec spec;
    ConnPtr conn;
    std::uint64_t seq = 0;
  };

  enum class Drain { None, Graceful, Abort };

  int setup_socket(std::string* error);
  void listener_loop();
  void reader_loop(ConnPtr conn);
  void handle_message(const ConnPtr& conn, const std::string& payload);
  void execute(Pending job);
  void respond(const ConnPtr& conn, const Json& message);
  void begin_drain(Drain mode, const ConnPtr& bye_conn);
  bool stopping() const { return drain_.load() != Drain::None; }
  void refresh_cache_stats_locked();

  ServerConfig config_;
  ResultCache cache_;
  int listen_fd_ = -1;

  std::mutex mu_;  // queue_, bye_conn_, next_seq_
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  ConnPtr bye_conn_;
  std::uint64_t next_seq_ = 0;
  std::atomic<Drain> drain_{Drain::None};

  std::mutex stats_mu_;
  ServeStats stats_;

  std::mutex conns_mu_;
  std::vector<std::thread> readers_;
  std::thread listener_;
};

}  // namespace compsyn::serve
