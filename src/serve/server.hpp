// The resynth_serve daemon core (DESIGN.md §13, §15).
//
// Concurrency model: accept and parse concurrently, execute on N
// independent *lanes*. A listener thread accepts connections (Unix-domain
// socket) and one reader thread per connection decodes frames and
// enqueues jobs; `--lanes=N` lane threads drain the FIFO queue, each
// owning a private robust slot (budget/deadline/cancel state), a private
// obs domain (counters/spans), and a private exec pool -- so no two jobs
// share any mutable engine state, and every artifact is byte-identical to
// a fresh one-shot `resynth_flow` at any lane count (DESIGN.md §15.1).
// The thread that called run() is the *monitor*: it promotes signals to
// an abort drain and fires the hung-lane watchdog.
//
// Admission control: the queue is bounded (--queue-max); a job arriving
// at a full queue -- or from a client above its in-flight cap -- is shed
// deterministically with error "overloaded" and a retry_after_ms hint
// computed from queue state (never from the wall clock). Shedding is a
// per-job answer; the connection keeps serving.
//
// Crash safety: with --wal=PATH every deadline-free job's lifecycle is
// journaled (serve/wal.hpp). A restarted daemon replays the journal,
// preloads finished artifacts into the result cache, and re-executes jobs
// that were accepted or in flight when the process died, so a client that
// re-submits by job key gets byte-identical answers (DESIGN.md §15.2).
//
// Lifecycle:
//   - {"type":"shutdown"} or stdin EOF (stdio mode): graceful drain --
//     queued jobs run to completion, results flow out, the shutdown
//     connection gets {"type":"bye"}, exit 0.
//   - SIGINT/SIGTERM: abort drain -- in-flight jobs wind down at a poll
//     point and answer status "interrupted"; queued jobs answer
//     "interrupted" without running; the socket file is unlinked; exit
//     128+sig (130/143), matching the one-shot binaries.
//   - Hung lane: the watchdog (--watchdog=SECONDS) cancels that lane's
//     job (per-job "interrupted" answer); the lane keeps serving.
// Per-job failures (malformed .bench, budget trips, client gone mid-job,
// injected lane crashes, WAL write failures) never end the daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/exec.hpp"
#include "obs/domain.hpp"
#include "robust/robust.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/wal.hpp"

namespace compsyn::serve {

struct ServerConfig {
  std::string socket_path;  // Unix-domain socket ("" with use_stdio)
  bool use_stdio = false;   // serve one client over fds 0/1 instead
  std::uint64_t cache_bytes = 64ull * 1024 * 1024;
  std::string events_path;  // compsyn-events-v1 JSONL ("" = off)
  unsigned lanes = 1;       // concurrent job lanes
  unsigned jobs_per_lane = 1;  // exec workers inside each lane's pool
  std::string wal_path;     // job journal ("" = journaling off)
  std::size_t queue_max = 256;  // admission bound (0 = unbounded)
  unsigned client_max = 0;  // per-connection in-flight cap (0 = none)
  double watchdog_seconds = 0.0;  // hung-lane watchdog (0 = off)
};

/// Daemon counters, exposed by the {"type":"stats"} message and mirrored
/// into serve.* keys of the bench_serve report. Tallies follow the §9
/// jobs-invariant discipline: they count *events* (jobs shed, watchdog
/// fires), never timing, so a replay under identical load sees identical
/// values at lanes=1; at lanes>1 only scheduling-dependent tallies
/// (cache hits vs executions racing on the same key) may differ -- the
/// per-job artifacts never do.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t jobs_received = 0;
  std::uint64_t jobs_served = 0;    // responses sent (any status)
  std::uint64_t jobs_executed = 0;  // actually ran the pipeline
  std::uint64_t jobs_shed = 0;      // rejected by admission control
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_collisions = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t status_ok = 0;
  std::uint64_t status_degraded = 0;
  std::uint64_t status_interrupted = 0;
  std::uint64_t status_error = 0;
  std::uint64_t protocol_errors = 0;  // truncated/oversized/bad-JSON frames
  std::uint64_t disconnects = 0;      // responses that found the client gone
  std::uint64_t lanes = 1;            // configured lane count
  std::uint64_t lanes_busy = 0;       // snapshot at stats time
  std::uint64_t queue_depth = 0;      // snapshot at stats time
  std::uint64_t queue_max = 0;        // configured admission bound
  std::uint64_t wal_replayed = 0;     // jobs re-executed from the journal
  std::uint64_t wal_recovered = 0;    // finished results preloaded from it
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_errors = 0;
  std::uint64_t watchdog_fires = 0;

  Json to_json() const;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, serves until shutdown/EOF/signal, and returns the process exit
  /// code (0 graceful, 128+sig on signal, kExitInputError on bind failure).
  /// The calling thread becomes the monitor (signals + watchdog).
  int run();

  /// The finished-record payload: what replay needs to preload the cache.
  struct JobExecutionArtifacts {
    std::string status;
    std::string bench;
    Json report;
    std::string stdout_text;
    bool cacheable = false;
  };

 private:
  struct Connection {
    int rfd = -1;
    int wfd = -1;
    bool own_fds = false;  // close on destruction (socket conns only)
    std::mutex write_mu;   // reader (pong/stats) vs lanes (results)
    std::atomic<unsigned> inflight{0};  // jobs accepted, not yet answered
    ~Connection();
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Pending {
    JobSpec spec;
    ConnPtr conn;  // nullptr: internal WAL-replay job (no answer to send)
    std::uint64_t seq = 0;
    bool journaled = false;  // has an "accepted" record in the WAL
  };

  /// One job lane: a thread plus the isolation state it binds around its
  /// job loop. busy_since_ms/current_seq feed the monitor's watchdog.
  struct Lane {
    unsigned index = 0;
    robust::Slot slot;
    ObsDomain domain;
    ExecPool pool;
    std::thread thread;
    std::atomic<std::uint64_t> busy_since_ms{0};  // 0 = idle
    std::atomic<std::uint64_t> current_seq{0};
    std::uint64_t watchdog_kicked_seq = ~0ull;  // monitor thread only

    explicit Lane(unsigned idx, unsigned jobs) : index(idx), pool(jobs) {}
  };

  enum class Drain { None, Graceful, Abort };

  int setup_socket(std::string* error);
  void listener_loop();
  void reader_loop(ConnPtr conn);
  void handle_message(const ConnPtr& conn, const std::string& payload);
  void lane_loop(Lane& lane);
  void execute(Lane& lane, Pending job);
  void respond(const ConnPtr& conn, const Json& message);
  void shed(const ConnPtr& conn, const std::string& id, const char* why,
            std::uint64_t retry_after_ms);
  void begin_drain(Drain mode, const ConnPtr& bye_conn);
  bool stopping() const { return drain_.load() != Drain::None; }
  void refresh_cache_stats();
  void monitor_loop();

  // WAL plumbing (no-ops when the journal is off or dead).
  void recover_wal();
  void wal_append_accepted(std::uint64_t seq, const JobSpec& spec);
  void wal_append_mark(const char* type, std::uint64_t seq);
  void wal_append_finished(std::uint64_t seq, const std::string& canonical,
                           const std::string& option_key,
                           const JobExecutionArtifacts& artifacts);
  void wal_note_failure(const std::string& err);
  void compact_wal();

  ServerConfig config_;
  int listen_fd_ = -1;

  std::mutex mu_;  // queue_, bye_conn_, next_seq_
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  ConnPtr bye_conn_;
  std::uint64_t next_seq_ = 0;
  std::atomic<Drain> drain_{Drain::None};

  std::mutex cache_mu_;  // lanes race on lookups/inserts now
  ResultCache cache_;

  std::mutex stats_mu_;
  ServeStats stats_;

  // Journal state. Lock order: cache_mu_ strictly before wal_mu_ (the
  // compactor snapshots the cache first); mu_ is never held across either.
  std::mutex wal_mu_;
  JobWal wal_;
  std::map<std::uint64_t, Json> wal_live_;  // accepted, not yet finished
  std::size_t wal_appends_since_compact_ = 0;

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<unsigned> lanes_running_{0};

  std::mutex conns_mu_;
  std::vector<std::thread> readers_;
  std::thread listener_;
};

}  // namespace compsyn::serve
