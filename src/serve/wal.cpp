#include "serve/wal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "robust/checkpoint.hpp"  // fnv1a64
#include "robust/inject.hpp"

namespace compsyn::serve {
namespace {

constexpr const char* kGuardKey = ",\"guard\":\"";

std::string hex16(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool parse_hex16(std::string_view s, std::uint64_t* out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
  }
  *out = v;
  return true;
}

}  // namespace

std::string WalRecord::encode() const {
  Json j = Json::object();
  j.set("type", type);
  if (type == "header") {
    j.set("format", kWalFormat);
  } else {
    j.set("seq", seq);
  }
  for (const auto& [key, value] : fields.items()) j.set(key, value);
  std::string body = j.dump();  // compact, ends with '}'
  const std::uint64_t guard = robust::fnv1a64(body);
  body.pop_back();  // drop the closing '}'
  body += kGuardKey;
  body += hex16(guard);
  body += "\"}";
  return body;
}

std::optional<WalRecord> WalRecord::decode(std::string_view line,
                                           std::string* error) {
  const auto pos = line.rfind(kGuardKey);
  if (pos == std::string_view::npos || line.size() < pos + 28 ||
      line.substr(line.size() - 2) != "\"}") {
    if (error) *error = "wal record has no guard";
    return std::nullopt;
  }
  std::uint64_t claimed = 0;
  const std::string_view hex =
      line.substr(pos + std::char_traits<char>::length(kGuardKey),
                  line.size() - 2 - pos -
                      std::char_traits<char>::length(kGuardKey));
  if (!parse_hex16(hex, &claimed)) {
    if (error) *error = "wal record guard is malformed";
    return std::nullopt;
  }
  std::string body(line.substr(0, pos));
  body += '}';
  if (robust::fnv1a64(body) != claimed) {
    if (error) *error = "wal record guard mismatch";
    return std::nullopt;
  }
  std::string parse_error;
  const std::optional<Json> j = Json::parse(body, &parse_error);
  if (!j || !j->is_object()) {
    if (error) *error = "wal record is not a JSON object: " + parse_error;
    return std::nullopt;
  }
  const Json* type = j->find("type");
  if (type == nullptr || type->type() != Json::Type::String) {
    if (error) *error = "wal record has no type";
    return std::nullopt;
  }
  WalRecord rec;
  rec.type = type->as_string();
  if (rec.type == "header") {
    const Json* fmt = j->find("format");
    if (fmt == nullptr || fmt->type() != Json::Type::String ||
        fmt->as_string() != kWalFormat) {
      if (error) *error = "wal header format mismatch";
      return std::nullopt;
    }
  } else {
    const Json* seq = j->find("seq");
    if (seq == nullptr || (seq->type() != Json::Type::Uint &&
                           seq->type() != Json::Type::Int)) {
      if (error) *error = "wal record has no seq";
      return std::nullopt;
    }
    rec.seq = seq->as_u64();
  }
  for (const auto& [key, value] : j->items()) {
    if (key == "type" || key == "seq" || key == "format") continue;
    rec.fields.set(key, value);
  }
  return rec;
}

JobWal::~JobWal() { close(); }

void JobWal::close() {
  if (out_ != nullptr) {
    std::fclose(out_);
    out_ = nullptr;
  }
}

bool JobWal::open(const std::string& path, Replay* replay,
                  std::string* error) {
  close();
  path_ = path;
  dead_ = false;
  replay->records.clear();
  replay->dropped = 0;

  bool have_header = false;
  {
    std::ifstream in(path, std::ios::binary);
    if (in.is_open()) {
      std::string line;
      bool first = true;
      bool damaged = false;
      std::string decode_error;
      while (std::getline(in, line)) {
        if (line.empty()) continue;
        if (damaged) {
          ++replay->dropped;
          continue;
        }
        std::optional<WalRecord> rec = WalRecord::decode(line, &decode_error);
        if (!rec) {
          if (first) {
            // A journal whose very first line is broken is not "tail
            // damage on an append-only file" -- refuse rather than
            // silently starting a fresh journal over unknown data.
            if (error) *error = path + ": wal header: " + decode_error;
            return false;
          }
          damaged = true;
          ++replay->dropped;
          continue;
        }
        if (first) {
          if (rec->type != "header") {
            if (error) *error = path + ": first wal record is not a header";
            return false;
          }
          have_header = true;
          first = false;
          continue;
        }
        replay->records.push_back(std::move(*rec));
      }
    }
  }

  out_ = std::fopen(path.c_str(), "ab");
  if (out_ == nullptr) {
    if (error) *error = "cannot open " + path + " for appending";
    return false;
  }
  if (!have_header) {
    WalRecord header;
    header.type = "header";
    if (!append(header, error)) return false;
  }
  return true;
}

bool JobWal::append(const WalRecord& rec, std::string* error) {
  if (out_ == nullptr || dead_) {
    if (error) *error = "wal is not open";
    return false;
  }
  const std::string line = rec.encode() + "\n";
  if (robust::inject_wal_failure() ||
      std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0) {
    // Dead on first failure: a half-written line makes every later append
    // unparseable anyway, and retry loops on a full disk help nobody.
    dead_ = true;
    if (error) *error = "wal append to " + path_ + " failed";
    return false;
  }
  return true;
}

bool JobWal::compact(const std::vector<WalRecord>& records,
                     std::string* error) {
  if (path_.empty()) {
    if (error) *error = "wal is not open";
    return false;
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os.is_open()) {
      if (error) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    WalRecord header;
    header.type = "header";
    os << header.encode() << '\n';
    for (const WalRecord& rec : records) os << rec.encode() << '\n';
    os.flush();
    if (robust::inject_wal_failure() || !os.good()) {
      if (error) *error = "write to " + tmp + " failed";
      std::remove(tmp.c_str());
      return false;
    }
  }
  close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    if (error) *error = "cannot rename " + tmp + " to " + path_;
    std::remove(tmp.c_str());
    return false;
  }
  out_ = std::fopen(path_.c_str(), "ab");
  if (out_ == nullptr) {
    if (error) *error = "cannot reopen " + path_ + " after compaction";
    return false;
  }
  dead_ = false;
  return true;
}

}  // namespace compsyn::serve
