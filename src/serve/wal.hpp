// Crash-safe write-ahead job journal (format "compsyn-serve-wal-v1").
//
// The daemon journals every job's lifecycle so a crash (power loss,
// kill -9, scripted halt) loses no accepted work: a restarted daemon
// replays the journal, reloads finished jobs' artifacts into the result
// cache, and re-executes jobs that were accepted or in flight when the
// process died. Because job execution is deterministic (DESIGN.md §13.2),
// a re-executed job produces answers byte-identical to the ones the dead
// daemon would have sent.
//
// The file is append-only JSONL: one compact record per line, each
// guarded by an FNV-1a hash of everything before the guard key (the same
// robust::fnv1a64 the checkpoint format uses). The guard is always the
// LAST key of the line, so verification needs no JSON round-trip: strip
// the textual `,"guard":"..."` suffix, hash the prefix plus the closing
// brace, compare. A truncated or corrupt *tail* -- the expected shape of
// crash damage on an append-only file -- is tolerated: replay stops at
// the first bad line and reports how many lines it dropped. Damage
// before the tail is indistinguishable from tampering and is treated the
// same way (records after the damage are dropped; jobs they described
// are simply re-executed).
//
// Records (discriminated by "type"; "seq" is the daemon-assigned job
// sequence number, monotonically increasing across restarts):
//   {"type":"header","format":"compsyn-serve-wal-v1"}      first line
//   {"type":"accepted","seq":N,"job":{...JobSpec...}}      queued
//   {"type":"started","seq":N}                             lane picked it up
//   {"type":"cached","seq":N}                              answered from cache
//   {"type":"finished","seq":N,"canonical":...,"option_key":...,
//    "status":...,"bench":...,"report":{...},"stdout":...} executed + result
//
// Compaction rewrites the journal as header + one finished record per
// live cache entry via the checkpoint tmp+rename discipline, so the file
// on disk is always either the old journal or the new one, never a
// half-written hybrid.
//
// Jobs with a deadline never enter the journal: their outcome is
// wall-clock dependent, so replaying them could not promise byte-identical
// answers (the daemon re-answers them only if the client re-submits).
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace compsyn::serve {

inline constexpr const char* kWalFormat = "compsyn-serve-wal-v1";

/// One journal record. `fields` carries the kind-specific extras (the
/// job spec, the finished artifacts); type and seq travel explicitly.
struct WalRecord {
  std::string type;        // "header"|"accepted"|"started"|"cached"|"finished"
  std::uint64_t seq = 0;   // job sequence number (unused for "header")
  Json fields = Json::object();

  /// One guarded JSONL line (no trailing newline).
  std::string encode() const;

  /// Decodes and guard-checks one line; nullopt + *error on any damage.
  static std::optional<WalRecord> decode(std::string_view line,
                                         std::string* error);
};

/// The journal file. Append-only between compactions; all methods are
/// called from the daemon's admission/lane paths under the server's
/// locking (the class itself is not thread-safe).
class JobWal {
 public:
  JobWal() = default;
  ~JobWal();
  JobWal(const JobWal&) = delete;
  JobWal& operator=(const JobWal&) = delete;

  struct Replay {
    std::vector<WalRecord> records;  // every intact record, in file order
    std::size_t dropped = 0;         // corrupt/truncated lines discarded
  };

  /// Opens `path` for appending, first replaying any existing journal
  /// into *replay. A fresh (or empty) file gets the header record. Fails
  /// on I/O errors and on an existing first line that is not a valid
  /// header of this format -- tail damage is tolerated, a wrong format is
  /// not.
  bool open(const std::string& path, Replay* replay, std::string* error);

  bool is_open() const { return out_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one record and flushes. On failure (I/O error or an injected
  /// wal fault) the journal is marked dead: this append and every later
  /// one return false immediately, and the daemon keeps serving
  /// un-journaled rather than dying on a full disk.
  bool append(const WalRecord& rec, std::string* error);

  /// Atomically replaces the journal with header + `records` (checkpoint
  /// tmp+rename discipline), then reopens for appending.
  bool compact(const std::vector<WalRecord>& records, std::string* error);

  void close();

 private:
  std::string path_;
  std::FILE* out_ = nullptr;
  bool dead_ = false;
};

}  // namespace compsyn::serve
