#include "techmap/techmap.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>

namespace compsyn {
namespace {

// ---------------------------------------------------------------- subject

class SubjectBuilder {
 public:
  explicit SubjectBuilder(Netlist& out) : out_(out) {}

  NodeId inv(NodeId x) {
    // Collapse inverter pairs immediately.
    if (out_.node(x).type == GateType::Not) return out_.node(x).fanins[0];
    auto it = inv_cache_.find(x);
    if (it != inv_cache_.end()) return it->second;
    const NodeId n = out_.add_gate(GateType::Not, {x});
    inv_cache_[x] = n;
    return n;
  }

  NodeId nand2(NodeId a, NodeId b) { return out_.add_gate(GateType::Nand, {a, b}); }
  NodeId and2(NodeId a, NodeId b) { return inv(nand2(a, b)); }
  NodeId or2(NodeId a, NodeId b) { return nand2(inv(a), inv(b)); }
  NodeId xor2(NodeId a, NodeId b) {
    return nand2(nand2(a, inv(b)), nand2(inv(a), b));
  }

  NodeId fold(std::vector<NodeId> xs, NodeId (SubjectBuilder::*op)(NodeId, NodeId)) {
    assert(!xs.empty());
    while (xs.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
        next.push_back((this->*op)(xs[i], xs[i + 1]));
      }
      if (xs.size() % 2) next.push_back(xs.back());
      xs = std::move(next);
    }
    return xs[0];
  }

 private:
  Netlist& out_;
  std::map<NodeId, NodeId> inv_cache_;
};

}  // namespace

Netlist to_subject_graph(const Netlist& nl) {
  Netlist out(nl.name() + "_subject");
  SubjectBuilder sb(out);
  std::vector<NodeId> map(nl.size(), kNoNode);
  for (NodeId pi : nl.inputs()) map[pi] = out.add_input(nl.node(pi).name);
  for (NodeId n : nl.topo_order()) {
    const Node& nd = nl.node(n);
    std::vector<NodeId> fi;
    for (NodeId f : nd.fanins) fi.push_back(map[f]);
    switch (nd.type) {
      case GateType::Input:
        break;
      case GateType::Const0:
        map[n] = out.add_const(false);
        break;
      case GateType::Const1:
        map[n] = out.add_const(true);
        break;
      case GateType::Buf:
        map[n] = fi[0];
        break;
      case GateType::Not:
        map[n] = sb.inv(fi[0]);
        break;
      case GateType::And:
        map[n] = sb.fold(fi, &SubjectBuilder::and2);
        break;
      case GateType::Nand:
        map[n] = sb.inv(sb.fold(fi, &SubjectBuilder::and2));
        break;
      case GateType::Or:
        map[n] = sb.fold(fi, &SubjectBuilder::or2);
        break;
      case GateType::Nor:
        map[n] = sb.inv(sb.fold(fi, &SubjectBuilder::or2));
        break;
      case GateType::Xor:
        map[n] = sb.fold(fi, &SubjectBuilder::xor2);
        break;
      case GateType::Xnor:
        map[n] = sb.inv(sb.fold(fi, &SubjectBuilder::xor2));
        break;
    }
  }
  for (NodeId o : nl.outputs()) out.mark_output(map[o]);
  out.sweep();
  return out;
}

namespace {

// ---------------------------------------------------------------- library

struct Pat {
  enum Kind { Leaf, Inv, Nand } kind = Leaf;
  unsigned var = 0;  // for Leaf
  std::unique_ptr<Pat> a, b;
};

std::unique_ptr<Pat> L(unsigned v) {
  auto p = std::make_unique<Pat>();
  p->kind = Pat::Leaf;
  p->var = v;
  return p;
}
std::unique_ptr<Pat> I(std::unique_ptr<Pat> a) {
  auto p = std::make_unique<Pat>();
  p->kind = Pat::Inv;
  p->a = std::move(a);
  return p;
}
std::unique_ptr<Pat> N(std::unique_ptr<Pat> a, std::unique_ptr<Pat> b) {
  auto p = std::make_unique<Pat>();
  p->kind = Pat::Nand;
  p->a = std::move(a);
  p->b = std::move(b);
  return p;
}

struct Cell {
  std::string name;
  std::uint32_t area;
  unsigned n_vars;
  std::unique_ptr<Pat> pat;
};

const std::vector<Cell>& library() {
  static const std::vector<Cell> lib = [] {
    std::vector<Cell> v;
    auto add = [&](std::string name, std::uint32_t area, unsigned n_vars,
                   std::unique_ptr<Pat> pat) {
      v.push_back({std::move(name), area, n_vars, std::move(pat)});
    };
    add("inv1", 1, 1, I(L(0)));
    add("nand2", 2, 2, N(L(0), L(1)));
    add("nor2", 2, 2, I(N(I(L(0)), I(L(1)))));
    add("and2", 3, 2, I(N(L(0), L(1))));
    add("or2", 3, 2, N(I(L(0)), I(L(1))));
    add("nand3", 3, 3, N(I(N(L(0), L(1))), L(2)));
    add("nor3", 3, 3, I(N(I(N(I(L(0)), I(L(1)))), I(L(2)))));
    add("aoi21", 3, 3, I(N(N(L(0), L(1)), I(L(2)))));
    add("oai21", 3, 3, N(N(I(L(0)), I(L(1))), L(2)));
    // nand4, balanced and left-leaning decompositions.
    add("nand4", 4, 4, N(I(N(L(0), L(1))), I(N(L(2), L(3)))));
    add("nand4b", 4, 4, N(I(N(I(N(L(0), L(1))), L(2))), L(3)));
    add("xor2", 5, 2, N(N(L(0), I(L(1))), N(I(L(0)), L(1))));
    add("xnor2", 5, 2, I(N(N(L(0), I(L(1))), N(I(L(0)), L(1)))));
    return v;
  }();
  return lib;
}

// ---------------------------------------------------------------- covering

class Mapper {
 public:
  explicit Mapper(const Netlist& subject) : s_(subject) {
    fanout_count_.assign(s_.size(), 0);
    for (NodeId n = 0; n < s_.size(); ++n) {
      if (s_.is_dead(n)) continue;
      for (NodeId f : s_.node(n).fanins) ++fanout_count_[f];
    }
    best_cell_.assign(s_.size(), -1);
    best_cost_.assign(s_.size(), 0);
    best_leaves_.resize(s_.size());
  }

  TechmapResult run() {
    for (NodeId n : s_.topo_order()) cover(n);
    TechmapResult res;
    res.subject_nodes = s_.live_count();
    // Reconstruct the chosen cover from the output roots.
    std::vector<char> emitted(s_.size(), 0);
    std::vector<std::uint32_t> depth(s_.size(), 0);
    std::vector<NodeId> order;  // roots in dependency order
    for (NodeId o : s_.outputs()) need(o, emitted, order);
    for (NodeId r : order) {
      const Cell& cell = library()[static_cast<std::size_t>(best_cell_[r])];
      res.area += cell.area;
      res.cell_count += 1;
      res.cells.push_back({cell.name, cell.area});
      std::uint32_t d = 0;
      for (NodeId leaf : best_leaves_[r]) d = std::max(d, depth[leaf]);
      depth[r] = d + 1;
    }
    for (NodeId o : s_.outputs()) res.longest_path = std::max(res.longest_path, depth[o]);
    return res;
  }

 private:
  bool is_gate(NodeId n) const {
    const GateType t = s_.node(n).type;
    return t == GateType::Nand || t == GateType::Not;
  }

  /// Pattern match rooted at n; appends bound leaves, returns success.
  bool match(NodeId n, const Pat& p, bool is_root, std::vector<NodeId>& binding) {
    if (p.kind == Pat::Leaf) {
      if (binding[p.var] == kNoNode) {
        binding[p.var] = n;
        return true;
      }
      return binding[p.var] == n;
    }
    // Internal pattern nodes must not cross fanout/output boundaries.
    if (!is_root && (fanout_count_[n] != 1 || s_.node(n).is_output)) return false;
    const Node& nd = s_.node(n);
    if (p.kind == Pat::Inv) {
      if (nd.type != GateType::Not) return false;
      return match(nd.fanins[0], *p.a, false, binding);
    }
    if (nd.type != GateType::Nand) return false;
    // Try both argument orders (NAND is commutative).
    {
      std::vector<NodeId> save = binding;
      if (match(nd.fanins[0], *p.a, false, binding) &&
          match(nd.fanins[1], *p.b, false, binding)) {
        return true;
      }
      binding = save;
    }
    {
      std::vector<NodeId> save = binding;
      if (match(nd.fanins[1], *p.a, false, binding) &&
          match(nd.fanins[0], *p.b, false, binding)) {
        return true;
      }
      binding = save;
    }
    return false;
  }

  void cover(NodeId n) {
    if (!is_gate(n)) return;  // inputs/constants cost nothing
    std::uint64_t best = ~0ull;
    for (std::size_t ci = 0; ci < library().size(); ++ci) {
      const Cell& cell = library()[ci];
      std::vector<NodeId> binding(cell.n_vars, kNoNode);
      if (!match(n, *cell.pat, true, binding)) continue;
      std::uint64_t cost = cell.area;
      bool ok = true;
      for (NodeId leaf : binding) {
        if (leaf == kNoNode) {
          ok = false;  // unbound variable: malformed match
          break;
        }
        cost += best_cost_[leaf];
      }
      if (!ok) continue;
      if (cost < best) {
        best = cost;
        best_cell_[n] = static_cast<int>(ci);
        best_leaves_[n] = binding;
      }
    }
    assert(best != ~0ull && "inv1/nand2 must always match");
    best_cost_[n] = best;
  }

  void need(NodeId n, std::vector<char>& emitted, std::vector<NodeId>& order) {
    if (!is_gate(n) || emitted[n]) return;
    emitted[n] = 1;
    for (NodeId leaf : best_leaves_[n]) need(leaf, emitted, order);
    order.push_back(n);
  }

  const Netlist& s_;
  std::vector<std::uint32_t> fanout_count_;
  std::vector<int> best_cell_;
  std::vector<std::uint64_t> best_cost_;
  std::vector<std::vector<NodeId>> best_leaves_;
};

}  // namespace

TechmapResult technology_map(const Netlist& nl) {
  Netlist subject = to_subject_graph(nl);
  Mapper mapper(subject);
  return mapper.run();
}

}  // namespace compsyn
