// Tree-covering technology mapper -- the SIS-mapping substrate behind
// Table 4 ("literals" and "gates on the longest path").
//
// Pipeline:
//   1. decompose the netlist into a NAND2/INV subject graph (multi-input
//      gates become balanced trees; XOR/XNOR get the 3-NAND+2-INV tree form
//      with duplicated leaves; inverter pairs are collapsed);
//   2. partition into trees at multi-fanout points and primary outputs;
//   3. cover each tree bottom-up by dynamic programming over a small
//      mcnc-style cell library (structural pattern matching with
//      commutative branches and consistent leaf binding), minimising area;
//   4. report the mapped netlist's total cell area ("literals") and the
//      maximum number of cells on any input-to-output path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace compsyn {

struct MappedCellUse {
  std::string cell;           // library cell name
  std::uint32_t area = 0;
};

struct TechmapResult {
  std::uint64_t area = 0;        // sum of cell areas ("literals", Table 4)
  std::uint32_t longest_path = 0;  // cells on the longest PI->PO path
  std::uint64_t cell_count = 0;
  std::vector<MappedCellUse> cells;  // per mapped cell, for reports
  std::uint64_t subject_nodes = 0;   // NAND2/INV subject-graph size
};

/// Maps the circuit and reports area/depth; the input netlist is untouched.
TechmapResult technology_map(const Netlist& nl);

/// The subject graph alone (exposed for tests): NAND2/INV/Input netlist
/// functionally equivalent to the input.
Netlist to_subject_graph(const Netlist& nl);

}  // namespace compsyn
