// Migrates a legacy (untagged) bench report to the unified compsyn-bench-v2
// schema (DESIGN.md §12.4): the same document with a leading
// "schema": "compsyn-bench-v2" member. Idempotent -- converting a v2 report
// rewrites it unchanged (modulo pretty-printing).
//
//   $ ./bench_convert BENCH_table2.json                  (in place)
//   $ ./bench_convert --out=new.json BENCH_table2.json
//
// Exit codes: 0 converted/already-v2, 2 usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/bench_schema.hpp"
#include "util/cli.hpp"

using namespace compsyn;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().size() != 1) {
    std::cerr << "usage: bench_convert [--out=file.json] <report.json>\n";
    return 2;
  }
  const std::string in_path = cli.positional()[0];
  const std::string out_path = cli.has("out") ? cli.get("out") : in_path;

  std::ifstream is(in_path);
  if (!is) {
    std::cerr << "error: cannot open " << in_path << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();

  std::string err;
  std::optional<Json> doc = Json::parse(buf.str(), &err);
  if (!doc) {
    std::cerr << "error: " << in_path << ": " << err << "\n";
    return 2;
  }
  Json v2;
  if (!bench_normalize_v2(std::move(*doc), &v2, &err)) {
    std::cerr << "error: " << in_path << ": " << err << "\n";
    return 2;
  }

  std::ofstream os(out_path);
  if (!os) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 2;
  }
  v2.write(os, 2);
  os << '\n';
  os.flush();
  if (!os) {
    std::cerr << "error: write to " << out_path << " failed\n";
    return 2;
  }
  cli.warn_unrecognized(std::cerr);
  return 0;
}
