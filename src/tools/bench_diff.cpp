// Compares two bench reports (compsyn-bench-v2, legacy reports auto-tagged)
// and renders per-span / per-counter deltas: the perf-regression gate behind
// CI's perf-smoke job and the manual "did my change cost anything" check.
//
//   $ ./bench_diff base.json new.json
//   $ ./bench_diff --tolerance=0.25 --json=verdict.json base.json new.json
//   $ ./bench_diff --strict-counters --tolerance=1000 base.json new.json
//
// Time metrics (wall_seconds, span total_ns, histogram sum_ns) regress when
// the new report is more than --tolerance (relative, default 0.10 = +10%)
// slower on a metric whose base or new total clears --min-ns (default 1ms;
// sub-millisecond spans are clock noise). Counters are deterministic, so
// they are compared exactly: differences are always listed, and with
// --strict-counters any difference fails the gate (with a huge --tolerance
// this turns bench_diff into a pure determinism check, which is what the CI
// perf-smoke job runs -- wall time on shared runners is not a signal).
//
// --json=FILE writes a machine verdict; --trajectory=FILE appends a one-line
// JSONL summary of the NEW report (see BENCH_trajectory.jsonl).
//
// Exit codes: 0 no regression, 1 regression, 2 usage or input error.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace compsyn;

namespace {

double as_number(const Json& j) {
  switch (j.type()) {
    case Json::Type::Int:
      return static_cast<double>(j.as_i64());
    case Json::Type::Uint:
      return static_cast<double>(j.as_u64());
    case Json::Type::Double:
      return j.as_double();
    default:
      return 0.0;
  }
}

bool load_report(const std::string& path, Json* out, std::string* err) {
  std::ifstream is(path);
  if (!is) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  std::optional<Json> doc = Json::parse(buf.str(), err);
  if (!doc) {
    *err = path + ": " + *err;
    return false;
  }
  if (!bench_normalize_v2(std::move(*doc), out, err)) {
    *err = path + ": " + *err;
    return false;
  }
  return true;
}

/// One comparable time metric ("span:resynth", "hist:sat.query.ns", ...).
struct TimeMetric {
  std::string name;
  double base_ns = 0;
  double new_ns = 0;
  bool in_base = false;
  bool in_new = false;
};

/// Name-keyed merge of a {label/name, value_key} array from both reports.
void collect_array_metric(const Json& base, const Json& next,
                          const char* section, const char* key_field,
                          const char* value_field, const std::string& prefix,
                          std::vector<TimeMetric>* out) {
  auto scan = [&](const Json& doc, bool is_base) {
    const Json* arr = doc.find(section);
    if (arr == nullptr || !arr->is_array()) return;
    for (std::size_t i = 0; i < arr->size(); ++i) {
      const Json& e = arr->at(i);
      const Json* name = e.find(key_field);
      const Json* value = e.find(value_field);
      if (name == nullptr || value == nullptr) continue;
      const std::string full = prefix + name->as_string();
      TimeMetric* m = nullptr;
      for (TimeMetric& t : *out) {
        if (t.name == full) {
          m = &t;
          break;
        }
      }
      if (m == nullptr) {
        out->push_back(TimeMetric{full, 0, 0, false, false});
        m = &out->back();
      }
      if (is_base) {
        m->base_ns = as_number(*value);
        m->in_base = true;
      } else {
        m->new_ns = as_number(*value);
        m->in_new = true;
      }
    }
  };
  scan(base, true);
  scan(next, false);
}

struct CounterDelta {
  std::string name;
  std::string base;  // rendered value ("-" when absent)
  std::string next;
};

void collect_counter_deltas(const Json& base, const Json& next,
                            std::vector<CounterDelta>* out) {
  const Json* cb = base.find("counters");
  const Json* cn = next.find("counters");
  auto render = [](const Json* obj, const std::string& key) -> std::string {
    if (obj == nullptr) return "-";
    const Json* v = obj->find(key);
    return v == nullptr ? "-" : v->dump();
  };
  // Union of names, base order first so the listing is stable.
  std::vector<std::string> names;
  auto add_names = [&](const Json* obj) {
    if (obj == nullptr || !obj->is_object()) return;
    for (const auto& [k, v] : obj->items()) {
      (void)v;
      bool seen = false;
      for (const std::string& n : names) {
        if (n == k) {
          seen = true;
          break;
        }
      }
      if (!seen) names.push_back(k);
    }
  };
  add_names(cb);
  add_names(cn);
  for (const std::string& n : names) {
    const std::string b = render(cb, n);
    const std::string w = render(cn, n);
    if (b != w) out->push_back(CounterDelta{n, b, w});
  }
}

std::string format_ms(double ns) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << ns / 1e6;
  return os.str();
}

std::string format_rel(double rel) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << (rel >= 0 ? "+" : "") << rel * 100.0 << "%";
  return os.str();
}

int diff_main(int argc, char** argv) {
  Cli cli(argc, argv);
  if (cli.positional().size() != 2) {
    std::cerr << "usage: bench_diff [--tolerance=FRAC] [--min-ns=N] "
                 "[--strict-counters] [--json=verdict.json] "
                 "[--trajectory=file.jsonl] <base.json> <new.json>\n";
    return 2;
  }
  const double tolerance = cli.get_double("tolerance", 0.10);
  const double min_ns = cli.get_double("min-ns", 1e6);
  const bool strict_counters = cli.has("strict-counters");
  const std::string base_path = cli.positional()[0];
  const std::string new_path = cli.positional()[1];

  Json base, next;
  std::string err;
  if (!load_report(base_path, &base, &err) ||
      !load_report(new_path, &next, &err)) {
    std::cerr << "error: " << err << "\n";
    return 2;
  }

  std::vector<TimeMetric> metrics;
  {
    const Json* wb = base.find("wall_seconds");
    const Json* wn = next.find("wall_seconds");
    TimeMetric wall{"wall", 0, 0, wb != nullptr, wn != nullptr};
    if (wb != nullptr) wall.base_ns = as_number(*wb) * 1e9;
    if (wn != nullptr) wall.new_ns = as_number(*wn) * 1e9;
    metrics.push_back(wall);
  }
  collect_array_metric(base, next, "spans", "label", "total_ns", "span:",
                       &metrics);
  collect_array_metric(base, next, "histograms", "name", "sum_ns", "hist:",
                       &metrics);
  collect_array_metric(base, next, "phases", "name", "wall_ns", "phase:",
                       &metrics);

  std::vector<CounterDelta> counter_deltas;
  collect_counter_deltas(base, next, &counter_deltas);

  Json regressions = Json::array();
  Json improvements = Json::array();
  Table table({"metric", "base ms", "new ms", "delta", "verdict"});
  for (const TimeMetric& m : metrics) {
    // Sub-threshold on both sides: clock noise, not evidence.
    if (m.base_ns < min_ns && m.new_ns < min_ns) continue;
    const double rel =
        m.base_ns > 0 ? (m.new_ns - m.base_ns) / m.base_ns
                      : (m.new_ns > 0 ? 1.0 : 0.0);  // new-from-zero = +100%
    const char* verdict = "ok";
    if (!m.in_base || !m.in_new) {
      verdict = m.in_new ? "new" : "gone";
    } else if (rel > tolerance) {
      verdict = "REGRESSION";
    } else if (rel < -tolerance) {
      verdict = "improved";
    }
    table.row()
        .add(m.name)
        .add(m.in_base ? format_ms(m.base_ns) : "-")
        .add(m.in_new ? format_ms(m.new_ns) : "-")
        .add(m.in_base && m.in_new ? format_rel(rel) : "-")
        .add(verdict);
    if (std::string(verdict) == "REGRESSION") {
      Json r = Json::object();
      r.set("metric", m.name);
      r.set("base_ns", m.base_ns);
      r.set("new_ns", m.new_ns);
      r.set("rel", rel);
      regressions.push(std::move(r));
    } else if (std::string(verdict) == "improved") {
      Json r = Json::object();
      r.set("metric", m.name);
      r.set("base_ns", m.base_ns);
      r.set("new_ns", m.new_ns);
      r.set("rel", rel);
      improvements.push(std::move(r));
    }
  }

  const std::string bn =
      base.find("name") != nullptr ? base.find("name")->as_string() : "?";
  const std::string nn =
      next.find("name") != nullptr ? next.find("name")->as_string() : "?";
  std::cout << "bench_diff: " << bn << " (" << base_path << ") vs " << nn
            << " (" << new_path << ")\n"
            << "tolerance " << format_rel(tolerance).substr(1) << ", min "
            << format_ms(min_ns) << " ms"
            << (strict_counters ? ", strict counters" : "") << "\n\n";
  table.print(std::cout);

  Json counters_changed = Json::array();
  if (!counter_deltas.empty()) {
    std::cout << "\ncounters changed (" << counter_deltas.size() << "):\n";
    Table ct({"counter", "base", "new"});
    for (const CounterDelta& d : counter_deltas) {
      ct.row().add(d.name).add(d.base).add(d.next);
      Json r = Json::object();
      r.set("name", d.name);
      r.set("base", d.base);
      r.set("new", d.next);
      counters_changed.push(std::move(r));
    }
    ct.print(std::cout);
  } else {
    std::cout << "\ncounters identical\n";
  }

  const bool counters_fail = strict_counters && !counter_deltas.empty();
  const bool regressed = regressions.size() > 0 || counters_fail;
  std::cout << "\nverdict: "
            << (regressed ? "REGRESSION" : "ok")
            << (counters_fail ? " (counter deltas under --strict-counters)"
                              : "")
            << "\n";

  if (cli.has("json")) {
    Json verdict = Json::object();
    verdict.set("schema", "compsyn-bench-diff-v1");
    verdict.set("base", base_path);
    verdict.set("new", new_path);
    verdict.set("tolerance", tolerance);
    verdict.set("min_ns", min_ns);
    verdict.set("strict_counters", strict_counters);
    verdict.set("regressions", std::move(regressions));
    verdict.set("improvements", std::move(improvements));
    verdict.set("counters_changed", std::move(counters_changed));
    verdict.set("verdict", regressed ? "regression" : "ok");
    std::ofstream os(cli.get("json"));
    if (!os) {
      std::cerr << "error: cannot open " << cli.get("json") << "\n";
      return 2;
    }
    verdict.write(os, 2);
    os << '\n';
  }

  if (cli.has("trajectory")) {
    // One summary line for the NEW report: the commit-over-commit perf
    // trajectory file is built from these (BENCH_trajectory.jsonl).
    Json rec = Json::object();
    rec.set("schema", "compsyn-bench-trajectory-v1");
    rec.set("name", nn);
    if (const Json* w = next.find("wall_seconds")) rec.set("wall_seconds", *w);
    double spans_total = 0;
    for (const TimeMetric& m : metrics) {
      if (m.in_new && m.name.rfind("span:", 0) == 0) spans_total += m.new_ns;
    }
    rec.set("spans_total_ns", spans_total);
    if (const Json* c = next.find("counters")) rec.set("counters", *c);
    std::ofstream os(cli.get("trajectory"), std::ios::app);
    if (!os) {
      std::cerr << "error: cannot open " << cli.get("trajectory") << "\n";
      return 2;
    }
    rec.write(os, 0);
    os << '\n';
  }

  cli.warn_unrecognized(std::cerr);
  return regressed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return diff_main(argc, argv); }
