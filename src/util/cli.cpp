#include "util/cli.hpp"

#include <cstdlib>
#include <ostream>
#include <string_view>

namespace compsyn {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    std::string name(eq == std::string_view::npos ? arg : arg.substr(0, eq));
    std::string value(eq == std::string_view::npos ? std::string_view("1")
                                                   : arg.substr(eq + 1));
    flags_.insert_or_assign(std::move(name), std::move(value));
  }
}

bool Cli::has(const std::string& name) const {
  queried_.insert(name);
  return flags_.count(name) != 0;
}

std::string Cli::get(const std::string& name, const std::string& def) const {
  queried_.insert(name);
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t def) const {
  queried_.insert(name);
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

int Cli::get_int(const std::string& name, int def) const {
  queried_.insert(name);
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atoi(it->second.c_str());
}

double Cli::get_double(const std::string& name, double def) const {
  queried_.insert(name);
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return end == it->second.c_str() ? def : v;
}

std::vector<std::string> Cli::unrecognized() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : flags_) {
    if (queried_.count(name) == 0) out.push_back(name);
  }
  return out;
}

std::size_t Cli::warn_unrecognized(std::ostream& os) const {
  const auto unknown = unrecognized();
  for (const std::string& name : unknown) {
    os << "warning: unrecognized flag --" << name << " (ignored)\n";
  }
  return unknown.size();
}

}  // namespace compsyn
