#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace compsyn {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else {
      flags_[std::string(arg)] = "1";
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.count(name) != 0; }

std::string Cli::get(const std::string& name, const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

std::uint64_t Cli::get_u64(const std::string& name, std::uint64_t def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 0);
}

int Cli::get_int(const std::string& name, int def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : std::atoi(it->second.c_str());
}

}  // namespace compsyn
