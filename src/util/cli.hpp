// Minimal command-line flag parsing for the examples and bench harnesses.
// Supports --name=value and boolean --name forms (the separated
// "--name value" form is deliberately not supported: it is ambiguous with
// boolean flags followed by positionals).
//
// Every query (has/get/get_*) registers its flag name as recognised;
// warn_unrecognized() then reports any flag the user passed that no query
// ever asked about -- call it after all flags have been read (the bench
// harnesses do this from BenchRun::finish()).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace compsyn {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  int get_int(const std::string& name, int def) const;
  double get_double(const std::string& name, double def) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// All parsed --name[=value] flags (value "1" for the bare boolean form).
  const std::map<std::string, std::string>& flags() const { return flags_; }

  /// Flags the user passed that were never queried, in sorted order.
  std::vector<std::string> unrecognized() const;

  /// Prints one "warning: unrecognized flag --x (ignored)" line per
  /// unrecognized flag. Returns the number of warnings emitted.
  std::size_t warn_unrecognized(std::ostream& os) const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> queried_;
};

}  // namespace compsyn
