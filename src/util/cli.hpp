// Minimal command-line flag parsing for the examples and bench harnesses.
// Supports --name=value and boolean --name forms (the separated
// "--name value" form is deliberately not supported: it is ambiguous with
// boolean flags followed by positionals).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace compsyn {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t def) const;
  int get_int(const std::string& name, int def) const;

  /// Non-flag positional arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace compsyn
