// Error taxonomy shared across subsystems.
//
// InputError marks failures caused by the *input* (malformed .bench text,
// an unreadable file, inconsistent flag combinations discovered after
// parsing) as opposed to internal invariant violations. The top-level
// error boundary (robust/guard.hpp) maps InputError to exit code 3 and
// everything else unexpected to exit code 4, so scripts can distinguish
// "fix your input" from "file a bug".
#pragma once

#include <stdexcept>
#include <string>

namespace compsyn {

struct InputError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace compsyn
