#include "util/rng.hpp"

#include <numeric>

namespace compsyn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur via splitmix64, but keep the
  // invariant explicit in case of future changes).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire-style rejection to stay unbiased for all bounds.
  if (bound <= 1) return 0;
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  shuffle(p);
  return p;
}

}  // namespace compsyn
