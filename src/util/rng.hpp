// Deterministic pseudo-random number generation for all randomized
// components (pattern generation, synthetic circuits, permutation sampling).
//
// Every experiment in the bench suite takes an explicit 64-bit seed so tables
// are reproducible bit-for-bit across runs and machines; std::mt19937 is
// avoided because its distributions are not specified portably.
#pragma once

#include <cstdint>
#include <vector>

namespace compsyn {

/// xoshiro256** 1.0 (Blackman/Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform in [0, bound) for bound >= 1 (unbiased via rejection).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Fair coin.
  bool flip() { return (next() >> 63) != 0; }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

  /// Uniform double in [0,1).
  double unit();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of 0..n-1.
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace compsyn
