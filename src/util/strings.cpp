#include "util/strings.hpp"

#include <cctype>

namespace compsyn {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace compsyn
