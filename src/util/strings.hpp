// Small string helpers shared by the .bench parser and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace compsyn {

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a delimiter character, trimming each piece; empty pieces kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

/// Formats an integer with thousands separators ("1234567" -> "1,234,567"),
/// matching the style of the paper's tables.
std::string with_commas(std::uint64_t v);

}  // namespace compsyn
