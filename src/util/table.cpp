#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace compsyn {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != ',' && c != '.' &&
        c != '-' && c != '+' && c != '%') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }

Table& Table::add_commas(std::uint64_t v) { return add(with_commas(v)); }

Table& Table::add(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return add(ss.str());
}

void Table::print(std::ostream& os) const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < ncols; ++c) {
      width[c] = std::max(width[c], r[c].size());
      if (!looks_numeric(r[c])) numeric[c] = false;
    }
  }
  auto emit = [&](const std::vector<std::string>& cells, bool align_right) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      const std::size_t pad = width[c] - std::min(width[c], s.size());
      if (c) os << "  ";
      if (align_right && numeric[c]) os << std::string(pad, ' ') << s;
      else os << s << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(headers_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < ncols; ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r, true);
}

}  // namespace compsyn
