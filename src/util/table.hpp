// Column-aligned plain-text table printer used by the bench harnesses to
// emit rows in the same layout as the paper's tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace compsyn {

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(std::string cell);
  Table& add(std::uint64_t v);          // plain integer
  Table& add_commas(std::uint64_t v);   // integer with thousands separators
  Table& add(double v, int precision = 2);

  /// Renders the table with a header rule, right-aligning numeric-looking
  /// columns.
  void print(std::ostream& os) const;

  /// Structured access for machine-readable sinks (obs/report).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace compsyn
