// Static pattern compaction and deterministic X-fill (DESIGN.md §16).
// The load-bearing invariant: replaying the compacted pattern set re-detects
// byte-exactly the faults the full X-filled set detected -- checked across
// circuits, fill seeds, RTPG seeds, X-free and X-heavy inputs, and job
// counts. X-fill is a pure function of (seed, pattern index, input index).
#include <gtest/gtest.h>

#include <cstddef>

#include "atpg/compact.hpp"
#include "atpg/guided.hpp"
#include "exec/exec.hpp"
#include "gen/circuits.hpp"

namespace compsyn {
namespace {

/// Restores the job count on scope exit.
struct JobsGuard {
  JobsGuard() : prev(jobs()) {}
  ~JobsGuard() { set_jobs(prev); }
  unsigned prev;
};

std::size_t popcount(const std::vector<char>& bm) {
  std::size_t n = 0;
  for (char b : bm) n += b != 0;
  return n;
}

TEST(Xfill, PureFunctionOfSeedAndIndices) {
  bool saw0 = false, saw1 = false;
  for (std::uint64_t p = 0; p < 64; ++p) {
    for (std::uint64_t i = 0; i < 16; ++i) {
      const std::uint8_t b = xfill_bit(kDefaultFillSeed, p, i);
      EXPECT_EQ(b, xfill_bit(kDefaultFillSeed, p, i));
      EXPECT_TRUE(b == 0 || b == 1);
      (b ? saw1 : saw0) = true;
    }
  }
  // A fill that is all-0 or all-1 would be a broken mix, not a fill.
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST(Xfill, FillsOnlyTheXBits) {
  TestPattern p{{kBit0, kBit1, kBitX, kBitX, kBit1}};
  const TestPattern f = xfill_pattern(p, 7, 3);
  ASSERT_EQ(f.bits.size(), p.bits.size());
  EXPECT_EQ(f.bits[0], kBit0);
  EXPECT_EQ(f.bits[1], kBit1);
  EXPECT_EQ(f.bits[4], kBit1);
  EXPECT_TRUE(f.fully_specified());
  EXPECT_EQ(f.bits[2], xfill_bit(7, 3, 2));
  EXPECT_EQ(f.bits[3], xfill_bit(7, 3, 3));
  // Fully-specified patterns pass through untouched.
  EXPECT_EQ(xfill_pattern(f, 99, 1234), f);
}

TEST(Compact, EmptyInputIsEmptyOutput) {
  Netlist nl = make_benchmark("c17");
  const auto faults = enumerate_faults(nl, true);
  const CompactionResult r = compact_patterns(nl, faults, {});
  EXPECT_TRUE(r.patterns.empty());
  EXPECT_EQ(r.detected_count, 0u);
  EXPECT_EQ(popcount(r.detected), 0u);
  EXPECT_EQ(r.input_patterns, 0u);
}

TEST(Compact, CoverageReplayByteEqualAcrossCircuitsAndSeeds) {
  for (const char* name : {"c17", "s27", "add8", "cmp8"}) {
    Netlist nl = make_benchmark(name);
    for (std::uint64_t seed : {0x7007ull, 1ull, 424242ull}) {
      GuidedAtpgOptions gopt;
      gopt.backtrack_limit = 0;
      gopt.rtpg.seed = seed;
      const GuidedAtpgResult g = guided_atpg(nl, gopt);
      const CompactionResult c =
          compact_patterns(nl, g.faults, g.patterns, {gopt.fill_seed});
      // The headline invariant: forward replay of the kept subset detects
      // byte-exactly what the full filled set detected.
      EXPECT_EQ(replay_detect(nl, g.faults, c.patterns), c.detected)
          << name << " seed " << seed;
      EXPECT_LE(c.patterns.size(), g.patterns.size()) << name;
      EXPECT_EQ(c.input_patterns, g.patterns.size()) << name;
      EXPECT_EQ(c.detected_count, popcount(c.detected)) << name;
      EXPECT_EQ(c.detected_count, g.detected) << name;
      for (const TestPattern& p : c.patterns) {
        EXPECT_TRUE(p.fully_specified());
      }
    }
  }
}

TEST(Compact, XHeavyCubesAcrossFillSeeds) {
  // With the RTPG front end off, every pattern is a raw PODEM cube full of
  // don't-cares; the invariant must hold for any fill seed, and different
  // seeds may legitimately keep different subsets.
  Netlist nl = make_benchmark("cmp8");
  GuidedAtpgOptions gopt;
  gopt.backtrack_limit = 0;
  gopt.rtpg_enabled = false;
  for (std::uint64_t fill : {kDefaultFillSeed, std::uint64_t{123},
                             std::uint64_t{0xDEADBEEF}}) {
    gopt.fill_seed = fill;
    const GuidedAtpgResult g = guided_atpg(nl, gopt);
    bool any_x = false;
    for (const TestPattern& p : g.patterns) any_x |= !p.fully_specified();
    EXPECT_TRUE(any_x) << "expected X-bearing PODEM cubes";
    const CompactionResult c = compact_patterns(nl, g.faults, g.patterns, {fill});
    EXPECT_EQ(replay_detect(nl, g.faults, c.patterns), c.detected)
        << "fill " << fill;
    EXPECT_EQ(c.detected_count, g.detected);
  }
}

TEST(Compact, ReverseElectionIsIdempotent) {
  // Each kept pattern is some fault's latest detector, so compacting the
  // kept (fully specified) set again changes nothing.
  Netlist nl = make_benchmark("add8");
  GuidedAtpgOptions gopt;
  gopt.backtrack_limit = 0;
  const GuidedAtpgResult g = guided_atpg(nl, gopt);
  const CompactionResult once =
      compact_patterns(nl, g.faults, g.patterns, {gopt.fill_seed});
  const CompactionResult twice =
      compact_patterns(nl, g.faults, once.patterns, {gopt.fill_seed});
  EXPECT_EQ(twice.patterns, once.patterns);
  EXPECT_EQ(twice.detected, once.detected);
}

TEST(Compact, JobsInvariant) {
  // The compactor rides on the fault simulator's jobs-invariant contract:
  // kept subset and detected bitmap are byte-equal at jobs=1 and jobs=4.
  JobsGuard guard;
  Netlist nl = make_benchmark("cmp8");
  for (std::uint64_t seed : {0x7007ull, 5ull}) {
    GuidedAtpgOptions gopt;
    gopt.backtrack_limit = 0;
    gopt.rtpg.seed = seed;
    set_jobs(1);
    const GuidedAtpgResult g1 = guided_atpg(nl, gopt);
    const CompactionResult c1 =
        compact_patterns(nl, g1.faults, g1.patterns, {gopt.fill_seed});
    set_jobs(4);
    const GuidedAtpgResult g4 = guided_atpg(nl, gopt);
    const CompactionResult c4 =
        compact_patterns(nl, g4.faults, g4.patterns, {gopt.fill_seed});
    EXPECT_EQ(g1.patterns, g4.patterns) << "seed " << seed;
    EXPECT_EQ(c1.patterns, c4.patterns) << "seed " << seed;
    EXPECT_EQ(c1.detected, c4.detected) << "seed " << seed;
    EXPECT_EQ(c1.detected_count, c4.detected_count) << "seed " << seed;
  }
}

}  // namespace
}  // namespace compsyn
