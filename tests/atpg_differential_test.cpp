// Verdict-differential suite for the strategy-driven PODEM (DESIGN.md §16):
// search-order policies may change decisions and backtrack counts, never
// verdicts. Against a baseline unlimited-backtrack legacy PODEM, every
// (backtrace, frontier) policy combination must return the identical
// Detected/Untestable status for every fault; under a finite budget the
// only permitted difference is Aborted resolving to a real verdict.
// The guided_atpg pipeline inherits the same invariant across strategy and
// fault-order combinations, and is byte-identical at --jobs=1 and --jobs=4.
#include <gtest/gtest.h>

#include <vector>

#include "atpg/guided.hpp"
#include "atpg/podem.hpp"
#include "atpg/scoap.hpp"
#include "exec/exec.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

/// Restores the job count on scope exit.
struct JobsGuard {
  JobsGuard() : prev(jobs()) {}
  ~JobsGuard() { set_jobs(prev); }
  unsigned prev;
};

constexpr BacktracePolicy kBacktrace[] = {
    BacktracePolicy::Legacy, BacktracePolicy::Level, BacktracePolicy::Scoap};
constexpr FrontierPolicy kFrontier[] = {
    FrontierPolicy::Legacy, FrontierPolicy::Level, FrontierPolicy::Scoap};

/// Per-fault verdicts at an unlimited budget under one strategy.
std::vector<AtpgStatus> verdicts(const Netlist& nl,
                                 const std::vector<StuckFault>& faults,
                                 AtpgStrategy strategy,
                                 const AtpgGuidance* guidance,
                                 std::uint64_t backtrack_limit = 0) {
  AtpgOptions opt;
  opt.backtrack_limit = backtrack_limit;
  opt.strategy = strategy;
  opt.guidance = guidance;
  std::vector<AtpgStatus> out;
  out.reserve(faults.size());
  for (const StuckFault& f : faults) out.push_back(run_podem(nl, f, opt).status);
  return out;
}

TEST(AtpgDifferential, AllStrategyCombosMatchBaselineOnGenSuite) {
  for (const char* name : {"c17", "s27", "add8", "cmp8"}) {
    Netlist nl = make_benchmark(name);
    const auto faults = enumerate_faults(nl, true);
    const AtpgGuidance guidance = AtpgGuidance::build(nl);
    const auto ref = verdicts(nl, faults, {}, nullptr);
    for (AtpgStatus s : ref) ASSERT_NE(s, AtpgStatus::Aborted) << name;
    for (BacktracePolicy bt : kBacktrace) {
      for (FrontierPolicy fr : kFrontier) {
        const auto got = verdicts(nl, faults, {bt, fr}, &guidance);
        for (std::size_t i = 0; i < faults.size(); ++i) {
          EXPECT_EQ(got[i], ref[i])
              << name << " bt=" << to_string(bt) << " fr=" << to_string(fr)
              << " fault " << to_string(nl, faults[i]);
        }
      }
    }
  }
}

TEST(AtpgDifferential, DetectedTestsStayValidUnderEveryStrategy) {
  // Not only the verdict: each strategy's Detected result must carry a test
  // the fault simulator confirms.
  Netlist nl = make_benchmark("cmp8");
  const auto faults = enumerate_faults(nl, true);
  const AtpgGuidance guidance = AtpgGuidance::build(nl);
  for (BacktracePolicy bt : kBacktrace) {
    for (FrontierPolicy fr : kFrontier) {
      AtpgOptions opt;
      opt.backtrack_limit = 0;
      opt.strategy = {bt, fr};
      opt.guidance = &guidance;
      for (const StuckFault& f : faults) {
        const AtpgResult r = run_podem(nl, f, opt);
        if (r.status != AtpgStatus::Detected) continue;
        FaultSimulator sim(nl, {f});
        std::vector<std::uint64_t> pi(r.test.size());
        for (std::size_t i = 0; i < r.test.size(); ++i) {
          pi[i] = r.test[i] ? 1ull : 0ull;
        }
        EXPECT_FALSE(sim.simulate_block(pi, 0).empty())
            << to_string(nl, f) << " bt=" << to_string(bt)
            << " fr=" << to_string(fr);
      }
    }
  }
}

TEST(AtpgDifferential, FiniteBudgetMayOnlyResolveAborts) {
  // Random 20-gate circuits carry redundancies; at backtrack_limit=1 a
  // strategy may abort, but a non-Aborted answer must equal the unlimited
  // reference -- a budget can never flip Detected <-> Untestable.
  Rng gen(97);
  for (int trial = 0; trial < 8; ++trial) {
    Netlist nl("r");
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(nl.add_input());
    const GateType kinds[] = {GateType::And, GateType::Or,  GateType::Nand,
                              GateType::Nor, GateType::Not, GateType::Xor};
    for (int i = 0; i < 20; ++i) {
      const GateType t = kinds[gen.below(6)];
      const unsigned arity = t == GateType::Not ? 1 : 2;
      std::vector<NodeId> fi;
      for (unsigned j = 0; j < arity; ++j) {
        fi.push_back(pool[gen.below(pool.size())]);
      }
      pool.push_back(nl.add_gate(t, fi));
    }
    nl.mark_output(pool.back());
    nl.sweep();
    const auto faults = enumerate_faults(nl, true);
    const AtpgGuidance guidance = AtpgGuidance::build(nl);
    const auto ref = verdicts(nl, faults, {}, nullptr);
    for (BacktracePolicy bt : kBacktrace) {
      for (FrontierPolicy fr : kFrontier) {
        for (std::uint64_t limit : {1ull, 4ull}) {
          const auto got = verdicts(nl, faults, {bt, fr}, &guidance, limit);
          for (std::size_t i = 0; i < faults.size(); ++i) {
            if (got[i] == AtpgStatus::Aborted) continue;
            EXPECT_EQ(got[i], ref[i])
                << "trial " << trial << " limit " << limit
                << " bt=" << to_string(bt) << " fr=" << to_string(fr);
          }
        }
      }
    }
  }
}

TEST(AtpgDifferential, MissingGuidanceDegradesToLegacy) {
  // A non-legacy strategy without a guidance table must behave exactly like
  // the legacy engine (same verdicts, same backtrack counts) rather than
  // read stale metrics.
  Netlist nl = make_benchmark("add8");
  const auto faults = enumerate_faults(nl, true);
  for (const StuckFault& f : faults) {
    AtpgOptions legacy;
    legacy.backtrack_limit = 0;
    AtpgOptions blind;
    blind.backtrack_limit = 0;
    blind.strategy = {BacktracePolicy::Scoap, FrontierPolicy::Scoap};
    blind.guidance = nullptr;
    const AtpgResult a = run_podem(nl, f, legacy);
    const AtpgResult b = run_podem(nl, f, blind);
    EXPECT_EQ(a.status, b.status) << to_string(nl, f);
    EXPECT_EQ(a.backtracks, b.backtracks) << to_string(nl, f);
    EXPECT_EQ(a.decisions, b.decisions) << to_string(nl, f);
    EXPECT_EQ(a.test, b.test) << to_string(nl, f);
  }
}

TEST(AtpgDifferential, GuidedPipelineVerdictInvariant) {
  // The full pipeline (RTPG + ordering + PODEM + X-fill dropping) keeps the
  // per-fault Detected/Untestable vector identical across every strategy and
  // fault-order combination at an unlimited budget.
  const FaultOrderPolicy orders[] = {FaultOrderPolicy::Index,
                                     FaultOrderPolicy::HardFirst,
                                     FaultOrderPolicy::Cone};
  for (const char* name : {"s27", "cmp8"}) {
    Netlist nl = make_benchmark(name);
    GuidedAtpgOptions base;
    base.backtrack_limit = 0;
    const GuidedAtpgResult ref = guided_atpg(nl, base);
    EXPECT_EQ(ref.aborted, 0u);
    for (BacktracePolicy bt : kBacktrace) {
      for (FrontierPolicy fr : kFrontier) {
        for (FaultOrderPolicy ord : orders) {
          GuidedAtpgOptions opt = base;
          opt.strategy = {bt, fr};
          opt.order = ord;
          const GuidedAtpgResult got = guided_atpg(nl, opt);
          EXPECT_EQ(got.faults.size(), ref.faults.size()) << name;
          EXPECT_EQ(got.status, ref.status)
              << name << " bt=" << to_string(bt) << " fr=" << to_string(fr)
              << " ord=" << to_string(ord);
          EXPECT_EQ(got.detected, ref.detected) << name;
          EXPECT_EQ(got.untestable, ref.untestable) << name;
          EXPECT_EQ(got.aborted, 0u) << name;
        }
      }
    }
  }
}

TEST(AtpgDifferential, GuidedPipelineJobsInvariant) {
  // The pipeline's only parallel component is the fault simulator, whose
  // chunked merge is jobs-invariant; the whole result must be byte-equal
  // at jobs=1 and jobs=4.
  JobsGuard guard;
  Netlist nl = make_benchmark("cmp8");
  GuidedAtpgOptions opt;
  opt.backtrack_limit = 0;
  opt.strategy = {BacktracePolicy::Scoap, FrontierPolicy::Scoap};
  opt.order = FaultOrderPolicy::HardFirst;
  set_jobs(1);
  const GuidedAtpgResult a = guided_atpg(nl, opt);
  set_jobs(4);
  const GuidedAtpgResult b = guided_atpg(nl, opt);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.patterns, b.patterns);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.untestable, b.untestable);
  EXPECT_EQ(a.podem_calls, b.podem_calls);
  EXPECT_EQ(a.backtracks, b.backtracks);
  EXPECT_EQ(a.rtpg.patterns_applied, b.rtpg.patterns_applied);
  EXPECT_EQ(a.rtpg.patterns_kept, b.rtpg.patterns_kept);
  EXPECT_EQ(a.rtpg.detected, b.rtpg.detected);
}

}  // namespace
}  // namespace compsyn
