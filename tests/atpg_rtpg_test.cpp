// Multi-variant random TPG: seeded, byte-reproducible, jobs-invariant.
// A fixed seed must reproduce the pattern stream, the detected accounting,
// and the fsim.* counters exactly -- across repeated runs and across job
// counts. Distribution variants (uniform | weighted | toggle) may change
// how many patterns reach a coverage level, never the verdict accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "atpg/guided.hpp"
#include "exec/exec.hpp"
#include "faults/fault_sim.hpp"
#include "gen/circuits.hpp"
#include "obs/counters.hpp"
#include "obs/obs.hpp"

namespace compsyn {
namespace {

/// Restores the job count on scope exit.
struct JobsGuard {
  JobsGuard() : prev(jobs()) {}
  ~JobsGuard() { set_jobs(prev); }
  unsigned prev;
};

/// Counter recording scoped to one measured region; resets on entry so each
/// snapshot starts from zero.
struct ObsGuard {
  ObsGuard() {
    Counters::reset();
    obs_set_enabled(true);
  }
  ~ObsGuard() {
    obs_set_enabled(false);
    Counters::reset();
  }
};

std::vector<std::pair<std::string, std::uint64_t>> counters_with_prefix(
    const std::string& prefix) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const CounterStat& c : Counters::counters()) {
    if (c.name.rfind(prefix, 0) == 0) out.emplace_back(c.name, c.value);
  }
  return out;
}

TEST(Rtpg, DirectCallIsDeterministic) {
  Netlist nl = make_benchmark("cmp8");
  const auto faults = enumerate_faults(nl, true);
  RandomTpgOptions opt;
  opt.seed = 0xFEEDull;
  opt.max_patterns = 512;
  std::vector<TestPattern> p1, p2;
  FaultSimulator s1(nl, faults);
  const RandomTpgStats r1 = random_tpg(nl, s1, opt, p1);
  FaultSimulator s2(nl, faults);
  const RandomTpgStats r2 = random_tpg(nl, s2, opt, p2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(r1.patterns_applied, r2.patterns_applied);
  EXPECT_EQ(r1.patterns_kept, r2.patterns_kept);
  EXPECT_EQ(r1.blocks, r2.blocks);
  EXPECT_EQ(r1.detected, r2.detected);
  EXPECT_EQ(r1.patterns_kept, p1.size());
  EXPECT_LE(r1.patterns_kept, r1.patterns_applied);
  for (const TestPattern& p : p1) {
    EXPECT_EQ(p.bits.size(), nl.inputs().size());
    EXPECT_TRUE(p.fully_specified());
  }
}

TEST(Rtpg, SeedChangesTheStream) {
  Netlist nl = make_benchmark("cmp8");
  const auto faults = enumerate_faults(nl, true);
  RandomTpgOptions opt;
  opt.max_patterns = 256;
  opt.stale_blocks = 0;  // keep full streams comparable
  std::vector<TestPattern> p1, p2;
  opt.seed = 1;
  FaultSimulator s1(nl, faults);
  random_tpg(nl, s1, opt, p1);
  opt.seed = 2;
  FaultSimulator s2(nl, faults);
  random_tpg(nl, s2, opt, p2);
  EXPECT_NE(p1, p2);
}

TEST(Rtpg, StaleBlocksStopEarly) {
  // c17 saturates in the first blocks; with a stale window the phase must
  // stop well short of the budget, and kept patterns never exceed applied.
  Netlist nl = make_benchmark("c17");
  const auto faults = enumerate_faults(nl, true);
  RandomTpgOptions opt;
  opt.max_patterns = 1 << 14;
  opt.stale_blocks = 2;
  std::vector<TestPattern> pats;
  FaultSimulator sim(nl, faults);
  const RandomTpgStats st = random_tpg(nl, sim, opt, pats);
  EXPECT_LT(st.patterns_applied, opt.max_patterns);
  EXPECT_EQ(sim.remaining(), 0u);  // c17 has full random coverage
  EXPECT_LE(st.patterns_kept, st.patterns_applied);
}

TEST(Rtpg, FixedSeedIsByteStableAcrossRunsAndJobs) {
  JobsGuard guard;
  Netlist nl = make_benchmark("cmp8");
  GuidedAtpgOptions gopt;
  gopt.backtrack_limit = 0;
  gopt.rtpg.seed = 0xABCDEFull;

  struct Snapshot {
    GuidedAtpgResult g;
    std::vector<std::pair<std::string, std::uint64_t>> fsim;
  };
  const auto run = [&](unsigned j) {
    set_jobs(j);
    ObsGuard obs;
    Snapshot s{guided_atpg(nl, gopt), {}};
    s.fsim = counters_with_prefix("fsim.");
    return s;
  };

  const Snapshot a = run(1);
  const Snapshot b = run(1);
  const Snapshot c = run(4);
  for (const Snapshot* s : {&b, &c}) {
    EXPECT_EQ(a.g.patterns, s->g.patterns);
    EXPECT_EQ(a.g.status, s->g.status);
    EXPECT_EQ(a.g.detected, s->g.detected);
    EXPECT_EQ(a.g.untestable, s->g.untestable);
    EXPECT_EQ(a.g.rtpg.patterns_applied, s->g.rtpg.patterns_applied);
    EXPECT_EQ(a.g.rtpg.patterns_kept, s->g.rtpg.patterns_kept);
    EXPECT_EQ(a.g.rtpg.blocks, s->g.rtpg.blocks);
    EXPECT_EQ(a.g.rtpg.detected, s->g.rtpg.detected);
    EXPECT_EQ(a.g.podem_calls, s->g.podem_calls);
    EXPECT_EQ(a.g.backtracks, s->g.backtracks);
    EXPECT_EQ(a.fsim, s->fsim);
  }
}

TEST(Rtpg, VariantsDivergeOnlyInPatternCounts) {
  // Same seed, three distributions: the Detected/Untestable accounting and
  // the final per-fault status are identical; only pattern volume may move.
  for (const char* name : {"s27", "add8"}) {
    Netlist nl = make_benchmark(name);
    GuidedAtpgOptions gopt;
    gopt.backtrack_limit = 0;
    std::vector<GuidedAtpgResult> results;
    for (RtpgVariant v : {RtpgVariant::Uniform, RtpgVariant::Weighted,
                          RtpgVariant::Toggle}) {
      gopt.rtpg.variant = v;
      results.push_back(guided_atpg(nl, gopt));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].status, results[0].status) << name;
      EXPECT_EQ(results[i].detected, results[0].detected) << name;
      EXPECT_EQ(results[i].untestable, results[0].untestable) << name;
      EXPECT_EQ(results[i].aborted, 0u) << name;
    }
  }
}

TEST(Rtpg, ToggleVariantAppliesComplementaryPairs) {
  // The toggle distribution promises complementary consecutive patterns;
  // check the kept stream honours it wherever both halves of a pair were
  // kept (an even index followed by its odd sibling).
  Netlist nl = make_benchmark("add8");
  const auto faults = enumerate_faults(nl, true);
  RandomTpgOptions opt;
  opt.variant = RtpgVariant::Toggle;
  opt.max_patterns = 128;
  opt.stale_blocks = 0;
  std::vector<TestPattern> pats;
  FaultSimulator sim(nl, faults);
  const RandomTpgStats st = random_tpg(nl, sim, opt, pats);
  ASSERT_GE(st.patterns_kept, 2u);
  for (std::size_t p = 0; p + 1 < pats.size(); p += 2) {
    for (std::size_t i = 0; i < pats[p].bits.size(); ++i) {
      EXPECT_NE(pats[p].bits[i], pats[p + 1].bits[i])
          << "pair " << p << " input " << i;
    }
  }
}

TEST(Rtpg, ParserRoundTrips) {
  for (const char* s : {"uniform", "weighted", "toggle"}) {
    const auto v = parse_rtpg_variant(s);
    ASSERT_TRUE(v.has_value()) << s;
    EXPECT_STREQ(to_string(*v), s);
  }
  EXPECT_FALSE(parse_rtpg_variant("bogus").has_value());
  for (const char* s : {"index", "hard", "cone"}) {
    const auto v = parse_fault_order(s);
    ASSERT_TRUE(v.has_value()) << s;
    EXPECT_STREQ(to_string(*v), s);
  }
  EXPECT_FALSE(parse_fault_order("").has_value());
  for (const char* s : {"legacy", "level", "scoap"}) {
    const auto b = parse_backtrace_policy(s);
    const auto f = parse_frontier_policy(s);
    ASSERT_TRUE(b.has_value() && f.has_value()) << s;
    EXPECT_STREQ(to_string(*b), s);
    EXPECT_STREQ(to_string(*f), s);
  }
}

}  // namespace
}  // namespace compsyn
