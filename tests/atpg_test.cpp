#include <gtest/gtest.h>

#include "atpg/podem.hpp"
#include "atpg/redundancy.hpp"
#include "bench_io/bench_io.hpp"
#include "faults/fault_sim.hpp"
#include "netlist/equivalence.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

Netlist c17() {
  return read_bench_string(R"(
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)", "c17");
}

/// Confirms a PODEM test with the fault simulator.
bool test_detects(const Netlist& nl, const StuckFault& f,
                  const std::vector<bool>& test) {
  FaultSimulator sim(nl, {f});
  std::vector<std::uint64_t> pi(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) pi[i] = test[i] ? 1ull : 0ull;
  return !sim.simulate_block(pi, 0).empty();
}

TEST(Podem, DetectsAllC17Faults) {
  Netlist nl = c17();
  for (const auto& f : enumerate_faults(nl, false)) {
    AtpgResult r = run_podem(nl, f);
    ASSERT_EQ(r.status, AtpgStatus::Detected) << to_string(nl, f);
    EXPECT_TRUE(test_detects(nl, f, r.test)) << to_string(nl, f);
  }
}

TEST(Podem, ProvesRedundancy) {
  // y = OR(a, NOT a): constant 1. The s-a-1 on y is undetectable; so is the
  // s-a-0 on any input branch of the OR observed through y.
  Netlist nl("red");
  NodeId a = nl.add_input("a");
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId y = nl.add_gate(GateType::Or, {a, na});
  NodeId b = nl.add_input("b");
  NodeId g = nl.add_gate(GateType::And, {y, b});
  nl.mark_output(g);
  EXPECT_EQ(run_podem(nl, {y, -1, true}).status, AtpgStatus::Untestable);
  EXPECT_EQ(run_podem(nl, {y, -1, false}).status, AtpgStatus::Detected);
  EXPECT_EQ(run_podem(nl, {g, 0, true}).status, AtpgStatus::Untestable);
}

TEST(Podem, AgreesWithExhaustiveOracleOnRandomCircuits) {
  Rng gen(17);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist nl("r");
    std::vector<NodeId> pool;
    const unsigned n_in = 5;
    for (unsigned i = 0; i < n_in; ++i) pool.push_back(nl.add_input());
    const GateType kinds[] = {GateType::And, GateType::Or, GateType::Nand,
                              GateType::Nor, GateType::Not, GateType::Xor};
    for (int i = 0; i < 20; ++i) {
      const GateType t = kinds[gen.below(6)];
      const unsigned arity = t == GateType::Not ? 1 : 2;
      std::vector<NodeId> fi;
      for (unsigned j = 0; j < arity; ++j) fi.push_back(pool[gen.below(pool.size())]);
      pool.push_back(nl.add_gate(t, fi));
    }
    nl.mark_output(pool.back());
    nl.sweep();

    for (const auto& f : enumerate_faults(nl, false)) {
      const AtpgResult r = run_podem(nl, f);
      ASSERT_NE(r.status, AtpgStatus::Aborted);
      // Oracle: try all 32 input patterns through the fault simulator.
      FaultSimulator sim(nl, {f});
      std::vector<std::uint64_t> pi(n_in);
      for (unsigned i = 0; i < n_in; ++i) pi[i] = exhaustive_mask(i);
      const bool detectable = !sim.simulate_block(pi, 0).empty();
      EXPECT_EQ(r.status == AtpgStatus::Detected, detectable)
          << "trial " << trial << " " << to_string(nl, f);
      if (r.status == AtpgStatus::Detected) {
        EXPECT_TRUE(test_detects(nl, f, r.test)) << to_string(nl, f);
      }
    }
  }
}

TEST(Podem, BacktrackLimitAborts) {
  // An 18-input parity tree with an untestable fault takes many backtracks;
  // with limit 1 the engine must abort rather than claim a proof.
  Netlist nl("parity");
  std::vector<NodeId> layer;
  for (int i = 0; i < 16; ++i) layer.push_back(nl.add_input());
  while (layer.size() > 1) {
    std::vector<NodeId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(nl.add_gate(GateType::Xor, {layer[i], layer[i + 1]}));
    }
    layer = next;
  }
  // Redundant cone: AND(parity, NOT parity) is constant 0, so its s-a-0
  // fault can never be activated -- proving that exhausts the search space.
  NodeId np = nl.add_gate(GateType::Not, {layer[0]});
  NodeId g = nl.add_gate(GateType::And, {layer[0], np});
  nl.mark_output(g);
  AtpgOptions opt;
  opt.backtrack_limit = 1;
  const AtpgResult r = run_podem(nl, {g, -1, false}, opt);
  EXPECT_EQ(r.status, AtpgStatus::Aborted);
  // Unlimited search proves it (the 16-input parity cone needs more
  // backtracks than the default budget).
  AtpgOptions unlimited;
  unlimited.backtrack_limit = 0;
  EXPECT_EQ(run_podem(nl, {g, -1, false}, unlimited).status,
            AtpgStatus::Untestable);
  // The s-a-1 fault on a constant-0 line, by contrast, is trivially
  // detectable.
  EXPECT_EQ(run_podem(nl, {g, -1, true}).status, AtpgStatus::Detected);
}

TEST(Podem, SummarySweep) {
  Netlist nl = c17();
  auto faults = enumerate_faults(nl, true);
  auto s = run_podem_all(nl, faults);
  EXPECT_EQ(s.total, faults.size());
  EXPECT_EQ(s.detected, faults.size());
  EXPECT_EQ(s.untestable, 0u);
  EXPECT_EQ(s.aborted, 0u);
}

TEST(Redundancy, C17AlreadyIrredundant) {
  Netlist nl = c17();
  EXPECT_TRUE(is_irredundant(nl));
  auto stats = remove_redundancies(nl);
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_TRUE(stats.irredundant);
  EXPECT_EQ(nl.gate_count(), 6u);
}

TEST(Redundancy, RemovesClassicRedundancy) {
  // f = ab + ~ac + bc: the consensus term bc is redundant logic in the
  // two-level form. Redundancy removal must shrink the circuit and keep the
  // function.
  Netlist nl("consensus");
  NodeId a = nl.add_input("a");
  NodeId b = nl.add_input("b");
  NodeId c = nl.add_input("c");
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId t1 = nl.add_gate(GateType::And, {a, b});
  NodeId t2 = nl.add_gate(GateType::And, {na, c});
  NodeId t3 = nl.add_gate(GateType::And, {b, c});
  NodeId f = nl.add_gate(GateType::Or, {t1, t2, t3});
  nl.mark_output(f);
  Netlist ref = nl.compacted();
  const std::uint64_t gates_before = nl.equivalent_gate_count();
  auto stats = remove_redundancies(nl);
  EXPECT_GT(stats.removed, 0u);
  EXPECT_TRUE(stats.irredundant);
  EXPECT_LT(nl.equivalent_gate_count(), gates_before);
  Rng rng(2);
  auto res = check_equivalent(nl, ref, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
  EXPECT_TRUE(is_irredundant(nl));
}

TEST(Redundancy, ConstantLogicCollapses) {
  Netlist nl("const");
  NodeId a = nl.add_input();
  NodeId na = nl.add_gate(GateType::Not, {a});
  NodeId one = nl.add_gate(GateType::Or, {a, na});  // constant 1
  NodeId b = nl.add_input();
  NodeId g = nl.add_gate(GateType::And, {one, b});  // == b
  nl.mark_output(g);
  Netlist ref = nl.compacted();
  auto stats = remove_redundancies(nl);
  EXPECT_GT(stats.removed, 0u);
  EXPECT_EQ(nl.equivalent_gate_count(), 0u);  // reduces to a wire
  Rng rng(6);
  EXPECT_TRUE(check_equivalent(nl, ref, rng).equivalent);
}

TEST(Redundancy, RandomCircuitsBecomeIrredundantAndKeepFunction) {
  Rng gen(31);
  for (int trial = 0; trial < 6; ++trial) {
    Netlist nl("r");
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(nl.add_input());
    const GateType kinds[] = {GateType::And, GateType::Or, GateType::Nand,
                              GateType::Nor, GateType::Not, GateType::And};
    for (int i = 0; i < 25; ++i) {
      const GateType t = kinds[gen.below(6)];
      const unsigned arity = t == GateType::Not ? 1 : 2 + gen.below(2);
      std::vector<NodeId> fi;
      for (unsigned j = 0; j < arity; ++j) fi.push_back(pool[gen.below(pool.size())]);
      pool.push_back(nl.add_gate(t, fi));
    }
    nl.mark_output(pool.back());
    nl.mark_output(pool[pool.size() - 2]);
    nl.sweep();
    Netlist ref = nl.compacted();
    auto stats = remove_redundancies(nl);
    EXPECT_TRUE(stats.irredundant) << "trial " << trial;
    EXPECT_TRUE(is_irredundant(nl)) << "trial " << trial;
    Rng rng(trial);
    auto res = check_equivalent(nl, ref, rng);
    EXPECT_TRUE(res.equivalent) << "trial " << trial << ": " << res.message;
  }
}

}  // namespace
}  // namespace compsyn
