// Drives the bench_diff and bench_convert tools as subprocesses (paths
// injected by CMake): the perf-regression gate must stay silent on identical
// reports, fire on a synthetic 2x span slowdown, and enforce counter
// determinism under --strict-counters. This is the in-repo proof that the CI
// perf-smoke job's gate actually trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <sys/wait.h>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"

#ifndef BENCH_DIFF_PATH
#error "BENCH_DIFF_PATH must be defined by the build"
#endif
#ifndef BENCH_CONVERT_PATH
#error "BENCH_CONVERT_PATH must be defined by the build"
#endif

namespace compsyn {
namespace {

std::string temp_path(const std::string& leaf) {
  return testing::TempDir() + "compsyn_bench_diff_" + leaf;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << text;
  ASSERT_TRUE(os.good()) << path;
}

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_tool(const std::string& tool, const std::string& args) {
  static int serial = 0;
  const std::string out_path = temp_path("out" + std::to_string(serial++));
  const std::string cmd = tool + " " + args + " >" + out_path + " 2>&1";
  const int raw = std::system(cmd.c_str());
  RunResult r;
  r.exit_code = WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
  r.out = slurp(out_path);
  std::remove(out_path.c_str());
  return r;
}

RunResult run_diff(const std::string& args) {
  return run_tool(BENCH_DIFF_PATH, args);
}

/// A small v2-shaped report. `resynth_ns` scales the hot span; `extra`
/// perturbs one counter.
std::string report_json(std::uint64_t resynth_ns, std::uint64_t atpg_calls,
                        bool tagged = true) {
  Json doc = Json::object();
  if (tagged) doc.set("schema", std::string(kBenchSchemaV2));
  doc.set("name", "table2_proc2");
  doc.set("meta", Json::object());
  doc.set("wall_seconds", static_cast<double>(resynth_ns) / 1e9 + 1.0);
  Json spans = Json::array();
  auto span = [](const char* label, std::uint64_t total) {
    Json s = Json::object();
    s.set("label", label);
    s.set("count", std::uint64_t{10});
    s.set("total_ns", total);
    s.set("self_ns", total);
    s.set("min_ns", std::uint64_t{100});
    s.set("max_ns", total);
    return s;
  };
  spans.push(span("resynth", resynth_ns));
  spans.push(span("fsim.block", 50'000'000));
  spans.push(span("tiny", 5'000));  // below --min-ns: never part of a verdict
  doc.set("spans", std::move(spans));
  Json counters = Json::object();
  counters.set("atpg.calls", atpg_calls);
  counters.set("resynth.replacements", std::uint64_t{306});
  doc.set("counters", std::move(counters));
  return doc.dump(2) + "\n";
}

TEST(BenchDiff, IdenticalReportsPass) {
  const std::string a = temp_path("same_a.json");
  const std::string b = temp_path("same_b.json");
  spit(a, report_json(2'000'000'000, 233));
  spit(b, report_json(2'000'000'000, 233));
  const RunResult r = run_diff(a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("verdict: ok"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("counters identical"), std::string::npos) << r.out;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, TwoXSlowdownFailsTheGate) {
  const std::string a = temp_path("slow_a.json");
  const std::string b = temp_path("slow_b.json");
  const std::string v = temp_path("slow_verdict.json");
  spit(a, report_json(2'000'000'000, 233));
  spit(b, report_json(4'000'000'000, 233));  // resynth doubled
  const RunResult r = run_diff("--json=" + v + " " + a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("REGRESSION"), std::string::npos) << r.out;

  std::string err;
  auto verdict = Json::parse(slurp(v), &err);
  ASSERT_TRUE(verdict.has_value()) << err;
  EXPECT_EQ(verdict->find("verdict")->as_string(), "regression");
  const Json* regs = verdict->find("regressions");
  ASSERT_NE(regs, nullptr);
  ASSERT_GE(regs->size(), 1u);
  bool saw_resynth = false;
  for (std::size_t i = 0; i < regs->size(); ++i) {
    if (regs->at(i).find("metric")->as_string() == "span:resynth") {
      saw_resynth = true;
    }
  }
  EXPECT_TRUE(saw_resynth);
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(v.c_str());
}

TEST(BenchDiff, ImprovementIsNotARegression) {
  const std::string a = temp_path("fast_a.json");
  const std::string b = temp_path("fast_b.json");
  spit(a, report_json(4'000'000'000, 233));
  spit(b, report_json(2'000'000'000, 233));
  const RunResult r = run_diff(a + " " + b);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("improved"), std::string::npos) << r.out;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, ToleranceAbsorbsNoise) {
  const std::string a = temp_path("noise_a.json");
  const std::string b = temp_path("noise_b.json");
  spit(a, report_json(2'000'000'000, 233));
  spit(b, report_json(2'100'000'000, 233));  // +5%, under the 10% default
  EXPECT_EQ(run_diff(a + " " + b).exit_code, 0);
  // A tighter tolerance flags the same pair.
  EXPECT_EQ(run_diff("--tolerance=0.02 " + a + " " + b).exit_code, 1);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, StrictCountersEnforceDeterminism) {
  const std::string a = temp_path("cnt_a.json");
  const std::string b = temp_path("cnt_b.json");
  spit(a, report_json(2'000'000'000, 233));
  spit(b, report_json(2'000'000'000, 234));
  // Counter drift alone is informational by default...
  EXPECT_EQ(run_diff(a + " " + b).exit_code, 0);
  // ...and fatal under --strict-counters, even with times ignored.
  const RunResult r =
      run_diff("--strict-counters --tolerance=1000 " + a + " " + b);
  EXPECT_EQ(r.exit_code, 1) << r.out;
  EXPECT_NE(r.out.find("atpg.calls"), std::string::npos) << r.out;
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, AcceptsLegacyUntaggedReports) {
  const std::string a = temp_path("legacy_a.json");
  const std::string b = temp_path("legacy_b.json");
  spit(a, report_json(2'000'000'000, 233, /*tagged=*/false));
  spit(b, report_json(2'000'000'000, 233, /*tagged=*/true));
  EXPECT_EQ(run_diff(a + " " + b).exit_code, 0);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BenchDiff, RejectsGarbageInputs) {
  const std::string a = temp_path("garbage.json");
  const std::string ok = temp_path("ok.json");
  spit(a, "not json");
  spit(ok, report_json(1'000'000'000, 1));
  EXPECT_EQ(run_diff(a + " " + ok).exit_code, 2);
  EXPECT_EQ(run_diff(ok + " " + temp_path("missing.json")).exit_code, 2);
  EXPECT_EQ(run_diff(ok).exit_code, 2);  // usage: needs two positionals
  std::remove(a.c_str());
  std::remove(ok.c_str());
}

TEST(BenchConvert, TagsInPlaceAndIsIdempotent) {
  const std::string p = temp_path("convert.json");
  spit(p, report_json(1'000'000'000, 7, /*tagged=*/false));
  EXPECT_EQ(run_tool(BENCH_CONVERT_PATH, p).exit_code, 0);
  const std::string once = slurp(p);
  EXPECT_NE(once.find("\"schema\": \"compsyn-bench-v2\""), std::string::npos);
  EXPECT_EQ(run_tool(BENCH_CONVERT_PATH, p).exit_code, 0);
  EXPECT_EQ(slurp(p), once);
  std::remove(p.c_str());
}

TEST(BenchDiff, TrajectoryAppendsOneRecordPerRun) {
  const std::string a = temp_path("traj_a.json");
  const std::string t = temp_path("traj.jsonl");
  std::remove(t.c_str());
  spit(a, report_json(2'000'000'000, 233));
  EXPECT_EQ(run_diff("--trajectory=" + t + " " + a + " " + a).exit_code, 0);
  EXPECT_EQ(run_diff("--trajectory=" + t + " " + a + " " + a).exit_code, 0);
  std::istringstream lines(slurp(t));
  std::string line;
  int n = 0;
  while (std::getline(lines, line)) {
    std::string err;
    auto j = Json::parse(line, &err);
    ASSERT_TRUE(j.has_value()) << line << ": " << err;
    EXPECT_EQ(j->find("schema")->as_string(), "compsyn-bench-trajectory-v1");
    EXPECT_EQ(j->find("name")->as_string(), "table2_proc2");
    ++n;
  }
  EXPECT_EQ(n, 2);
  std::remove(a.c_str());
  std::remove(t.c_str());
}

}  // namespace
}  // namespace compsyn
