#include <gtest/gtest.h>

#include <stdexcept>

#include "bench_io/bench_io.hpp"
#include "netlist/equivalence.hpp"
#include "util/rng.hpp"

namespace compsyn {
namespace {

const char* kC17 = R"(
# c17 iscas example
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)

OUTPUT(22)
OUTPUT(23)

10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

const char* kS27 = R"(
# s27 iscas89
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

TEST(BenchIo, ParsesC17) {
  Netlist nl = read_bench_string(kC17, "c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  EXPECT_EQ(nl.equivalent_gate_count(), 6u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
  // Spot-check the function: all inputs 0 -> both outputs are NAND(...)=...
  auto v = nl.simulate({0, 0, 0, 0, 0});
  // 10 = NAND(0,0)=1, 11=1, 16=NAND(0,1)=1, 19=NAND(1,0)=1,
  // 22=NAND(1,1)=0, 23=NAND(1,1)=0
  EXPECT_EQ(v[nl.outputs()[0]] & 1ull, 0ull);
  EXPECT_EQ(v[nl.outputs()[1]] & 1ull, 0ull);
}

TEST(BenchIo, ScanConvertsS27) {
  Netlist nl = read_bench_string(kS27, "s27");
  // 4 PIs + 3 DFF pseudo-inputs; 1 PO + 3 DFF pseudo-outputs.
  EXPECT_EQ(nl.inputs().size(), 7u);
  EXPECT_EQ(nl.outputs().size(), 4u);
  EXPECT_TRUE(nl.check().empty()) << nl.check();
  EXPECT_EQ(nl.gate_count(), 10u);
}

TEST(BenchIo, RoundTripPreservesFunction) {
  Netlist nl = read_bench_string(kS27, "s27");
  Netlist again = read_bench_string(write_bench_string(nl), "s27rt");
  Rng rng(17);
  auto res = check_equivalent(nl, again, rng);
  EXPECT_TRUE(res.equivalent) << res.message;
  EXPECT_TRUE(res.exhaustive);
}

TEST(BenchIo, RoundTripPreservesNames) {
  Netlist nl = read_bench_string(kC17, "c17");
  Netlist again = read_bench_string(write_bench_string(nl));
  ASSERT_EQ(again.inputs().size(), 5u);
  EXPECT_EQ(again.node(again.inputs()[0]).name, "1");
  EXPECT_EQ(again.node(again.outputs()[0]).name, "22");
}

TEST(BenchIo, ConstRoundTrip) {
  Netlist nl("k");
  NodeId a = nl.add_input("a");
  NodeId k = nl.add_const(true, "one");
  NodeId g = nl.add_gate(GateType::Xor, {a, k}, "out");
  nl.mark_output(g);
  Netlist again = read_bench_string(write_bench_string(nl));
  Rng rng(19);
  EXPECT_TRUE(check_equivalent(nl, again, rng).equivalent);
}

TEST(BenchIo, ForwardReferencesResolve) {
  // `z` references `y` defined after it.
  const char* text = R"(
INPUT(a)
OUTPUT(z)
z = AND(y, a)
y = NOT(a)
)";
  Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.gate_count(), 2u);
  auto v = nl.simulate({0b01ull});
  EXPECT_EQ(v[nl.outputs()[0]] & 3ull, 0ull);  // a & ~a == 0
}

TEST(BenchIo, OneInputAndToleratedAsBuf) {
  const char* text = "INPUT(a)\nOUTPUT(z)\nz = AND(a)\n";
  Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.node(nl.outputs()[0]).type, GateType::Buf);
}

class BenchIoMalformed : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchIoMalformed, Throws) {
  EXPECT_THROW(read_bench_string(GetParam()), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BenchIoMalformed,
    ::testing::Values(
        "INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n",        // unknown gate type
        "INPUT(a)\nOUTPUT(z)\nz = AND(a, q)\n",      // undefined signal
        "INPUT(a)\nOUTPUT(z)\nz = AND a, a\n",       // missing parens
        "INPUT(a)\nOUTPUT(z)\nz = NOT(a, a)\n",      // NOT arity
        "INPUT(a)\nOUTPUT(z)\nz = AND(z, a)\n",      // combinational cycle
        "INPUT(a)\nWIBBLE(a)\nOUTPUT(a)\n",          // unknown directive
        "INPUT(a)\nOUTPUT(z)\nz = AND(a,b)\nz = OR(a,a)\n",  // duplicate def
        "INPUT(a)\nOUTPUT(missing)\n",               // undefined output
        "INPUT(a)\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n",       // duplicate INPUT
        "INPUT(a)\nOUTPUT(a)\na = NOT(a)\n",         // gate redefines INPUT
        "INPUT(a)\nOUTPUT(z)\nz = NOT(a) junk\n",    // trailing text after ')'
        "INPUT(a) junk\nOUTPUT(z)\nz = NOT(a)\n",    // trailing text on port
        "INPUT(a)\nOUTPUT(z)\nz = AND(a, , a)\n",    // empty argument
        "INPUT()\nOUTPUT(z)\nz = NOT(a)\n",          // empty signal name
        "INPUT(a)\nOUTPUT(z)\n = NOT(a)\n",          // empty gate name
        "INPUT(a)\nOUTPUT(z)\nz = CONST1(a)\n"));    // CONST with arguments

// The parse errors must carry the exact source position so a user can fix
// a 100k-line netlist without bisecting it.
TEST(BenchIoDiagnostics, ReportsLineAndColumn) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n");
    FAIL() << "malformed input did not throw";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_EQ(e.column, 5);  // the function name after "z = "
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("FROB"), std::string::npos);
  }
}

TEST(BenchIoDiagnostics, DuplicateDefinitionNamesBothLines) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(z)\nz = NOT(a)\nz = AND(a, a)\n");
    FAIL() << "duplicate definition did not throw";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line, 4);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("duplicate definition of 'z'"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("first defined at line 3"), std::string::npos) << msg;
  }
}

TEST(BenchIoDiagnostics, CycleNamesTheGate) {
  try {
    read_bench_string(
        "INPUT(a)\nOUTPUT(z)\nz = AND(a, y)\ny = NOT(x)\nx = BUF(y)\n");
    FAIL() << "cycle did not throw";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("combinational cycle"),
              std::string::npos);
    EXPECT_GT(e.line, 0);
    EXPECT_GT(e.column, 0);
  }
}

TEST(BenchIoDiagnostics, UndefinedSignalPointsAtTheArgument) {
  try {
    read_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a,     ghost)\n");
    FAIL() << "undefined signal did not throw";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_EQ(e.column, 16);  // first column of "ghost"
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
  }
}

// Deterministic fuzz: random single-character mutations of a valid netlist
// must either parse or throw BenchParseError -- never crash, hang, or
// escape with a different exception type. Seeded, so a failure replays.
TEST(BenchIoFuzz, MutatedInputsThrowOnlyBenchParseError) {
  const std::string base(kC17);
  const std::string alphabet = "()=,# \tABCXYZabcxyz019";
  Rng rng(0xBEAC5EED);
  int parsed = 0, rejected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string text = base;
    const unsigned mutations = 1 + rng.below(4);
    for (unsigned m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.below(text.size());
      switch (rng.below(3)) {
        case 0:  // replace
          text[pos] = alphabet[rng.below(alphabet.size())];
          break;
        case 1:  // insert
          text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                      alphabet[rng.below(alphabet.size())]);
          break;
        default:  // delete
          text.erase(text.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
      }
    }
    try {
      read_bench_string(text);
      ++parsed;
    } catch (const BenchParseError& e) {
      EXPECT_GT(e.line, 0) << "iter " << iter;
      EXPECT_GT(e.column, 0) << "iter " << iter;
      ++rejected;
    } catch (const std::exception& e) {
      FAIL() << "iter " << iter << ": escaped with " << e.what()
             << "\ninput:\n" << text;
    }
  }
  // Sanity: the fuzzer actually exercised both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path/x.bench"), std::runtime_error);
}

TEST(BenchIo, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# full line comment\n\nINPUT(a)  # trailing\nOUTPUT(z)\nz = NOT(a)\n";
  Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.gate_count(), 1u);
}

}  // namespace
}  // namespace compsyn
